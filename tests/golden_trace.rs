//! Golden-trace snapshot tests for psim-trace cycle attribution.
//!
//! Three small fixed matrices (banded FEM, R-MAT, diagonal-plus-subdiag)
//! run SpMV and SpTRSV on a traced tiny device, and the resulting per-PU
//! stall-breakdown vectors are compared *exactly* — serialized JSON string
//! equality — against checked-in goldens under `tests/goldens/`. Any
//! change to the timing model, the lockstep loop, or the attribution
//! cursors shows up as a diff in these files.
//!
//! Regenerating after an intentional change:
//!
//! ```text
//! PSIM_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! then review the golden diffs like any other code change.

use psyncpim::core::{ChannelMetrics, CycleBreakdown};
use psyncpim::kernels::{KernelRun, PimDevice, SpmvPim, SptrsvPim};
use psyncpim::sparse::level::reorder_to_lower;
use psyncpim::sparse::triangular::{unit_triangular_from, Triangle};
use psyncpim::sparse::{gen, Coo, Entry, Precision};
use serde::Serialize;
use std::path::PathBuf;

/// What a golden file pins down: the run's wall-clock, its bus-view
/// attribution, and the exact per-PU breakdown of every channel.
#[derive(Serialize)]
struct GoldenTrace {
    kernel: &'static str,
    matrix: &'static str,
    dram_cycles: u64,
    attr: CycleBreakdown,
    channels: Vec<ChannelMetrics>,
}

fn traced_tiny() -> PimDevice {
    let mut dev = PimDevice::tiny(2);
    dev.trace = true;
    dev
}

/// The three fixed fixtures. Small enough that goldens stay reviewable,
/// shaped differently enough to exercise different stall mixes: the band
/// is balanced, the R-MAT is skewed (queue-empty stalls on light banks),
/// the diagonal chain is SpTRSV's worst case (one level per row).
fn fixtures() -> Vec<(&'static str, Coo)> {
    let banded = gen::banded_fem(24, 2, 3, 5);
    let rmat = gen::rmat(32, 2, 3);
    let mut entries = Vec::new();
    for i in 0..24u32 {
        entries.push(Entry::new(i, i, 2.0 + f64::from(i)));
        if i > 0 {
            entries.push(Entry::new(i, i - 1, 1.0));
        }
    }
    let diag = Coo::from_entries(24, 24, entries).unwrap();
    vec![("banded", banded), ("rmat", rmat), ("diag", diag)]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(format!("{name}.json"))
}

/// Compare against (or, under `PSIM_BLESS=1`, rewrite) a golden file.
fn check_golden(kernel: &'static str, matrix: &'static str, run: &KernelRun) {
    let metrics = run.metrics.as_ref().expect("tracing enabled");
    assert!(
        metrics.conservation_failures().is_empty(),
        "{kernel}/{matrix}: {:?}",
        metrics.conservation_failures()
    );
    assert_eq!(
        run.attr.total(),
        run.dram_cycles,
        "{kernel}/{matrix}: wall attribution must cover every cycle"
    );
    let golden = GoldenTrace {
        kernel,
        matrix,
        dram_cycles: run.dram_cycles,
        attr: run.attr,
        channels: metrics.channels.clone(),
    };
    let actual = golden.to_json();
    let path = golden_path(&format!("{kernel}_{matrix}"));
    if std::env::var_os("PSIM_BLESS").is_some() {
        std::fs::write(&path, format!("{actual}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with PSIM_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        want.trim_end(),
        actual,
        "{kernel}/{matrix}: trace diverged from {} (rerun with PSIM_BLESS=1 if intentional)",
        path.display()
    );
}

#[test]
fn spmv_stall_breakdowns_match_goldens() {
    for (name, a) in fixtures() {
        let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 7) as f64).collect();
        let res = SpmvPim::new(traced_tiny(), Precision::Fp64)
            .run(&a, &x)
            .expect("spmv");
        // The golden is a trace snapshot, not a correctness oracle — still
        // assert the numerics so a golden can never bless a wrong result.
        let want = a.spmv(&x);
        for (i, (g, w)) in res.y.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9 * w.abs().max(1.0), "{name} row {i}");
        }
        check_golden("spmv", name, &res.run);
    }
}

#[test]
fn sptrsv_stall_breakdowns_match_goldens() {
    for (name, a) in fixtures() {
        let t = unit_triangular_from(&a, Triangle::Lower).unwrap();
        let b = gen::dense_vector(t.dim(), 11);
        let want = t.solve_colwise(&b).unwrap();
        let (reordered, perm) = reorder_to_lower(&t);
        let pb: Vec<f64> = perm.iter().map(|&old| b[old]).collect();
        let res = SptrsvPim::new(traced_tiny())
            .run(&reordered, &pb)
            .expect("sptrsv");
        for (new, &old) in perm.iter().enumerate() {
            assert!(
                (res.x[new] - want[old]).abs() < 1e-8 * want[old].abs().max(1.0),
                "{name} row {old}"
            );
        }
        check_golden("sptrsv", name, &res.run);
    }
}

#[test]
fn golden_runs_are_reproducible() {
    // The snapshot contract only makes sense if two runs of the same
    // fixture produce bit-identical registries.
    let (_, a) = fixtures().remove(1);
    let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 7) as f64).collect();
    let r1 = SpmvPim::new(traced_tiny(), Precision::Fp64)
        .run(&a, &x)
        .unwrap();
    let r2 = SpmvPim::new(traced_tiny(), Precision::Fp64)
        .run(&a, &x)
        .unwrap();
    assert_eq!(r1.run.metrics, r2.run.metrics);
    assert_eq!(r1.run.attr, r2.run.attr);
}
