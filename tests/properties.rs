//! Property-based tests (proptest) over the core invariants of the stack.

use proptest::prelude::*;
use psyncpim::core::isa::{
    assemble, disassemble, BinaryOp, Identity, Instruction, Operand, SetMode, SubQueue,
};
use psyncpim::dram::{Channel, CmdKind, HbmConfig, Scope};
use psyncpim::kernels::{PimDevice, SpmvPim};
use psyncpim::sparse::blocked::{Bcoo, Bcsr};
use psyncpim::sparse::partition::{BankPartition, DistPolicy, PartitionConfig, PartitionScheme};
use psyncpim::sparse::triangular::{unit_triangular_from, Triangle, UnitTriangular};
use psyncpim::sparse::{mmio, BlockPlan, Coo, Csc, Csr, Entry, LevelSchedule, Precision};

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop::sample::select(Precision::ALL.to_vec())
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop::sample::select(vec![
        Operand::Bank,
        Operand::Srf,
        Operand::Drf(0),
        Operand::Drf(1),
        Operand::Drf(2),
        Operand::SpVq(0),
        Operand::SpVq(1),
        Operand::SpVq(2),
    ])
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(vec![
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Min,
        BinaryOp::Max,
        BinaryOp::First,
        BinaryOp::Second,
        BinaryOp::RSub,
    ])
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Exit),
        (0u8..3).prop_map(|queue| Instruction::CExit { queue }),
        (0u8..32, 0u8..32, 0u16..1024).prop_map(|(target, order, count)| Instruction::Jump {
            target,
            order,
            count
        }),
        (arb_operand(), arb_operand(), arb_precision()).prop_map(|(dst, src, precision)| {
            Instruction::Dmov {
                dst,
                src,
                precision,
            }
        }),
        (arb_operand(), 0u8..3, arb_precision()).prop_map(|(dst, idx_queue, precision)| {
            Instruction::IndMov {
                dst,
                idx_queue,
                precision,
            }
        }),
        (
            arb_operand(),
            arb_operand(),
            prop::sample::select(vec![
                SubQueue::Row,
                SubQueue::Col,
                SubQueue::Val,
                SubQueue::All
            ]),
            arb_precision()
        )
            .prop_map(|(dst, src, sub, precision)| Instruction::SpMov {
                dst,
                src,
                sub,
                precision,
            }),
        (0u8..3, arb_precision()).prop_map(|(src, precision)| Instruction::SpFw { src, precision }),
        (
            arb_operand(),
            arb_operand(),
            prop::sample::select(vec![
                Identity::Zero,
                Identity::One,
                Identity::NegInf,
                Identity::PosInf
            ]),
            arb_precision()
        )
            .prop_map(|(dst, src, identity, precision)| Instruction::GthSct {
                dst,
                src,
                identity,
                precision,
            }),
        (arb_operand(), arb_operand(), arb_binop(), arb_precision()).prop_map(
            |(dst, src, op, precision)| Instruction::Sdv {
                dst,
                src,
                op,
                precision,
            }
        ),
        (
            arb_operand(),
            arb_operand(),
            arb_operand(),
            arb_binop(),
            prop::sample::select(vec![SetMode::Intersection, SetMode::Union]),
            arb_precision()
        )
            .prop_map(|(dst, src0, src1, op, set, precision)| Instruction::SpVdv {
                dst,
                src0,
                src1,
                op,
                set,
                precision,
            }),
    ]
}

/// Random sparse matrices as entry lists.
fn arb_coo(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (2..max_dim).prop_flat_map(move |n| {
        prop::collection::vec((0..n as u32, 0..n as u32, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |entries| {
                let mut m = Coo::new(n, n);
                for (r, c, v) in entries {
                    m.push(r, c, v);
                }
                m.coalesce();
                m
            },
        )
    })
}

/// Every partition scheme the layout zoo executes from.
fn arb_scheme() -> impl Strategy<Value = PartitionScheme> {
    prop::sample::select(vec![
        PartitionScheme::Row1D,
        PartitionScheme::Grid2D { col_blocks: 2 },
        PartitionScheme::Grid2D { col_blocks: 3 },
        PartitionScheme::Balanced2D { col_blocks: 2 },
        PartitionScheme::Balanced2D { col_blocks: 4 },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn isa_encode_decode_roundtrips(ins in arb_instruction()) {
        let word = ins.encode().expect("generated instructions encode");
        let back = Instruction::decode(word).expect("decode");
        prop_assert_eq!(back, ins);
    }

    #[test]
    fn format_conversions_roundtrip(a in arb_coo(64, 200)) {
        let csr = Csr::from(&a);
        let csc = Csc::from(&a);
        let mut from_csr = Coo::from(&csr);
        let mut from_csc = Coo::from(&csc);
        let mut orig = a.clone();
        orig.sort_row_major();
        from_csr.sort_row_major();
        from_csc.sort_row_major();
        prop_assert_eq!(&from_csr, &orig);
        prop_assert_eq!(&from_csc, &orig);
    }

    #[test]
    fn spmv_agrees_across_formats(a in arb_coo(48, 150), seed in 0u64..1000) {
        let x = psyncpim::sparse::gen::dense_vector(a.ncols(), seed);
        let y0 = a.spmv(&x);
        let y1 = Csr::from(&a).spmv(&x);
        let y2 = Csc::from(&a).spmv(&x);
        for i in 0..y0.len() {
            prop_assert!((y0[i] - y1[i]).abs() < 1e-9);
            prop_assert!((y0[i] - y2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn partition_conserves_nnz_and_matches_spmv(a in arb_coo(96, 300), rb in prop::sample::select(vec![128usize, 256, 1024])) {
        let part = BankPartition::build(&a, PartitionConfig {
            num_banks: 8,
            row_bytes: rb,
            precision: Precision::Fp64,
            policy: DistPolicy::RoundRobin,
            compress: true,
            scheme: PartitionScheme::Row1D,
        });
        prop_assert_eq!(part.total_nnz(), a.nnz());
        let x = vec![1.0; a.ncols()];
        let got = part.spmv(&x);
        let want = a.spmv(&x);
        for i in 0..want.len() {
            prop_assert!((got[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn every_partition_scheme_conserves_entries_and_bounds(
        a in arb_coo(96, 300),
        scheme in arb_scheme(),
        policy in prop::sample::select(vec![DistPolicy::RoundRobin, DistPolicy::LeastLoaded]),
    ) {
        let banks = 8usize;
        let part = BankPartition::build(&a, PartitionConfig {
            num_banks: banks,
            row_bytes: 256,
            precision: Precision::Fp64,
            policy,
            compress: true,
            scheme,
        });
        // No entry duplicated or dropped: the partition's entry multiset,
        // mapped back to global coordinates, is exactly the matrix's.
        prop_assert_eq!(part.total_nnz(), a.nnz());
        let mut reassembled: Vec<(u32, u32, u64)> = part
            .submatrices()
            .iter()
            .flat_map(|s| s.entries.iter().map(move |e| (
                e.row + s.row_lo as u32,
                s.cols[e.col as usize],
                e.val.to_bits(),
            )))
            .collect();
        reassembled.sort_unstable();
        let mut original: Vec<(u32, u32, u64)> = a
            .entries()
            .iter()
            .map(|e| (e.row, e.col, e.val.to_bits()))
            .collect();
        original.sort_unstable();
        prop_assert_eq!(reassembled, original);
        // Every submatrix stays inside the matrix and its own strip.
        for s in part.submatrices() {
            prop_assert!(s.bank < banks);
            prop_assert!(s.row_lo < s.row_hi && s.row_hi <= a.nrows());
            prop_assert!(s.cols.windows(2).all(|w| w[0] < w[1]), "cols sorted+unique");
            prop_assert!(s.cols.iter().all(|&c| (c as usize) < a.ncols()));
            for e in &s.entries {
                prop_assert!((e.row as usize) < s.row_hi - s.row_lo);
                prop_assert!((e.col as usize) < s.cols.len());
            }
        }
        // And the partition still computes the same product.
        let x = psyncpim::sparse::gen::dense_vector(a.ncols(), 17);
        let got = part.spmv(&x);
        let want = a.spmv(&x);
        for i in 0..want.len() {
            prop_assert!((got[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn blocked_formats_roundtrip_through_csr_and_coo(
        a in arb_coo(64, 200),
        block in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        // Blocked storage is lossless for non-zero entries in either
        // direction, including via CSR: COO → CSR → COO → BCSR → COO and
        // BCSR ↔ BCOO land on the same entry set.
        let mut nonzero: Vec<(u32, u32, u64)> = a
            .entries()
            .iter()
            .filter(|e| e.val != 0.0)
            .map(|e| (e.row, e.col, e.val.to_bits()))
            .collect();
        nonzero.sort_unstable();
        let via_csr = Coo::from(&Csr::from(&a));
        let bcsr = Bcsr::from_coo(&via_csr, block);
        let bcoo = Bcoo::from(&bcsr);
        let back = Bcsr::from(&bcoo);
        for round in [bcsr.to_coo(), bcoo.to_coo(), back.to_coo()] {
            let mut got: Vec<(u32, u32, u64)> = round
                .entries()
                .iter()
                .map(|e| (e.row, e.col, e.val.to_bits()))
                .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &nonzero);
        }
        prop_assert_eq!(bcsr.stored(), back.stored());
        // The blocked spmv agrees with the element-format reference.
        let x = psyncpim::sparse::gen::dense_vector(a.ncols(), 23);
        let want = a.spmv(&x);
        let got = bcsr.spmv(&x);
        for i in 0..want.len() {
            prop_assert!((got[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn triangular_solves_roundtrip(a in arb_coo(40, 160)) {
        for triangle in [Triangle::Lower, Triangle::Upper] {
            let t = unit_triangular_from(&a, triangle).expect("square");
            let x: Vec<f64> = (0..t.dim()).map(|i| (i % 7) as f64 - 3.0).collect();
            let b = t.matvec(&x);
            let col = t.solve_colwise(&b).expect("dims");
            let row = t.solve_rowwise(&b).expect("dims");
            for i in 0..x.len() {
                prop_assert!((col[i] - x[i]).abs() < 1e-8, "colwise {}", i);
                prop_assert!((row[i] - x[i]).abs() < 1e-8, "rowwise {}", i);
            }
        }
    }

    #[test]
    fn block_plan_solve_equals_direct(a in arb_coo(60, 200), max_block in 4usize..40) {
        let t = unit_triangular_from(&a, Triangle::Lower).expect("square");
        let b: Vec<f64> = (0..t.dim()).map(|i| 1.0 + (i % 5) as f64).collect();
        let plan = BlockPlan::build(Triangle::Lower, t.dim(), max_block);
        let got = plan.execute_reference(&t, &b).expect("plan");
        let want = t.solve_colwise(&b).expect("direct");
        for i in 0..want.len() {
            prop_assert!((got[i] - want[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn level_schedule_respects_dependencies(a in arb_coo(50, 150)) {
        for triangle in [Triangle::Lower, Triangle::Upper] {
            let t = unit_triangular_from(&a, triangle).expect("square");
            let sched = LevelSchedule::analyze(&t);
            let perm = sched.reorder_permutation();
            prop_assert!(sched.respects_dependencies(&t, &perm));
        }
    }

    #[test]
    fn mmio_roundtrips(a in arb_coo(32, 100)) {
        let text = mmio::write_str(&a);
        let back = mmio::read_str(&text).expect("parse");
        prop_assert_eq!(back, a);
    }

    #[test]
    fn dram_issue_respects_earliest(rows in prop::collection::vec(0u32..64, 1..20)) {
        let cfg = HbmConfig::default();
        let mut ch = Channel::new(&cfg);
        let mut now = 0u64;
        for (i, &row) in rows.iter().enumerate() {
            if i > 0 {
                now = ch.issue_earliest(Scope::AllBanks, CmdKind::Pre, now)
                    .expect("pre").issue_cycle;
            }
            let act = ch.issue_earliest(Scope::AllBanks, CmdKind::Act { row }, now)
                .expect("act");
            prop_assert!(act.issue_cycle >= now);
            now = act.issue_cycle;
            let rd = ch.issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 0 }, now)
                .expect("rd");
            prop_assert!(rd.issue_cycle >= now + u64::from(cfg.timing.t_rcd > 0));
            now = rd.issue_cycle;
        }
        // Commands were all accounted.
        prop_assert_eq!(ch.stats().acts as usize, rows.len());
    }

    #[test]
    fn binaryop_apply_is_total(op in arb_binop(), a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let v = op.apply(a, b);
        prop_assert!(v.is_finite());
    }

    #[test]
    fn quantize_is_idempotent(p in arb_precision(), v in -1e4f64..1e4) {
        let q = p.quantize(v);
        prop_assert_eq!(p.quantize(q), q);
    }
}

proptest! {
    // The full device simulation is heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pim_spmv_matches_reference_on_random_matrices(a in arb_coo(80, 250), seed in 0u64..100) {
        let x = psyncpim::sparse::gen::dense_vector(a.ncols(), seed);
        let res = SpmvPim::new(PimDevice::tiny(1), Precision::Fp64)
            .run(&a, &x)
            .expect("spmv");
        let want = a.spmv(&x);
        for (i, (yi, wi)) in res.y.iter().zip(&want).enumerate() {
            prop_assert!(
                (yi - wi).abs() < 1e-9 * wi.abs().max(1.0),
                "row {}: {} vs {}", i, yi, wi
            );
        }
    }

    #[test]
    fn pim_sptrsv_matches_reference_on_random_triangles(a in arb_coo(60, 200), seed in 0u64..100) {
        let t = unit_triangular_from(&a, Triangle::Lower).expect("square");
        let want_x = psyncpim::sparse::gen::dense_vector(t.dim(), seed);
        let b = t.matvec(&want_x);
        let res = psyncpim::kernels::SptrsvPim::new(PimDevice::tiny(1))
            .run(&t, &b)
            .expect("sptrsv");
        for (i, (xi, wi)) in res.x.iter().zip(&want_x).enumerate() {
            prop_assert!((xi - wi).abs() < 1e-8, "row {}", i);
        }
    }

    /// psim-trace cycle conservation: on any random matrix, in both
    /// execution modes, every PU's attribution categories sum exactly to
    /// its channel's cycles, and the kernel-level wall attribution covers
    /// every reported DRAM cycle with no residual.
    #[test]
    fn trace_attribution_conserves_cycles_on_random_matrices(a in arb_coo(80, 250), seed in 0u64..100) {
        let x = psyncpim::sparse::gen::dense_vector(a.ncols(), seed);
        for mode in [psyncpim::core::ExecMode::AllBank, psyncpim::core::ExecMode::PerBank] {
            let mut dev = PimDevice::tiny(2);
            dev.mode = mode;
            dev.trace = true;
            let res = SpmvPim::new(dev, Precision::Fp64).run(&a, &x).expect("spmv");
            let metrics = res.run.metrics.as_ref().expect("tracing on");
            let failures = metrics.conservation_failures();
            prop_assert!(failures.is_empty(), "{:?}: {:?}", mode, failures);
            prop_assert_eq!(res.run.attr.total(), res.run.dram_cycles, "{:?}", mode);
            for ch in &metrics.channels {
                prop_assert_eq!(ch.bus.total(), ch.cycles, "{:?}", mode);
                for pu in &ch.pu {
                    prop_assert_eq!(pu.total(), ch.cycles, "{:?}", mode);
                }
            }
        }
    }
}

/// Non-proptest guard: UnitTriangular rejects malformed input regardless of
/// triangle.
#[test]
fn unit_triangular_validation() {
    let mut bad = Coo::new(3, 3);
    bad.push(1, 1, 1.0);
    assert!(UnitTriangular::from_strict(Triangle::Lower, bad.clone()).is_err());
    assert!(UnitTriangular::from_strict(Triangle::Upper, bad).is_err());
    let ok = Coo::from_entries(3, 3, vec![Entry::new(2, 0, 1.0)]).unwrap();
    assert!(UnitTriangular::from_strict(Triangle::Lower, ok).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Robustness: a random (valid) program plus a random command stream
    /// must never panic the processing unit, and its counters must stay
    /// consistent.
    #[test]
    fn pu_survives_random_command_streams(
        instrs in prop::collection::vec(
            prop::sample::select(vec![
                "DMOV DRF0, BANK, FP64",
                "DMOV BANK, DRF0, FP64",
                "SPMOV SPVQ0, BANK, VAL, FP64",
                "SPMOV SPVQ0, BANK, ROW, FP64",
                "SDV DRF0, DRF0, MUL, FP64",
                "DVDV DRF1, DRF0, DRF1, ADD, FP64",
                "REDUCE DRF0, ADD, FP64",
                "NOP",
            ]),
            1..10,
        ),
        slots in prop::collection::vec(0usize..12, 0..60),
    ) {
        use psyncpim::core::memory::BankMemory;
        use psyncpim::core::ProcessingUnit;
        let text = format!("{}\nEXIT\n", instrs.join("\n"));
        let program = assemble(&text).expect("valid mnemonics");
        let len = program.len();
        let mut mem = BankMemory::new(1024);
        let region = mem.alloc("data", 8, (0..64).map(|i| i as f64).collect());
        let bindings: Vec<Option<psyncpim::core::RegionId>> =
            (0..len).map(|_| Some(region)).collect();
        let mut pu = ProcessingUnit::new();
        pu.load_kernel(program, bindings).expect("all slots bound");
        for slot in slots {
            if slot < len {
                let _ = pu.on_command(slot, &mut mem);
            }
        }
        pu.run_free(&mut mem);
        let s = pu.stats();
        prop_assert!(s.mem_ops <= s.instructions);
    }

    /// Assembly text round-trips through disassemble.
    #[test]
    fn asm_disassemble_roundtrips(ins in prop::collection::vec(arb_instruction(), 1..16)) {
        // Keep jump targets in range so Program::new validates.
        let fixed: Vec<Instruction> = ins
            .iter()
            .map(|i| match *i {
                Instruction::Jump { order, count, .. } => Instruction::Jump {
                    target: 0,
                    order,
                    count,
                },
                other => other,
            })
            .collect();
        let program = psyncpim::core::isa::Program::new(fixed).expect("valid");
        let text = disassemble(&program);
        let back = assemble(&text).expect("canonical text assembles");
        prop_assert_eq!(back, program);
    }
}

proptest! {
    // Full engine runs per case; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The event-driven engine tier must be bit-identical to the tick
    /// tier: same results, same cycle count, same command accounting, on
    /// random matrices.
    #[test]
    fn engine_tiers_agree_on_random_matrices(a in arb_coo(80, 250), seed in 0u64..100) {
        use psyncpim::core::EngineTier;
        let x = psyncpim::sparse::gen::dense_vector(a.ncols(), seed);
        let run = |tier: EngineTier| {
            let mut dev = PimDevice::tiny(1);
            dev.tier = tier;
            SpmvPim::new(dev, Precision::Fp64).run(&a, &x).expect("spmv")
        };
        let t = run(EngineTier::Tick);
        let e = run(EngineTier::Event);
        prop_assert_eq!(&t.y, &e.y);
        prop_assert_eq!(t.run.dram_cycles, e.run.dram_cycles);
        prop_assert_eq!(t.run.commands, e.run.commands);
        prop_assert_eq!(t.run.rounds, e.run.rounds);
        prop_assert_eq!(t.run.mem_ops, e.run.mem_ops);
        prop_assert_eq!(t.run.energy_j, e.run.energy_j);
    }

    /// Regression for the engine's `saturating_sub` ready/bus accounting:
    /// the command-bus cursor and the per-bank ready cursors only ever
    /// move forward, so the issued command stream of each channel is
    /// monotone non-decreasing in cycle — under randomly skewed per-bank
    /// loads, in both exec modes and both engine tiers. (A cursor that
    /// stepped backwards — e.g. a PU-backpressure term underflowing past
    /// the pipeline depth — would reorder the trace.)
    #[test]
    fn trace_cycles_monotone_under_random_streams(
        loads in prop::collection::vec(prop::collection::vec((0u32..12, 0u32..12, -4.0f64..4.0), 0..10), 8..9),
        mode_sel in 0usize..2,
        tier_sel in 0usize..2,
    ) {
        use psyncpim::core::engine::{Engine, EngineConfig, EngineTier, ExecMode};
        use psyncpim::core::isa::assemble;
        use psyncpim::core::memory::SENTINEL;
        use psyncpim::dram::HbmConfig;

        let mode = [ExecMode::AllBank, ExecMode::PerBank][mode_sel];
        let tier = [EngineTier::Tick, EngineTier::Event][tier_sel];
        let hbm = HbmConfig {
            num_bankgroups: 2,
            banks_per_group: 2,
            num_pseudo_channels: 2,
            ..HbmConfig::default()
        };
        let cfg = EngineConfig {
            hbm,
            mode,
            tier,
            record_trace: true,
            ..Default::default()
        };
        let mut engine = Engine::new(cfg);
        let n = 12usize;
        let lanes = 4;
        let max_len = loads.iter().map(Vec::len).max().unwrap_or(0)
            .div_ceil(lanes).max(1) * lanes;
        let mut bindings = Vec::new();
        for (b, entries) in loads.iter().enumerate() {
            let mut rows = vec![SENTINEL; max_len];
            let mut cols = vec![SENTINEL; max_len];
            let mut vals = vec![0.0; max_len];
            for (i, &(r, c, v)) in entries.iter().enumerate() {
                rows[i] = f64::from(r);
                cols[i] = f64::from(c);
                vals[i] = v;
            }
            let mem = engine.mem_mut(b);
            let r0 = mem.alloc("rows", 8, rows);
            let r1 = mem.alloc("cols", 8, cols);
            let r2 = mem.alloc("vals", 8, vals);
            let r3 = mem.alloc("x", 8, (0..n).map(|i| i as f64).collect());
            let r4 = mem.alloc_zeroed("y", 8, n);
            if b == 0 {
                bindings = vec![
                    Some(r0), Some(r1), Some(r2), Some(r3),
                    None, Some(r4), None, None,
                ];
            }
        }
        let program = assemble(
            "SPMOV  SPVQ0, BANK, ROW, FP64\n\
             SPMOV  SPVQ0, BANK, COL, FP64\n\
             SPMOV  SPVQ0, BANK, VAL, FP64\n\
             INDMOV DRF2, SPVQ0, FP64\n\
             SPVDV  SPVQ1, SPVQ0, DRF2, MUL, INTER, FP64\n\
             SPVDV  BANK, SPVQ1, BANK, ADD, UNION, FP64\n\
             CEXIT  SPVQ0\n\
             JUMP   0, 0, 0\n",
        ).expect("canonical spmv");
        engine.load_kernel(program, bindings).expect("bindings valid");
        let report = engine.run().expect("run");
        prop_assert!(report.trace_dropped == 0, "trace must be complete for the check");
        let mut last = [0u64; 2];
        for ev in &report.trace {
            prop_assert!(
                ev.cycle >= last[ev.channel],
                "channel {} went backwards: {} after {}", ev.channel, ev.cycle, last[ev.channel]
            );
            last[ev.channel] = ev.cycle;
        }
    }
}
