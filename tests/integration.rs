//! Cross-crate integration tests: end-to-end kernels on the simulated
//! device against golden references, baseline orderings, and application
//! agreement across devices.

use psyncpim::apps::runtime::{GpuRuntime, GpuStack, PimRuntime};
use psyncpim::apps::{bfs, cc, cg, sssp};
use psyncpim::baselines::{GpuModel, SpaceAModel};
use psyncpim::kernels::blas1::Blas1Pim;
use psyncpim::kernels::{PimDevice, SpmvPim, SptrsvPim};
use psyncpim::sparse::level::reorder_to_lower;
use psyncpim::sparse::suite::{by_name, with_tag, Tag, TABLE_IX};
use psyncpim::sparse::triangular::{unit_triangular_from, Triangle};
use psyncpim::sparse::{gen, ildu, Precision};

fn tiny() -> PimDevice {
    PimDevice::tiny(2)
}

#[test]
fn suite_matrices_run_spmv_end_to_end() {
    // Every Table IX family must survive the full partition → layout →
    // lockstep-execute → accumulate pipeline and match the reference.
    for spec in [
        by_name("pwtk").unwrap(),          // banded FEM
        by_name("amazon0312").unwrap(),    // power-law graph
        by_name("lhr71").unwrap(),         // uniform
        by_name("crankseg_2").unwrap(),    // blocked FEM
        by_name("webbase-1M").unwrap(),    // web hubs
        by_name("parabolic_fem").unwrap(), // layered
    ] {
        let a = spec.generate(0.004);
        let x = gen::dense_vector(a.ncols(), 3);
        let res = SpmvPim::new(tiny(), Precision::Fp64)
            .run(&a, &x)
            .expect("spmv");
        let want = a.spmv(&x);
        for (i, (g, w)) in res.y.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-9 * w.abs().max(1.0),
                "{} row {i}: {g} vs {w}",
                spec.name
            );
        }
    }
}

#[test]
fn sptrsv_reordered_solve_matches_reference_both_triangles() {
    let spec = by_name("poisson3Da").unwrap();
    let a = spec.generate(0.02);
    for triangle in [Triangle::Lower, Triangle::Upper] {
        let t = unit_triangular_from(&a, triangle).unwrap();
        let b = gen::dense_vector(t.dim(), 8);
        let want = t.solve_colwise(&b).unwrap();
        let (reordered, perm) = reorder_to_lower(&t);
        let pb: Vec<f64> = perm.iter().map(|&old| b[old]).collect();
        let res = SptrsvPim::new(tiny()).run(&reordered, &pb).expect("sptrsv");
        for (new, &old) in perm.iter().enumerate() {
            assert!(
                (res.x[new] - want[old]).abs() < 1e-8 * want[old].abs().max(1.0),
                "{triangle:?} row {old}"
            );
        }
    }
}

#[test]
fn allbank_beats_perbank_on_time_and_commands() {
    let a = gen::rmat(600, 6, 17);
    let x = vec![1.0; 600];
    let ab = SpmvPim::new(tiny(), Precision::Fp64).run(&a, &x).unwrap();
    let pb = SpmvPim::new(
        PimDevice {
            mode: psyncpim::core::ExecMode::PerBank,
            ..tiny()
        },
        Precision::Fp64,
    )
    .run(&a, &x)
    .unwrap();
    assert_eq!(ab.y, pb.y, "identical results");
    assert!(pb.run.total_s() > ab.run.total_s(), "PB must be slower");
    assert!(
        pb.run.commands as f64 > 1.3 * ab.run.commands as f64,
        "PB needs more commands: {} vs {}",
        pb.run.commands,
        ab.run.commands
    );
}

#[test]
fn int8_matrices_cut_traffic_and_partitions() {
    let spec = by_name("soc-sign-epinions").unwrap();
    assert_eq!(spec.precision, Precision::Int8);
    let a = spec.generate(0.01);
    let x = vec![1.0; a.ncols()];
    let f64r = SpmvPim::new(tiny(), Precision::Fp64).run(&a, &x).unwrap();
    let i8r = SpmvPim::new(tiny(), Precision::Int8).run(&a, &x).unwrap();
    assert!(i8r.run.external_bytes < f64r.run.external_bytes);
    assert!(i8r.stats.num_submatrices <= f64r.stats.num_submatrices);
}

#[test]
fn spacea_model_orders_with_matrix_size() {
    let small = gen::rmat(512, 4, 1);
    let large = gen::rmat(4096, 8, 2);
    let m = SpaceAModel::hmc_256();
    assert!(m.spmv_seconds(&large) > m.spmv_seconds(&small));
}

#[test]
fn apps_agree_across_devices() {
    let g = gen::rmat(96, 4, 23);
    let mut gpu = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
    let mut pim = PimRuntime::new(PimDevice::tiny(1), Precision::Fp64);

    let (lg, _) = bfs::bfs(&mut gpu, &g, 0);
    let (lp, _) = bfs::bfs(&mut pim, &g, 0);
    assert_eq!(lg, lp, "BFS levels");

    let (cg_labels, _) = cc::connected_components(&mut gpu, &g);
    let (cp_labels, _) = cc::connected_components(&mut pim, &g);
    assert_eq!(cg_labels, cp_labels, "CC labels");

    let (dg, _) = sssp::sssp(&mut gpu, &g, 0);
    let (dp, _) = sssp::sssp(&mut pim, &g, 0);
    for (a, b) in dg.iter().zip(&dp) {
        assert!(
            (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
            "SSSP distance {a} vs {b}"
        );
    }
}

#[test]
fn pcg_converges_on_pim_device() {
    let base = gen::rmat_seeded(90, 4, 12, 5);
    let a = ildu::make_spd(&base);
    let x_true = gen::dense_vector(90, 6);
    let b = a.spmv(&x_true);
    let mut pim = PimRuntime::new(PimDevice::tiny(1), Precision::Fp64);
    let res = cg::pcg(&mut pim, &a, &b, 1e-9, 100);
    assert!(res.converged, "residual {}", res.residual);
    for (g, w) in res.x.iter().zip(&x_true) {
        assert!((g - w).abs() < 1e-6);
    }
    assert!(res.run.breakdown.sptrsv_s > 0.0);
    assert!(res.run.breakdown.spmv_s > 0.0);
    assert!(res.run.breakdown.vector_s > 0.0);
}

#[test]
fn blas1_suite_consistency() {
    let runner = Blas1Pim::new(tiny(), Precision::Fp64);
    let x = gen::dense_vector(257, 1); // deliberately unaligned length
    let y = gen::dense_vector(257, 2);
    let d = runner.ddot(&x, &y).unwrap().s;
    let n = runner.dnrm2(&x).unwrap().s;
    assert!((d - psyncpim::sparse::dense::dot(&x, &y)).abs() < 1e-9);
    assert!((n - psyncpim::sparse::dense::nrm2(&x)).abs() < 1e-9);
    let copied = runner.dcopy(&x).unwrap().v;
    assert_eq!(copied, x);
}

#[test]
fn table_ix_tags_route_apps() {
    assert_eq!(TABLE_IX.len(), 26);
    assert!(!with_tag(Tag::Graphs).is_empty());
    assert!(!with_tag(Tag::SpTrsv).is_empty());
    assert!(!with_tag(Tag::Pcg).is_empty());
    // PCG matrices are a subset of the SpTRSV-capable set in the paper.
    for spec in with_tag(Tag::Pcg) {
        assert!(spec.has_tag(Tag::SpTrsv), "{} missing SpTRSV", spec.name);
    }
}

#[test]
fn energy_and_power_within_envelope() {
    let a = gen::rmat(2000, 6, 31);
    let x = vec![1.0; 2000];
    let res = SpmvPim::new(PimDevice::psync_1x(), Precision::Fp64)
        .run(&a, &x)
        .unwrap();
    let watts = res.run.energy_j / res.run.kernel_s.max(1e-30);
    assert!(watts > 0.05, "implausibly low power {watts} W");
    assert!(
        watts < 5.0,
        "power {watts} W above the paper's HBM2 ceiling"
    );
}
