//! Criterion micro-benchmarks of the simulated kernels themselves (how
//! fast the *simulator* runs — useful when iterating on engine internals;
//! the paper's figures come from the `fig*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psim_kernels::blas1::Blas1Pim;
use psim_kernels::{PimDevice, SpmvPim, SptrsvPim};
use psim_sparse::triangular::{unit_triangular_from, Triangle};
use psim_sparse::{gen, Precision};

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/spmv");
    for (label, a) in [
        ("rmat-2k", gen::rmat(2048, 6, 1)),
        ("banded-2k", gen::banded_fem(2048, 24, 6, 2)),
        ("hubs-2k", gen::web_hubs(2048, 12_288, 3)),
    ] {
        let x = gen::dense_vector(a.ncols(), 4);
        group.bench_with_input(BenchmarkId::from_parameter(label), &a, |b, a| {
            let runner = SpmvPim::new(PimDevice::tiny(2), Precision::Fp64);
            b.iter(|| runner.run(a, &x).expect("spmv"));
        });
    }
    group.finish();
}

fn bench_spmv_precisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/spmv-precision");
    let a = gen::rmat(2048, 6, 9);
    let x = vec![1.0; 2048];
    for p in [Precision::Int8, Precision::Fp32, Precision::Fp64] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let runner = SpmvPim::new(PimDevice::tiny(2), p);
            b.iter(|| runner.run(&a, &x).expect("spmv"));
        });
    }
    group.finish();
}

fn bench_sptrsv(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/sptrsv");
    group.sample_size(10);
    let a = gen::banded_fem(1024, 16, 4, 5);
    let t = unit_triangular_from(&a, Triangle::Lower).expect("square");
    let b_vec = gen::dense_vector(1024, 6);
    group.bench_function("banded-1k", |b| {
        let solver = SptrsvPim::new(PimDevice::tiny(2));
        b.iter(|| solver.run(&t, &b_vec).expect("sptrsv"));
    });
    group.finish();
}

fn bench_blas1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/blas1");
    let x = gen::dense_vector(8192, 7);
    let y = gen::dense_vector(8192, 8);
    let runner = Blas1Pim::new(PimDevice::tiny(2), Precision::Fp64);
    group.bench_function("daxpy-8k", |b| {
        b.iter(|| runner.daxpy(2.0, &x, &y).expect("daxpy"));
    });
    group.bench_function("ddot-8k", |b| {
        b.iter(|| runner.ddot(&x, &y).expect("ddot"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_spmv_precisions,
    bench_sptrsv,
    bench_blas1
);
criterion_main!(benches);
