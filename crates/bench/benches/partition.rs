//! Criterion micro-benchmarks of the host-side preprocessing: matrix
//! partitioning/compression, level analysis and ILDU factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psim_sparse::partition::{BankPartition, DistPolicy, PartitionConfig};
use psim_sparse::triangular::{unit_triangular_from, Triangle};
use psim_sparse::{gen, ildu, LevelSchedule, Precision};

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("prep/partition");
    for (label, a) in [
        ("rmat-16k", gen::rmat(16_384, 8, 1)),
        ("banded-16k", gen::banded_fem(16_384, 64, 8, 2)),
    ] {
        for policy in [DistPolicy::RoundRobin, DistPolicy::LeastLoaded] {
            let cfg = PartitionConfig {
                num_banks: 256,
                row_bytes: 1024,
                precision: Precision::Fp64,
                policy,
                scheme: psim_sparse::PartitionScheme::default(),
                compress: true,
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{policy:?}")),
                &a,
                |b, a| {
                    b.iter(|| BankPartition::build(a, cfg));
                },
            );
        }
    }
    group.finish();
}

fn bench_level_schedule(c: &mut Criterion) {
    let a = gen::banded_fem(32_768, 32, 6, 3);
    let t = unit_triangular_from(&a, Triangle::Lower).expect("square");
    c.bench_function("prep/level-schedule-32k", |b| {
        b.iter(|| LevelSchedule::analyze(&t));
    });
}

fn bench_ildu(c: &mut Criterion) {
    let base = gen::rmat(2_048, 6, 4);
    let a = ildu::make_spd(&base);
    c.bench_function("prep/ildu-2k", |b| {
        b.iter(|| ildu::Ildu::factor(&a).expect("factor"));
    });
}

criterion_group!(benches, bench_partition, bench_level_schedule, bench_ildu);
criterion_main!(benches);
