//! Criterion micro-benchmarks of the DRAM channel scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use psim_dram::{Channel, CmdKind, HbmConfig, Scope};

fn bench_allbank_stream(c: &mut Criterion) {
    let cfg = HbmConfig::default();
    c.bench_function("dram/allbank-row-stream", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&cfg);
            let mut now = 0u64;
            for row in 0..64u32 {
                if row > 0 {
                    now = ch
                        .issue_earliest(Scope::AllBanks, CmdKind::Pre, now)
                        .unwrap()
                        .issue_cycle;
                }
                now = ch
                    .issue_earliest(Scope::AllBanks, CmdKind::Act { row }, now)
                    .unwrap()
                    .issue_cycle;
                for col in 0..32u32 {
                    now = ch
                        .issue_earliest(Scope::AllBanks, CmdKind::Rd { col }, now)
                        .unwrap()
                        .issue_cycle;
                }
            }
            now
        });
    });
}

fn bench_perbank_interleave(c: &mut Criterion) {
    let cfg = HbmConfig::default();
    c.bench_function("dram/perbank-interleave", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&cfg);
            let mut now = 0u64;
            for i in 0..256usize {
                let scope = Scope::OneBank {
                    bg: i % 4,
                    ba: (i / 4) % 4,
                };
                let open = ch.bank(i % 4, (i / 4) % 4).open_row();
                if open.is_some() {
                    now = ch
                        .issue_earliest(scope, CmdKind::Pre, now)
                        .unwrap()
                        .issue_cycle;
                }
                now = ch
                    .issue_earliest(
                        scope,
                        CmdKind::Act {
                            row: (i % 64) as u32,
                        },
                        now,
                    )
                    .unwrap()
                    .issue_cycle;
                now = ch
                    .issue_earliest(scope, CmdKind::Rd { col: 0 }, now)
                    .unwrap()
                    .issue_cycle;
            }
            now
        });
    });
}

criterion_group!(benches, bench_allbank_stream, bench_perbank_interleave);
criterion_main!(benches);
