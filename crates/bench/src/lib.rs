//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f>` — matrix dimension scale relative to Table IX
//!   (default 0.1 regenerates each figure in seconds-to-minutes; the
//!   average row degree — the property pSyncPIM's behaviour depends on —
//!   is preserved under scaling, and ratios converge toward the paper's
//!   as the scale rises),
//! * `--full` — paper-scale matrices (slow: hours),
//! * `--only <name>` — restrict to one matrix,
//! * `--tsv` — machine-readable output only.
//!
//! Output convention: a human-readable table on stdout plus `#TSV`-prefixed
//! machine rows, so `grep '^#TSV' | cut -f2-` feeds plotting scripts.

use psim_sparse::suite::MatrixSpec;
use std::fmt::Display;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Matrix scale (1.0 = Table IX dimensions).
    pub scale: f64,
    /// Restrict to one matrix name.
    pub only: Option<String>,
    /// Machine-readable output only.
    pub tsv_only: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.1,
            only: None,
            tsv_only: false,
        }
    }
}

impl Args {
    /// Parse `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a positive float");
                }
                "--full" => args.scale = 1.0,
                "--only" => args.only = it.next(),
                "--tsv" => args.tsv_only = true,
                "--help" | "-h" => {
                    eprintln!("usage: [--scale f | --full] [--only matrix] [--tsv]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
        }
        args
    }

    /// Whether a spec is selected by `--only`.
    #[must_use]
    pub fn selects(&self, spec: &MatrixSpec) -> bool {
        self.only.as_deref().is_none_or(|n| n == spec.name)
    }
}

/// Geometric mean of positive values (the paper's summary statistic).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    let positives: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positives.is_empty() {
        return 0.0;
    }
    (positives.iter().map(|v| v.ln()).sum::<f64>() / positives.len() as f64).exp()
}

/// Arithmetic mean.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Print one machine-readable row.
pub fn tsv_row<D: Display>(tag: &str, fields: &[D]) {
    let joined = fields
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\t");
    println!("#TSV\t{tag}\t{joined}");
}

/// Print a right-aligned human table row unless `--tsv`.
pub fn human_row(args: &Args, cols: &[String]) {
    if args.tsv_only {
        return;
    }
    let rendered: Vec<String> = cols
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == 0 {
                format!("{c:<22}")
            } else {
                format!("{c:>12}")
            }
        })
        .collect();
    println!("{}", rendered.join(" "));
}

/// Format a speedup like the paper's figures.
#[must_use]
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn default_args() {
        let a = Args::default();
        assert_eq!(a.scale, 0.1);
        assert!(a.selects(psim_sparse::suite::by_name("pwtk").unwrap()));
    }
}

pub mod apps_suite;
pub mod spmv_suite;
