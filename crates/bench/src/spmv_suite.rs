//! Shared SpMV measurement used by Figures 3, 8 and 14.

use psim_baselines::{GpuModel, SpaceAModel};
use psim_kernels::spmv::SpmvResult;
use psim_kernels::{PimDevice, SpmvPim};
use psim_sparse::suite::MatrixSpec;
use psim_sparse::{gen, Coo};

/// All SpMV systems measured on one matrix.
#[derive(Debug, Clone)]
pub struct SpmvMeasurement {
    /// Matrix name.
    pub name: &'static str,
    /// Generated instance shape.
    pub dim: usize,
    /// Generated instance non-zeros.
    pub nnz: usize,
    /// GPU (cuSPARSE) model seconds.
    pub gpu_s: f64,
    /// SpaceA model seconds.
    pub spacea_s: f64,
    /// pSyncPIM 1× run.
    pub psync: SpmvResult,
    /// pSyncPIM 3× run.
    pub psync3: SpmvResult,
    /// Per-bank baseline run.
    pub perbank: SpmvResult,
}

impl SpmvMeasurement {
    /// Measure one Table IX matrix at `scale`.
    ///
    /// # Panics
    ///
    /// Panics if any simulated kernel fails (a bug, not an input error).
    #[must_use]
    pub fn run(spec: &MatrixSpec, scale: f64) -> SpmvMeasurement {
        let a = spec.generate(scale);
        Self::run_matrix(spec.name, &a, spec.precision)
    }

    /// Measure an arbitrary matrix.
    ///
    /// # Panics
    ///
    /// Panics if any simulated kernel fails.
    #[must_use]
    pub fn run_matrix(
        name: &'static str,
        a: &Coo,
        precision: psim_sparse::Precision,
    ) -> SpmvMeasurement {
        let x = gen::dense_vector(a.ncols(), 0xF1);
        let gpu = GpuModel::rtx3080();
        // The paper matches external bandwidth: GPU is compared against
        // the 3x config for the headline, 1x reported alongside.
        let gpu_s = gpu.spmv_seconds(a.nnz(), a.nrows(), a.ncols(), psim_sparse::Precision::Fp64);
        let spacea_s = SpaceAModel::hmc_256().spmv_seconds(a);
        let psync = SpmvPim::new(PimDevice::psync_1x(), precision)
            .run(a, &x)
            .expect("psync 1x spmv");
        let psync3 = SpmvPim::new(PimDevice::psync_3x(), precision)
            .run(a, &x)
            .expect("psync 3x spmv");
        let perbank = SpmvPim::new(PimDevice::per_bank(), precision)
            .run(a, &x)
            .expect("per-bank spmv");
        SpmvMeasurement {
            name,
            dim: a.nrows(),
            nnz: a.nnz(),
            gpu_s,
            spacea_s,
            psync,
            psync3,
            perbank,
        }
    }

    /// Speedup of pSyncPIM 1× over the GPU.
    #[must_use]
    pub fn speedup_1x(&self) -> f64 {
        self.gpu_s / self.psync.run.total_s()
    }

    /// Speedup of pSyncPIM 3× over the GPU.
    #[must_use]
    pub fn speedup_3x(&self) -> f64 {
        self.gpu_s / self.psync3.run.total_s()
    }

    /// Speedup of the per-bank baseline over the GPU.
    #[must_use]
    pub fn speedup_perbank(&self) -> f64 {
        self.gpu_s / self.perbank.run.total_s()
    }

    /// Speedup of SpaceA over the GPU.
    #[must_use]
    pub fn speedup_spacea(&self) -> f64 {
        self.gpu_s / self.spacea_s
    }

    /// Per-bank / all-bank command-count ratio (Figure 3).
    #[must_use]
    pub fn command_ratio(&self) -> f64 {
        self.perbank.run.commands as f64 / self.psync.run.commands as f64
    }

    /// Energy ratio per-bank / pSyncPIM (Figure 14).
    #[must_use]
    pub fn energy_ratio(&self) -> f64 {
        self.perbank.run.energy_j / self.psync.run.energy_j
    }
}
