//! Shared application measurements for Figures 2, 11 and 12.

use psim_apps::runtime::{GpuRuntime, GpuStack, PimRuntime, Runtime};
use psim_apps::tc::{triangle_count, TcBackend};
use psim_apps::{bfs, bicgstab, cc, cg, pagerank, sssp, AppRun};
use psim_baselines::{GpuModel, SpgemmAccel};
use psim_kernels::PimDevice;
use psim_sparse::suite::{with_tag, MatrixSpec, Tag};
use psim_sparse::{ildu, Coo, Precision};

/// The seven Table II applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
    /// PageRank.
    Pr,
    /// Single-source shortest paths.
    Sssp,
    /// Triangle counting.
    Tc,
    /// Preconditioned BiCGStab.
    PBcgs,
    /// Preconditioned conjugate gradient.
    PCg,
}

impl App {
    /// All applications in Table II order.
    pub const ALL: [App; 7] = [
        App::Bfs,
        App::Cc,
        App::Pr,
        App::Sssp,
        App::Tc,
        App::PBcgs,
        App::PCg,
    ];

    /// Display abbreviation (Table II).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            App::Bfs => "BFS",
            App::Cc => "CC",
            App::Pr => "PR",
            App::Sssp => "SSSP",
            App::Tc => "TC",
            App::PBcgs => "P-BCGS",
            App::PCg => "P-CG",
        }
    }

    /// The Table IX matrices this application runs on.
    #[must_use]
    pub fn matrices(self) -> Vec<&'static MatrixSpec> {
        match self {
            App::Bfs | App::Cc | App::Pr | App::Sssp | App::Tc => with_tag(Tag::Graphs),
            App::PBcgs => with_tag(Tag::SpTrsv),
            App::PCg => with_tag(Tag::Pcg),
        }
    }
}

/// Backend an application run targets.
#[derive(Debug, Clone)]
pub enum Backend {
    /// The GPU model with the stack the paper uses for this app family.
    Gpu,
    /// The simulated pSyncPIM device (TC adds the SpGEMM accelerator).
    /// Boxed: `PimDevice` is much larger than the dataless `Gpu` variant.
    Pim(Box<PimDevice>),
}

/// Generate the operand for an app: graph apps use the raw adjacency,
/// solvers an SPD/ILDU-friendly system derived from it.
#[must_use]
pub fn operand(app: App, spec: &MatrixSpec, scale: f64, cap_dim: usize) -> Coo {
    let capped_scale = scale.min(cap_dim as f64 / spec.dim as f64);
    let a = spec.generate(capped_scale);
    match app {
        App::PCg | App::PBcgs => ildu::make_spd(&a),
        _ => a,
    }
}

/// Run one application on one matrix; returns the kernel-time report.
///
/// # Panics
///
/// Panics if a simulated kernel fails.
#[must_use]
pub fn run_app(app: App, a: &Coo, backend: &Backend) -> AppRun {
    let solver_iters = 12;
    match (app, backend) {
        (App::Tc, Backend::Gpu) => triangle_count(a, &TcBackend::Gpu(GpuModel::rtx3080())).1,
        (App::Tc, Backend::Pim(device)) => {
            triangle_count(
                a,
                &TcBackend::AccelPlusPim(SpgemmAccel::innersp(), device.as_ref().clone()),
            )
            .1
        }
        (_, Backend::Gpu) => {
            let stack = match app {
                App::PCg | App::PBcgs => GpuStack::Cuda,
                _ => GpuStack::GraphBlast,
            };
            let mut rt = GpuRuntime::new(GpuModel::rtx3080(), stack);
            drive(app, a, &mut rt, solver_iters)
        }
        (_, Backend::Pim(device)) => {
            let mut rt = PimRuntime::new(device.as_ref().clone(), Precision::Fp64);
            drive(app, a, &mut rt, solver_iters)
        }
    }
}

fn drive<R: Runtime>(app: App, a: &Coo, rt: &mut R, solver_iters: usize) -> AppRun {
    // Iteration caps keep huge-diameter graphs (roadNet-style) tractable;
    // the per-iteration kernel mix — what Figures 2/11/12 report — is
    // stationary after the first rounds.
    let graph_rounds = 30;
    match app {
        App::Bfs => bfs::bfs_bounded(rt, a, 0, graph_rounds).1,
        App::Cc => cc::connected_components_bounded(rt, a, graph_rounds).1,
        App::Pr => pagerank::pagerank(rt, a, 1e-6, 20).1,
        App::Sssp => sssp::sssp_bounded(rt, a, 0, graph_rounds).1,
        App::PCg => {
            let b = vec![1.0; a.nrows()];
            cg::pcg(rt, a, &b, 1e-8, solver_iters).run
        }
        App::PBcgs => {
            let b = vec![1.0; a.nrows()];
            bicgstab::pbicgstab(rt, a, &b, 1e-8, solver_iters).run
        }
        App::Tc => unreachable!("TC handled by run_app"),
    }
}
