//! Figure 3: memory commands required for SpMV in per-bank mode,
//! normalized to all-bank mode. Paper: 2.74× on average.

use psim_bench::spmv_suite::SpmvMeasurement;
use psim_bench::{human_row, mean, tsv_row, Args};
use psim_sparse::suite::{with_tag, Tag};

fn main() {
    let args = Args::parse();
    println!(
        "# Figure 3 — per-bank / all-bank SpMV command ratio (scale {})",
        args.scale
    );
    human_row(
        &args,
        &[
            "matrix".into(),
            "AB cmds".into(),
            "PB cmds".into(),
            "ratio".into(),
        ],
    );
    let mut ratios = Vec::new();
    for spec in with_tag(Tag::SpMv) {
        if !args.selects(spec) {
            continue;
        }
        let m = SpmvMeasurement::run(spec, args.scale);
        let r = m.command_ratio();
        ratios.push(r);
        human_row(
            &args,
            &[
                m.name.to_string(),
                m.psync.run.commands.to_string(),
                m.perbank.run.commands.to_string(),
                format!("{r:.2}"),
            ],
        );
        tsv_row(
            "fig03",
            &[
                m.name.to_string(),
                m.psync.run.commands.to_string(),
                m.perbank.run.commands.to_string(),
                r.to_string(),
            ],
        );
    }
    println!();
    println!("mean command ratio: {:.2}x (paper: 2.74x)", mean(&ratios));
    tsv_row("fig03-mean", &[mean(&ratios).to_string()]);
}
