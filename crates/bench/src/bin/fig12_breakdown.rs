//! Figure 12: kernel-time breakdown of each application on GPU vs
//! pSyncPIM — showing where the PIM wins come from (vector-op overheads
//! collapse; SpMV accelerates; SpTRSV stays serialized but faster).

use psim_apps::Breakdown;
use psim_bench::apps_suite::{operand, run_app, App, Backend};
use psim_bench::{human_row, tsv_row, Args};
use psim_kernels::PimDevice;

fn main() {
    let args = Args::parse();
    // Graph apps stay small (each PIM kernel is fully simulated); the
    // solvers run larger so multi-chunk levels shape the SpTRSV cost as
    // they do at paper scale.
    let cap_dim_graphs = 1_200;
    let cap_dim_solvers = 4_000;
    let per_app_matrices = 2;
    println!(
        "# Figure 12 — kernel breakdown GPU vs pSyncPIM (scale {}, caps {cap_dim_graphs}/{cap_dim_solvers})",
        args.scale
    );
    human_row(
        &args,
        &[
            "app/device".into(),
            "SpGEMM %".into(),
            "SpTRSV %".into(),
            "SpMV %".into(),
            "Vector %".into(),
            "total s".into(),
        ],
    );
    let device = PimDevice::psync_1x();
    for app in App::ALL {
        for (label, backend) in [
            ("GPU", Backend::Gpu),
            ("PIM", Backend::Pim(Box::new(device.clone()))),
        ] {
            let mut agg = Breakdown::default();
            for spec in app.matrices().into_iter().take(per_app_matrices) {
                if !args.selects(spec) {
                    continue;
                }
                let cap = match app {
                    App::PCg | App::PBcgs => cap_dim_solvers,
                    _ => cap_dim_graphs,
                };
                let a = operand(app, spec, args.scale, cap);
                let run = run_app(app, &a, &backend);
                agg.spmv_s += run.breakdown.spmv_s;
                agg.sptrsv_s += run.breakdown.sptrsv_s;
                agg.vector_s += run.breakdown.vector_s;
                agg.spgemm_s += run.breakdown.spgemm_s;
            }
            let f = agg.fractions();
            human_row(
                &args,
                &[
                    format!("{} ({label})", app.name()),
                    format!("{:.1}", f[3] * 100.0),
                    format!("{:.1}", f[1] * 100.0),
                    format!("{:.1}", f[0] * 100.0),
                    format!("{:.1}", f[2] * 100.0),
                    format!("{:.3e}", agg.total_s()),
                ],
            );
            tsv_row(
                "fig12",
                &[
                    app.name().to_string(),
                    label.to_string(),
                    f[3].to_string(),
                    f[1].to_string(),
                    f[0].to_string(),
                    f[2].to_string(),
                    agg.total_s().to_string(),
                ],
            );
        }
    }
}
