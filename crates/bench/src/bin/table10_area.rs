//! Table X: area comparison of HBM-PIM, SpaceA and pSyncPIM.

use psyncpim_core::area::table_x;

fn main() {
    println!("# Table X — area comparison");
    println!(
        "{:<18} {:>6} {:>12} {:>16} {:>10} {:>10}",
        "design", "tech", "total mm^2", "stacks", "PE mm^2", "capacity"
    );
    for row in table_x() {
        println!(
            "{:<18} {:>6} {:>12.2} {:>16} {:>10.3} {:>8.0}GB",
            row.name, row.tech, row.total_mm2, row.stacks, row.pe_mm2, row.capacity_gb
        );
    }
}
