//! Table IX characterization: generate every suite matrix and print its
//! structure (dimension, nnz, density, skew, bandedness) next to the
//! published numbers, plus the pSyncPIM distribution statistics —
//! demonstrating that the synthetic stand-ins carry the structural
//! properties the paper's evaluation depends on.

use psim_bench::{human_row, tsv_row, Args};
use psim_sparse::partition::{BankPartition, PartitionConfig};
use psim_sparse::suite::TABLE_IX;
use psim_sparse::MatrixStats;

fn main() {
    let args = Args::parse();
    println!(
        "# Table IX — synthetic suite characterization (scale {})",
        args.scale
    );
    human_row(
        &args,
        &[
            "matrix".into(),
            "dim".into(),
            "nnz".into(),
            "deg(want)".into(),
            "deg(got)".into(),
            "skew".into(),
            "band".into(),
            "banks".into(),
        ],
    );
    for spec in &TABLE_IX {
        if !args.selects(spec) {
            continue;
        }
        let a = spec.generate(args.scale);
        let s = MatrixStats::analyze(&a);
        let part = BankPartition::build(
            &a,
            PartitionConfig {
                precision: spec.precision,
                ..PartitionConfig::default()
            },
        );
        let pstats = part.stats();
        human_row(
            &args,
            &[
                spec.name.to_string(),
                s.nrows.to_string(),
                s.nnz.to_string(),
                format!("{:.1}", spec.avg_degree()),
                format!("{:.1}", s.avg_row_nnz),
                format!("{:.2}", s.row_skew),
                format!("{:.3}", s.normalized_bandwidth),
                format!("{}/256", pstats.banks_used),
            ],
        );
        tsv_row(
            "table9",
            &[
                spec.name.to_string(),
                s.nrows.to_string(),
                s.nnz.to_string(),
                spec.avg_degree().to_string(),
                s.avg_row_nnz.to_string(),
                s.row_skew.to_string(),
                s.normalized_bandwidth.to_string(),
                pstats.banks_used.to_string(),
            ],
        );
    }
    println!("\n(`deg(want)` = density x dim from the published Table IX numbers;");
    println!(" generators preserve it under --scale. `banks` shows the bcsstk32-style");
    println!(" underutilization the paper discusses in SVII-B.)");
}
