//! Figure 2: GPU execution-time breakdown of the seven applications into
//! SpGEMM / SpTRSV / SpMV / Vector kernel families.
//!
//! Paper reference points: BFS and PR are >70 % SpMV; CC and SSSP are
//! vector-dominated; TC is >98 % SpGEMM; the solvers are SpTRSV-heavy.

use psim_apps::Breakdown;
use psim_bench::apps_suite::{operand, run_app, App, Backend};
use psim_bench::{human_row, tsv_row, Args};

fn main() {
    let mut args = Args::parse();
    // Figure 2 is GPU-model-only (cheap): run closer to paper scale so the
    // kernel-family balance reflects the real matrix sizes.
    args.scale = args.scale.max(0.5);
    let cap_dim = 150_000;
    let per_app_matrices = 3;
    println!(
        "# Figure 2 — GPU kernel-time breakdown (scale {}, dim cap {cap_dim})",
        args.scale
    );
    human_row(
        &args,
        &[
            "app".into(),
            "SpGEMM %".into(),
            "SpTRSV %".into(),
            "SpMV %".into(),
            "Vector %".into(),
        ],
    );
    for app in App::ALL {
        let mut agg = Breakdown::default();
        for spec in app.matrices().into_iter().take(per_app_matrices) {
            if !args.selects(spec) {
                continue;
            }
            let a = operand(app, spec, args.scale, cap_dim);
            let run = run_app(app, &a, &Backend::Gpu);
            agg.spmv_s += run.breakdown.spmv_s;
            agg.sptrsv_s += run.breakdown.sptrsv_s;
            agg.vector_s += run.breakdown.vector_s;
            agg.spgemm_s += run.breakdown.spgemm_s;
        }
        let f = agg.fractions();
        human_row(
            &args,
            &[
                app.name().to_string(),
                format!("{:.1}", f[3] * 100.0),
                format!("{:.1}", f[1] * 100.0),
                format!("{:.1}", f[0] * 100.0),
                format!("{:.1}", f[2] * 100.0),
            ],
        );
        tsv_row(
            "fig02",
            &[
                app.name().to_string(),
                f[3].to_string(),
                f[1].to_string(),
                f[0].to_string(),
                f[2].to_string(),
            ],
        );
    }
    println!();
    println!("paper shape: BFS/PR SpMV-major; CC/SSSP vector-major; TC SpGEMM >98%; solvers SpTRSV-heavy");
}
