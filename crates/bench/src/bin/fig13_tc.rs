//! Figure 13: Triangle Counting with the SpGEMM accelerator, alone vs
//! conjugated with pSyncPIM. Paper: offloading the SpMV kernels to PIM
//! gives a 2.0× boost over the accelerator-only configuration.

use psim_apps::tc::{triangle_count, TcBackend};
use psim_baselines::SpgemmAccel;
use psim_bench::{fmt_x, geomean, human_row, tsv_row, Args};
use psim_kernels::PimDevice;
use psim_sparse::suite::{with_tag, Tag};

fn main() {
    let args = Args::parse();
    let cap_dim = 20_000;
    println!(
        "# Figure 13 — TC: accelerator-only vs accelerator + pSyncPIM (scale {})",
        args.scale
    );
    human_row(
        &args,
        &[
            "matrix".into(),
            "triangles".into(),
            "accel-only s".into(),
            "accel+PIM s".into(),
            "speedup".into(),
        ],
    );
    let acc = SpgemmAccel::innersp();
    let device = PimDevice::psync_1x();
    let mut speedups = Vec::new();
    for spec in with_tag(Tag::Graphs) {
        if !args.selects(spec) {
            continue;
        }
        let scale = args.scale.min(cap_dim as f64 / spec.dim as f64);
        let g = spec.generate(scale);
        let (t, only) = triangle_count(&g, &TcBackend::AccelOnly(acc));
        let (_, plus) = triangle_count(&g, &TcBackend::AccelPlusPim(acc, device.clone()));
        let speedup = only.total_s() / plus.total_s();
        speedups.push(speedup);
        human_row(
            &args,
            &[
                spec.name.to_string(),
                t.to_string(),
                format!("{:.3e}", only.total_s()),
                format!("{:.3e}", plus.total_s()),
                fmt_x(speedup),
            ],
        );
        tsv_row(
            "fig13",
            &[
                spec.name.to_string(),
                t.to_string(),
                only.total_s().to_string(),
                plus.total_s().to_string(),
                speedup.to_string(),
            ],
        );
    }
    println!();
    println!(
        "geomean accel+PIM speedup over accel-only: {} (paper: 2.0x)",
        fmt_x(geomean(&speedups))
    );
    tsv_row("fig13-geomean", &[geomean(&speedups).to_string()]);
}
