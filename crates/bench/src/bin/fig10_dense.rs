//! Figure 10: dense BLAS kernel throughput, per-bank PIM vs pSyncPIM, at
//! INT8 and FP64. Paper: pSyncPIM ≈ 9.6× per-bank on average.

use psim_bench::{geomean, human_row, tsv_row, Args};
use psim_kernels::blas1::Blas1Pim;
use psim_kernels::gemv::Gemv;
use psim_kernels::PimDevice;
use psim_sparse::{gen, Precision};

fn main() {
    let args = Args::parse();
    // Vector length scales with --scale; DGEMV dimension likewise.
    let n = ((2_000_000.0 * args.scale) as usize).clamp(8_192, 4_000_000);
    let gemv_dim = ((1_024.0 * (args.scale * 50.0).sqrt()) as usize).clamp(64, 2048);
    println!("# Figure 10 — dense BLAS throughput (vector n = {n}, DGEMV {gemv_dim}x{gemv_dim})");
    human_row(
        &args,
        &[
            "kernel".into(),
            "precision".into(),
            "PB Gelem/s".into(),
            "pSync Gelem/s".into(),
            "speedup".into(),
        ],
    );

    let x = gen::dense_vector(n, 1);
    let y = gen::dense_vector(n, 2);
    let a = gen::dense_vector(gemv_dim * gemv_dim, 3);
    let xg = gen::dense_vector(gemv_dim, 4);
    let mut ratios = Vec::new();

    for precision in [Precision::Int8, Precision::Fp64] {
        for kernel in ["DCOPY", "DSCAL", "DAXPY", "DDOT", "DGEMV"] {
            let time_on = |device: PimDevice| -> (f64, f64) {
                // (seconds, elements processed)
                match kernel {
                    "DCOPY" => {
                        let r = Blas1Pim::new(device, precision).dcopy(&x).expect("dcopy");
                        (r.run.total_s(), n as f64)
                    }
                    "DSCAL" => {
                        let r = Blas1Pim::new(device, precision)
                            .dscal(1.5, &x)
                            .expect("dscal");
                        (r.run.total_s(), n as f64)
                    }
                    "DAXPY" => {
                        let r = Blas1Pim::new(device, precision)
                            .daxpy(2.0, &x, &y)
                            .expect("daxpy");
                        (r.run.total_s(), 2.0 * n as f64)
                    }
                    "DDOT" => {
                        let r = Blas1Pim::new(device, precision).ddot(&x, &y).expect("ddot");
                        (r.run.total_s(), 2.0 * n as f64)
                    }
                    "DGEMV" => {
                        let r = Gemv::new(device, precision)
                            .dgemv(&a, gemv_dim, gemv_dim, &xg)
                            .expect("dgemv");
                        (r.run.total_s(), 2.0 * (gemv_dim * gemv_dim) as f64)
                    }
                    other => unreachable!("unknown kernel {other}"),
                }
            };
            let (pb_s, ops) = time_on(PimDevice::per_bank());
            let (ab_s, _) = time_on(PimDevice::psync_1x());
            let pb_tput = ops / pb_s / 1e9;
            let ab_tput = ops / ab_s / 1e9;
            let ratio = ab_tput / pb_tput;
            ratios.push(ratio);
            human_row(
                &args,
                &[
                    kernel.to_string(),
                    precision.to_string(),
                    format!("{pb_tput:.3}"),
                    format!("{ab_tput:.3}"),
                    format!("{ratio:.2}x"),
                ],
            );
            tsv_row(
                "fig10",
                &[
                    kernel.to_string(),
                    precision.to_string(),
                    pb_tput.to_string(),
                    ab_tput.to_string(),
                    ratio.to_string(),
                ],
            );
        }
    }
    println!();
    println!(
        "geomean pSync/per-bank speedup: {:.2}x (paper: 9.6x average)",
        geomean(&ratios)
    );
    tsv_row("fig10-geomean", &[geomean(&ratios).to_string()]);
}
