//! Figure 14: SpMV energy, per-bank PIM vs pSyncPIM. Paper: pSyncPIM is
//! 2.67× more energy-efficient on average and stays under 5 W.

use psim_bench::spmv_suite::SpmvMeasurement;
use psim_bench::{human_row, mean, tsv_row, Args};
use psim_sparse::suite::{with_tag, Tag};

fn main() {
    let args = Args::parse();
    println!(
        "# Figure 14 — SpMV energy, per-bank vs pSyncPIM (scale {})",
        args.scale
    );
    human_row(
        &args,
        &[
            "matrix".into(),
            "PB mJ".into(),
            "pSync mJ".into(),
            "ratio".into(),
            "pSync W".into(),
        ],
    );
    let mut ratios = Vec::new();
    let mut watts = Vec::new();
    for spec in with_tag(Tag::SpMv) {
        if !args.selects(spec) {
            continue;
        }
        let m = SpmvMeasurement::run(spec, args.scale);
        let ratio = m.energy_ratio();
        let w = m.psync.run.energy_j / m.psync.run.kernel_s.max(1e-30);
        ratios.push(ratio);
        watts.push(w);
        human_row(
            &args,
            &[
                m.name.to_string(),
                format!("{:.4}", m.perbank.run.energy_j * 1e3),
                format!("{:.4}", m.psync.run.energy_j * 1e3),
                format!("{ratio:.2}x"),
                format!("{w:.2}"),
            ],
        );
        tsv_row(
            "fig14",
            &[
                m.name.to_string(),
                m.perbank.run.energy_j.to_string(),
                m.psync.run.energy_j.to_string(),
                ratio.to_string(),
                w.to_string(),
            ],
        );
    }
    println!();
    println!(
        "mean energy ratio PB/pSync: {:.2}x (paper: 2.67x)",
        mean(&ratios)
    );
    let max_w = watts.iter().copied().fold(0.0f64, f64::max);
    println!("max pSyncPIM power: {max_w:.2} W (paper: <= 5.0 W)");
    tsv_row(
        "fig14-mean",
        &[mean(&ratios).to_string(), max_w.to_string()],
    );
}
