//! Format-footprint ablation (paper §IV-C / §VIII): COO vs bitmap vs the
//! blocked formats (BCSR/BCOO) across the density spectrum, at the HPC
//! (<1 %) and neural-network (10–50 %) operating points, plus the
//! block-structured regime where tiles actually fill.

use psim_bench::{human_row, tsv_row, Args};
use psim_sparse::bitmap::{bitmap_crossover_density, BitmapMatrix};
use psim_sparse::blocked::{block_fill_ratio, Bcoo, Bcsr};
use psim_sparse::{gen, Coo, Precision};

/// Pure block-diagonal matrix with exactly `fill` of each tile's slots
/// occupied (row-major prefix). `gen::block_diag_fem`'s inter-block
/// coupling entries drag the measured tile fill far below the nominal
/// one (each coupling pair opens a nearly-empty neighbor tile), which
/// hides the storage crossover this sweep exists to show.
fn dense_block_diag(n: usize, block: usize, fill: f64) -> Coo {
    let mut m = Coo::new(n, n);
    let quota = (fill * (block * block) as f64).round() as usize;
    for b in 0..n / block {
        let lo = b * block;
        for k in 0..quota {
            let (lr, lc) = (k / block, k % block);
            m.push((lo + lr) as u32, (lo + lc) as u32, 1.0 + k as f64);
        }
    }
    m
}

fn main() {
    let args = Args::parse();
    let n = 1024usize;
    println!("# Format ablation — COO vs bitmap vs blocked footprint ({n} x {n})");
    println!(
        "model crossover density: {:.3}% (positions/8 = nnz * 8)",
        bitmap_crossover_density(Precision::Fp64) * 100.0
    );
    human_row(
        &args,
        &[
            "density".into(),
            "precision".into(),
            "COO KiB".into(),
            "bitmap KiB".into(),
            "BCSR4 KiB".into(),
            "BCOO4 KiB".into(),
            "winner".into(),
        ],
    );
    for density in [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.3, 0.5] {
        let nnz = ((n * n) as f64 * density) as usize;
        let mut a = gen::erdos_renyi(n, n, nnz, density.to_bits());
        a.coalesce();
        let bm = BitmapMatrix::try_from(&a).expect("coalesced");
        let bcsr = Bcsr::from_coo(&a, 4);
        let bcoo = Bcoo::from(&bcsr);
        for p in [Precision::Fp64, Precision::Int8] {
            let coo = a.storage_bytes(p);
            let bit = bm.storage_bytes(p);
            let bcsr_b = bcsr.storage_bytes(p);
            let bcoo_b = bcoo.storage_bytes(p);
            let winner = [
                (coo, "COO"),
                (bit, "bitmap"),
                (bcsr_b, "BCSR4"),
                (bcoo_b, "BCOO4"),
            ]
            .into_iter()
            .min_by_key(|&(b, _)| b)
            .map_or("COO", |(_, w)| w);
            human_row(
                &args,
                &[
                    format!("{:.2}%", density * 100.0),
                    p.to_string(),
                    format!("{:.1}", coo as f64 / 1024.0),
                    format!("{:.1}", bit as f64 / 1024.0),
                    format!("{:.1}", bcsr_b as f64 / 1024.0),
                    format!("{:.1}", bcoo_b as f64 / 1024.0),
                    winner.to_string(),
                ],
            );
            tsv_row(
                "ablation-format",
                &[
                    density.to_string(),
                    p.to_string(),
                    coo.to_string(),
                    bit.to_string(),
                    bcsr_b.to_string(),
                    bcoo_b.to_string(),
                ],
            );
        }
    }

    // Random sparsity never fills tiles; the blocked formats' regime is
    // block-structured matrices (FEM stencils, fused NN layers). Sweep
    // tile fill at fixed nnz budget and watch the crossover.
    println!("\n[blocked formats on block-diagonal structure (8x8 tiles)]");
    human_row(
        &args,
        &[
            "tile fill".into(),
            "measured fill8".into(),
            "COO KiB".into(),
            "BCSR8 KiB".into(),
            "BCOO8 KiB".into(),
            "winner".into(),
        ],
    );
    for fill in [0.25, 0.5, 0.75, 1.0] {
        let a = dense_block_diag(512, 8, fill);
        let fill8 = block_fill_ratio(&a, 8);
        let bcsr = Bcsr::from_coo(&a, 8);
        let bcoo = Bcoo::from(&bcsr);
        let p = Precision::Fp64;
        let coo = a.storage_bytes(p);
        let bcsr_b = bcsr.storage_bytes(p);
        let bcoo_b = bcoo.storage_bytes(p);
        let winner = [(coo, "COO"), (bcsr_b, "BCSR8"), (bcoo_b, "BCOO8")]
            .into_iter()
            .min_by_key(|&(b, _)| b)
            .map_or("COO", |(_, w)| w);
        human_row(
            &args,
            &[
                format!("{:.0}%", fill * 100.0),
                format!("{fill8:.2}"),
                format!("{:.1}", coo as f64 / 1024.0),
                format!("{:.1}", bcsr_b as f64 / 1024.0),
                format!("{:.1}", bcoo_b as f64 / 1024.0),
                winner.to_string(),
            ],
        );
        tsv_row(
            "ablation-format-blocked",
            &[
                fill.to_string(),
                fill8.to_string(),
                coo.to_string(),
                bcsr_b.to_string(),
                bcoo_b.to_string(),
            ],
        );
    }
    println!("\npaper: COO for <1% HPC matrices; bitmap for 10-50% NN layers (SIV-C, SVIII);");
    println!("blocked formats only past ~50% tile fill — the autotuner's fill threshold");
}
