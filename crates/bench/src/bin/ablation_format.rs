//! Format-footprint ablation (paper §IV-C / §VIII): COO vs bitmap storage
//! across the density spectrum, at the HPC (<1 %) and neural-network
//! (10–50 %) operating points.

use psim_bench::{human_row, tsv_row, Args};
use psim_sparse::bitmap::{bitmap_crossover_density, BitmapMatrix};
use psim_sparse::{gen, Precision};

fn main() {
    let args = Args::parse();
    let n = 1024usize;
    println!("# Format ablation — COO vs bitmap footprint ({n} x {n})");
    println!(
        "model crossover density: {:.3}% (positions/8 = nnz * 8)",
        bitmap_crossover_density(Precision::Fp64) * 100.0
    );
    human_row(
        &args,
        &[
            "density".into(),
            "precision".into(),
            "COO KiB".into(),
            "bitmap KiB".into(),
            "winner".into(),
        ],
    );
    for density in [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.3, 0.5] {
        let nnz = ((n * n) as f64 * density) as usize;
        let mut a = gen::erdos_renyi(n, n, nnz, density.to_bits());
        a.coalesce();
        let bm = BitmapMatrix::try_from(&a).expect("coalesced");
        for p in [Precision::Fp64, Precision::Int8] {
            let coo = a.storage_bytes(p);
            let bit = bm.storage_bytes(p);
            let winner = if bit < coo { "bitmap" } else { "COO" };
            human_row(
                &args,
                &[
                    format!("{:.2}%", density * 100.0),
                    p.to_string(),
                    format!("{:.1}", coo as f64 / 1024.0),
                    format!("{:.1}", bit as f64 / 1024.0),
                    winner.to_string(),
                ],
            );
            tsv_row(
                "ablation-format",
                &[
                    density.to_string(),
                    p.to_string(),
                    coo.to_string(),
                    bit.to_string(),
                ],
            );
        }
    }
    println!("\npaper: COO for <1% HPC matrices; bitmap for 10-50% NN layers (SIV-C, SVIII)");
}
