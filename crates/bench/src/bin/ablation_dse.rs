//! Architecture design-space exploration around the paper's fixed choices:
//!
//! * **DRAM row size** (the paper's 1 KB row bounds submatrix dimensions,
//!   §V: "the dimension of submatrices should not overflow the size of one
//!   memory row") — sweep 512 B … 4 KB and watch partitions, external
//!   traffic and kernel time move.
//! * **Bank count** (the paper's 256 PUs/cube; the 3× configuration is the
//!   paper's only scaling point) — sweep 64 … 512 banks at constant
//!   per-bank bandwidth.

use psim_bench::{human_row, tsv_row, Args};
use psim_dram::HbmConfig;
use psim_kernels::{CostModel, PimDevice, SpmvPim};
use psim_sparse::suite::by_name;
use psim_sparse::{gen, Precision};
use psyncpim_core::ExecMode;

fn device_with(num_cols: usize, channels: usize) -> PimDevice {
    let hbm = HbmConfig {
        num_cols, // row size = num_cols * 16 B
        num_pseudo_channels: channels,
        ..HbmConfig::default()
    };
    PimDevice {
        hbm,
        mode: ExecMode::AllBank,
        cubes: 1,
        ..PimDevice::psync_1x()
    }
}

fn main() {
    let args = Args::parse();
    let spec = by_name(args.only.as_deref().unwrap_or("pwtk")).expect("matrix");
    let a = spec.generate(args.scale);
    let x = gen::dense_vector(a.ncols(), 13);
    println!(
        "# Design-space exploration on {} (dim {}, nnz {})",
        spec.name,
        a.nrows(),
        a.nnz()
    );

    println!("\n[DRAM row size sweep, 256 banks]");
    human_row(
        &args,
        &[
            "row size".into(),
            "submatrices".into(),
            "waves".into(),
            "ext KiB".into(),
            "time us".into(),
            "est err%".into(),
        ],
    );
    let mut ranks: Vec<(u64, u64)> = Vec::new();
    for num_cols in [32usize, 64, 128, 256] {
        let device = device_with(num_cols, 16);
        let row_bytes = device.hbm.row_bytes();
        let est = CostModel::new(&device).spmv(&a, Precision::Fp64);
        let r = SpmvPim::new(device, Precision::Fp64)
            .run(&a, &x)
            .expect("spmv");
        let err = err_pct(est.cycles, r.run.dram_cycles);
        ranks.push((est.cycles, r.run.dram_cycles));
        human_row(
            &args,
            &[
                format!("{row_bytes} B"),
                r.stats.num_submatrices.to_string(),
                r.waves.to_string(),
                format!("{:.1}", r.run.external_bytes as f64 / 1024.0),
                format!("{:.2}", r.run.total_s() * 1e6),
                format!("{err:+.1}"),
            ],
        );
        tsv_row(
            "dse-rowsize",
            &[
                row_bytes.to_string(),
                r.stats.num_submatrices.to_string(),
                r.waves.to_string(),
                r.run.external_bytes.to_string(),
                r.run.total_s().to_string(),
                est.cycles.to_string(),
            ],
        );
    }

    println!("\n[bank count sweep, 1 KB rows]");
    human_row(
        &args,
        &[
            "banks".into(),
            "banks used".into(),
            "imbalance".into(),
            "rounds".into(),
            "time us".into(),
            "est err%".into(),
        ],
    );
    for channels in [4usize, 8, 16, 32] {
        let device = device_with(64, channels);
        let banks = device.total_banks();
        let est = CostModel::new(&device).spmv(&a, Precision::Fp64);
        let r = SpmvPim::new(device, Precision::Fp64)
            .run(&a, &x)
            .expect("spmv");
        let err = err_pct(est.cycles, r.run.dram_cycles);
        ranks.push((est.cycles, r.run.dram_cycles));
        human_row(
            &args,
            &[
                banks.to_string(),
                r.stats.banks_used.to_string(),
                format!("{:.2}", r.stats.imbalance()),
                r.run.rounds.to_string(),
                format!("{:.2}", r.run.total_s() * 1e6),
                format!("{err:+.1}"),
            ],
        );
        tsv_row(
            "dse-banks",
            &[
                banks.to_string(),
                r.stats.banks_used.to_string(),
                r.stats.imbalance().to_string(),
                r.run.rounds.to_string(),
                r.run.total_s().to_string(),
                est.cycles.to_string(),
            ],
        );
    }
    // A cost model is useful for DSE exactly when it *orders* design points
    // the way the cycle engine does — check pairwise rank agreement across
    // everything swept above.
    let mut pairs = 0u32;
    let mut agree = 0u32;
    for i in 0..ranks.len() {
        for j in (i + 1)..ranks.len() {
            pairs += 1;
            let (ei, ai) = ranks[i];
            let (ej, aj) = ranks[j];
            if (ei.cmp(&ej)) == (ai.cmp(&aj)) {
                agree += 1;
            }
        }
    }
    println!(
        "\nanalytical tier rank agreement with cycle engine: {agree}/{pairs} design-point pairs"
    );
    println!(
        "paper anchor points: 1 KB rows (SV), 256 banks/cube with a 3x-cube scaling study (SVII-B)"
    );
}

/// Signed relative error of the analytical estimate vs the cycle engine.
fn err_pct(est: u64, actual: u64) -> f64 {
    (est as f64 - actual as f64) / actual as f64 * 100.0
}
