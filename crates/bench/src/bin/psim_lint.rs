//! psim-lint: the static verification gate for CI.
//!
//! Assembles every shipped program builder in `psim_kernels::programs`
//! across the full precision × semiring-op sweep and runs each program
//! through the `psyncpim_core::isa::lint` analyzer (CFG checks + abstract
//! interpretation). A builder that emits an Error-severity diagnostic —
//! an out-of-range jump, a reused loop ORDER, a statically guaranteed
//! queue underflow/overflow — fails the build before the expensive
//! dynamic sweep in psim-check even starts.
//!
//! Emits a machine-readable JSON summary to `results/psim_lint.json`:
//! totals, a `pass` verdict, per-code severity counts over the whole
//! corpus (zero counts included, so ci.sh can diff against the committed
//! baseline code-by-code), and one record per non-clean program.

use psim_kernels::programs;
use psim_sparse::Precision;
use psyncpim_core::isa::{assemble, Diagnostic, Severity, ALL_LINT_CODES};
use serde::Serialize;

/// Binary ops accepted by the assembler's semiring slots.
const OPS: [&str; 6] = ["ADD", "SUB", "MUL", "MIN", "MAX", "RSUB"];

/// Chunk counts exercising the degenerate (NOP) loop, a small loop, and
/// the largest count that fits the 10-bit JUMP immediate.
const CHUNKS: [u16; 3] = [1, 4, 1023];

#[derive(Serialize)]
struct LintRecord {
    builder: String,
    variant: String,
    precision: String,
    errors: usize,
    warnings: usize,
    diagnostics: Vec<Diagnostic>,
}

/// Corpus-wide tally for one lint code (zero counts included, so the
/// baseline delta in ci.sh sees every code every run).
#[derive(Serialize)]
struct CodeRow {
    code: String,
    severity: String,
    count: usize,
}

#[derive(Serialize)]
struct LintSummary {
    programs: usize,
    clean: usize,
    errors: usize,
    warnings: usize,
    /// Machine-readable gate verdict: no assemble failures, no
    /// Error-severity diagnostics anywhere in the corpus.
    pass: bool,
    per_code: Vec<CodeRow>,
    records: Vec<LintRecord>,
}

struct Gate {
    programs: usize,
    clean: usize,
    errors: usize,
    warnings: usize,
    per_code: [usize; ALL_LINT_CODES.len()],
    records: Vec<LintRecord>,
    failures: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            programs: 0,
            clean: 0,
            errors: 0,
            warnings: 0,
            per_code: [0; ALL_LINT_CODES.len()],
            records: Vec::new(),
            failures: 0,
        }
    }

    /// Assemble and lint one builder output.
    fn check(&mut self, builder: &str, variant: &str, precision: Precision, asm: &str) {
        self.programs += 1;
        let program = match assemble(asm) {
            Ok(p) => p,
            Err(e) => {
                println!("lint\t{builder}\t{variant}\t{precision}\tASSEMBLE-FAIL\t{e}");
                self.failures += 1;
                return;
            }
        };
        let diags = program.verify();
        let errors = diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count();
        let warnings = diags.len() - errors;
        self.errors += errors;
        self.warnings += warnings;
        for d in &diags {
            if let Some(i) = ALL_LINT_CODES.iter().position(|c| *c == d.code) {
                self.per_code[i] += 1;
            }
        }
        if diags.is_empty() {
            self.clean += 1;
            return;
        }
        for d in &diags {
            println!("lint\t{builder}\t{variant}\t{precision}\t{d}");
        }
        if errors > 0 {
            self.failures += 1;
        }
        self.records.push(LintRecord {
            builder: builder.to_string(),
            variant: variant.to_string(),
            precision: precision.to_string(),
            errors,
            warnings,
            diagnostics: diags,
        });
    }

    fn summary(&mut self) -> LintSummary {
        LintSummary {
            programs: self.programs,
            clean: self.clean,
            errors: self.errors,
            warnings: self.warnings,
            pass: self.failures == 0,
            per_code: ALL_LINT_CODES
                .iter()
                .zip(self.per_code)
                .map(|(c, count)| CodeRow {
                    code: c.code().to_string(),
                    severity: c.severity().to_string(),
                    count,
                })
                .collect(),
            records: std::mem::take(&mut self.records),
        }
    }
}

fn main() {
    let mut gate = Gate::new();

    for &p in &Precision::ALL {
        // Sparse streams over the full semiring op cross.
        for mul in OPS {
            for acc in OPS {
                gate.check(
                    "sparse_stream_semiring",
                    &format!("{mul}x{acc}"),
                    p,
                    &programs::sparse_stream_semiring(p, mul, acc),
                );
                gate.check(
                    "sparse_stream_batched",
                    &format!("{mul}x{acc}"),
                    p,
                    &programs::sparse_stream_batched(p, mul, acc),
                );
                gate.check(
                    "spmm_stream",
                    &format!("{mul}x{acc}"),
                    p,
                    &programs::spmm_stream(p, mul, acc),
                );
            }
        }
        for acc in OPS {
            gate.check("sparse_stream", acc, p, &programs::sparse_stream(p, acc));
        }

        // Dense BLAS-1 across the chunk-count envelope.
        for c in CHUNKS {
            let cv = format!("chunks={c}");
            gate.check("dcopy", &cv, p, &programs::dcopy(p, c));
            gate.check("dswap", &cv, p, &programs::dswap(p, c));
            gate.check("dscal", &cv, p, &programs::dscal(p, c));
            gate.check("daxpy", &cv, p, &programs::daxpy(p, c));
            gate.check("ddot", &cv, p, &programs::ddot(p, c));
            gate.check("gather", &cv, p, &programs::gather(p, c));
            for op in OPS {
                gate.check("dvdv", &format!("{op},{cv}"), p, &programs::dvdv(p, op, c));
            }
        }
        gate.check("scatter", "-", p, &programs::scatter(p));
        gate.check("spaxpy", "-", p, &programs::spaxpy(p));
        gate.check("spdot", "-", p, &programs::spdot(p));

        // Dense Level-2 across the loop-nest envelope.
        for (rows, chunks) in [(1u16, 1u16), (4, 8), (1023, 1023)] {
            gate.check(
                "dgemv",
                &format!("rows={rows},chunks={chunks}"),
                p,
                &programs::dgemv(p, rows, chunks),
            );
        }
    }

    let failures = gate.failures;
    let summary = gate.summary();
    let json = summary.to_json();
    let path = "results/psim_lint.json";
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, format!("{json}\n")))
    {
        eprintln!("psim-lint: cannot write {path}: {e}");
        std::process::exit(1);
    }

    println!(
        "lint\tsummary\tprograms={}\tclean={}\terrors={}\twarnings={}\tpass={}",
        summary.programs, summary.clean, summary.errors, summary.warnings, summary.pass
    );
    if failures > 0 {
        eprintln!("psim-lint: {failures} program(s) FAILED static verification");
        std::process::exit(1);
    }
    println!(
        "psim-lint: all {} programs statically verified",
        summary.programs
    );
}
