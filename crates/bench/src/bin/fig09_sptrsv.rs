//! Figure 9: SpTRSV speedup of pSyncPIM over cuSPARSE (GPU model), lower
//! and upper triangles. Paper: 3.53× geomean, with `parabolic_fem` below
//! 1× (hyper-sparse near-diagonal blocks, little row dependency).

use psim_baselines::GpuModel;
use psim_bench::{fmt_x, geomean, human_row, tsv_row, Args};
use psim_kernels::{PimDevice, SptrsvPim};
use psim_sparse::level::reorder_to_lower;
use psim_sparse::suite::{with_tag, Tag};
use psim_sparse::triangular::{unit_triangular_from, Triangle};
use psim_sparse::{gen, LevelSchedule, Precision};

fn main() {
    let args = Args::parse();
    println!(
        "# Figure 9 — SpTRSV speedup vs cuSPARSE (scale {})",
        args.scale
    );
    let gpu = GpuModel::rtx3080();
    let mut all = Vec::new();
    for (label, triangle) in [("lower", Triangle::Lower), ("upper", Triangle::Upper)] {
        println!("\n[{label} triangular]");
        human_row(
            &args,
            &[
                "matrix".into(),
                "nnz".into(),
                "levels".into(),
                "speedup".into(),
            ],
        );
        let mut speedups = Vec::new();
        for spec in with_tag(Tag::SpTrsv) {
            if !args.selects(spec) {
                continue;
            }
            let a = spec.generate(args.scale);
            let t = unit_triangular_from(&a, triangle).expect("square");
            let sched = LevelSchedule::analyze(&t);
            let gpu_s = gpu.sptrsv_seconds(t.nnz(), t.dim(), &sched, Precision::Fp64);

            // Host preprocessing: level reordering (paper §VI-D).
            let (reordered, perm) = reorder_to_lower(&t);
            let b = gen::dense_vector(t.dim(), 0xB0);
            let pb: Vec<f64> = perm.iter().map(|&old| b[old]).collect();
            let solver = SptrsvPim::new(PimDevice::psync_1x());
            let res = solver.run(&reordered, &pb).expect("pim sptrsv");

            // Verify against the reference solve.
            let want = t.solve_colwise(&b).expect("reference");
            for (new, &old) in perm.iter().enumerate() {
                let diff = (res.x[new] - want[old]).abs();
                assert!(
                    diff < 1e-6 * want[old].abs().max(1.0),
                    "{}: row {old} differs by {diff}",
                    spec.name
                );
            }

            let speedup = gpu_s / res.run.total_s();
            speedups.push(speedup);
            all.push(speedup);
            human_row(
                &args,
                &[
                    spec.name.to_string(),
                    t.nnz().to_string(),
                    sched.num_levels().to_string(),
                    fmt_x(speedup),
                ],
            );
            tsv_row(
                "fig09",
                &[
                    label.to_string(),
                    spec.name.to_string(),
                    t.nnz().to_string(),
                    sched.num_levels().to_string(),
                    speedup.to_string(),
                ],
            );
        }
        println!("  geomean ({label}): {}", fmt_x(geomean(&speedups)));
    }
    println!();
    println!("overall geomean: {} (paper: 3.53x)", fmt_x(geomean(&all)));
    tsv_row("fig09-geomean", &[geomean(&all).to_string()]);
}
