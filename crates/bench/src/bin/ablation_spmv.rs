//! Ablations of the SpMV design choices the paper argues for (DESIGN.md):
//!
//! 1. **Matrix compression** (§V, Figure 6): naive full-column-range
//!    distribution vs compressed — external traffic and end-to-end time.
//! 2. **Distribution policy**: the paper's replication-minimizing
//!    round-robin vs a load-balance-greedy placement (the §VII-B
//!    `bcsstk32` trade-off).
//! 3. **Value precision**: FP64 vs INT8 on the two matrices the paper
//!    runs natively at INT8.

use psim_bench::{fmt_x, human_row, tsv_row, Args};
use psim_kernels::{layout_grid, PimDevice, SpmvPim};
use psim_sparse::partition::DistPolicy;
use psim_sparse::suite::{by_name, with_tag, Tag};
use psim_sparse::{gen, Precision};
use psim_tune::Autotuner;

fn main() {
    let args = Args::parse();
    println!("# SpMV ablations (scale {})", args.scale);

    // --- 1. compression ------------------------------------------------
    println!("\n[compression ablation: naive vs compressed distribution]");
    human_row(
        &args,
        &[
            "matrix".into(),
            "naive ext B".into(),
            "comp ext B".into(),
            "traffic cut".into(),
            "time gain".into(),
        ],
    );
    for spec in with_tag(Tag::SpMv).into_iter().take(6) {
        if !args.selects(spec) {
            continue;
        }
        let a = spec.generate(args.scale);
        let x = gen::dense_vector(a.ncols(), 3);
        let mut on = SpmvPim::new(PimDevice::psync_1x(), Precision::Fp64);
        let mut off = on.clone();
        on.compress = true;
        off.compress = false;
        let ron = on.run(&a, &x).expect("compressed");
        let roff = off.run(&a, &x).expect("naive");
        human_row(
            &args,
            &[
                spec.name.to_string(),
                roff.run.external_bytes.to_string(),
                ron.run.external_bytes.to_string(),
                fmt_x(roff.run.external_bytes as f64 / ron.run.external_bytes.max(1) as f64),
                fmt_x(roff.run.total_s() / ron.run.total_s()),
            ],
        );
        tsv_row(
            "ablation-compress",
            &[
                spec.name.to_string(),
                roff.run.external_bytes.to_string(),
                ron.run.external_bytes.to_string(),
                roff.run.total_s().to_string(),
                ron.run.total_s().to_string(),
            ],
        );
    }

    // --- 2. distribution policy ----------------------------------------
    println!("\n[placement ablation: round-robin vs least-loaded]");
    human_row(
        &args,
        &[
            "matrix".into(),
            "RR imbalance".into(),
            "LL imbalance".into(),
            "RR time".into(),
            "LL time".into(),
        ],
    );
    for name in ["bcsstk32", "webbase-1M", "Stanford"] {
        let spec = by_name(name).expect("known matrix");
        if !args.selects(spec) {
            continue;
        }
        let a = spec.generate(args.scale);
        let x = gen::dense_vector(a.ncols(), 5);
        let mut rr = SpmvPim::new(PimDevice::psync_1x(), Precision::Fp64);
        rr.policy = DistPolicy::RoundRobin;
        let mut ll = rr.clone();
        ll.policy = DistPolicy::LeastLoaded;
        let r1 = rr.run(&a, &x).expect("rr");
        let r2 = ll.run(&a, &x).expect("ll");
        human_row(
            &args,
            &[
                name.to_string(),
                format!("{:.2}", r1.stats.imbalance()),
                format!("{:.2}", r2.stats.imbalance()),
                format!("{:.3e}", r1.run.total_s()),
                format!("{:.3e}", r2.run.total_s()),
            ],
        );
        tsv_row(
            "ablation-policy",
            &[
                name.to_string(),
                r1.stats.imbalance().to_string(),
                r2.stats.imbalance().to_string(),
                r1.run.total_s().to_string(),
                r2.run.total_s().to_string(),
            ],
        );
    }

    // --- 3. precision ---------------------------------------------------
    println!("\n[precision ablation on the paper's INT8 matrices]");
    human_row(
        &args,
        &[
            "matrix".into(),
            "FP64 time".into(),
            "INT8 time".into(),
            "INT8 gain".into(),
            "ext traffic cut".into(),
        ],
    );
    for name in ["soc-sign-epinions", "Stanford"] {
        let spec = by_name(name).expect("known matrix");
        if !args.selects(spec) {
            continue;
        }
        let a = spec.generate(args.scale);
        let x = vec![1.0; a.ncols()];
        let f = SpmvPim::new(PimDevice::psync_1x(), Precision::Fp64)
            .run(&a, &x)
            .expect("fp64");
        let i = SpmvPim::new(PimDevice::psync_1x(), Precision::Int8)
            .run(&a, &x)
            .expect("int8");
        human_row(
            &args,
            &[
                name.to_string(),
                format!("{:.3e}", f.run.total_s()),
                format!("{:.3e}", i.run.total_s()),
                fmt_x(f.run.total_s() / i.run.total_s()),
                fmt_x(f.run.external_bytes as f64 / i.run.external_bytes.max(1) as f64),
            ],
        );
        tsv_row(
            "ablation-precision",
            &[
                name.to_string(),
                f.run.total_s().to_string(),
                i.run.total_s().to_string(),
                f.run.external_bytes.to_string(),
                i.run.external_bytes.to_string(),
            ],
        );
    }

    // --- 4. layout zoo ---------------------------------------------------
    // Partition scheme × storage format across the fixed ablation grid,
    // against the autotuner's per-matrix pick (DESIGN.md §17). The gate
    // for this sweep is `ablation_autotune`; this table is the
    // paper-device view.
    println!("\n[layout ablation: the fixed grid vs the autotuner]");
    human_row(
        &args,
        &[
            "matrix".into(),
            "layout".into(),
            "cycles".into(),
            "time".into(),
            "imbalance".into(),
        ],
    );
    let device = PimDevice::psync_1x();
    let tuner = Autotuner::new(&device);
    for name in ["bcsstk32", "Stanford", "crankseg_2"] {
        let spec = by_name(name).expect("known matrix");
        if !args.selects(spec) {
            continue;
        }
        let a = spec.generate(args.scale);
        let x = gen::dense_vector(a.ncols(), 9);
        let decision = tuner.decide(&a, Precision::Fp64);
        let tuned = decision.choice;
        let mut rows: Vec<(String, _)> =
            layout_grid().into_iter().map(|l| (l.label(), l)).collect();
        rows.push((format!("tuned:{}", decision.label), tuned));
        for (label, layout) in rows {
            let r = SpmvPim::new(device.clone(), Precision::Fp64)
                .with_layout(layout)
                .run(&a, &x)
                .expect("layout run");
            human_row(
                &args,
                &[
                    name.to_string(),
                    label.clone(),
                    r.run.dram_cycles.to_string(),
                    format!("{:.3e}", r.run.total_s()),
                    format!("{:.2}", r.stats.imbalance()),
                ],
            );
            tsv_row(
                "ablation-layout",
                &[
                    name.to_string(),
                    label,
                    r.run.dram_cycles.to_string(),
                    r.run.total_s().to_string(),
                    r.stats.imbalance().to_string(),
                ],
            );
        }
    }
}
