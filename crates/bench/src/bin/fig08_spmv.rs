//! Figure 8: SpMV speedup of pSyncPIM over the RTX 3080 GPU model, with
//! the per-bank baseline, SpaceA and the 3× configuration.
//!
//! Paper reference points: pSyncPIM 1× = 1.96× GPU (geomean), 3× = 4.43×;
//! per-bank ≈ pSync/6.26; pSync ≈ 0.56× SpaceA.

use psim_bench::spmv_suite::SpmvMeasurement;
use psim_bench::{fmt_x, geomean, human_row, tsv_row, Args};
use psim_sparse::suite::{with_tag, Tag};

fn main() {
    let args = Args::parse();
    println!("# Figure 8 — SpMV speedup vs GPU (scale {})", args.scale);
    human_row(
        &args,
        &[
            "matrix".into(),
            "nnz".into(),
            "per-bank".into(),
            "SpaceA".into(),
            "pSync 1x".into(),
            "pSync 3x".into(),
        ],
    );
    let mut s1 = Vec::new();
    let mut s3 = Vec::new();
    let mut spb = Vec::new();
    let mut ssa = Vec::new();
    for spec in with_tag(Tag::SpMv) {
        if !args.selects(spec) {
            continue;
        }
        let m = SpmvMeasurement::run(spec, args.scale);
        s1.push(m.speedup_1x());
        s3.push(m.speedup_3x());
        spb.push(m.speedup_perbank());
        ssa.push(m.speedup_spacea());
        human_row(
            &args,
            &[
                m.name.to_string(),
                m.nnz.to_string(),
                fmt_x(m.speedup_perbank()),
                fmt_x(m.speedup_spacea()),
                fmt_x(m.speedup_1x()),
                fmt_x(m.speedup_3x()),
            ],
        );
        tsv_row(
            "fig08",
            &[
                m.name.to_string(),
                m.nnz.to_string(),
                m.speedup_perbank().to_string(),
                m.speedup_spacea().to_string(),
                m.speedup_1x().to_string(),
                m.speedup_3x().to_string(),
            ],
        );
    }
    let (g1, g3, gpb, gsa) = (geomean(&s1), geomean(&s3), geomean(&spb), geomean(&ssa));
    println!();
    println!("geomean speedups vs GPU:");
    println!(
        "  per-bank   {:>8}   (paper: pSync/6.26 = ~0.31x)",
        fmt_x(gpb)
    );
    println!(
        "  SpaceA     {:>8}   (paper: pSync/0.56 = ~3.50x)",
        fmt_x(gsa)
    );
    println!("  pSync 1x   {:>8}   (paper: 1.96x)", fmt_x(g1));
    println!("  pSync 3x   {:>8}   (paper: 4.43x)", fmt_x(g3));
    println!(
        "  pSync/SpaceA ratio {:.2} (paper: 0.56)",
        g1 / gsa.max(1e-30)
    );
    println!(
        "  pSync/per-bank     {:.2} (paper: 6.26)",
        g1 / gpb.max(1e-30)
    );
    tsv_row(
        "fig08-geomean",
        &[
            gpb.to_string(),
            gsa.to_string(),
            g1.to_string(),
            g3.to_string(),
        ],
    );
}
