//! psim-model: the concurrency verification gate for CI.
//!
//! The fourth leg of the verification stack (lint → check → trace →
//! **model**): where psim-lint proves things about PIM *programs*, this
//! gate proves things about the *host scheduler* that feeds them. Three
//! sections, all mandatory:
//!
//! 1. **Scenarios** — small configurations of the real scheduler code
//!    (bounded-queue admission under backpressure, close with blocked
//!    `pop_wait_batch` waiters, `MatrixStore` LRU churn, fused-vs-unfused
//!    service equivalence) run under the bounded exhaustive interleaving
//!    explorer ([`psim_conc::model::Explorer`]). Any deadlock, lost
//!    wakeup, or invariant violation in any explored schedule fails the
//!    gate with a deterministic repro trail.
//! 2. **Lock-order graph** — the acquire-while-holding edges recorded by
//!    the model backend across all scenarios must be acyclic
//!    ([`psim_conc::order::find_cycle`]): a cycle is a potential
//!    inversion deadlock even if no explored schedule tripped it.
//! 3. **Mutation self-checks** — seeded bugs (double-lock, dropped
//!    notify, swapped lock order) and seeded partial-synchrony lint
//!    violations (`PSL014`–`PSL016` mutants of the shipped stream
//!    kernels) must each be *caught*. A checker that cannot catch its
//!    own mutants proves nothing, so a missed catch fails the gate too.
//!
//! Writes `results/psim_model.json`. Usage: `psim_model [--budget N]`
//! (N bounds executions per scenario; CI uses a scaled-down budget).

use psim_conc::{model, order, Condvar, Mutex};
use psim_kernels::{programs, PimDevice};
use psim_sched::{
    ExecutorConfig, JobKind, JobQueue, JobSpec, JobValue, MatrixStore, Service, ServiceConfig,
    ShardExecutor,
};
use psim_sparse::Precision;
use psyncpim_core::isa::{assemble, LintCode};
use serde::Serialize;
use std::sync::Arc;

/// Default per-scenario execution budget (`--budget` overrides).
const DEFAULT_BUDGET: usize = 20_000;

#[derive(Serialize)]
struct ScenarioRow {
    name: String,
    executions: usize,
    decision_points: usize,
    complete: bool,
    /// Counterexample description, empty when the scenario passed.
    failure: String,
}

#[derive(Serialize)]
struct MutationRow {
    name: String,
    caught: bool,
    detail: String,
}

#[derive(Serialize)]
struct LintRow {
    code: String,
    corpus_clean: bool,
    mutant_caught: bool,
}

#[derive(Serialize)]
struct ModelReport {
    budget: usize,
    scenarios: Vec<ScenarioRow>,
    lock_order_edges: Vec<(String, String)>,
    lock_order_acyclic: bool,
    mutations: Vec<MutationRow>,
    lints: Vec<LintRow>,
    pass: bool,
}

fn spmv_spec(a: &Arc<psim_sparse::Coo>, i: u64) -> JobSpec {
    let n = a.ncols();
    let x: Vec<f64> = (0..n as u64)
        .map(|k| (i * 7 + k + 1) as f64 * 0.5)
        .collect();
    JobSpec::batch("t0", JobKind::spmv(Arc::clone(a), x))
}

fn row(name: &str, report: &model::Report) -> ScenarioRow {
    let failure = report
        .failure
        .as_ref()
        .map(ToString::to_string)
        .unwrap_or_default();
    println!(
        "model\t{name}\texecutions={}\tdecisions={}\tcomplete={}\t{}",
        report.executions,
        report.decision_points,
        report.complete,
        if failure.is_empty() {
            "ok"
        } else {
            failure.as_str()
        }
    );
    ScenarioRow {
        name: name.to_string(),
        executions: report.executions,
        decision_points: report.decision_points,
        complete: report.complete,
        failure,
    }
}

// ---- section 1: scheduler scenarios ------------------------------------

/// Two producers race into a capacity-1 queue (full backpressure: every
/// submit may block) while a consumer drains batches until close. No
/// schedule may deadlock, and all four jobs arrive exactly once.
fn scenario_admission_backpressure(budget: usize) -> ScenarioRow {
    let a = Arc::new(psim_sparse::gen::rmat(8, 2, 1));
    let report = model::Explorer::new(budget).explore(move || {
        let queue = Arc::new(JobQueue::bounded(1));
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let queue = Arc::clone(&queue);
                let a = Arc::clone(&a);
                model::spawn(move || {
                    for i in 0..2u64 {
                        queue.submit(spmv_spec(&a, p * 2 + i)).expect("queue open");
                    }
                })
            })
            .collect();
        let consumer = {
            let queue = Arc::clone(&queue);
            model::spawn(move || {
                let mut ids = Vec::new();
                loop {
                    let batch = queue.pop_wait_batch(3);
                    if batch.is_empty() {
                        return ids;
                    }
                    ids.extend(batch.into_iter().map(|j| j.id));
                }
            })
        };
        for p in producers {
            p.join();
        }
        queue.close();
        let mut ids = consumer.join();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![0, 1, 2, 3],
            "every submitted job delivered exactly once"
        );
    });
    row("admission_backpressure", &report)
}

/// Two waiters blocked in `pop_wait_batch` when one job and the close
/// land: the close's notify_all must reach both (a lost wakeup would
/// deadlock — the model condvar has no spurious wakeups to paper over
/// it), and the single job goes to exactly one waiter.
fn scenario_close_blocked_waiters(budget: usize) -> ScenarioRow {
    let a = Arc::new(psim_sparse::gen::rmat(8, 2, 2));
    let report = model::Explorer::new(budget).explore(move || {
        let queue = Arc::new(JobQueue::bounded(2));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                model::spawn(move || queue.pop_wait_batch(2).len())
            })
            .collect();
        queue.submit(spmv_spec(&a, 0)).expect("queue open");
        queue.close();
        let got: usize = waiters.into_iter().map(model::JoinHandle::join).sum();
        assert_eq!(got, 1, "one job, one winner, no waiter hangs");
    });
    row("close_blocked_waiters", &report)
}

/// Concurrent insert/get against a store whose budget holds only one of
/// the two matrices: every schedule churns LRU eviction, and the store's
/// byte accounting must audit clean afterwards.
fn scenario_store_eviction_race(budget: usize) -> ScenarioRow {
    let m0 = psim_sparse::gen::rmat(16, 2, 3);
    let m1 = psim_sparse::gen::rmat(16, 2, 4);
    let probe = MatrixStore::new();
    probe.insert("m0", m0.clone());
    let store_budget = probe.resident_bytes() * 3 / 2;
    let report = model::Explorer::new(budget).explore(move || {
        let store = Arc::new(MatrixStore::with_budget(store_budget));
        let threads: Vec<_> = [("m0", m0.clone()), ("m1", m1.clone())]
            .into_iter()
            .map(|(name, m)| {
                let store = Arc::clone(&store);
                model::spawn(move || {
                    let a = store.insert(name, m);
                    assert_eq!(a.nnz(), store.get(name).map_or(a.nnz(), |g| g.nnz()));
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        store.audit();
        assert!(
            store.get("m0").is_some() || store.get("m1").is_some(),
            "at least the most recent insert is resident"
        );
    });
    row("store_eviction_race", &report)
}

/// Fused service vs unfused batch executor on the same jobs: values must
/// be bit-identical in every explored admission/close interleaving.
fn scenario_fusion_equivalence(budget: usize) -> ScenarioRow {
    let a = Arc::new(psim_sparse::gen::rmat(16, 2, 5));
    let golden: Arc<Vec<(u64, JobValue)>> = {
        let queue = JobQueue::bounded(8);
        for i in 0..3u64 {
            queue.submit(spmv_spec(&a, i)).expect("queue open");
        }
        let exec = ShardExecutor::new(ExecutorConfig::sharded(PimDevice::tiny(2), 1))
            .expect("shards divide channels");
        let mut jobs = exec.drain_and_run(&queue).expect("golden run").jobs;
        jobs.sort_by_key(|j| j.id);
        Arc::new(jobs.into_iter().map(|j| (j.id, j.value)).collect())
    };
    let report = model::Explorer::new(budget).explore(move || {
        let queue = Arc::new(JobQueue::bounded(2));
        let producer = {
            let queue = Arc::clone(&queue);
            let a = Arc::clone(&a);
            model::spawn(move || {
                for i in 0..3u64 {
                    queue.submit(spmv_spec(&a, i)).expect("queue open");
                }
                queue.close();
            })
        };
        let svc = Service::new(ServiceConfig::new(
            ExecutorConfig::sharded(PimDevice::tiny(2), 1).with_fusion(2),
        ))
        .expect("shards divide channels");
        let mut got: Vec<(u64, JobValue)> = Vec::new();
        svc.run(&queue, &mut |job| got.push((job.id, job.value)))
            .expect("jobs execute");
        producer.join();
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(got, *golden, "fusion must never change numerics");
    });
    row("fusion_equivalence", &report)
}

// ---- section 3a: model-checker mutation self-tests ---------------------

fn mutation(name: &str, caught: bool, detail: String) -> MutationRow {
    println!(
        "model\tmutation\t{name}\t{}\t{detail}",
        if caught { "CAUGHT" } else { "MISSED" }
    );
    MutationRow {
        name: name.to_string(),
        caught,
        detail,
    }
}

fn mutation_double_lock() -> MutationRow {
    let report = model::Explorer::new(100).explore(|| {
        let m = Mutex::labeled("mut.double", 0u32);
        let g1 = m.lock();
        let g2 = m.lock(); // seeded bug
        drop(g2);
        drop(g1);
    });
    let caught = matches!(report.failure, Some(model::Failure::DoubleLock { .. }));
    mutation("double_lock", caught, format!("{:?}", report.failure))
}

fn mutation_dropped_notify(budget: usize) -> MutationRow {
    let report = model::Explorer::new(budget).explore(|| {
        let ch = Arc::new((Mutex::labeled("mut.notify", None::<u32>), Condvar::new()));
        let tx = Arc::clone(&ch);
        let producer = model::spawn(move || {
            *tx.0.lock() = Some(7); // seeded bug: no notify
        });
        let mut g = ch.0.lock();
        while g.is_none() {
            g = ch.1.wait(g);
        }
        drop(g);
        producer.join();
    });
    let caught = matches!(report.failure, Some(model::Failure::Deadlock { .. }));
    mutation("dropped_notify", caught, format!("{:?}", report.failure))
}

fn mutation_swapped_lock_order(budget: usize) -> MutationRow {
    let report = model::Explorer::new(budget).explore(|| {
        let a = Arc::new(Mutex::labeled("mut.order.a", ()));
        let b = Arc::new(Mutex::labeled("mut.order.b", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = model::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            drop(gb);
            drop(ga);
        });
        let gb = b.lock(); // seeded bug: inverted order
        let ga = a.lock();
        drop(ga);
        drop(gb);
        t.join();
    });
    let deadlocked = matches!(report.failure, Some(model::Failure::Deadlock { .. }));
    let cycled = order::find_cycle().is_some();
    mutation(
        "swapped_lock_order",
        deadlocked && cycled,
        format!("deadlock={deadlocked} cycle={cycled}"),
    )
}

// ---- section 3b: partial-synchrony lint sweep + mutants ----------------

fn has_code(asm: &str, code: LintCode) -> bool {
    assemble(asm)
        .map(|p| p.verify().iter().any(|d| d.code == code))
        .unwrap_or(false)
}

fn psync_lints() -> Vec<LintRow> {
    // The shipped stream kernels must stay clean under PSL014-016...
    let corpus = [
        programs::sparse_stream_semiring(Precision::Fp64, "MUL", "ADD"),
        programs::sparse_stream_batched(Precision::Fp64, "MUL", "ADD"),
        programs::spmm_stream(Precision::Fp64, "MAX", "MIN"),
        programs::sparse_stream(Precision::Fp32, "ADD"),
    ];
    // ...and a seeded violation of each pass must be flagged.
    let mutants = [
        (
            LintCode::PhaseDivergence,
            "SDV DRF0, DRF0, MUL, FP64\nCEXIT SPVQ0\nJUMP 0, 0, 0\n".to_string(),
        ),
        (
            LintCode::FusionSafety,
            // The first SPVDV pops SPVQ0; the second combines the now
            // stale DRF2 gather anyway.
            "SPMOV SPVQ0, BANK, ROW, FP64\nSPMOV SPVQ0, BANK, COL, FP64\n\
             SPMOV SPVQ0, BANK, VAL, FP64\nSPMOV SPVQ0, BANK, ROW, FP64\n\
             SPMOV SPVQ0, BANK, COL, FP64\nSPMOV SPVQ0, BANK, VAL, FP64\n\
             INDMOV DRF2, SPVQ0, FP64\nSPVDV SPVQ1, SPVQ0, DRF2, MUL, INTER, FP64\n\
             SPVDV SPVQ1, SPVQ0, DRF2, MUL, INTER, FP64\nEXIT\n"
                .to_string(),
        ),
        (
            LintCode::CExitTermination,
            "SPMOV SPVQ0, BANK, ROW, FP64\nCEXIT SPVQ0\nJUMP 0, 0, 0\n".to_string(),
        ),
    ];
    mutants
        .into_iter()
        .map(|(code, mutant)| {
            let corpus_clean = corpus.iter().all(|asm| !has_code(asm, code));
            let mutant_caught = has_code(&mutant, code);
            println!(
                "model\tlint\t{}\tcorpus_clean={corpus_clean}\tmutant_caught={mutant_caught}",
                code.code()
            );
            LintRow {
                code: code.code().to_string(),
                corpus_clean,
                mutant_caught,
            }
        })
        .collect()
}

fn parse_budget() -> usize {
    let mut budget = DEFAULT_BUDGET;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget takes an execution count");
            }
            other => panic!("unknown argument {other:?} (usage: psim_model [--budget N])"),
        }
    }
    budget.max(1)
}

fn main() {
    let budget = parse_budget();
    println!("# psim_model: scheduler scenarios at budget {budget}, then mutation self-checks");
    order::reset();

    // Section 1: real-scheduler scenarios. The service-driving ones
    // simulate kernels on every execution, so they get a reduced budget.
    let scenarios = vec![
        scenario_admission_backpressure(budget),
        scenario_close_blocked_waiters(budget.saturating_mul(3)),
        scenario_store_eviction_race(budget),
        scenario_fusion_equivalence((budget / 8).max(200)),
    ];

    // Section 2: snapshot the production lock-order graph *before* the
    // mutation section pollutes it with its seeded inversion.
    let lock_order_edges: Vec<(String, String)> = order::edges()
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    let lock_order_acyclic = order::find_cycle().is_none();
    println!(
        "model\tlock-order\tedges={}\tacyclic={lock_order_acyclic}",
        lock_order_edges.len()
    );

    // Section 3: the checker must catch its own seeded bugs.
    let mutations = vec![
        mutation_double_lock(),
        mutation_dropped_notify(budget),
        mutation_swapped_lock_order(budget),
    ];
    let lints = psync_lints();

    let scenarios_ok = scenarios
        .iter()
        .all(|s| s.failure.is_empty() && s.executions > 0);
    let mutations_ok = mutations.iter().all(|m| m.caught);
    let lints_ok = lints.iter().all(|l| l.corpus_clean && l.mutant_caught);
    let pass = scenarios_ok && lock_order_acyclic && mutations_ok && lints_ok;

    let report = ModelReport {
        budget,
        scenarios,
        lock_order_edges,
        lock_order_acyclic,
        mutations,
        lints,
        pass,
    };
    let json = report.to_json();
    let path = "results/psim_model.json";
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, format!("{json}\n")))
    {
        eprintln!("psim_model: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("psim_model: wrote {path}");

    if !pass {
        eprintln!(
            "psim_model: GATE FAILED (scenarios_ok={scenarios_ok} acyclic={lock_order_acyclic} \
             mutations_ok={mutations_ok} lints_ok={lints_ok})"
        );
        std::process::exit(1);
    }
    println!("psim_model: every schedule explored clean, every mutant caught");
}
