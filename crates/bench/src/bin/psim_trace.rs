//! psim-trace: the cycle-attribution observability report and CI gate.
//!
//! Two halves:
//!
//! 1. **Conservation gate** — the full kernel self-test battery runs with
//!    psim-trace attribution on in both execution modes; any conservation
//!    residual surfaces through the engine's audit as a `protocol`
//!    violation and fails the run, as does any per-kernel run below whose
//!    wall attribution does not cover its `dram_cycles` exactly.
//! 2. **Stall-breakdown report** — SpMV, SpTRSV and BLAS-1 (DAXPY) run
//!    across the precision envelope on a traced device, and the per-run
//!    wall-clock breakdown is rendered per category and written to
//!    `results/BENCH_trace.json`.
//!
//! Exit status is non-zero on any conservation violation, so CI catches
//! an attribution cursor bug the moment it appears.

use psim_kernels::blas1::Blas1Pim;
use psim_kernels::{all_pass, selftest, KernelRun, PimDevice, SpmvPim, SptrsvPim};
use psim_sparse::triangular::{unit_triangular_from, Triangle};
use psim_sparse::{gen, Precision};
use psyncpim_core::{Category, ExecMode};
use serde::Serialize;

/// One traced kernel run in the report.
#[derive(Serialize)]
struct TraceRow {
    kernel: &'static str,
    mode: &'static str,
    precision: String,
    dram_cycles: u64,
    attr: psyncpim_core::CycleBreakdown,
    pu_attr: psyncpim_core::CycleBreakdown,
    events_recorded: usize,
    events_dropped: u64,
    conservation_ok: bool,
}

/// The full machine-readable report.
#[derive(Serialize)]
struct TraceReport {
    rows: Vec<TraceRow>,
    violations: usize,
}

fn traced(mode: ExecMode) -> PimDevice {
    let mut d = PimDevice::tiny(2);
    d.mode = mode;
    d.trace = true;
    d
}

fn mode_label(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::AllBank => "all-bank",
        ExecMode::PerBank => "per-bank",
    }
}

/// Audit one traced run and build its report row.
fn row(
    kernel: &'static str,
    mode: ExecMode,
    precision: Precision,
    run: &KernelRun,
    violations: &mut usize,
) -> TraceRow {
    let metrics = run.metrics.as_ref().expect("device traces");
    let mut ok = true;
    for f in metrics.conservation_failures() {
        println!("trace\tVIOLATION\t{kernel}\t{precision}\t{f}");
        ok = false;
    }
    if run.attr.total() != run.dram_cycles {
        println!(
            "trace\tVIOLATION\t{kernel}\t{precision}\twall attribution {} != dram_cycles {}",
            run.attr.total(),
            run.dram_cycles
        );
        ok = false;
    }
    if !ok {
        *violations += 1;
    }
    TraceRow {
        kernel,
        mode: mode_label(mode),
        precision: precision.to_string(),
        dram_cycles: run.dram_cycles,
        attr: run.attr,
        pu_attr: metrics.aggregate_pu(),
        events_recorded: metrics.events.len(),
        events_dropped: metrics.events_dropped,
        conservation_ok: ok,
    }
}

fn print_header() {
    print!("# kernel\tmode\tprec\tcycles");
    for cat in Category::ALL {
        print!("\t{}%", cat.label());
    }
    println!("\tdropped");
}

fn print_row(r: &TraceRow, view: &psyncpim_core::CycleBreakdown) {
    print!(
        "{}\t{}\t{}\t{}",
        r.kernel, r.mode, r.precision, r.dram_cycles
    );
    for cat in Category::ALL {
        print!("\t{:5.1}", 100.0 * view.fraction(cat));
    }
    println!("\t{}", r.events_dropped);
}

fn main() {
    let mut violations = 0usize;

    // Gate 1: the self-test battery with attribution on. Tracing runs
    // under the engine's validation audit, so a conservation residual in
    // any kernel family fails the battery's `protocol` entry.
    for mode in [ExecMode::AllBank, ExecMode::PerBank] {
        match selftest(&traced(mode)) {
            Ok(results) => {
                let label = mode_label(mode);
                for r in results.iter().filter(|r| !r.pass) {
                    println!(
                        "selftest\t{label}\t{}\tFAIL\tmax_err={:.3e}",
                        r.kernel, r.max_err
                    );
                }
                if all_pass(&results) {
                    println!("selftest\t{label}\tok\t({} checks, traced)", results.len());
                } else {
                    violations += results.iter().filter(|r| !r.pass).count();
                }
            }
            Err(e) => {
                println!("selftest\t{}\tERROR\t{e}", mode_label(mode));
                violations += 1;
            }
        }
    }

    // Gate 2 + report: the stall-breakdown sweep across the precision
    // envelope, both modes for SpMV and one mode for the rest.
    let n = 96usize;
    let a = gen::rmat(n, 3, 7);
    let x = gen::dense_vector(n, 1);
    let y = gen::dense_vector(n, 2);
    let t = unit_triangular_from(&a, Triangle::Lower).expect("square matrix");
    let b = t.matvec(&x);

    let mut rows = Vec::new();
    for precision in Precision::ALL {
        for mode in [ExecMode::AllBank, ExecMode::PerBank] {
            let run = SpmvPim::new(traced(mode), precision)
                .run(&a, &x)
                .expect("spmv");
            rows.push(row("SpMV", mode, precision, &run.run, &mut violations));
        }
        {
            let mut solver = SptrsvPim::new(traced(ExecMode::AllBank));
            solver.precision = precision;
            let run = solver.run(&t, &b).expect("sptrsv");
            rows.push(row(
                "SpTRSV",
                ExecMode::AllBank,
                precision,
                &run.run,
                &mut violations,
            ));
        }
        {
            let run = Blas1Pim::new(traced(ExecMode::AllBank), precision)
                .daxpy(1.5, &x, &y)
                .expect("daxpy");
            rows.push(row(
                "DAXPY",
                ExecMode::AllBank,
                precision,
                &run.run,
                &mut violations,
            ));
        }
    }
    println!("# wall-clock breakdown (slowest channel's bus view)");
    print_header();
    for r in &rows {
        print_row(r, &r.attr);
    }
    println!("# per-PU aggregate breakdown (all PUs, all channels)");
    print_header();
    for r in &rows {
        print_row(r, &r.pu_attr);
    }

    let report = TraceReport { rows, violations };
    let json = report.to_json();
    let path = "results/BENCH_trace.json";
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, format!("{json}\n")))
    {
        eprintln!("psim-trace: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("psim-trace: wrote {path}");

    if violations > 0 {
        eprintln!("psim-trace: {violations} conservation/selftest violation(s)");
        std::process::exit(1);
    }
    println!("psim-trace: every cycle attributed, conservation holds");
}
