//! Figure 11: end-to-end application speedup of pSyncPIM over the GPU.
//! Paper: graphs 51.6× geomean; linear solvers 2.2× geomean.

use psim_bench::apps_suite::{operand, run_app, App, Backend};
use psim_bench::{fmt_x, geomean, human_row, tsv_row, Args};
use psim_kernels::PimDevice;

fn main() {
    let args = Args::parse();
    // Graph apps stay small (each PIM kernel is fully simulated); the
    // solvers run larger so multi-chunk levels shape the SpTRSV cost as
    // they do at paper scale.
    let cap_dim_graphs = 1_200;
    let cap_dim_solvers = 4_000;
    let per_app_matrices = 2;
    println!(
        "# Figure 11 — application speedup vs GPU (scale {}, caps {cap_dim_graphs}/{cap_dim_solvers})",
        args.scale
    );
    human_row(
        &args,
        &[
            "app".into(),
            "GPU s".into(),
            "PIM s".into(),
            "speedup".into(),
        ],
    );
    let device = PimDevice::psync_1x();
    let mut graph_speedups = Vec::new();
    let mut solver_speedups = Vec::new();
    for app in App::ALL {
        let mut gpu_s = 0.0;
        let mut pim_s = 0.0;
        for spec in app.matrices().into_iter().take(per_app_matrices) {
            if !args.selects(spec) {
                continue;
            }
            let cap = match app {
                App::PCg | App::PBcgs => cap_dim_solvers,
                _ => cap_dim_graphs,
            };
            let a = operand(app, spec, args.scale, cap);
            gpu_s += run_app(app, &a, &Backend::Gpu).total_s();
            pim_s += run_app(app, &a, &Backend::Pim(Box::new(device.clone()))).total_s();
        }
        if pim_s <= 0.0 {
            continue;
        }
        let speedup = gpu_s / pim_s;
        match app {
            App::PCg | App::PBcgs => solver_speedups.push(speedup),
            _ => graph_speedups.push(speedup),
        }
        human_row(
            &args,
            &[
                app.name().to_string(),
                format!("{gpu_s:.3e}"),
                format!("{pim_s:.3e}"),
                fmt_x(speedup),
            ],
        );
        tsv_row(
            "fig11",
            &[
                app.name().to_string(),
                gpu_s.to_string(),
                pim_s.to_string(),
                speedup.to_string(),
            ],
        );
    }
    println!();
    println!(
        "graph apps geomean:   {} (paper: 51.6x)",
        fmt_x(geomean(&graph_speedups))
    );
    println!(
        "linear solver geomean: {} (paper: 2.2x)",
        fmt_x(geomean(&solver_speedups))
    );
    tsv_row(
        "fig11-geomean",
        &[
            geomean(&graph_speedups).to_string(),
            geomean(&solver_speedups).to_string(),
        ],
    );
}
