//! Diagnostic: where does pSyncPIM SpMV time go? (Not a paper figure.)

use psim_bench::Args;
use psim_kernels::{PimDevice, SpmvPim};
use psim_sparse::suite::by_name;
use psim_sparse::{gen, Precision};

fn main() {
    let args = Args::parse();
    let name = args.only.as_deref().unwrap_or("pwtk");
    let spec = by_name(name).expect("matrix name");
    let a = spec.generate(args.scale);
    let x = gen::dense_vector(a.ncols(), 7);
    println!("matrix {name} dim {} nnz {}", a.nrows(), a.nnz());
    for (label, dev) in [
        ("psync1x", PimDevice::psync_1x()),
        ("psync3x", PimDevice::psync_3x()),
    ] {
        let r = SpmvPim::new(dev, Precision::Fp64).run(&a, &x).unwrap();
        let st = r.stats;
        println!(
            "{label}: total {:.3e}s kernel {:.3e}s host {:.3e}s waves {} phases {} rounds {} cmds {} ext {}B",
            r.run.total_s(), r.run.kernel_s, r.run.host_s, r.waves, r.run.phases, r.run.rounds,
            r.run.commands, r.run.external_bytes
        );
        println!(
            "  partition: subs {} banks_used {} max_bank_nnz {} imbalance {:.2} repl {}",
            st.num_submatrices,
            st.banks_used,
            st.max_bank_nnz,
            st.imbalance(),
            st.input_replication
        );
        println!(
            "  ns/nnz = {:.3}, kernel ns/cmd = {:.2}",
            r.run.total_s() * 1e9 / a.nnz() as f64,
            r.run.kernel_s * 1e9 / r.run.commands as f64
        );
    }
}
