//! ablation-autotune: the format/partition autotuner CI gate.
//!
//! Sweeps the benchmark suite (rmat, banded FEM, web hubs, layered DAG)
//! plus the adversarial corpus across the fixed layout grid
//! ([`psim_kernels::layout_grid`]) and the [`psim_tune::Autotuner`]'s
//! per-matrix choice, with full cycle simulation under *both* engine
//! tiers and validation on. Four gates:
//!
//! 1. **Oracle** — [`run_layout_oracle`] (every layout × adversarial
//!    shape against the CPU reference) passes under the tick tier and
//!    the event tier.
//! 2. **Correctness per execution** — every simulated run here (fixed or
//!    tuned) matches the CPU reference to 1e-9, passes [`audit_run`],
//!    and produces bit-identical values and cycles on both tiers.
//! 3. **Tuning wins** — the geomean of the tuned choice's simulated
//!    cycles over the whole corpus is no worse than the best *single*
//!    fixed configuration.
//! 4. **Model fidelity** — on layout pairs the simulator separates by at
//!    least [`RANK_SEPARATION`], the analytical model's ordering agrees
//!    with the simulated ordering at least [`RANK_AGREEMENT_FLOOR`] of
//!    the time (the tuner's tie-breaker has to be trustworthy).
//!
//! Writes `results/BENCH_autotune.json`; exits non-zero on any gate
//! failure.

use psim_kernels::{audit_run, layout_grid, run_layout_oracle, CostModel, PimDevice, SpmvPim};
use psim_sparse::{adversarial, gen, Coo, Layout, Precision};
use psim_tune::Autotuner;
use psyncpim_core::EngineTier;
use serde::Serialize;

use psim_bench::geomean;

/// Pairs closer than this (relative simulated-cycle gap) are ties the
/// model is free to order either way.
const RANK_SEPARATION: f64 = 0.05;

/// Minimum pairwise rank agreement between analytical and simulated
/// cycles on separated pairs.
const RANK_AGREEMENT_FLOOR: f64 = 0.90;

/// One layout's outcome on one matrix.
#[derive(Serialize)]
struct LayoutCell {
    label: String,
    sim_cycles: u64,
    model_cycles: u64,
}

/// One corpus matrix with its sweep.
#[derive(Serialize)]
struct MatrixRow {
    name: String,
    n: usize,
    nnz: usize,
    tuned_label: String,
    tuned_cycles: u64,
    best_fixed_cycles: u64,
    fixed: Vec<LayoutCell>,
}

/// Geomean of one fixed configuration over the corpus.
#[derive(Serialize)]
struct ConfigGeomean {
    label: String,
    geomean_cycles: f64,
}

#[derive(Serialize)]
struct AutotuneReport {
    corpus: Vec<MatrixRow>,
    fixed: Vec<ConfigGeomean>,
    best_fixed_label: String,
    best_fixed_geomean: f64,
    tuned_geomean: f64,
    tuned_vs_best_fixed: f64,
    rank_pairs: usize,
    rank_agreements: usize,
    rank_agreement: f64,
    oracle_cases_tick: usize,
    oracle_cases_event: usize,
    violations: usize,
}

/// The corpus: the benchmark suite's four pattern families at a bench
/// scale plus every adversarial shape.
fn corpus(n: usize) -> Vec<(String, Coo)> {
    let mut out = vec![
        ("rmat".to_string(), gen::rmat(n, 4, 1)),
        ("banded_fem".to_string(), gen::banded_fem(n, 8, 5, 2)),
        ("web_hubs".to_string(), gen::web_hubs(n, n * 4, 3)),
        ("layered_dag".to_string(), gen::layered_dag(n, 4, 6, 4)),
    ];
    for (name, a) in adversarial::suite(n, 7) {
        out.push((name.to_string(), a));
    }
    out
}

/// Simulate one layout on both tiers, gate correctness, return cycles.
fn simulate(
    device: &PimDevice,
    a: &Coo,
    x: &[f64],
    reference: &[f64],
    layout: Layout,
    tag: &str,
    violations: &mut usize,
) -> u64 {
    let mut runs = Vec::new();
    for tier in [EngineTier::Tick, EngineTier::Event] {
        let mut dev = device.clone();
        dev.tier = tier;
        dev.validate = true;
        let r = SpmvPim::new(dev, Precision::Fp64)
            .with_layout(layout)
            .run(a, x)
            .unwrap_or_else(|e| panic!("{tag}: simulation failed: {e}"));
        for failure in audit_run(&r.run) {
            println!("audit\tVIOLATION\t{tag}: {failure}");
            *violations += 1;
        }
        let worst =
            r.y.iter()
                .zip(reference)
                .map(|(got, want)| (got - want).abs() / want.abs().max(1.0))
                .fold(0.0f64, f64::max);
        if worst > 1e-9 {
            println!("oracle\tVIOLATION\t{tag}: diff {worst:.2e} vs CPU reference");
            *violations += 1;
        }
        runs.push(r);
    }
    let (tick, event) = (&runs[0], &runs[1]);
    if tick.run.dram_cycles != event.run.dram_cycles || tick.y != event.y {
        println!(
            "tiers\tVIOLATION\t{tag}: tick {} vs event {} cycles",
            tick.run.dram_cycles, event.run.dram_cycles
        );
        *violations += 1;
    }
    tick.run.dram_cycles
}

fn main() {
    let n = 96usize;
    let device = PimDevice::tiny(2);
    let mut violations = 0usize;

    // --- gate 1: the layout × adversarial-shape oracle, both tiers -----
    let mut oracle_cases = [0usize; 2];
    for (slot, tier) in [EngineTier::Tick, EngineTier::Event]
        .into_iter()
        .enumerate()
    {
        let mut dev = device.clone();
        dev.tier = tier;
        let report = run_layout_oracle(&dev, 48, 0xA070).expect("layout oracle must run");
        oracle_cases[slot] = report.cases.len();
        for case in report.cases.iter().filter(|c| !c.pass) {
            println!(
                "oracle\tVIOLATION\t{} {}: err {:.2e} (tol {:.0e}), audit: {}",
                case.kernel,
                case.matrix,
                case.max_err,
                case.tolerance,
                case.audit.join("; ")
            );
            violations += 1;
        }
    }
    println!(
        "oracle\t{} tick + {} event layout cases",
        oracle_cases[0], oracle_cases[1]
    );

    // --- gates 2-4: the ablation sweep ---------------------------------
    let grid = layout_grid();
    let model = CostModel::new(&device);
    let tuner = Autotuner::new(&device);
    let mut rows = Vec::new();
    let (mut rank_pairs, mut rank_agreements) = (0usize, 0usize);
    for (name, a) in corpus(n) {
        let x = gen::dense_vector(a.ncols(), 11);
        let reference = a.spmv(&x);
        let mut fixed = Vec::new();
        for &layout in &grid {
            let label = layout.label();
            let sim = simulate(
                &device,
                &a,
                &x,
                &reference,
                layout,
                &format!("{name} {label}"),
                &mut violations,
            );
            let model_cycles = model.spmv_layout(&a, Precision::Fp64, layout).cycles;
            fixed.push(LayoutCell {
                label,
                sim_cycles: sim,
                model_cycles,
            });
        }
        // Pairwise rank agreement on separated pairs.
        for i in 0..fixed.len() {
            for j in i + 1..fixed.len() {
                let (si, sj) = (fixed[i].sim_cycles as f64, fixed[j].sim_cycles as f64);
                if (si - sj).abs() / si.min(sj).max(1.0) < RANK_SEPARATION {
                    continue;
                }
                rank_pairs += 1;
                let (mi, mj) = (fixed[i].model_cycles, fixed[j].model_cycles);
                if (si < sj) == (mi < mj) {
                    rank_agreements += 1;
                }
            }
        }
        let decision = tuner.decide(&a, Precision::Fp64);
        let tuned_label = decision.label.clone();
        let tuned_cycles = simulate(
            &device,
            &a,
            &x,
            &reference,
            decision.choice,
            &format!("{name} tuned:{tuned_label}"),
            &mut violations,
        );
        let best_fixed_cycles = fixed.iter().map(|c| c.sim_cycles).min().unwrap_or(0);
        println!(
            "tune\t{name}\t{tuned_label}\t{tuned_cycles} cycles (best fixed {best_fixed_cycles})"
        );
        rows.push(MatrixRow {
            name,
            n: a.nrows(),
            nnz: a.nnz(),
            tuned_label,
            tuned_cycles,
            best_fixed_cycles,
            fixed,
        });
    }

    // Per-configuration geomeans over the corpus.
    let mut fixed_geo = Vec::new();
    for (i, layout) in grid.iter().enumerate() {
        let cycles: Vec<f64> = rows.iter().map(|r| r.fixed[i].sim_cycles as f64).collect();
        fixed_geo.push(ConfigGeomean {
            label: layout.label(),
            geomean_cycles: geomean(&cycles),
        });
    }
    let tuned_cycles: Vec<f64> = rows.iter().map(|r| r.tuned_cycles as f64).collect();
    let tuned_geomean = geomean(&tuned_cycles);
    let best = fixed_geo
        .iter()
        .min_by(|a, b| a.geomean_cycles.total_cmp(&b.geomean_cycles))
        .expect("non-empty grid");
    let (best_fixed_label, best_fixed_geomean) = (best.label.clone(), best.geomean_cycles);
    for cfg in &fixed_geo {
        println!("geomean\t{}\t{:.1}", cfg.label, cfg.geomean_cycles);
    }
    println!("geomean\ttuned\t{tuned_geomean:.1}\t(best fixed: {best_fixed_label} {best_fixed_geomean:.1})");
    // Strict inequality up to floating-point geomean noise: the tuner may
    // tie the best fixed config but must never lose to it.
    if tuned_geomean > best_fixed_geomean * (1.0 + 1e-9) {
        println!(
            "tune\tVIOLATION\ttuned geomean {tuned_geomean:.1} worse than fixed {best_fixed_label} {best_fixed_geomean:.1}"
        );
        violations += 1;
    }

    let rank_agreement = if rank_pairs == 0 {
        1.0
    } else {
        rank_agreements as f64 / rank_pairs as f64
    };
    println!(
        "rank\t{rank_agreements}/{rank_pairs} separated pairs agree ({:.1}%, floor {:.0}%)",
        rank_agreement * 100.0,
        RANK_AGREEMENT_FLOOR * 100.0
    );
    if rank_agreement < RANK_AGREEMENT_FLOOR {
        println!(
            "rank\tVIOLATION\tanalytical/simulated rank agreement {:.1}% below {:.0}%",
            rank_agreement * 100.0,
            RANK_AGREEMENT_FLOOR * 100.0
        );
        violations += 1;
    }

    let report = AutotuneReport {
        corpus: rows,
        fixed: fixed_geo,
        best_fixed_label,
        best_fixed_geomean,
        tuned_geomean,
        tuned_vs_best_fixed: tuned_geomean / best_fixed_geomean,
        rank_pairs,
        rank_agreements,
        rank_agreement,
        oracle_cases_tick: oracle_cases[0],
        oracle_cases_event: oracle_cases[1],
        violations,
    };
    let json = report.to_json();
    let path = "results/BENCH_autotune.json";
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, format!("{json}\n")))
    {
        eprintln!("ablation-autotune: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("ablation-autotune: wrote {path}");

    if violations > 0 {
        eprintln!("ablation-autotune: {violations} gate violation(s)");
        std::process::exit(1);
    }
    println!("ablation-autotune: tuned layouts win, every execution verified on both tiers");
}
