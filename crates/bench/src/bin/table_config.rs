//! Tables VII and VIII: the memory and processing-unit configuration.

use psim_dram::HbmConfig;
use psim_sparse::Precision;

fn main() {
    let c = HbmConfig::default();
    println!("# Table VII — memory configuration");
    println!("protocol                 HBM2");
    println!("bank groups              {}", c.num_bankgroups);
    println!("banks per group          {}", c.banks_per_group);
    println!("memory rows              {}", c.num_rows);
    println!("memory columns           {}", c.num_cols);
    println!("row size                 {} B", c.row_bytes());
    println!("stacks                   {}", c.num_stacks);
    println!("pseudo-channels          {}", c.num_pseudo_channels);
    println!("address mapping          rorabgbachco (rank 0 bits)");
    println!("clock                    {:.0} MHz", c.clock_hz / 1e6);
    println!(
        "external / internal BW   {:.0} GB/s / {:.0} TB/s",
        c.external_bw / 1e9,
        c.internal_bw / 1e12
    );
    println!(
        "capacity                 {} GB",
        c.capacity_bytes() / (1024 * 1024 * 1024)
    );
    println!(
        "timing (cycles)          tRCD {} tRP {} tRAS {} tCCD_S {} tCCD_L {} tRRD_S {} tRRD_L {} tFAW {} RL {} WL {}",
        c.timing.t_rcd,
        c.timing.t_rp,
        c.timing.t_ras,
        c.timing.t_ccd_s,
        c.timing.t_ccd_l,
        c.timing.t_rrd_s,
        c.timing.t_rrd_l,
        c.timing.t_faw,
        c.timing.rl,
        c.timing.wl
    );

    println!();
    println!("# Table VIII — processing unit (per bank)");
    println!("datapath width           32 B");
    print!("ALU lanes               ");
    for p in Precision::ALL {
        print!(" {p}:{}", p.lanes());
    }
    println!();
    println!("clock                    250 MHz");
    println!("instruction registers    4 B x 32");
    println!("scalar register          16 B");
    println!("dense vector registers   32 B x 3");
    println!("sparse vector queues     192 B x 3 (3 x 64 B sub-queues)");
    println!("processing units / cube  {}", c.total_banks());
}
