//! Consolidate the `#TSV` rows that the figure binaries emit into one
//! markdown report (headline numbers plus per-figure tables).
//!
//! ```sh
//! for b in fig03_commands fig08_spmv fig09_sptrsv; do
//!     cargo run --release -p psim-bench --bin $b > results/$b.txt; done
//! cargo run --release -p psim-bench --bin report -- results > REPORT.md
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    let rows = collect_tsv(Path::new(&dir));
    if rows.is_empty() {
        eprintln!("no #TSV rows found under {dir}; run the fig* binaries first");
        std::process::exit(1);
    }
    let mut out = String::new();
    let _ = writeln!(out, "# pSyncPIM reproduction report\n");
    let _ = writeln!(out, "Generated from `{dir}/*.txt`.\n");

    validation(&mut out, Path::new(&dir));
    headline(&mut out, &rows);
    per_figure(&mut out, &rows);
    print!("{out}");
}

/// Two-sided validation provenance: the static lint gate's summary (when
/// `psim_lint.json` is present) alongside the dynamic psim-check gate.
fn validation(out: &mut String, dir: &Path) {
    let _ = writeln!(out, "## Validation\n");
    let _ = writeln!(
        out,
        "Every number below comes from a two-sided validated build: \
         `psim-lint` statically verifies each shipped program (CFG + \
         abstract interpretation, diagnostic codes PSL001–PSL013) before \
         `psim-check` replays the emitted command streams through an \
         independent JEDEC protocol checker and diffs kernel numerics \
         against CPU oracles. Both gate `ci.sh`.\n"
    );
    let Ok(json) = fs::read_to_string(dir.join("psim_lint.json")) else {
        return;
    };
    let field = |k: &str| -> Option<u64> {
        let at = json.find(&format!("\"{k}\":"))?;
        json[at..]
            .split(':')
            .nth(1)?
            .split([',', '}'])
            .next()?
            .trim()
            .parse()
            .ok()
    };
    if let (Some(p), Some(c), Some(e), Some(w)) = (
        field("programs"),
        field("clean"),
        field("errors"),
        field("warnings"),
    ) {
        let _ = writeln!(
            out,
            "psim-lint summary: {p} programs linted, {c} clean, {e} \
             errors, {w} warnings.\n"
        );
    }
}

/// tag -> list of field rows.
fn collect_tsv(dir: &Path) -> BTreeMap<String, Vec<Vec<String>>> {
    let mut rows: BTreeMap<String, Vec<Vec<String>>> = BTreeMap::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return rows;
    };
    for entry in entries.flatten() {
        let Ok(text) = fs::read_to_string(entry.path()) else {
            continue;
        };
        for line in text.lines() {
            let mut fields = line.split('\t');
            if fields.next() != Some("#TSV") {
                continue;
            }
            let Some(tag) = fields.next() else { continue };
            rows.entry(tag.to_string())
                .or_default()
                .push(fields.map(str::to_string).collect());
        }
    }
    rows
}

fn get1(rows: &BTreeMap<String, Vec<Vec<String>>>, tag: &str, idx: usize) -> Option<f64> {
    rows.get(tag)?.last()?.get(idx)?.parse().ok()
}

fn headline(out: &mut String, rows: &BTreeMap<String, Vec<Vec<String>>>) {
    let _ = writeln!(out, "## Headline vs paper\n");
    let _ = writeln!(out, "| metric | paper | measured |");
    let _ = writeln!(out, "|---|---|---|");
    let mut row = |name: &str, paper: &str, v: Option<f64>| {
        if let Some(v) = v {
            let _ = writeln!(out, "| {name} | {paper} | {v:.2} |");
        }
    };
    row(
        "SpMV speedup vs GPU, 1x (geomean)",
        "1.96x",
        get1(rows, "fig08-geomean", 2),
    );
    row(
        "SpMV speedup vs GPU, 3x",
        "4.43x",
        get1(rows, "fig08-geomean", 3),
    );
    row(
        "SpMV per-bank vs GPU",
        "~0.31x",
        get1(rows, "fig08-geomean", 0),
    );
    row("SpaceA vs GPU", "~3.5x", get1(rows, "fig08-geomean", 1));
    row(
        "SpTRSV speedup vs cuSPARSE (geomean)",
        "3.53x",
        get1(rows, "fig09-geomean", 0),
    );
    row(
        "dense BLAS pSync/per-bank (geomean)",
        "9.6x",
        get1(rows, "fig10-geomean", 0),
    );
    row(
        "graph apps vs GPU (geomean)",
        "51.6x",
        get1(rows, "fig11-geomean", 0),
    );
    row(
        "linear solvers vs GPU (geomean)",
        "2.2x",
        get1(rows, "fig11-geomean", 1),
    );
    row(
        "TC accel+PIM / accel-only (geomean)",
        "2.0x",
        get1(rows, "fig13-geomean", 0),
    );
    row(
        "energy per-bank / pSync (mean)",
        "2.67x",
        get1(rows, "fig14-mean", 0),
    );
    row(
        "PB/AB command ratio (mean)",
        "2.74x",
        get1(rows, "fig03-mean", 0),
    );
    // Beyond-paper subsystem: the multi-tenant scheduler's jobs/sec scaling
    // when the device is carved into 4 channel shards (column 4 of the
    // 4-shard `sched` row; goal is >1.5x over the unsharded device).
    let sched4 = rows
        .get("sched")
        .and_then(|r| {
            r.iter()
                .find(|f| f.first().map(String::as_str) == Some("4"))
        })
        .and_then(|f| f.get(4)?.parse().ok());
    row("psim-sched jobs/sec, 4 shards vs 1", ">1.5x (goal)", sched4);
    let _ = writeln!(out);
}

fn per_figure(out: &mut String, rows: &BTreeMap<String, Vec<Vec<String>>>) {
    let tables: &[(&str, &str, &[&str])] = &[
        (
            "fig03",
            "Figure 3 — SpMV memory commands, per-bank vs all-bank",
            &["matrix", "AB cmds", "PB cmds", "ratio"],
        ),
        (
            "fig08",
            "Figure 8 — SpMV speedups over the GPU model",
            &[
                "matrix", "nnz", "per-bank", "SpaceA", "pSync 1x", "pSync 3x",
            ],
        ),
        (
            "fig09",
            "Figure 9 — SpTRSV speedups over cuSPARSE",
            &["triangle", "matrix", "nnz", "levels", "speedup"],
        ),
        (
            "fig10",
            "Figure 10 — dense BLAS throughput (Gelem/s)",
            &["kernel", "precision", "per-bank", "pSync", "speedup"],
        ),
        (
            "fig11",
            "Figure 11 — application speedups",
            &["app", "GPU s", "PIM s", "speedup"],
        ),
        (
            "fig13",
            "Figure 13 — TC with the SpGEMM accelerator",
            &[
                "matrix",
                "triangles",
                "accel-only s",
                "accel+PIM s",
                "speedup",
            ],
        ),
        (
            "fig14",
            "Figure 14 — SpMV energy",
            &["matrix", "PB J", "pSync J", "ratio", "pSync W"],
        ),
        (
            "sched",
            "psim-sched — multi-tenant throughput by shard count",
            &[
                "shards",
                "jobs",
                "makespan ms",
                "jobs/s (sim)",
                "speedup",
                "wait p95 us",
                "lat p50 us",
                "lat p95 us",
                "lat p99 us",
            ],
        ),
        (
            "sched-class",
            "psim-sched — per-class latency at 4 shards",
            &["class", "jobs", "lat p50 us", "lat p95 us"],
        ),
    ];
    for (tag, title, header) in tables {
        let Some(data) = rows.get(*tag) else { continue };
        let _ = writeln!(out, "## {title}\n");
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let _ = writeln!(out, "|{}", "---|".repeat(header.len()));
        for r in data {
            let cells: Vec<String> = r
                .iter()
                .map(|c| match c.parse::<f64>() {
                    Ok(v) if c.contains('.') || c.contains('e') => format!("{v:.3}"),
                    _ => c.clone(),
                })
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        let _ = writeln!(out);
    }
}
