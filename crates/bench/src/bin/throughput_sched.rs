//! Multi-tenant scheduler throughput: jobs/sec by shard count.
//!
//! Serves the same multi-tenant mix of small SpMV and BLAS-1 jobs through
//! the `psim-sched` executor while the device is carved into 1, 2, 4 and 8
//! channel shards. Small jobs pay fixed per-launch overheads (mode
//! switches, CRF programming) no matter how many channels they get, so
//! giving each job a slice and running slices concurrently raises
//! jobs/sec — the scheduling analogue of partially synchronous execution.
//!
//! Output:
//!
//! * `#TSV sched <shards> <jobs> <makespan_ms> <jobs_per_s> <speedup>
//!   <wait_p95_us> <lat_p50_us> <lat_p95_us> <lat_p99_us>` per shard count,
//! * `#TSV sched-class <class> <jobs> <lat_p50_us> <lat_p95_us>` for the
//!   4-shard run's per-class latency split.

use psim_bench::{fmt_x, human_row, tsv_row, Args};
use psim_kernels::PimDevice;
use psim_sched::{
    BatchReport, ExecutorConfig, JobClass, JobKind, JobQueue, JobSpec, MatrixStore, ShardExecutor,
};
use psim_sparse::gen;
use std::sync::Arc;

/// The tenant mix: four tenants sharing three registered matrices, a
/// latency-sensitive tenant issuing small interactive jobs, and background
/// best-effort vector work.
fn build_queue(store: &MatrixStore, jobs_per_tenant: usize) -> JobQueue {
    let queue = JobQueue::bounded(16 * jobs_per_tenant.max(1));
    let web = store.get("web").expect("registered");
    let road = store.get("road").expect("registered");
    let social = store.get("social").expect("registered");
    for i in 0..jobs_per_tenant {
        let seed = i as u64;
        // Two batch tenants stream SpMV over their own matrices.
        queue
            .submit(JobSpec::batch(
                "analytics",
                JobKind::spmv(Arc::clone(&web), gen::dense_vector(web.ncols(), seed)),
            ))
            .expect("queue sized for the mix");
        queue
            .submit(JobSpec::batch(
                "routing",
                JobKind::spmv(
                    Arc::clone(&road),
                    gen::dense_vector(road.ncols(), seed + 100),
                ),
            ))
            .expect("queue sized for the mix");
        // An interactive tenant issues small latency-critical SpMVs.
        queue
            .submit(
                JobSpec::batch(
                    "frontend",
                    JobKind::spmv(
                        Arc::clone(&social),
                        gen::dense_vector(social.ncols(), seed + 200),
                    ),
                )
                .with_class(JobClass::Interactive),
            )
            .expect("queue sized for the mix");
        // Background vector maintenance runs best-effort.
        queue
            .submit(
                JobSpec::batch(
                    "maintenance",
                    JobKind::Norm2 {
                        x: gen::dense_vector(512, seed + 300),
                    },
                )
                .with_class(JobClass::BestEffort),
            )
            .expect("queue sized for the mix");
    }
    queue
}

fn run(
    store: &MatrixStore,
    device: &PimDevice,
    shards: usize,
    jobs_per_tenant: usize,
) -> BatchReport {
    let queue = build_queue(store, jobs_per_tenant);
    ShardExecutor::new(ExecutorConfig::sharded(device.clone(), shards))
        .expect("shards divide the channel count")
        .drain_and_run(&queue)
        .expect("job mix executes")
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let args = Args::parse();
    // Matrix sizes scale with --scale (default 0.1 keeps this under a
    // minute); degrees mirror a web / road / social sparsity mix.
    let dim = |base: usize| {
        ((base as f64 * args.scale) as usize)
            .max(64)
            .next_power_of_two()
    };
    let store = MatrixStore::new();
    store.insert("web", gen::rmat(dim(2048), 8, 1));
    store.insert("road", gen::rmat(dim(4096), 3, 2));
    store.insert("social", gen::rmat(dim(1024), 6, 3));
    let jobs_per_tenant = ((8.0 * args.scale.max(0.1) / 0.1) as usize).clamp(4, 64);
    let device = PimDevice::psync_1x();

    human_row(
        &args,
        &[
            "shards".to_string(),
            "jobs".to_string(),
            "makespan ms".to_string(),
            "jobs/s (sim)".to_string(),
            "speedup".to_string(),
            "wait p95 us".to_string(),
            "lat p50 us".to_string(),
            "lat p95 us".to_string(),
            "lat p99 us".to_string(),
            "host s".to_string(),
        ],
    );
    let mut base_jobs_per_s = 0.0;
    let mut four_shard: Option<BatchReport> = None;
    for shards in [1usize, 2, 4, 8] {
        let report = run(&store, &device, shards, jobs_per_tenant);
        let sim = &report.stats.sim;
        if shards == 1 {
            base_jobs_per_s = sim.jobs_per_sim_s;
        }
        let speedup = if base_jobs_per_s > 0.0 {
            sim.jobs_per_sim_s / base_jobs_per_s
        } else {
            0.0
        };
        let us = |ns: u64| ns as f64 / 1e3;
        human_row(
            &args,
            &[
                shards.to_string(),
                sim.jobs.to_string(),
                format!("{:.3}", sim.makespan_s * 1e3),
                format!("{:.0}", sim.jobs_per_sim_s),
                fmt_x(speedup),
                format!("{:.1}", us(sim.wait_ns.p95())),
                format!("{:.1}", us(sim.latency_ns.p50())),
                format!("{:.1}", us(sim.latency_ns.p95())),
                format!("{:.1}", us(sim.latency_ns.p99())),
                format!("{:.2}", report.stats.host.walltime_s),
            ],
        );
        tsv_row(
            "sched",
            &[
                shards.to_string(),
                sim.jobs.to_string(),
                format!("{:.4}", sim.makespan_s * 1e3),
                format!("{:.1}", sim.jobs_per_sim_s),
                format!("{speedup:.3}"),
                format!("{:.2}", us(sim.wait_ns.p95())),
                format!("{:.2}", us(sim.latency_ns.p50())),
                format!("{:.2}", us(sim.latency_ns.p95())),
                format!("{:.2}", us(sim.latency_ns.p99())),
            ],
        );
        if shards == 4 {
            four_shard = Some(report);
        }
    }

    // Class isolation at 4 shards: interactive jobs see lower latency than
    // the batch/best-effort traffic they share the device with.
    if let Some(report) = four_shard {
        if !args.tsv_only {
            println!();
        }
        human_row(
            &args,
            &[
                "class (4 shards)".to_string(),
                "jobs".to_string(),
                "lat p50 us".to_string(),
                "lat p95 us".to_string(),
            ],
        );
        for class in &report.stats.sim.per_class {
            let us = |ns: u64| ns as f64 / 1e3;
            human_row(
                &args,
                &[
                    class.class.clone(),
                    class.jobs.to_string(),
                    format!("{:.1}", us(class.latency_ns.p50())),
                    format!("{:.1}", us(class.latency_ns.p95())),
                ],
            );
            tsv_row(
                "sched-class",
                &[
                    class.class.clone(),
                    class.jobs.to_string(),
                    format!("{:.2}", us(class.latency_ns.p50())),
                    format!("{:.2}", us(class.latency_ns.p95())),
                ],
            );
        }
    }
}
