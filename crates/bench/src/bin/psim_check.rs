//! psim-check: the fast validation gate for CI.
//!
//! Runs the full kernel self-test battery (every kernel family, both
//! execution modes) and a differential-oracle sweep (randomized matrices
//! diffed against CPU references) with the independent JEDEC protocol
//! checker attached to every command stream. Exits non-zero on any
//! numeric mismatch, accounting-invariant failure, or protocol
//! violation, so a timing bug in the channel model fails the build even
//! when the numerics still come out right.

use psim_kernels::{all_pass, run_oracle, selftest, PimDevice};
use psyncpim_core::ExecMode;

fn main() {
    let mut failures = 0usize;

    // Self-test battery: one instance of every kernel family per mode,
    // validation forced on inside selftest.
    for (label, device) in [
        ("all-bank", PimDevice::tiny(2)),
        ("per-bank", {
            let mut d = PimDevice::tiny(2);
            d.mode = ExecMode::PerBank;
            d
        }),
    ] {
        match selftest(&device) {
            Ok(results) => {
                for r in &results {
                    let status = if r.pass { "ok" } else { "FAIL" };
                    println!(
                        "selftest\t{label}\t{}\t{status}\tmax_err={:.3e}",
                        r.kernel, r.max_err
                    );
                }
                if !all_pass(&results) {
                    failures += results.iter().filter(|r| !r.pass).count();
                }
            }
            Err(e) => {
                println!("selftest\t{label}\tERROR\t{e}");
                failures += 1;
            }
        }
    }

    // Differential oracle: randomized matrix suite through SpMV, SpTRSV
    // and BLAS-1, numerics + accounting invariants per case.
    for (label, device, cases) in [
        ("all-bank", PimDevice::tiny(2), 6),
        (
            "per-bank",
            {
                let mut d = PimDevice::tiny(2);
                d.mode = ExecMode::PerBank;
                d
            },
            2,
        ),
    ] {
        match run_oracle(&device, cases, 0x0005_C111_A7E5) {
            Ok(report) => {
                for c in &report.cases {
                    let status = if c.pass { "ok" } else { "FAIL" };
                    println!(
                        "oracle\t{label}\t{}\t{}\t{status}\tmax_err={:.3e}\taudit={:?}",
                        c.kernel, c.matrix, c.max_err, c.audit
                    );
                }
                failures += report.failures().len();
            }
            Err(e) => {
                println!("oracle\t{label}\tERROR\t{e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("psim-check: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("psim-check: all checks passed");
}
