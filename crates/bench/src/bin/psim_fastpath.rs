//! psim-fastpath: the two-tier engine and analytical-cost-model CI gate.
//!
//! Three gates plus a machine-readable report:
//!
//! 1. **Equivalence** — the kernel battery runs under the tick reference
//!    tier and the event fast path with validation on (and, on the small
//!    device, with psim-trace attribution on); the serialized run reports
//!    and every numeric output must be bit-identical, and the kernel
//!    self-test battery must pass under both tiers in both execution
//!    modes.
//! 2. **Throughput** — the same battery with validation off, timed on the
//!    engine wall clock; the event tier must simulate the battery at
//!    least [`SPEEDUP_FLOOR`]× faster than the tick tier in aggregate.
//! 3. **Calibration** — the O(nnz) analytical [`CostModel`] estimate vs
//!    the cycle engine across kernel × matrix-class pairs; each kernel's
//!    mean absolute percentage error must stay under [`MAPE_BOUND_PCT`].
//!
//! Writes `results/BENCH_fastpath.json`; exits non-zero on any gate
//! failure so CI catches a fast-path divergence or cost-model drift the
//! moment it appears.
//!
//! Knobs: `FP_N` / `FP_DEG` size the throughput battery (default 300 / 5),
//! `FP_REPS` its repetition count (default 10).

use psim_kernels::blas1::Blas1Pim;
use psim_kernels::gemv::Gemv;
use psim_kernels::{all_pass, selftest, CostModel, KernelRun, PimDevice, SpmvPim, SptrsvPim};
use psim_sparse::dense::SparseVec;
use psim_sparse::triangular::{unit_triangular_from, Triangle, UnitTriangular};
use psim_sparse::{gen, Precision};
use psyncpim_core::isa::BinaryOp;
use psyncpim_core::{take_engine_wall_s, EngineTier, ExecMode};
use serde::Serialize;

/// The event tier must run the battery at least this much faster than the
/// tick tier in aggregate (engine wall seconds, tick / event). Measured
/// headroom on the default battery shape is ≈1.9×; the floor leaves slack
/// for host noise and smaller problem sizes.
const SPEEDUP_FLOOR: f64 = 1.3;

/// Per-kernel calibration bound: mean absolute percentage error of the
/// analytical estimate vs the cycle engine over that kernel's matrix
/// classes.
const MAPE_BOUND_PCT: f64 = 25.0;

/// Self-test outcome under one (tier, mode) combination.
#[derive(Serialize)]
struct SelftestRow {
    tier: &'static str,
    mode: &'static str,
    checks: usize,
    ok: bool,
}

/// Tick-vs-event fingerprint comparison for one kernel on one device.
#[derive(Serialize)]
struct EquivRow {
    kernel: &'static str,
    device: &'static str,
    ok: bool,
}

/// Engine wall time for one kernel under both tiers.
#[derive(Serialize)]
struct ThroughputRow {
    kernel: &'static str,
    cycles: u64,
    tick_wall_s: f64,
    event_wall_s: f64,
    speedup: f64,
}

/// One analytical-estimate-vs-engine comparison.
#[derive(Serialize)]
struct CalRow {
    kernel: &'static str,
    class: &'static str,
    est_cycles: u64,
    actual_cycles: u64,
    est_phases: u64,
    actual_phases: u64,
    /// Signed error of the estimate, percent of the engine's cycles.
    err_pct: f64,
}

/// Per-kernel aggregate of [`CalRow`] errors.
#[derive(Serialize)]
struct MapeRow {
    kernel: &'static str,
    mape_pct: f64,
    ok: bool,
}

/// The full machine-readable report.
#[derive(Serialize)]
struct FastpathReport {
    selftests: Vec<SelftestRow>,
    equivalence: Vec<EquivRow>,
    throughput: Vec<ThroughputRow>,
    aggregate_speedup: f64,
    speedup_floor: f64,
    calibration: Vec<CalRow>,
    mape: Vec<MapeRow>,
    mape_bound_pct: f64,
    violations: usize,
}

/// Shared operand set for the kernel battery.
struct Inputs {
    a: psim_sparse::Coo,
    x: Vec<f64>,
    y: Vec<f64>,
    zeros: Vec<f64>,
    t: UnitTriangular,
    b: Vec<f64>,
    src: Vec<f64>,
    sp: SparseVec,
    m: Vec<f64>,
    xg: Vec<f64>,
    nr: usize,
    nc: usize,
}

fn inputs(n: usize, deg: usize) -> Inputs {
    let a = gen::rmat(n, deg, 0xA11CE);
    let x = gen::dense_vector(n, 1);
    let y = gen::dense_vector(n, 2);
    let t = unit_triangular_from(&a, Triangle::Lower).expect("square matrix");
    let b = t.matvec(&x);
    let mut src = vec![0.0; n];
    for v in src.iter_mut().step_by(7) {
        *v = 0.5;
    }
    let sp = SparseVec::gather(&src);
    let (nr, nc) = (24usize, 20usize);
    let m = gen::dense_vector(nr * nc, 3);
    let xg = gen::dense_vector(nc, 4);
    Inputs {
        a,
        x,
        y,
        zeros: vec![0.0; n],
        t,
        b,
        src,
        sp,
        m,
        xg,
        nr,
        nc,
    }
}

/// Run every battery kernel on `device`, handing each one to `visit` as a
/// replayable closure returning its run report and numeric outputs.
fn battery(
    device: &PimDevice,
    inp: &Inputs,
    mut visit: impl FnMut(&'static str, &mut dyn FnMut() -> (KernelRun, Vec<f64>)),
) {
    let d = device.clone();
    let blas = Blas1Pim::new(d.clone(), Precision::Fp64);
    let gemv = Gemv::new(d.clone(), Precision::Fp64);
    visit("SpMV", &mut || {
        let r = SpmvPim::new(d.clone(), Precision::Fp64)
            .run(&inp.a, &inp.x)
            .unwrap();
        (r.run, r.y)
    });
    visit("SpTRSV", &mut || {
        let r = SptrsvPim::new(d.clone()).run(&inp.t, &inp.b).unwrap();
        (r.run, r.x)
    });
    visit("DCOPY", &mut || {
        let r = blas.dcopy(&inp.x).unwrap();
        (r.run, r.v)
    });
    visit("DSCAL", &mut || {
        let r = blas.dscal(1.5, &inp.x).unwrap();
        (r.run, r.v)
    });
    visit("DAXPY", &mut || {
        let r = blas.daxpy(-0.5, &inp.x, &inp.y).unwrap();
        (r.run, r.v)
    });
    visit("DVDV", &mut || {
        let r = blas.dvdv(&inp.x, &inp.y, BinaryOp::Mul).unwrap();
        (r.run, r.v)
    });
    visit("DDOT", &mut || {
        let r = blas.ddot(&inp.x, &inp.y).unwrap();
        (r.run, vec![r.s])
    });
    visit("DNRM2", &mut || {
        let r = blas.dnrm2(&inp.x).unwrap();
        (r.run, vec![r.s])
    });
    visit("GATHER", &mut || {
        let (_, run) = blas.gather(&inp.src).unwrap();
        (run, Vec::new())
    });
    visit("SCATTER", &mut || {
        let r = blas.scatter(&inp.sp, &inp.zeros).unwrap();
        (r.run, r.v)
    });
    visit("SpAXPY", &mut || {
        let r = blas.spaxpy(2.0, &inp.sp, &inp.y).unwrap();
        (r.run, r.v)
    });
    visit("SpDOT", &mut || {
        let r = blas.spdot(&inp.sp, &inp.y).unwrap();
        (r.run, vec![r.s])
    });
    visit("DGEMV", &mut || {
        let r = gemv.dgemv(&inp.m, inp.nr, inp.nc, &inp.xg).unwrap();
        (r.run, r.y)
    });
}

/// Bit-exact fingerprint of one battery pass: the serialized run report
/// (cycles, commands, energy, attribution, metrics when tracing) plus the
/// raw bits of every numeric output.
fn fingerprints(device: &PimDevice, inp: &Inputs) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    battery(device, inp, |name, run| {
        let (r, vals) = run();
        let mut fp = r.to_json();
        for v in &vals {
            fp.push_str(&format!(",{:x}", v.to_bits()));
        }
        out.push((name, fp));
    });
    out
}

/// Engine wall seconds and simulated cycles per kernel over `reps`
/// repetitions (one unmeasured warm-up pass each).
fn timed_battery(device: &PimDevice, inp: &Inputs, reps: usize) -> Vec<(&'static str, u64, f64)> {
    let mut out = Vec::new();
    battery(device, inp, |name, run| {
        run();
        let _ = take_engine_wall_s();
        let mut cycles = 0u64;
        for _ in 0..reps {
            cycles += run().0.dram_cycles;
        }
        out.push((name, cycles, take_engine_wall_s()));
    });
    out
}

fn tier_label(tier: EngineTier) -> &'static str {
    match tier {
        EngineTier::Tick => "tick",
        EngineTier::Event => "event",
    }
}

fn mode_label(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::AllBank => "all-bank",
        ExecMode::PerBank => "per-bank",
    }
}

fn with_tier(mut device: PimDevice, tier: EngineTier) -> PimDevice {
    device.tier = tier;
    device
}

/// Gate 1a: the self-test battery under every (tier, mode) combination.
fn run_selftests(violations: &mut usize) -> Vec<SelftestRow> {
    let mut rows = Vec::new();
    for mode in [ExecMode::AllBank, ExecMode::PerBank] {
        for tier in [EngineTier::Tick, EngineTier::Event] {
            let mut d = PimDevice::tiny(2);
            d.mode = mode;
            d.tier = tier;
            let (checks, ok) = match selftest(&d) {
                Ok(results) => {
                    for r in results.iter().filter(|r| !r.pass) {
                        println!(
                            "selftest\t{}\t{}\t{}\tFAIL\tmax_err={:.3e}",
                            tier_label(tier),
                            mode_label(mode),
                            r.kernel,
                            r.max_err
                        );
                    }
                    (results.len(), all_pass(&results))
                }
                Err(e) => {
                    println!(
                        "selftest\t{}\t{}\tERROR\t{e}",
                        tier_label(tier),
                        mode_label(mode)
                    );
                    (0, false)
                }
            };
            if !ok {
                *violations += 1;
            }
            rows.push(SelftestRow {
                tier: tier_label(tier),
                mode: mode_label(mode),
                checks,
                ok,
            });
        }
    }
    rows
}

/// Gate 1b: tick-vs-event battery fingerprints on a validated full-size
/// device and a traced small one.
fn run_equivalence(violations: &mut usize) -> Vec<EquivRow> {
    let mut rows = Vec::new();
    let small = inputs(96, 4);
    let full = {
        let mut d = PimDevice::psync_1x();
        d.validate = true;
        d
    };
    let traced = {
        let mut d = PimDevice::tiny(2);
        d.validate = true;
        d.trace = true;
        d
    };
    for (device, label) in [(full, "psync_1x+validate"), (traced, "tiny+trace")] {
        let tick = fingerprints(&with_tier(device.clone(), EngineTier::Tick), &small);
        let event = fingerprints(&with_tier(device, EngineTier::Event), &small);
        for ((kernel, t), (_, e)) in tick.iter().zip(event.iter()) {
            let ok = t == e;
            if !ok {
                println!("equiv\tVIOLATION\t{label}\t{kernel}\ttick and event fingerprints differ");
                *violations += 1;
            }
            rows.push(EquivRow {
                kernel,
                device: label,
                ok,
            });
        }
    }
    rows
}

/// Gate 2: battery throughput, tick vs event.
fn run_throughput(violations: &mut usize) -> (Vec<ThroughputRow>, f64) {
    let env_usize = |key: &str, default: usize| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = env_usize("FP_N", 300);
    let deg = env_usize("FP_DEG", 5);
    let reps = env_usize("FP_REPS", 10);
    let inp = inputs(n, deg);
    let mut d = PimDevice::psync_1x();
    d.validate = false;
    let tick = timed_battery(&with_tier(d.clone(), EngineTier::Tick), &inp, reps);
    let event = timed_battery(&with_tier(d, EngineTier::Event), &inp, reps);

    println!("# throughput (n={n}, deg={deg}, reps={reps})");
    println!("# kernel\tcycles\ttick s\tevent s\tspeedup");
    let mut rows = Vec::new();
    let (mut tick_total, mut event_total) = (0.0f64, 0.0f64);
    for ((kernel, cycles, tw), (_, _, ew)) in tick.iter().zip(event.iter()) {
        tick_total += tw;
        event_total += ew;
        let speedup = tw / ew;
        println!("{kernel}\t{cycles}\t{tw:.4}\t{ew:.4}\t{speedup:.2}x");
        rows.push(ThroughputRow {
            kernel,
            cycles: *cycles,
            tick_wall_s: *tw,
            event_wall_s: *ew,
            speedup,
        });
    }
    let aggregate = tick_total / event_total;
    println!(
        "AGGREGATE\t-\t{tick_total:.4}\t{event_total:.4}\t{aggregate:.2}x (floor {SPEEDUP_FLOOR}x)"
    );
    if aggregate < SPEEDUP_FLOOR {
        println!(
            "throughput\tVIOLATION\taggregate speedup {aggregate:.2}x below floor {SPEEDUP_FLOOR}x"
        );
        *violations += 1;
    }
    (rows, aggregate)
}

/// One calibration comparison: run the engine, ask the model, record both.
fn cal_row(
    kernel: &'static str,
    class: &'static str,
    est: psim_kernels::CostEstimate,
    run: &KernelRun,
) -> CalRow {
    let err_pct = 100.0 * (est.cycles as f64 - run.dram_cycles as f64) / run.dram_cycles as f64;
    CalRow {
        kernel,
        class,
        est_cycles: est.cycles,
        actual_cycles: run.dram_cycles,
        est_phases: est.phases,
        actual_phases: run.phases,
        err_pct,
    }
}

/// Gate 3: analytical estimates vs the cycle engine per kernel × class.
fn run_calibration(violations: &mut usize) -> (Vec<CalRow>, Vec<MapeRow>) {
    let device = PimDevice::tiny(2);
    let model = CostModel::new(&device);
    let p = Precision::Fp64;
    let mut rows = Vec::new();

    for (class, a) in [
        ("rmat", gen::rmat(96, 5, 11)),
        ("rmat", gen::rmat(400, 8, 3)),
        ("rmat", gen::rmat(1024, 3, 9)),
        ("banded_fem", gen::banded_fem(600, 8, 4, 2)),
        ("banded_fem", gen::banded_fem(1400, 12, 6, 7)),
    ] {
        let x = gen::dense_vector(a.ncols(), 13);
        let r = SpmvPim::new(device.clone(), p).run(&a, &x).expect("spmv");
        rows.push(cal_row("SpMV", class, model.spmv(&a, p), &r.run));
    }

    for (class, a) in [
        ("rmat-lower", gen::rmat(192, 4, 5)),
        ("banded-lower", gen::banded_fem(384, 10, 5, 3)),
    ] {
        let t = unit_triangular_from(&a, Triangle::Lower).expect("square matrix");
        let b = t.matvec(&gen::dense_vector(a.ncols(), 17));
        let r = SptrsvPim::new(device.clone()).run(&t, &b).expect("sptrsv");
        rows.push(cal_row("SpTRSV", class, model.sptrsv(&t, p), &r.run));
    }

    let blas = Blas1Pim::new(device, p);
    for n in [512usize, 4096] {
        let x = gen::dense_vector(n, 1);
        let y = gen::dense_vector(n, 2);
        let class = if n < 1024 {
            "dense-small"
        } else {
            "dense-large"
        };
        let r = blas.daxpy(1.5, &x, &y).expect("daxpy");
        rows.push(cal_row("AXPY", class, model.axpy(n, p), &r.run));
        let r = blas.dscal(0.5, &x).expect("dscal");
        rows.push(cal_row("SCAL", class, model.scal(n, p), &r.run));
        let r = blas.dvdv(&x, &y, BinaryOp::Mul).expect("dvdv");
        rows.push(cal_row("VV", class, model.vv(n, p), &r.run));
        let r = blas.ddot(&x, &y).expect("ddot");
        rows.push(cal_row("DOT", class, model.dot(n, p), &r.run));
        let r = blas.dnrm2(&x).expect("dnrm2");
        rows.push(cal_row("NRM2", class, model.norm2(n, p), &r.run));
    }

    println!("# calibration (analytical estimate vs cycle engine)");
    println!("# kernel\tclass\test\tactual\terr%");
    for r in &rows {
        println!(
            "{}\t{}\t{}\t{}\t{:+.1}",
            r.kernel, r.class, r.est_cycles, r.actual_cycles, r.err_pct
        );
    }

    let mut mape = Vec::new();
    for kernel in ["SpMV", "SpTRSV", "AXPY", "SCAL", "VV", "DOT", "NRM2"] {
        let errs: Vec<f64> = rows
            .iter()
            .filter(|r| r.kernel == kernel)
            .map(|r| r.err_pct.abs())
            .collect();
        let mape_pct = errs.iter().sum::<f64>() / errs.len() as f64;
        let ok = mape_pct <= MAPE_BOUND_PCT;
        println!("MAPE\t{kernel}\t{mape_pct:.1}%\t(bound {MAPE_BOUND_PCT}%)");
        if !ok {
            println!(
                "calibration\tVIOLATION\t{kernel} MAPE {mape_pct:.1}% exceeds {MAPE_BOUND_PCT}%"
            );
            *violations += 1;
        }
        mape.push(MapeRow {
            kernel,
            mape_pct,
            ok,
        });
    }
    (rows, mape)
}

fn main() {
    let mut violations = 0usize;

    let selftests = run_selftests(&mut violations);
    let equivalence = run_equivalence(&mut violations);
    let ok = equivalence.iter().filter(|r| r.ok).count();
    println!(
        "equiv\t{ok}/{} kernel fingerprints bit-identical",
        equivalence.len()
    );
    let (throughput, aggregate_speedup) = run_throughput(&mut violations);
    let (calibration, mape) = run_calibration(&mut violations);

    let report = FastpathReport {
        selftests,
        equivalence,
        throughput,
        aggregate_speedup,
        speedup_floor: SPEEDUP_FLOOR,
        calibration,
        mape,
        mape_bound_pct: MAPE_BOUND_PCT,
        violations,
    };
    let json = report.to_json();
    let path = "results/BENCH_fastpath.json";
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, format!("{json}\n")))
    {
        eprintln!("psim-fastpath: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("psim-fastpath: wrote {path}");

    if violations > 0 {
        eprintln!("psim-fastpath: {violations} gate violation(s)");
        std::process::exit(1);
    }
    println!("psim-fastpath: tiers equivalent, fast path fast, estimates calibrated");
}
