//! Model-fidelity contract: the tuner's tie-breaker is the analytical
//! cost model, so the model's layout *ordering* must track the cycle
//! engine's. This is the test-suite twin of the `ablation_autotune` CI
//! gate, scaled down: a small corpus, the fixed layout grid, pairwise
//! rank agreement on separated pairs, and the tuned pick never losing
//! the corpus geomean to any single fixed configuration.

use psim_kernels::{layout_grid, PimDevice, SpmvPim};
use psim_sparse::{adversarial, gen, Coo, Precision};
use psim_tune::Autotuner;

/// Pairs the simulator separates by less than this are ties the model
/// may order either way.
const RANK_SEPARATION: f64 = 0.05;

/// Minimum pairwise agreement on separated pairs.
const RANK_AGREEMENT_FLOOR: f64 = 0.90;

fn corpus(n: usize) -> Vec<(String, Coo)> {
    let mut out = vec![
        ("rmat".to_string(), gen::rmat(n, 4, 1)),
        ("banded_fem".to_string(), gen::banded_fem(n, 8, 5, 2)),
    ];
    for (name, a) in adversarial::suite(n, 7) {
        out.push((name.to_string(), a));
    }
    out
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.max(1.0).ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn sim_cycles(device: &PimDevice, a: &Coo, x: &[f64], layout: psim_sparse::Layout) -> u64 {
    SpmvPim::new(device.clone(), Precision::Fp64)
        .with_layout(layout)
        .run(a, x)
        .expect("simulation")
        .run
        .dram_cycles
}

#[test]
fn model_ranking_tracks_simulation_and_tuner_wins_geomean() {
    let device = PimDevice::tiny(2);
    let tuner = Autotuner::new(&device);
    let grid = layout_grid();

    let (mut pairs, mut agreements) = (0usize, 0usize);
    let mut tuned_cycles = Vec::new();
    let mut fixed_cycles = vec![Vec::new(); grid.len()];
    for (name, a) in corpus(64) {
        let x = gen::dense_vector(a.ncols(), 11);
        let sims: Vec<u64> = grid
            .iter()
            .map(|&layout| sim_cycles(&device, &a, &x, layout))
            .collect();
        let models: Vec<u64> = grid
            .iter()
            .map(|&layout| {
                tuner
                    .model()
                    .spmv_layout(&a, Precision::Fp64, layout)
                    .cycles
            })
            .collect();
        for (i, &si) in sims.iter().enumerate() {
            fixed_cycles[i].push(si as f64);
            for j in i + 1..sims.len() {
                let (si, sj) = (si as f64, sims[j] as f64);
                if (si - sj).abs() / si.min(sj).max(1.0) < RANK_SEPARATION {
                    continue;
                }
                pairs += 1;
                if (si < sj) == (models[i] < models[j]) {
                    agreements += 1;
                }
            }
        }
        let decision = tuner.decide(&a, Precision::Fp64);
        let tuned = sim_cycles(&device, &a, &x, decision.choice);
        assert!(
            tuned <= *sims.iter().max().expect("non-empty grid"),
            "{name}: tuned {} worse than the worst fixed layout",
            decision.label
        );
        tuned_cycles.push(tuned as f64);
    }

    assert!(pairs > 0, "separation threshold left no rankable pairs");
    let agreement = agreements as f64 / pairs as f64;
    assert!(
        agreement >= RANK_AGREEMENT_FLOOR,
        "model/simulator rank agreement {agreements}/{pairs} = {:.1}% below floor {:.0}%",
        agreement * 100.0,
        RANK_AGREEMENT_FLOOR * 100.0
    );

    let tuned_geo = geomean(&tuned_cycles);
    let best_fixed_geo = fixed_cycles
        .iter()
        .map(|c| geomean(c))
        .fold(f64::INFINITY, f64::min);
    assert!(
        tuned_geo <= best_fixed_geo * (1.0 + 1e-9),
        "tuned geomean {tuned_geo:.1} loses to the best fixed configuration {best_fixed_geo:.1}"
    );
}
