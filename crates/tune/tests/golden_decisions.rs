//! Golden snapshot of the autotuner's decisions over the ablation corpus.
//!
//! The tuner is deterministic, so its choices are a behavioural contract:
//! a cost-model retune or a rule edit that silently flips a layout
//! decision shows up here as a diff against the committed golden. Bless
//! intentional changes with:
//!
//! ```text
//! PSIM_BLESS=1 cargo test -p psim-tune --test golden_decisions
//! ```

use std::path::PathBuf;

use psim_kernels::PimDevice;
use psim_sparse::{adversarial, gen, Coo, Precision};
use psim_tune::Autotuner;
use serde::Serialize;

/// One matrix's decision, reduced to the fields worth pinning (estimated
/// cycles are pinned too: they are the model output the choice hangs on).
#[derive(Serialize)]
struct GoldenDecision {
    matrix: String,
    nnz: usize,
    label: String,
    est_cycles: u64,
    shards: usize,
    reasons: Vec<String>,
}

#[derive(Serialize)]
struct GoldenReport {
    device: &'static str,
    decisions: Vec<GoldenDecision>,
}

/// The same corpus the `ablation_autotune` gate sweeps.
fn corpus(n: usize) -> Vec<(String, Coo)> {
    let mut out = vec![
        ("rmat".to_string(), gen::rmat(n, 4, 1)),
        ("banded_fem".to_string(), gen::banded_fem(n, 8, 5, 2)),
        ("web_hubs".to_string(), gen::web_hubs(n, n * 4, 3)),
        ("layered_dag".to_string(), gen::layered_dag(n, 4, 6, 4)),
    ];
    for (name, a) in adversarial::suite(n, 7) {
        out.push((name.to_string(), a));
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(format!("{name}.json"))
}

#[test]
fn tuner_decisions_match_golden() {
    let tuner = Autotuner::new(&PimDevice::tiny(2));
    let decisions = corpus(96)
        .into_iter()
        .map(|(matrix, a)| {
            let d = tuner.decide(&a, Precision::Fp64);
            GoldenDecision {
                matrix,
                nnz: a.nnz(),
                label: d.label,
                est_cycles: d.est_cycles,
                shards: d.shards,
                reasons: d.reasons,
            }
        })
        .collect();
    let report = GoldenReport {
        device: "tiny(2)",
        decisions,
    };
    let actual = report.to_json();
    let path = golden_path("tune_decisions");
    if std::env::var_os("PSIM_BLESS").is_some() {
        std::fs::write(&path, format!("{actual}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with PSIM_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        want.trim_end(),
        actual,
        "tuner decisions diverged from {} (rerun with PSIM_BLESS=1 if intentional)",
        path.display()
    );
}
