//! Format & partitioning autotuner.
//!
//! SparseP's central finding (PAPERS.md) is that no single (format,
//! partitioning) wins across matrices on real PIM: row-balanced 1D is
//! right for even matrices, nnz-balanced placement for skewed ones, 2D
//! column blocking for hub-dominated ones, blocked formats for locally
//! dense ones. The paper under reproduction fixes one layout (COO
//! entries, 1D row strips, round-robin); ROADMAP item 3 calls for the
//! tuner that picks per matrix instead.
//!
//! The decision procedure is two-stage (DESIGN.md §17):
//!
//! 1. **Rule shortlist** from O(nnz) structural statistics
//!    ([`psim_sparse::MatrixStats`], [`psim_sparse::blocked::block_fill_ratio`],
//!    column skew): each triggered rule adds candidate [`Layout`]s and a
//!    human-readable reason. The baseline layout is always a candidate, so
//!    the tuner can never do worse than the paper's fixed choice *by its
//!    own estimate*.
//! 2. **Analytical scoring**: every candidate is costed by
//!    [`psim_kernels::CostModel::spmv_layout`] — the same O(nnz) model the
//!    scheduler's `CostTier::Analytical` uses — and the lowest predicted
//!    cycle count wins; storage bytes break ties, shortlist order breaks
//!    exact ties (keeping decisions deterministic).
//!
//! The tuner never runs the cycle engine: tuning a matrix costs a few
//! partition walks, which is why the scheduler can afford to tune every
//! `MatrixStore`-resident matrix once at admission.

use psim_kernels::{CostModel, PimDevice};
use psim_sparse::blocked::block_fill_ratio;
use psim_sparse::partition::{DistPolicy, PartitionScheme};
use psim_sparse::{Coo, Layout, MatrixFormat, MatrixStats, Precision};
use serde::Serialize;

/// The cheap structural features a decision is made from.
#[derive(Debug, Clone, Serialize)]
pub struct TuneFeatures {
    /// Full structural summary (row skew, bandwidth, density, ...).
    pub stats: MatrixStats,
    /// Column-length skew: `max / mean` over non-empty columns.
    pub col_skew: f64,
    /// Block-fill ratio at block size 4.
    pub fill4: f64,
    /// Block-fill ratio at block size 8.
    pub fill8: f64,
}

impl TuneFeatures {
    /// Analyze `a` (every feature is O(nnz)).
    #[must_use]
    pub fn analyze(a: &Coo) -> TuneFeatures {
        let counts = a.col_counts();
        let used = counts.iter().filter(|&&c| c > 0).count().max(1);
        let mean = a.nnz() as f64 / used as f64;
        let max = counts.iter().copied().max().unwrap_or(0);
        TuneFeatures {
            stats: MatrixStats::analyze(a),
            col_skew: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            fill4: block_fill_ratio(a, 4),
            fill8: block_fill_ratio(a, 8),
        }
    }
}

/// One scored candidate of a decision.
#[derive(Debug, Clone, Serialize)]
pub struct CandidateScore {
    /// The layout.
    pub layout: Layout,
    /// Short label (`format/scheme/policy`).
    pub label: String,
    /// Predicted DRAM cycles ([`CostModel::spmv_layout`]).
    pub cycles: u64,
    /// Host storage footprint of the matrix in this format.
    pub storage_bytes: usize,
}

/// The tuner's verdict for one matrix.
#[derive(Debug, Clone, Serialize)]
pub struct TuneDecision {
    /// The winning layout.
    pub choice: Layout,
    /// Its label (`format/scheme/policy`).
    pub label: String,
    /// Predicted cycles of the winner.
    pub est_cycles: u64,
    /// Recommended executor shard count (power of two, capacity-driven).
    pub shards: usize,
    /// The features the shortlist was built from.
    pub features: TuneFeatures,
    /// Every rule that fired, in order.
    pub reasons: Vec<String>,
    /// Every scored candidate, best first.
    pub candidates: Vec<CandidateScore>,
}

/// The autotuner: rule shortlist + analytical scoring for one device.
#[derive(Debug, Clone)]
pub struct Autotuner {
    model: CostModel,
    total_banks: usize,
}

/// Rule thresholds. Calibrated on the ablation grid (see the
/// `ablation_autotune` bench): chosen so each rule fires on the shape
/// family it targets and stays quiet on the benchmark suite's even
/// matrices.
const SKEW_THRESHOLD: f64 = 3.0;
const FILL_THRESHOLD: f64 = 0.5;
const HUB_COL_THRESHOLD: f64 = 4.0;

impl Autotuner {
    /// A tuner for `device` (reads its timing and geometry only).
    #[must_use]
    pub fn new(device: &PimDevice) -> Autotuner {
        Autotuner {
            model: CostModel::new(device),
            total_banks: device.total_banks(),
        }
    }

    /// The underlying analytical model.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Decide a layout for `a` at `precision`.
    #[must_use]
    pub fn decide(&self, a: &Coo, precision: Precision) -> TuneDecision {
        let features = TuneFeatures::analyze(a);
        let (candidates, reasons) = self.shortlist(&features);

        let mut scored: Vec<CandidateScore> = candidates
            .into_iter()
            .map(|layout| CandidateScore {
                layout,
                label: layout.label(),
                cycles: self.model.spmv_layout(a, precision, layout).cycles,
                storage_bytes: layout.format.storage_bytes(a, precision),
            })
            .collect();
        // Deterministic ranking: cycles, then storage, then shortlist
        // order (sort is stable, so exact ties keep rule order).
        scored.sort_by_key(|c| (c.cycles, c.storage_bytes));

        let best = &scored[0];
        TuneDecision {
            choice: best.layout,
            label: best.label.clone(),
            est_cycles: best.cycles,
            shards: self.recommend_shards(&features),
            features,
            reasons,
            candidates: scored,
        }
    }

    /// The rule stage: which layouts are worth scoring for these
    /// features, and why. The baseline is always first.
    fn shortlist(&self, f: &TuneFeatures) -> (Vec<Layout>, Vec<String>) {
        fn add(layouts: &mut Vec<Layout>, l: Layout, reason: String, reasons: &mut Vec<String>) {
            if !layouts.contains(&l) {
                layouts.push(l);
                reasons.push(reason);
            }
        }
        let mut layouts = vec![Layout::baseline()];
        let mut reasons = vec!["baseline: coo/1d/rr is always a candidate".to_string()];

        // CSR rides along free: identical execution stream, leaner
        // host-side metadata — it can only win the storage tie-break.
        add(
            &mut layouts,
            Layout {
                format: MatrixFormat::Csr,
                ..Layout::baseline()
            },
            "csr: same stream as coo, leaner metadata".to_string(),
            &mut reasons,
        );

        // 2D column blocks when hub rows/columns concentrate work: the
        // cut splits a heavy strip across column blocks, shrinking the
        // wave bound.
        let k = if f.stats.ncols >= 128 { 4 } else { 2 };
        if f.stats.row_skew >= SKEW_THRESHOLD {
            add(
                &mut layouts,
                Layout {
                    scheme: PartitionScheme::Balanced2D { col_blocks: k },
                    policy: DistPolicy::LeastLoaded,
                    ..Layout::baseline()
                },
                format!(
                    "row skew {:.1} ≥ {SKEW_THRESHOLD}: nnz-balanced 2D + least-loaded",
                    f.stats.row_skew
                ),
                &mut reasons,
            );
            add(
                &mut layouts,
                Layout {
                    policy: DistPolicy::LeastLoaded,
                    ..Layout::baseline()
                },
                "row skew: least-loaded placement alone".to_string(),
                &mut reasons,
            );
        }
        if f.col_skew >= HUB_COL_THRESHOLD {
            add(
                &mut layouts,
                Layout {
                    scheme: PartitionScheme::Balanced2D { col_blocks: k },
                    ..Layout::baseline()
                },
                format!(
                    "column skew {:.1} ≥ {HUB_COL_THRESHOLD}: narrow blocks around hub columns",
                    f.col_skew
                ),
                &mut reasons,
            );
        } else if f.stats.normalized_bandwidth > 0.15 && f.stats.ncols >= 64 {
            add(
                &mut layouts,
                Layout {
                    scheme: PartitionScheme::Grid2D { col_blocks: k },
                    ..Layout::baseline()
                },
                format!(
                    "scattered pattern (band {:.2}): equally-wide 2D localizes x",
                    f.stats.normalized_bandwidth
                ),
                &mut reasons,
            );
        }

        // Blocked formats when tiles actually fill: the fill tax is
        // bounded by 1/fill, and block metadata amortizes.
        if f.fill4 >= FILL_THRESHOLD {
            add(
                &mut layouts,
                Layout {
                    format: MatrixFormat::Bcsr { block: 4 },
                    ..Layout::baseline()
                },
                format!(
                    "fill4 {:.2} ≥ {FILL_THRESHOLD}: bcsr(4) amortizes metadata",
                    f.fill4
                ),
                &mut reasons,
            );
            add(
                &mut layouts,
                Layout {
                    format: MatrixFormat::Bcoo { block: 4 },
                    ..Layout::baseline()
                },
                "fill4: bcoo(4) rides the storage tie-break".to_string(),
                &mut reasons,
            );
        }
        if f.fill8 >= FILL_THRESHOLD {
            add(
                &mut layouts,
                Layout {
                    format: MatrixFormat::Bcsr { block: 8 },
                    ..Layout::baseline()
                },
                format!("fill8 {:.2} ≥ {FILL_THRESHOLD}: bcsr(8)", f.fill8),
                &mut reasons,
            );
        }

        // Scheme sweep: scoring a candidate is one O(nnz) partition walk
        // and the model ranks layouts exactly as the cycle engine on the
        // ablation grid, so every block count the matrix can support is
        // worth the walk. The rules above explain *why* a shape wants a
        // scheme (and order the shortlist for tie-breaks); the sweep
        // guarantees the model also sees the block counts no rule named.
        add(
            &mut layouts,
            Layout {
                policy: DistPolicy::LeastLoaded,
                ..Layout::baseline()
            },
            "sweep: 1d + least-loaded".to_string(),
            &mut reasons,
        );
        for k in [2usize, 4, 8] {
            // A block narrower than 8 columns fragments x for nothing.
            if f.stats.ncols < 8 * k {
                continue;
            }
            add(
                &mut layouts,
                Layout {
                    scheme: PartitionScheme::Grid2D { col_blocks: k },
                    ..Layout::baseline()
                },
                format!("sweep: grid2d({k})"),
                &mut reasons,
            );
            add(
                &mut layouts,
                Layout {
                    scheme: PartitionScheme::Balanced2D { col_blocks: k },
                    ..Layout::baseline()
                },
                format!("sweep: bal2d({k})"),
                &mut reasons,
            );
            add(
                &mut layouts,
                Layout {
                    scheme: PartitionScheme::Balanced2D { col_blocks: k },
                    policy: DistPolicy::LeastLoaded,
                    ..Layout::baseline()
                },
                format!("sweep: bal2d({k}) + least-loaded"),
                &mut reasons,
            );
        }

        (layouts, reasons)
    }

    /// Shard recommendation: enough banks per shard that the matrix's
    /// heaviest wave still fills them, as a power of two (the executor
    /// requires the shard count to divide the device's channels). A small
    /// matrix on many shards wastes whole sub-devices; a huge one wants
    /// every shard it can get.
    fn recommend_shards(&self, f: &TuneFeatures) -> usize {
        let per_shard_capacity = (self.total_banks * 16).max(1);
        let mut shards = 1usize;
        while shards * 2 <= 16 && f.stats.nnz / (shards * 2) >= per_shard_capacity {
            shards *= 2;
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::{adversarial, gen};

    fn tuner() -> Autotuner {
        Autotuner::new(&PimDevice::tiny(2))
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = gen::rmat(128, 4, 3);
        let t = tuner();
        let d1 = t.decide(&a, Precision::Fp64);
        let d2 = t.decide(&a, Precision::Fp64);
        assert_eq!(d1.choice, d2.choice);
        assert_eq!(d1.est_cycles, d2.est_cycles);
        assert_eq!(
            d1.candidates.iter().map(|c| c.cycles).collect::<Vec<_>>(),
            d2.candidates.iter().map(|c| c.cycles).collect::<Vec<_>>()
        );
    }

    #[test]
    fn baseline_is_always_scored() {
        let t = tuner();
        for (_, a) in adversarial::suite(64, 1) {
            let d = t.decide(&a, Precision::Fp64);
            assert!(
                d.candidates.iter().any(|c| c.layout == Layout::baseline()),
                "baseline missing for {:?}",
                d.reasons
            );
            // The winner can never be predicted slower than the baseline.
            let base = d
                .candidates
                .iter()
                .find(|c| c.layout == Layout::baseline())
                .unwrap();
            assert!(d.est_cycles <= base.cycles);
        }
    }

    #[test]
    fn skewed_rows_trigger_balancing_rules() {
        let a = adversarial::power_law_hubs(128, 1024, 2, 1);
        let d = tuner().decide(&a, Precision::Fp64);
        assert!(
            d.reasons.iter().any(|r| r.contains("row skew")),
            "{:?}",
            d.reasons
        );
        // The tuned choice must beat the baseline's estimate on this shape.
        let base = d
            .candidates
            .iter()
            .find(|c| c.layout == Layout::baseline())
            .unwrap();
        assert!(
            d.est_cycles < base.cycles,
            "tuned {} vs baseline {}",
            d.est_cycles,
            base.cycles
        );
    }

    #[test]
    fn dense_blocks_trigger_blocked_candidates() {
        let a = adversarial::near_dense_blocks(64, 8, 4, 2);
        let d = tuner().decide(&a, Precision::Fp64);
        assert!(
            d.candidates.iter().any(|c| c.layout.format.is_blocked()),
            "{:?}",
            d.reasons
        );
    }

    #[test]
    fn banded_matrix_keeps_an_element_format() {
        // A well-banded FEM matrix has no hub columns and modest fill;
        // nothing should drag it off the element fast path.
        let a = gen::banded_fem(256, 4, 3, 7);
        let d = tuner().decide(&a, Precision::Fp64);
        assert!(!d.choice.format.is_blocked() || d.features.fill4 >= FILL_THRESHOLD);
    }

    #[test]
    fn shard_recommendation_scales_with_size_and_stays_pow2() {
        let t = tuner();
        let small = t.decide(&gen::rmat(64, 3, 1), Precision::Fp64);
        let large = t.decide(&gen::rmat(4096, 16, 1), Precision::Fp64);
        assert!(small.shards <= large.shards);
        for s in [small.shards, large.shards] {
            assert!(s.is_power_of_two() && s <= 16, "shards {s}");
        }
    }

    #[test]
    fn decision_serializes_to_json() {
        let d = tuner().decide(&gen::rmat(64, 3, 1), Precision::Fp64);
        let json = d.to_json();
        assert!(json.contains("\"choice\""));
        assert!(json.contains("\"est_cycles\""));
        assert!(json.contains("\"reasons\""));
    }
}
