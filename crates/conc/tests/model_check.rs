//! Self-tests for the model checker: each class of concurrency bug the
//! layer claims to catch is seeded here as a minimal mutant, and the
//! explorer must produce the matching counterexample. Plus coverage
//! properties (all interleavings of a store-buffer-like scenario are
//! observed) and the passthrough backend's poison-recovery semantics.

use psim_conc::{model, order, Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};

#[test]
fn explores_all_lock_interleavings() {
    // T1: a = true; read b.   T2: b = true; read a.   Under mutual
    // exclusion the reachable outcomes are exactly (F,T), (T,F), (T,T):
    // (F,F) would need both reads to precede both writes, impossible
    // when each thread writes before it reads. Exhaustive exploration
    // must observe all three and nothing else.
    let seen: Arc<StdMutex<BTreeSet<(bool, bool)>>> = Arc::new(StdMutex::new(BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let report = model::Explorer::new(10_000).explore(move || {
        let a = Arc::new(Mutex::labeled("sb.a", false));
        let b = Arc::new(Mutex::labeled("sb.b", false));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = model::spawn(move || {
            *a2.lock() = true;
            *b2.lock()
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = model::spawn(move || {
            *b3.lock() = true;
            *a3.lock()
        });
        let saw_b = t1.join();
        let saw_a = t2.join();
        seen2.lock().unwrap().insert((saw_a, saw_b));
    });
    report.assert_ok("store-buffer interleavings");
    assert!(report.complete, "2x2-op scenario must be exhaustible");
    assert!(report.executions > 1, "must actually branch");
    let outcomes = seen.lock().unwrap().clone();
    let expect: BTreeSet<(bool, bool)> = [(false, true), (true, false), (true, true)]
        .into_iter()
        .collect();
    assert_eq!(outcomes, expect);
}

#[test]
fn mutation_dropped_notify_is_caught_as_deadlock() {
    // Producer stores the value but "forgets" the notify. With no
    // spurious wakeups in the model, the consumer can never resume:
    // every schedule where the consumer parks first must deadlock.
    let report = model::Explorer::new(10_000).explore(|| {
        let ch = Arc::new((Mutex::labeled("mut.notify.m", None::<u32>), Condvar::new()));
        let tx = Arc::clone(&ch);
        let producer = model::spawn(move || {
            *tx.0.lock() = Some(7);
            // BUG: no tx.1.notify_one()
        });
        let mut g = ch.0.lock();
        while g.is_none() {
            g = ch.1.wait(g);
        }
        drop(g);
        producer.join();
    });
    match report.failure {
        Some(model::Failure::Deadlock { ref detail }) => {
            assert!(
                detail.contains("condvar"),
                "deadlock report names the wait site: {detail}"
            );
        }
        ref other => panic!("dropped notify must deadlock, got {other:?}"),
    }
}

#[test]
fn mutation_double_lock_is_caught() {
    let report = model::Explorer::new(100).explore(|| {
        let m = Mutex::labeled("mut.double", 0u32);
        let g1 = m.lock();
        let g2 = m.lock(); // BUG: self-deadlock
        drop(g2);
        drop(g1);
    });
    match report.failure {
        Some(model::Failure::DoubleLock { label }) => assert_eq!(label, "mut.double"),
        ref other => panic!("double lock must be caught, got {other:?}"),
    }
}

#[test]
fn mutation_swapped_lock_order_deadlocks_and_cycles() {
    // T1 takes A then B; T2 takes B then A. The explorer must find the
    // wedged schedule, and the order graph must record the inversion.
    let report = model::Explorer::new(10_000).explore(|| {
        let a = Arc::new(Mutex::labeled("mut.order.a", ()));
        let b = Arc::new(Mutex::labeled("mut.order.b", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = model::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            drop(gb);
            drop(ga);
        });
        let gb = b.lock();
        let ga = a.lock();
        drop(ga);
        drop(gb);
        t1.join();
    });
    assert!(
        matches!(report.failure, Some(model::Failure::Deadlock { .. })),
        "AB/BA must deadlock in some schedule, got {:?}",
        report.failure
    );
    let edges = order::edges();
    assert!(edges.contains(&("mut.order.a", "mut.order.b")));
    assert!(edges.contains(&("mut.order.b", "mut.order.a")));
    let cycle = order::find_cycle().expect("inverted pair forms a cycle");
    assert!(cycle.len() >= 2);
}

#[test]
fn consistent_lock_order_explores_clean() {
    // Same two locks, both threads in the same order: no deadlock in
    // any schedule, and only the one edge direction recorded.
    let report = model::Explorer::new(10_000).explore(|| {
        let a = Arc::new(Mutex::labeled("ok.order.a", ()));
        let b = Arc::new(Mutex::labeled("ok.order.b", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = model::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            drop(gb);
            drop(ga);
        });
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        t1.join();
    });
    report.assert_ok("consistent lock order");
    assert!(report.complete);
    let edges = order::edges();
    assert!(edges.contains(&("ok.order.a", "ok.order.b")));
    assert!(!edges.contains(&("ok.order.b", "ok.order.a")));
}

#[test]
fn scenario_assertion_failures_are_reported_with_repro_trail() {
    // An interleaving-dependent assertion: fails only when t1's two
    // increments are split by t2's. The explorer must find it and hand
    // back a non-empty repro trail.
    let report = model::Explorer::new(10_000).explore(|| {
        let n = Arc::new(Mutex::labeled("assert.n", 0u32));
        let n2 = Arc::clone(&n);
        let t1 = model::spawn(move || {
            let before = *n2.lock();
            *n2.lock() = before + 1;
            before
        });
        *n.lock() += 10;
        let seen = t1.join();
        let final_n = *n.lock();
        assert!(
            !(seen == 0 && final_n == 1),
            "t2's increment was lost by t1's stale read-modify-write"
        );
    });
    match report.failure {
        Some(model::Failure::Panic { ref message }) => {
            assert!(message.contains("lost"), "got: {message}");
        }
        ref other => panic!("expected the seeded lost-update panic, got {other:?}"),
    }
    assert!(
        !report.trail.is_empty(),
        "failing schedule must be reproducible"
    );
}

#[test]
fn runaway_scenario_hits_step_limit() {
    let ex = model::Explorer {
        max_executions: 4,
        max_steps: 64,
    };
    let report = ex.explore(|| loop {
        model::yield_now();
    });
    assert!(matches!(
        report.failure,
        Some(model::Failure::StepLimit { .. })
    ));
}

#[test]
fn atomic_rmw_is_a_scheduling_point_but_stays_atomic() {
    let report = model::Explorer::new(10_000).explore(|| {
        let n = Arc::new(psim_conc::AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = model::spawn(move || {
            n2.fetch_add(1);
        });
        n.fetch_add(1);
        t.join();
        assert_eq!(n.load(), 2, "fetch_add must never lose an increment");
    });
    report.assert_ok("atomic rmw");
    assert!(report.complete);
}

#[test]
fn passthrough_recovers_poisoned_locks() {
    // Satellite audit regression: a submitter panicking while holding a
    // shim lock must not cascade Err(Poisoned) into every later locker
    // — the shim recovers the inner state (predicates are re-established
    // under the lock by the callers; see DESIGN.md §16).
    let m = Arc::new(Mutex::labeled("poison.m", 5u32));
    let m2 = Arc::clone(&m);
    let t = std::thread::spawn(move || {
        let _g = m2.lock();
        panic!("die while holding the lock");
    });
    assert!(t.join().is_err());
    // std::sync::Mutex would now be poisoned; the shim just locks.
    assert_eq!(*m.lock(), 5);
    *m.lock() = 6;
    assert_eq!(*m.lock(), 6);
}

#[test]
fn exploration_is_deterministic() {
    // Two runs of the same scenario visit the same number of executions
    // and decision points — no seeds, no timing dependence.
    let run = || {
        model::Explorer::new(10_000).explore(|| {
            let m = Arc::new(Mutex::labeled("det.m", 0u32));
            let (m2, m3) = (Arc::clone(&m), Arc::clone(&m));
            let t1 = model::spawn(move || *m2.lock() += 1);
            let t2 = model::spawn(move || *m3.lock() += 1);
            t1.join();
            t2.join();
            assert_eq!(*m.lock(), 2);
        })
    };
    let (r1, r2) = (run(), run());
    r1.assert_ok("deterministic scenario");
    assert!(r1.complete);
    assert_eq!(r1.executions, r2.executions);
    assert_eq!(r1.decision_points, r2.decision_points);
}
