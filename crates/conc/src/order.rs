//! Global lock-order graph.
//!
//! Every time a thread acquires a shim mutex while holding others (under
//! the instrumented or model backend), we record a directed edge
//! `held-label -> acquired-label`. The union of edges over all runs is a
//! conservative over-approximation of the program's lock acquisition
//! order; a **cycle** in it means two code paths nest the same pair of
//! locks in opposite orders — a potential lock-order inversion that can
//! deadlock under the right timing even if no explored schedule actually
//! wedged. The `psim_model` gate asserts this graph is acyclic.
//!
//! Nodes are the `&'static str` labels given to [`crate::Mutex::labeled`]
//! — two *different* locks sharing a label are merged, so a self-edge
//! (`A -> A`) is reported as a cycle: either a genuine recursive
//! acquisition or two same-role locks nested, and neither is orderable.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

fn graph() -> &'static StdMutex<BTreeSet<(&'static str, &'static str)>> {
    static GRAPH: OnceLock<StdMutex<BTreeSet<(&'static str, &'static str)>>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(BTreeSet::new()))
}

/// Record that a thread acquired `acquiring` while holding `held`.
pub(crate) fn record_edge(held: &'static str, acquiring: &'static str) {
    graph()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert((held, acquiring));
}

/// All recorded `held -> acquired` edges, sorted.
#[must_use]
pub fn edges() -> Vec<(&'static str, &'static str)> {
    graph()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .copied()
        .collect()
}

/// Forget everything recorded so far (test isolation).
pub fn reset() {
    graph()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Find a cycle in the recorded graph, as the list of labels along it
/// (first == last), or `None` when the graph is acyclic.
#[must_use]
pub fn find_cycle() -> Option<Vec<&'static str>> {
    // Three-color DFS; the path stack yields the cycle on a back edge.
    fn dfs(
        node: &'static str,
        adj: &BTreeMap<&'static str, Vec<&'static str>>,
        color: &mut BTreeMap<&'static str, u8>,
        path: &mut Vec<&'static str>,
    ) -> Option<Vec<&'static str>> {
        color.insert(node, 1);
        path.push(node);
        for &next in adj.get(node).map_or(&Vec::new(), |v| v) {
            match color.get(next).copied().unwrap_or(0) {
                0 => {
                    if let Some(c) = dfs(next, adj, color, path) {
                        return Some(c);
                    }
                }
                1 => {
                    let start = path.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<&'static str> = path[start..].to_vec();
                    cycle.push(next);
                    return Some(cycle);
                }
                _ => {}
            }
        }
        path.pop();
        color.insert(node, 2);
        None
    }

    let edges = edges();
    let mut adj: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
    for (from, to) in edges {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let nodes: Vec<&'static str> = adj.keys().copied().collect();
    let mut color: BTreeMap<&'static str, u8> = BTreeMap::new();
    let mut path: Vec<&'static str> = Vec::new();
    for node in nodes {
        if color.get(node).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(node, &adj, &mut color, &mut path) {
                return Some(c);
            }
        }
    }
    None
}
