//! psim-conc: the concurrency verification layer under the pSyncPIM
//! host runtime.
//!
//! The simulator's *device* side is verified three ways (psim-lint
//! statically checks PIM programs, psim-check replays command streams
//! against the JEDEC rules, psim-trace audits cycle conservation) — but
//! the *host* side grew genuinely concurrent in PR 6: a blocking
//! [`Condvar`]-based job queue, a service admission loop, an LRU matrix
//! store shared across submitters. This crate closes that gap:
//!
//! * [`Mutex`] / [`Condvar`] / [`AtomicU64`] — a sync shim the
//!   scheduler builds on. By default it passes straight through to
//!   `std::sync` (recovering, not propagating, lock poisoning); with
//!   `PSIM_SYNC=instrument` it additionally feeds the lock-order graph
//!   and traps same-thread double-locks; under the model scheduler
//!   every operation becomes an explored scheduling decision.
//! * [`model`] — a bounded exhaustive interleaving explorer
//!   ([`model::Explorer`]) in the loom tradition: scenarios spawn
//!   threads with [`model::spawn`] and every schedule distinguishable
//!   through the shim is run, checking deadlock-freedom, lost wakeups
//!   (the model condvar has no spurious wakeups), double-locks, and any
//!   assertion the scenario itself makes.
//! * [`order`] — the global lock-order graph: acquire-while-holding
//!   edges recorded by the instrumented and model backends, with cycle
//!   detection ([`order::find_cycle`]) gating CI against lock-order
//!   inversions that no explored schedule happened to trip.
//!
//! The `psim_model` bin (crates/bench) sweeps the scheduler's queue /
//! service / store scenarios plus seeded mutation self-tests into
//! `results/psim_model.json`; see DESIGN.md §16 for what the layer does
//! and does not prove.
//!
//! # Example
//!
//! ```
//! use psim_conc::{model, Condvar, Mutex};
//! use std::sync::Arc;
//!
//! // A one-slot channel with a missing-notify bug would deadlock; the
//! // correct version explores cleanly.
//! let report = model::Explorer::new(10_000).explore(|| {
//!     let slot = Arc::new((Mutex::labeled("slot", None), Condvar::labeled("slot.cv")));
//!     let tx = Arc::clone(&slot);
//!     let producer = model::spawn(move || {
//!         let (m, cv) = &*tx;
//!         *m.lock() = Some(42);
//!         cv.notify_one();
//!     });
//!     let (m, cv) = &*slot;
//!     let mut g = m.lock();
//!     while g.is_none() {
//!         g = cv.wait(g);
//!     }
//!     assert_eq!(*g, Some(42));
//!     drop(g);
//!     producer.join();
//! });
//! report.assert_ok("one-slot channel");
//! assert!(report.complete, "tiny scenario must be exhausted");
//! ```

pub mod model;
pub mod order;
mod sync;

pub use sync::{AtomicU64, Condvar, Mutex, MutexGuard};
