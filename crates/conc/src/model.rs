//! Bounded exhaustive interleaving exploration (a loom/DPOR-lite).
//!
//! The explorer runs a *scenario* — a closure that spawns threads via
//! [`spawn`] and synchronizes through the crate's [`crate::Mutex`] /
//! [`crate::Condvar`] shim — through **every schedule the shim can
//! distinguish**, up to an execution budget. The trick is the classic
//! cooperative-token design: every model thread is a real OS thread, but
//! exactly one holds the *token* at a time, so an execution is fully
//! serialized and the only nondeterminism is which thread the controller
//! grants the token to at each *yield point* (lock acquire, condvar
//! wait/notify, spawn, join, atomic RMW). Each such decision with more
//! than one enabled thread is recorded on a **trail**; between
//! executions the trail is advanced like an odometer (depth-first,
//! last-choice-first), so the search is exhaustive and deterministic —
//! no seeds, no timing dependence.
//!
//! What a run checks:
//!
//! * **Deadlock-freedom** — if no thread is enabled while some are still
//!   live, the controller records a [`Failure::Deadlock`] with every
//!   thread's block site and held locks.
//! * **Lost wakeups** — the model condvar has *no spurious wakeups*: a
//!   waiter only resumes when an explicit notify reaches it. A dropped
//!   notify therefore shows up as a deadlock instead of being papered
//!   over by timing, which is exactly what makes it checkable.
//! * **Self-deadlock** — a thread re-acquiring a mutex it already holds
//!   is reported as [`Failure::DoubleLock`] before it would wedge.
//! * **Scenario assertions** — any panic inside the scenario (e.g. a
//!   failed linearizability check) is captured as [`Failure::Panic`].
//!
//! On the first failure the whole execution is torn down by unwinding
//! every model thread with a private [`ModelAbort`] payload, and the
//! [`Report`] carries the failing trail for reproduction.
//!
//! What this does *not* prove: the model serializes whole critical
//! sections, so it cannot see data races on memory accessed outside the
//! shim, and exploration is bounded by `max_executions` — a `complete:
//! false` report means the space was sampled depth-first, not covered.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError,
};
use std::thread;

use crate::order;

/// Panic payload used to unwind every model thread once a failure (or a
/// budget stop) has been recorded. Never escapes the explorer.
struct ModelAbort;

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// True when the calling thread is running under the model scheduler.
///
/// The executor uses this to fall back to serial in-thread execution:
/// raw `std::thread` parallelism inside a model run would be invisible
/// to the controller and would reintroduce wall-clock nondeterminism.
#[must_use]
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// A voluntary yield point: under the model this is a scheduling
/// decision; outside it is a no-op.
pub fn yield_now() {
    if let Some(cx) = ctx() {
        cx.yield_now();
    }
}

/// One recorded scheduling decision: which of the `enabled` threads was
/// granted the token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Index into the (deterministically ordered) enabled set.
    pub chosen: usize,
    /// Size of the enabled set at this decision point.
    pub enabled: usize,
}

/// Why an exploration stopped with a counterexample.
#[derive(Clone, Debug)]
pub enum Failure {
    /// No thread is enabled but some are still live. `detail` lists each
    /// live thread's block site and held locks.
    Deadlock {
        /// Human-readable per-thread block sites and held locks.
        detail: String,
    },
    /// A thread re-acquired a mutex it already holds.
    DoubleLock {
        /// Label of the re-acquired mutex.
        label: &'static str,
    },
    /// The scenario panicked (failed assertion, slice OOB, ...).
    Panic {
        /// The panic message, when it was a string payload.
        message: String,
    },
    /// A single execution exceeded the step budget (runaway scenario).
    StepLimit {
        /// Steps taken when the limit tripped.
        steps: u64,
    },
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            Failure::DoubleLock { label } => {
                write!(
                    f,
                    "double lock: thread re-acquired '{label}' it already holds"
                )
            }
            Failure::Panic { message } => write!(f, "scenario panic: {message}"),
            Failure::StepLimit { steps } => write!(f, "step limit exceeded ({steps} steps)"),
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    Ready,
    Running,
    /// Blocked acquiring the mutex at this key.
    Lock(usize),
    /// Parked on a condvar, mutex released; `lock` is re-acquired on wake.
    Cond {
        cv: usize,
        lock: usize,
    },
    /// Blocked joining thread `0`.
    Join(usize),
    Finished,
}

struct ThreadRec {
    name: String,
    state: TState,
    /// Mutexes currently held: (key, label), acquisition order.
    held: Vec<(usize, &'static str)>,
}

struct LockRec {
    label: &'static str,
    holder: Option<usize>,
}

struct CvRec {
    label: &'static str,
    waiters: VecDeque<usize>,
}

struct Ctl {
    threads: Vec<ThreadRec>,
    current: Option<usize>,
    locks: HashMap<usize, LockRec>,
    cvs: HashMap<usize, CvRec>,
    trail: Vec<Choice>,
    cursor: usize,
    steps: u64,
    max_steps: u64,
    failure: Option<Failure>,
    live: usize,
}

pub(crate) struct Controller {
    mx: StdMutex<Ctl>,
    cv: StdCondvar,
}

fn enabled(ctl: &Ctl) -> Vec<usize> {
    ctl.threads
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            let ok = match t.state {
                TState::Ready => true,
                TState::Lock(l) => ctl.locks.get(&l).is_none_or(|r| r.holder.is_none()),
                TState::Join(target) => ctl.threads[target].state == TState::Finished,
                _ => false,
            };
            ok.then_some(i)
        })
        .collect()
}

fn block_site(ctl: &Ctl, t: &ThreadRec) -> String {
    match t.state {
        TState::Lock(l) => {
            let label = ctl.locks.get(&l).map_or("?", |r| r.label);
            format!("acquiring mutex '{label}'")
        }
        TState::Cond { cv, .. } => {
            let label = ctl.cvs.get(&cv).map_or("?", |r| r.label);
            format!("waiting on condvar '{label}'")
        }
        TState::Join(target) => format!("joining thread {target}"),
        ref s => format!("{s:?}"),
    }
}

fn deadlock_detail(ctl: &Ctl) -> String {
    let parts: Vec<String> = ctl
        .threads
        .iter()
        .filter(|t| t.state != TState::Finished)
        .map(|t| {
            let held: Vec<&str> = t.held.iter().map(|&(_, l)| l).collect();
            format!(
                "{} {} holding [{}]",
                t.name,
                block_site(ctl, t),
                held.join(", ")
            )
        })
        .collect();
    parts.join("; ")
}

impl Controller {
    fn new(trail: Vec<Choice>, max_steps: u64) -> Controller {
        Controller {
            mx: StdMutex::new(Ctl {
                threads: Vec::new(),
                current: None,
                locks: HashMap::new(),
                cvs: HashMap::new(),
                trail,
                cursor: 0,
                steps: 0,
                max_steps,
                failure: None,
                live: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, Ctl> {
        self.mx.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record `failure` (first one wins), wake everyone, and unwind the
    /// calling thread.
    fn abort(&self, mut ctl: StdMutexGuard<'_, Ctl>, failure: Failure) -> ! {
        if ctl.failure.is_none() {
            ctl.failure = Some(failure);
        }
        self.cv.notify_all();
        drop(ctl);
        panic::panic_any(ModelAbort);
    }

    /// Pick the next token holder among enabled threads, consuming (or
    /// extending) the trail. Detects deadlock and the step budget.
    fn pick_next(&self, ctl: &mut Ctl) {
        if ctl.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        ctl.steps += 1;
        if ctl.steps > ctl.max_steps {
            ctl.failure = Some(Failure::StepLimit { steps: ctl.steps });
            self.cv.notify_all();
            return;
        }
        let en = enabled(ctl);
        if en.is_empty() {
            ctl.current = None;
            if ctl.live > 0 {
                ctl.failure = Some(Failure::Deadlock {
                    detail: deadlock_detail(ctl),
                });
            }
            self.cv.notify_all();
            return;
        }
        let idx = if en.len() == 1 {
            0
        } else if ctl.cursor < ctl.trail.len() {
            let c = ctl.trail[ctl.cursor];
            assert_eq!(
                c.enabled,
                en.len(),
                "model replay divergence: enabled-set size changed between executions"
            );
            ctl.cursor += 1;
            c.chosen
        } else {
            ctl.trail.push(Choice {
                chosen: 0,
                enabled: en.len(),
            });
            ctl.cursor += 1;
            0
        };
        ctl.current = Some(en[idx]);
        self.cv.notify_all();
    }

    /// Park until the token is granted to `me`, then complete the pending
    /// state transition (lock acquisition, join completion, ...).
    fn wait_for_grant<'c>(
        &'c self,
        mut ctl: StdMutexGuard<'c, Ctl>,
        me: usize,
    ) -> StdMutexGuard<'c, Ctl> {
        loop {
            if ctl.failure.is_some() {
                drop(ctl);
                panic::panic_any(ModelAbort);
            }
            if ctl.current == Some(me) {
                match ctl.threads[me].state.clone() {
                    TState::Ready | TState::Running => ctl.threads[me].state = TState::Running,
                    TState::Lock(addr) => {
                        let rec = ctl
                            .locks
                            .get_mut(&addr)
                            .expect("granted lock is registered");
                        debug_assert!(rec.holder.is_none(), "granted a held lock");
                        rec.holder = Some(me);
                        let label = rec.label;
                        ctl.threads[me].held.push((addr, label));
                        ctl.threads[me].state = TState::Running;
                    }
                    TState::Join(_) => ctl.threads[me].state = TState::Running,
                    s => unreachable!("token granted to thread in state {s:?}"),
                }
                return ctl;
            }
            ctl = self.cv.wait(ctl).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Per-thread handle into the controller; stored in TLS by the model
/// thread wrapper.
#[derive(Clone)]
pub(crate) struct Ctx {
    ctl: Arc<Controller>,
    tid: usize,
}

impl Ctx {
    fn checked_lock(&self) -> StdMutexGuard<'_, Ctl> {
        let ctl = self.ctl.lock();
        if ctl.failure.is_some() {
            drop(ctl);
            panic::panic_any(ModelAbort);
        }
        ctl
    }

    /// Yield the token with my state set to `state`; returns once granted.
    fn yield_as(&self, state: TState) {
        let mut ctl = self.checked_lock();
        ctl.threads[self.tid].state = state;
        self.ctl.pick_next(&mut ctl);
        let ctl = self.ctl.wait_for_grant(ctl, self.tid);
        drop(ctl);
    }

    pub(crate) fn yield_now(&self) {
        self.yield_as(TState::Ready);
    }

    /// Acquire the mutex at `addr`: a yield point even when free.
    pub(crate) fn acquire(&self, addr: usize, label: &'static str) {
        let mut ctl = self.checked_lock();
        let me = self.tid;
        let rec = ctl.locks.entry(addr).or_insert(LockRec {
            label,
            holder: None,
        });
        rec.label = label;
        if rec.holder == Some(me) {
            self.ctl.abort(ctl, Failure::DoubleLock { label });
        }
        let held: Vec<&'static str> = ctl.threads[me].held.iter().map(|&(_, l)| l).collect();
        for h in held {
            order::record_edge(h, label);
        }
        ctl.threads[me].state = TState::Lock(addr);
        self.ctl.pick_next(&mut ctl);
        let ctl = self.ctl.wait_for_grant(ctl, me);
        drop(ctl);
    }

    /// Release the mutex at `addr`. Not a yield point, and must never
    /// panic: it runs from guard drops during abort unwinding.
    pub(crate) fn release(&self, addr: usize) {
        let mut ctl = self.ctl.lock();
        let me = self.tid;
        if let Some(rec) = ctl.locks.get_mut(&addr) {
            if rec.holder == Some(me) {
                rec.holder = None;
            }
        }
        ctl.threads[me].held.retain(|&(a, _)| a != addr);
    }

    /// Atomically release the mutex and park on the condvar; returns with
    /// the mutex re-acquired (model semantics: no spurious wakeups).
    pub(crate) fn cond_wait(&self, cv_addr: usize, cv_label: &'static str, lock_addr: usize) {
        let mut ctl = self.checked_lock();
        let me = self.tid;
        let rec = ctl
            .locks
            .get_mut(&lock_addr)
            .expect("cond_wait without the mutex held");
        assert_eq!(rec.holder, Some(me), "cond_wait caller must hold the mutex");
        rec.holder = None;
        ctl.threads[me].held.retain(|&(a, _)| a != lock_addr);
        ctl.cvs
            .entry(cv_addr)
            .or_insert_with(|| CvRec {
                label: cv_label,
                waiters: VecDeque::new(),
            })
            .waiters
            .push_back(me);
        ctl.threads[me].state = TState::Cond {
            cv: cv_addr,
            lock: lock_addr,
        };
        self.ctl.pick_next(&mut ctl);
        // A notify moves us Cond -> Lock; the grant completes re-acquisition.
        let ctl = self.ctl.wait_for_grant(ctl, me);
        drop(ctl);
    }

    /// Wake one / all waiters (FIFO); a yield point.
    pub(crate) fn notify(&self, cv_addr: usize, cv_label: &'static str, all: bool) {
        let mut ctl = self.checked_lock();
        let rec = ctl.cvs.entry(cv_addr).or_insert_with(|| CvRec {
            label: cv_label,
            waiters: VecDeque::new(),
        });
        let n = if all {
            rec.waiters.len()
        } else {
            usize::from(!rec.waiters.is_empty())
        };
        let woken: Vec<usize> = (0..n).filter_map(|_| rec.waiters.pop_front()).collect();
        for t in woken {
            let TState::Cond { lock, .. } = ctl.threads[t].state else {
                unreachable!("condvar waiter not in Cond state");
            };
            ctl.threads[t].state = TState::Lock(lock);
        }
        ctl.threads[self.tid].state = TState::Ready;
        self.ctl.pick_next(&mut ctl);
        let ctl = self.ctl.wait_for_grant(ctl, self.tid);
        drop(ctl);
    }

    /// Register a new model thread; returns its tid.
    fn register(&self, name: String) -> usize {
        let mut ctl = self.checked_lock();
        ctl.threads.push(ThreadRec {
            name,
            state: TState::Ready,
            held: Vec::new(),
        });
        ctl.live += 1;
        ctl.threads.len() - 1
    }

    /// Block until `target` finishes; a yield point.
    fn join_thread(&self, target: usize) {
        self.yield_as(TState::Join(target));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Body of every model thread: wait for the first grant, run the
/// closure, record the result, mark finished, and hand the token on.
fn model_thread_main<R: Send>(
    ctl: &Arc<Controller>,
    tid: usize,
    slot: &Arc<StdMutex<Option<thread::Result<R>>>>,
    f: impl FnOnce() -> R,
) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            ctl: Arc::clone(ctl),
            tid,
        });
    });
    let entry = ctl.lock();
    let outcome = match panic::catch_unwind(AssertUnwindSafe(|| {
        let granted = ctl.wait_for_grant(entry, tid);
        drop(granted);
    })) {
        // Aborted before ever running: skip the closure entirely.
        Err(p) => Err(p),
        Ok(()) => panic::catch_unwind(AssertUnwindSafe(f)),
    };
    let aborted = matches!(&outcome, Err(p) if p.is::<ModelAbort>());
    let mut ctl_g = ctl.lock();
    match outcome {
        Ok(v) => {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
        }
        Err(p) => {
            if !aborted && ctl_g.failure.is_none() {
                ctl_g.failure = Some(Failure::Panic {
                    message: panic_message(p.as_ref()),
                });
            }
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(p));
        }
    }
    ctl_g.threads[tid].state = TState::Finished;
    ctl_g.threads[tid].held.clear();
    ctl_g.live -= 1;
    ctl.pick_next(&mut ctl_g);
    ctl.cv.notify_all();
    drop(ctl_g);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Handle to a thread started with [`spawn`].
pub struct JoinHandle<R> {
    inner: HandleInner<R>,
}

enum HandleInner<R> {
    Std(thread::JoinHandle<R>),
    Model {
        target: usize,
        result: Arc<StdMutex<Option<thread::Result<R>>>>,
        os: thread::JoinHandle<()>,
    },
}

impl<R> JoinHandle<R> {
    /// Wait for the thread and return its result, propagating panics.
    ///
    /// # Panics
    ///
    /// Panics if the joined thread panicked (mirroring
    /// `std::thread::JoinHandle::join().unwrap()`).
    pub fn join(self) -> R {
        match self.inner {
            HandleInner::Std(h) => match h.join() {
                Ok(v) => v,
                Err(p) => panic::resume_unwind(p),
            },
            HandleInner::Model { target, result, os } => {
                if let Some(cx) = ctx() {
                    cx.join_thread(target);
                }
                let _ = os.join();
                let out = result.lock().unwrap_or_else(PoisonError::into_inner).take();
                match out {
                    Some(Ok(v)) => v,
                    // Child panicked or was aborted; the failure is already
                    // recorded — tear this thread down too.
                    _ => panic::panic_any(ModelAbort),
                }
            }
        }
    }
}

/// Spawn a thread. Under the model this registers a schedulable model
/// thread (and is itself a yield point); outside it is
/// `std::thread::spawn`.
pub fn spawn<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let Some(cx) = ctx() else {
        return JoinHandle {
            inner: HandleInner::Std(thread::spawn(f)),
        };
    };
    let tid = cx.register(format!("thread-{}", cx.ctl.lock().threads.len()));
    let result: Arc<StdMutex<Option<thread::Result<R>>>> = Arc::new(StdMutex::new(None));
    let ctl = Arc::clone(&cx.ctl);
    let slot = Arc::clone(&result);
    let os = thread::Builder::new()
        .name(format!("psim-model-{tid}"))
        .spawn(move || model_thread_main(&ctl, tid, &slot, f))
        .expect("spawn model thread");
    // Let the scheduler decide whether the child or the parent runs next.
    cx.yield_now();
    JoinHandle {
        inner: HandleInner::Model {
            target: tid,
            result,
            os,
        },
    }
}

/// Outcome of one [`Explorer::explore`] call.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run.
    pub executions: usize,
    /// True when the schedule space was exhausted within the budget.
    pub complete: bool,
    /// Maximum trail depth (scheduling decisions with >1 enabled thread)
    /// seen across executions.
    pub decision_points: usize,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
    /// Trail of the failing execution (for reproduction), or of the last
    /// execution when no failure was found.
    pub trail: Vec<Choice>,
}

impl Report {
    /// True when exploration found no counterexample.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Assert the exploration found no counterexample.
    ///
    /// # Panics
    ///
    /// Panics with the failure and its repro trail otherwise.
    pub fn assert_ok(&self, what: &str) {
        assert!(
            self.ok(),
            "model check '{what}' failed after {} executions: {}\nrepro trail: {:?}",
            self.executions,
            self.failure.as_ref().expect("failure present"),
            self.trail,
        );
    }
}

fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Model-thread panics are captured into the Report; printing
            // them would flood stderr with expected counterexamples.
            if in_model() {
                return;
            }
            prev(info);
        }));
    });
}

/// Depth-first bounded exploration driver.
#[derive(Clone, Copy, Debug)]
pub struct Explorer {
    /// Execution budget: exploration stops (incomplete) after this many.
    pub max_executions: usize,
    /// Per-execution step budget (yield points) before [`Failure::StepLimit`].
    pub max_steps: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_executions: 50_000,
            max_steps: 200_000,
        }
    }
}

impl Explorer {
    /// An explorer with the given execution budget.
    #[must_use]
    pub fn new(max_executions: usize) -> Self {
        Explorer {
            max_executions,
            ..Explorer::default()
        }
    }

    /// Run `scenario` through every distinguishable interleaving (up to
    /// the budget). The closure is invoked once per execution as model
    /// thread 0 and must be re-runnable.
    pub fn explore<F>(&self, scenario: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_panic_hook();
        let scenario = Arc::new(scenario);
        let mut trail: Vec<Choice> = Vec::new();
        let mut executions = 0usize;
        let mut decision_points = 0usize;
        loop {
            let ctl = Arc::new(Controller::new(trail.clone(), self.max_steps));
            {
                let mut g = ctl.lock();
                g.threads.push(ThreadRec {
                    name: "root".to_string(),
                    state: TState::Ready,
                    held: Vec::new(),
                });
                g.live = 1;
                g.current = Some(0);
            }
            let slot: Arc<StdMutex<Option<thread::Result<()>>>> = Arc::new(StdMutex::new(None));
            let root = {
                let ctl = Arc::clone(&ctl);
                let slot = Arc::clone(&slot);
                let scenario = Arc::clone(&scenario);
                thread::Builder::new()
                    .name("psim-model-0".to_string())
                    .spawn(move || model_thread_main(&ctl, 0, &slot, move || scenario()))
                    .expect("spawn model root")
            };
            let (failure, final_trail) = {
                let mut g = ctl.lock();
                while g.live > 0 {
                    g = ctl.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
                (g.failure.clone(), g.trail.clone())
            };
            let _ = root.join();
            executions += 1;
            decision_points = decision_points.max(final_trail.len());
            if failure.is_some() {
                return Report {
                    executions,
                    complete: false,
                    decision_points,
                    failure,
                    trail: final_trail,
                };
            }
            // Advance the trail odometer: bump the deepest decision that
            // still has unexplored alternatives, dropping exhausted tails.
            let mut next = final_trail;
            loop {
                let Some(last) = next.last_mut() else {
                    return Report {
                        executions,
                        complete: true,
                        decision_points,
                        failure: None,
                        trail: Vec::new(),
                    };
                };
                if last.chosen + 1 < last.enabled {
                    last.chosen += 1;
                    break;
                }
                next.pop();
            }
            if executions >= self.max_executions {
                return Report {
                    executions,
                    complete: false,
                    decision_points,
                    failure: None,
                    trail: next,
                };
            }
            trail = next;
        }
    }
}
