//! The sync shim: `Mutex` / `Condvar` / atomics with three backends.
//!
//! * **Passthrough** (default): delegates to `std::sync` with one
//!   deliberate semantic change — lock poisoning is *recovered*
//!   (`PoisonError::into_inner`) instead of propagated. The scheduler's
//!   invariants are re-established under the lock (every wait re-checks
//!   its predicate; see DESIGN.md §16), so a panicked peer must not
//!   cascade into unrelated submitters. Zero overhead beyond a branch on
//!   a cached mode flag.
//! * **Instrumented** (`PSIM_SYNC=instrument`): passthrough plus a
//!   per-thread held-lock stack feeding the global [`crate::order`]
//!   lock-order graph, and a same-thread double-lock check that panics
//!   *before* std would wedge. Cheap enough to run the whole test suite
//!   under.
//! * **Model**: active whenever the calling thread runs under
//!   [`crate::model::Explorer`] — every operation becomes a scheduling
//!   decision of the interleaving explorer, the condvar loses spurious
//!   wakeups, and lock-order edges are recorded too.
//!
//! The backend is chosen per *thread*, not per lock: a mutex touched by
//! both model and non-model threads degrades to std mutual exclusion for
//! the non-model side, so scenarios must spawn every participant via
//! [`crate::model::spawn`] to get full coverage.

use std::cell::RefCell;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock, PoisonError,
};

use crate::model;
use crate::order;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Pass,
    Instrument,
}

fn global_mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("PSIM_SYNC") {
        Ok(v) if v == "instrument" => Mode::Instrument,
        _ => Mode::Pass,
    })
}

thread_local! {
    /// Instrument-mode held stack: (mutex key, label) in acquisition order.
    static HELD: RefCell<Vec<(usize, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Instrument-mode bookkeeping done *before* blocking on the std mutex,
/// so a would-be deadlock is reported instead of wedging.
fn instr_acquire(addr: usize, label: &'static str) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        for &(a, l) in &*h {
            assert!(
                a != addr,
                "psim-conc: thread re-locked '{l}' it already holds (self-deadlock)"
            );
            order::record_edge(l, label);
        }
        h.push((addr, label));
    });
}

fn instr_release(addr: usize) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(pos) = h.iter().rposition(|&(a, _)| a == addr) {
            h.remove(pos);
        }
    });
}

enum Kind {
    Pass,
    Instrument,
    Model(model::Ctx),
}

/// A mutual-exclusion primitive; see the module docs for backend
/// semantics. Unlike `std::sync::Mutex`, locking never returns a poison
/// error — panicked-holder state is recovered.
#[derive(Debug)]
pub struct Mutex<T> {
    label: &'static str,
    inner: StdMutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// An unlabeled mutex (shows up as `"mutex"` in lock-order reports).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex::labeled("mutex", value)
    }

    /// A mutex carrying a `'static` label — the node name in the
    /// lock-order graph and in model deadlock reports. Use one label per
    /// lock *role* (all `JobQueue` inner locks share `"sched.queue"`).
    pub const fn labeled(label: &'static str, value: T) -> Mutex<T> {
        Mutex {
            label,
            inner: StdMutex::new(value),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self).addr()
    }

    /// Acquire the mutex, blocking; recovers (never propagates) poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(cx) = model::ctx() {
            cx.acquire(self.addr(), self.label);
            let std = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            return MutexGuard {
                lock: self,
                std: Some(std),
                kind: Kind::Model(cx),
            };
        }
        let kind = match global_mode() {
            Mode::Pass => Kind::Pass,
            Mode::Instrument => {
                instr_acquire(self.addr(), self.label);
                Kind::Instrument
            }
        };
        let std = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock: self,
            std: Some(std),
            kind,
        }
    }

    /// Mutable access without locking (exclusive borrow proves unicity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]; releases (and notifies the model backend)
/// on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    std: Option<StdMutexGuard<'a, T>>,
    kind: Kind,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Take the guard apart without running release bookkeeping — used
    /// by [`Condvar::wait`], which transfers ownership of the lock into
    /// the wait protocol.
    fn dismantle(mut self) -> (&'a Mutex<T>, StdMutexGuard<'a, T>, Kind) {
        let std = self.std.take().expect("guard is live");
        let lock = self.lock;
        let kind = std::mem::replace(&mut self.kind, Kind::Pass);
        std::mem::forget(self);
        (lock, std, kind)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard is live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard is live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        match &self.kind {
            Kind::Pass => {}
            Kind::Instrument => instr_release(self.lock.addr()),
            // Model release is pure bookkeeping (no yield): the token
            // stays with this thread until its next operation, so the
            // std guard (dropped right after) is gone before any other
            // model thread can be granted this lock.
            Kind::Model(cx) => cx.release(self.lock.addr()),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable shim. Under the model there are **no spurious
/// wakeups** and waiters wake FIFO — so a dropped notify is a
/// detectable deadlock, not a timing accident.
#[derive(Debug)]
pub struct Condvar {
    label: &'static str,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// An unlabeled condvar.
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar::labeled("condvar")
    }

    /// A condvar with a `'static` label for model deadlock reports.
    #[must_use]
    pub const fn labeled(label: &'static str) -> Condvar {
        Condvar {
            label,
            inner: StdCondvar::new(),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self).addr()
    }

    /// Release the guard's mutex, park until notified, re-acquire.
    /// Callers must re-check their predicate in a loop: the passthrough
    /// backend keeps std's spurious wakeups.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (lock, std, kind) = guard.dismantle();
        match kind {
            Kind::Model(cx) => {
                // Release the real mutex before parking in the model:
                // another model thread may be granted it while we wait.
                drop(std);
                cx.cond_wait(self.addr(), self.label, lock.addr());
                let std = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    lock,
                    std: Some(std),
                    kind: Kind::Model(cx),
                }
            }
            Kind::Instrument => {
                instr_release(lock.addr());
                let std = self.inner.wait(std).unwrap_or_else(PoisonError::into_inner);
                instr_acquire(lock.addr(), lock.label);
                MutexGuard {
                    lock,
                    std: Some(std),
                    kind: Kind::Instrument,
                }
            }
            Kind::Pass => {
                let std = self.inner.wait(std).unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    lock,
                    std: Some(std),
                    kind: Kind::Pass,
                }
            }
        }
    }

    /// Wake one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        if let Some(cx) = model::ctx() {
            cx.notify(self.addr(), self.label, false);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        if let Some(cx) = model::ctx() {
            cx.notify(self.addr(), self.label, true);
        } else {
            self.inner.notify_all();
        }
    }
}

/// A `u64` atomic whose read-modify-write operations are model yield
/// points (plain `SeqCst` delegation otherwise).
#[derive(Debug, Default)]
pub struct AtomicU64 {
    inner: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    /// A new atomic with the given initial value.
    #[must_use]
    pub const fn new(value: u64) -> AtomicU64 {
        AtomicU64 {
            inner: std::sync::atomic::AtomicU64::new(value),
        }
    }

    /// `SeqCst` load.
    pub fn load(&self) -> u64 {
        self.inner.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// `SeqCst` store.
    pub fn store(&self, value: u64) {
        self.inner.store(value, std::sync::atomic::Ordering::SeqCst);
    }

    /// `SeqCst` fetch-add; a scheduling decision under the model.
    pub fn fetch_add(&self, value: u64) -> u64 {
        model::yield_now();
        self.inner
            .fetch_add(value, std::sync::atomic::Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::{instr_acquire, instr_release};
    use crate::order;

    #[test]
    fn instrument_held_stack_records_edges_and_traps_relock() {
        // The instrument path is driven directly (the global mode flag
        // is cached per process, so tests can't flip PSIM_SYNC): nested
        // acquisition records the edge, re-acquiring a held key panics.
        instr_acquire(0x1000, "instr.outer");
        instr_acquire(0x2000, "instr.inner");
        assert!(order::edges().contains(&("instr.outer", "instr.inner")));
        instr_release(0x2000);
        let relock = std::panic::catch_unwind(|| instr_acquire(0x1000, "instr.outer"));
        let msg = *relock
            .expect_err("relock must panic")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("re-locked"), "got: {msg}");
        instr_release(0x1000);
    }
}
