//! Shutdown-path scenarios under the interleaving explorer.
//!
//! The service's close protocol has three racy windows that unit tests
//! exercise only under one OS schedule each: a producer closing the queue
//! while the admission loop is mid-window, waiters blocked in
//! `pop_wait_batch` when the close lands, and the shared `MatrixStore`
//! evicting under concurrent insert/get. Each scenario here runs under
//! [`psim_conc::model::Explorer`], so *every* schedule distinguishable
//! through the sync shim is checked for deadlock-freedom, lost wakeups
//! and the stated invariants — and a failing schedule comes back as a
//! deterministic repro trail.

use psim_conc::model;
use psim_kernels::PimDevice;
use psim_sched::{
    ExecutorConfig, JobKind, JobQueue, JobSpec, JobValue, MatrixStore, Service, ServiceConfig,
    ShardExecutor,
};
use std::sync::{Arc, Mutex as StdMutex};

fn spmv_spec(a: &Arc<psim_sparse::Coo>, i: u64) -> JobSpec {
    let n = a.ncols();
    let x: Vec<f64> = (0..n as u64)
        .map(|k| (i * 7 + k + 1) as f64 * 0.5)
        .collect();
    JobSpec::batch("t0", JobKind::spmv(Arc::clone(a), x))
}

#[test]
fn close_during_inflight_fusion_window_loses_no_jobs() {
    // The producer submits three same-matrix SpMV jobs and closes while
    // the service admits fusion windows. Whatever the interleaving —
    // close landing before, inside, or after a window — every submitted
    // job must complete exactly once and the run must terminate.
    let a = Arc::new(psim_sparse::gen::rmat(16, 2, 1));
    let report = model::Explorer::new(5_000).explore(move || {
        let queue = Arc::new(JobQueue::bounded(4));
        let producer = {
            let queue = Arc::clone(&queue);
            let a = Arc::clone(&a);
            model::spawn(move || {
                for i in 0..3u64 {
                    queue.submit(spmv_spec(&a, i)).expect("queue open");
                }
                queue.close();
            })
        };
        let svc = Service::new(ServiceConfig::new(
            ExecutorConfig::sharded(PimDevice::tiny(2), 1).with_fusion(2),
        ))
        .expect("shards divide channels");
        let mut seen = Vec::new();
        let stats = svc
            .run(&queue, &mut |job| seen.push(job.id))
            .expect("jobs execute")
            .stats;
        producer.join();
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![0, 1, 2],
            "every admitted job completes exactly once"
        );
        assert_eq!(stats.sim.jobs, 3);
    });
    report.assert_ok("close during in-flight fusion window");
    assert!(report.executions > 1, "the close race must actually branch");
}

#[test]
fn close_releases_blocked_batch_waiters() {
    // Two consumers block in pop_wait_batch on a near-empty queue while
    // one job is submitted and the queue closes. In every schedule both
    // waiters must return (no lost wakeup: notify_all on close has to
    // reach both) and the single job is delivered to exactly one of them.
    let report = model::Explorer::new(60_000).explore(|| {
        let queue = Arc::new(JobQueue::bounded(2));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                model::spawn(move || queue.pop_wait_batch(2).len())
            })
            .collect();
        let a = Arc::new(psim_sparse::gen::rmat(8, 2, 2));
        queue.submit(spmv_spec(&a, 0)).expect("queue open");
        queue.close();
        let got: usize = waiters.into_iter().map(model::JoinHandle::join).sum();
        assert_eq!(got, 1, "the one job goes to exactly one waiter, none hang");
        assert!(queue.pop_wait_batch(2).is_empty(), "closed and drained");
    });
    report.assert_ok("close with blocked pop_wait_batch waiters");
    assert!(report.complete, "queue-only scenario must be exhaustible");
}

#[test]
fn matrix_store_eviction_race_keeps_lru_invariants() {
    // Two threads insert/get through a store whose budget holds only one
    // of the two matrices, so every schedule churns the LRU eviction
    // path. After both finish, the store's internal accounting must
    // audit clean and a hit must return the correct matrix.
    let m0 = psim_sparse::gen::rmat(16, 2, 3);
    let m1 = psim_sparse::gen::rmat(16, 2, 4);
    let budget = {
        let probe = MatrixStore::new();
        probe.insert("m0", m0.clone());
        probe.resident_bytes() * 3 / 2
    };
    let report = model::Explorer::new(10_000).explore(move || {
        let store = Arc::new(MatrixStore::with_budget(budget));
        let threads: Vec<_> = [m0.clone(), m1.clone()]
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                let store = Arc::clone(&store);
                model::spawn(move || {
                    let name = if i == 0 { "m0" } else { "m1" };
                    let a = store.insert(name, m);
                    assert_eq!(a.nnz(), store.get(name).map_or(a.nnz(), |g| g.nnz()));
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        store.audit();
        assert!(store.len() <= 2, "never more resident than inserted");
        assert!(
            store.get("m0").is_some() || store.get("m1").is_some(),
            "the most recent insert survives its own eviction pass"
        );
        store.audit();
    });
    report.assert_ok("MatrixStore concurrent insert/evict");
    assert!(report.complete, "store scenario must be exhaustible");
}

#[test]
fn fused_results_match_unfused_golden_under_every_admission_schedule() {
    // Golden values from the unfused batch executor (no concurrency at
    // all), then the fused service under the explorer with a racing
    // producer: per-job values must be bit-identical in every schedule —
    // fusion and admission timing change scheduling, never numerics.
    let a = Arc::new(psim_sparse::gen::rmat(16, 2, 5));
    let golden: Vec<(u64, JobValue)> = {
        let queue = JobQueue::bounded(8);
        for i in 0..3u64 {
            queue.submit(spmv_spec(&a, i)).expect("queue open");
        }
        let exec = ShardExecutor::new(ExecutorConfig::sharded(PimDevice::tiny(2), 1)).unwrap();
        let mut jobs = exec.drain_and_run(&queue).expect("golden run").jobs;
        jobs.sort_by_key(|j| j.id);
        jobs.into_iter().map(|j| (j.id, j.value)).collect()
    };
    let golden = Arc::new(golden);
    let worst: Arc<StdMutex<usize>> = Arc::new(StdMutex::new(0));
    let worst2 = Arc::clone(&worst);
    let report = model::Explorer::new(5_000).explore(move || {
        let queue = Arc::new(JobQueue::bounded(2));
        let producer = {
            let queue = Arc::clone(&queue);
            let a = Arc::clone(&a);
            model::spawn(move || {
                for i in 0..3u64 {
                    queue.submit(spmv_spec(&a, i)).expect("queue open");
                }
                queue.close();
            })
        };
        let svc = Service::new(ServiceConfig::new(
            ExecutorConfig::sharded(PimDevice::tiny(2), 1).with_fusion(2),
        ))
        .unwrap();
        let mut got: Vec<(u64, JobValue)> = Vec::new();
        svc.run(&queue, &mut |job| got.push((job.id, job.value)))
            .expect("jobs execute");
        producer.join();
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(
            got, *golden,
            "fused values must match the unfused golden run"
        );
        *worst2.lock().unwrap() += 1;
    });
    report.assert_ok("fused vs unfused equivalence");
    assert!(
        *worst.lock().unwrap() > 1,
        "equivalence must hold across schedules"
    );
}
