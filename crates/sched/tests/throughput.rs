//! Acceptance guard for the sharding throughput claim: on a multi-job
//! small-SpMV mix, carving the device into 4 channel shards must deliver
//! more than 1.5× the simulated jobs/sec of the unsharded device (small
//! jobs pay fixed per-launch overheads, so concurrency across shards beats
//! giving every job all the channels).

use psim_kernels::PimDevice;
use psim_sched::{ExecutorConfig, JobKind, JobQueue, JobSpec, ShardExecutor, SimStats};
use psim_sparse::gen;
use std::sync::Arc;

fn spmv_mix() -> JobQueue {
    let queue = JobQueue::bounded(64);
    let mats = [
        Arc::new(gen::rmat(128, 6, 1)),
        Arc::new(gen::rmat(256, 3, 2)),
        Arc::new(gen::rmat(64, 8, 3)),
    ];
    for i in 0..16 {
        let a = Arc::clone(&mats[i % mats.len()]);
        let x = gen::dense_vector(a.ncols(), i as u64);
        queue
            .submit(JobSpec::batch(&format!("t{}", i % 4), JobKind::spmv(a, x)))
            .unwrap();
    }
    queue
}

fn run(shards: usize) -> SimStats {
    ShardExecutor::new(ExecutorConfig::sharded(PimDevice::psync_1x(), shards))
        .unwrap()
        .drain_and_run(&spmv_mix())
        .unwrap()
        .stats
        .sim
}

#[test]
fn four_shards_exceed_1_5x_jobs_per_sec() {
    let one = run(1);
    let four = run(4);
    assert_eq!(one.jobs, 16);
    assert_eq!(four.jobs, 16);
    let ratio = four.jobs_per_sim_s / one.jobs_per_sim_s;
    assert!(
        ratio > 1.5,
        "4 shards delivered only {ratio:.2}x jobs/sec over 1 shard \
         ({:.0} vs {:.0})",
        four.jobs_per_sim_s,
        one.jobs_per_sim_s
    );
    // Sharding must not change any job's numeric result — spot-check via
    // equal total job counts and monotone makespan.
    assert!(four.makespan_s < one.makespan_s);
}
