//! Burst-fairness and liveness regressions for the MPMC [`JobQueue`]:
//! concurrent producers and consumers must deliver every job exactly
//! once, a best-effort flood must never starve interactive jobs beyond
//! the bound the queue's capacity implies, and `close()` must wake every
//! blocked waiter — submitters and poppers alike.

use proptest::prelude::*;
use psim_sched::{JobClass, JobKind, JobQueue, JobSpec, SubmitError};
use std::sync::{Arc, Mutex};

fn scal(tenant: &str, n: usize) -> JobSpec {
    JobSpec::batch(
        tenant,
        JobKind::Scal {
            alpha: 2.0,
            x: vec![1.0; n],
        },
    )
}

#[test]
fn concurrent_producers_and_consumers_deliver_exactly_once() {
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 3;
    const PER_PRODUCER: usize = 40;
    let queue = Arc::new(JobQueue::bounded(8));
    let popped = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            producers.push(s.spawn(move || {
                let tenant = format!("t{p}");
                for i in 0..PER_PRODUCER {
                    let class = match i % 3 {
                        0 => JobClass::Interactive,
                        1 => JobClass::Batch,
                        _ => JobClass::BestEffort,
                    };
                    queue
                        .submit(scal(&tenant, 8 + i).with_class(class))
                        .unwrap();
                }
            }));
        }
        for _ in 0..CONSUMERS {
            let queue = Arc::clone(&queue);
            let popped = Arc::clone(&popped);
            s.spawn(move || {
                while let Some(job) = queue.pop_wait() {
                    popped.lock().unwrap().push(job.id);
                }
            });
        }
        // Once every submit has returned, close: consumers drain the
        // backlog and exit on the None they get from the closed queue.
        for h in producers {
            h.join().unwrap();
        }
        queue.close();
    });
    let mut ids = Arc::try_unwrap(popped).unwrap().into_inner().unwrap();
    ids.sort_unstable();
    let expect: Vec<u64> = (0..(PRODUCERS * PER_PRODUCER) as u64).collect();
    assert_eq!(
        ids, expect,
        "every job exactly once, none lost or duplicated"
    );
}

#[test]
fn close_wakes_every_blocked_waiter() {
    // Poppers blocked on an empty queue and submitters blocked on a full
    // one must all return promptly after close().
    let empty = Arc::new(JobQueue::bounded(4));
    let full = Arc::new(JobQueue::bounded(1));
    full.submit(scal("t", 8)).unwrap();
    std::thread::scope(|s| {
        let mut poppers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&empty);
            poppers.push(s.spawn(move || q.pop_wait()));
        }
        let mut submitters = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&full);
            submitters.push(s.spawn(move || q.submit(scal("t", 8))));
        }
        // Let everyone block, then close both queues.
        std::thread::sleep(std::time::Duration::from_millis(30));
        empty.close();
        full.close();
        for h in poppers {
            assert!(h.join().unwrap().is_none(), "popper must wake with None");
        }
        for h in submitters {
            assert_eq!(
                h.join().unwrap(),
                Err(SubmitError::Closed),
                "submitter must wake with Closed"
            );
        }
    });
    // The job that was already queued still drains.
    assert!(full.pop().is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A best-effort flood racing an interactive producer: between an
    /// interactive job entering the queue and being popped, at most
    /// `capacity + slack` best-effort jobs may be served — the jobs that
    /// were already pending or in flight when it arrived. Strict class
    /// priority forbids anything more; starvation would show up as an
    /// unbounded count here.
    #[test]
    fn best_effort_burst_cannot_starve_interactive(
        capacity in 2usize..8,
        flood in 20usize..60,
        urgent in 4usize..12,
    ) {
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Ev {
            SubmittedUrgent(u64),
            Popped(u64, JobClass),
        }
        let queue = Arc::new(JobQueue::bounded(capacity));
        let log = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            let flooder = {
                let queue = Arc::clone(&queue);
                s.spawn(move || {
                    for i in 0..flood {
                        queue
                            .submit(scal("flood", 64 + i).with_class(JobClass::BestEffort))
                            .unwrap();
                    }
                })
            };
            let urgent_prod = {
                let queue = Arc::clone(&queue);
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for _ in 0..urgent {
                        let id = queue
                            .submit(scal("ui", 8).with_class(JobClass::Interactive))
                            .unwrap();
                        log.lock().unwrap().push(Ev::SubmittedUrgent(id));
                        std::thread::yield_now();
                    }
                })
            };
            let consumer = {
                let queue = Arc::clone(&queue);
                let log = Arc::clone(&log);
                s.spawn(move || {
                    while let Some(job) = queue.pop_wait() {
                        log.lock().unwrap().push(Ev::Popped(job.id, job.spec.class));
                    }
                })
            };
            flooder.join().unwrap();
            urgent_prod.join().unwrap();
            queue.close();
            consumer.join().unwrap();
        });
        let log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
        // Every urgent job was popped, and between its submission event
        // and its pop event at most capacity + 2 best-effort pops appear
        // (pending backlog at submission time, plus one in flight on each
        // side of the log's linearization).
        for (i, ev) in log.iter().enumerate() {
            let Ev::SubmittedUrgent(id) = *ev else { continue };
            // The pop may be *logged* before the submission event (the
            // consumer can pop and log between the producer's submit
            // returning and its own log call) — that's an instant serve,
            // a wait of zero.
            let popped_at = log
                .iter()
                .position(|e| *e == Ev::Popped(id, JobClass::Interactive))
                .unwrap_or_else(|| panic!("urgent job {id} never popped"));
            let be_between = log[i..popped_at.max(i)]
                .iter()
                .filter(|e| matches!(e, Ev::Popped(_, JobClass::BestEffort)))
                .count();
            prop_assert!(
                be_between <= capacity + 2,
                "urgent job {} waited behind {} best-effort pops (capacity {})",
                id,
                be_between,
                capacity
            );
        }
        let urgent_pops = log
            .iter()
            .filter(|e| matches!(e, Ev::Popped(_, JobClass::Interactive)))
            .count();
        prop_assert_eq!(urgent_pops, urgent);
    }
}
