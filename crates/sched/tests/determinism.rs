//! Determinism contract of the sharded executor: the host thread count is
//! a pure performance knob — an N-thread run must be *byte-identical* to a
//! serial run of the same batch (job values, shard placement, and the
//! serialized simulated statistics), for hand-built batches and for
//! proptest-generated random multi-tenant job mixes.

use proptest::prelude::*;
use psim_kernels::PimDevice;
use psim_sched::{
    BatchReport, ExecutorConfig, JobClass, JobKind, JobQueue, JobSpec, ShardExecutor,
};
use psim_sparse::gen;
use psim_sparse::Coo;
use serde::Serialize;
use std::sync::Arc;

/// Run the same batch with a given host thread count and fusion width.
fn run_with_fusion(specs: &[JobSpec], shards: usize, threads: usize, fusion: usize) -> BatchReport {
    let queue = JobQueue::bounded(specs.len().max(1));
    for spec in specs {
        queue.submit(spec.clone()).unwrap();
    }
    let exec = ShardExecutor::new(ExecutorConfig {
        device: PimDevice::tiny(shards.max(2)),
        shards,
        host_threads: threads,
        validate: true,
        // Tracing is part of the determinism contract too: the fingerprint
        // below covers the per-category service attribution, and the
        // proptest compares each job's full metrics registry.
        trace: true,
        cost_tier: psim_sched::CostTier::default(),
        fusion,
        autotune: false,
    })
    .unwrap();
    exec.drain_and_run(&queue).unwrap()
}

/// Run the same batch with a given host thread count (fusion off).
fn run_with_threads(specs: &[JobSpec], shards: usize, threads: usize) -> BatchReport {
    run_with_fusion(specs, shards, threads, 1)
}

/// Everything that must be reproducible: the deterministic half of the
/// stats plus every job's placement and numeric result.
fn fingerprint(report: &BatchReport) -> String {
    let mut s = report.stats.sim.to_json();
    for job in &report.jobs {
        s.push_str(&format!(
            "|{}:{}:{}:{}:{}:{:x}:{:x}",
            job.id,
            job.tenant,
            job.class.label(),
            job.kind,
            job.shard,
            job.wait_s.to_bits(),
            job.service_s.to_bits(),
        ));
        match &job.value {
            psim_sched::JobValue::Scalar(v) => s.push_str(&format!("={:x}", v.to_bits())),
            psim_sched::JobValue::Vector(v) => {
                for x in v {
                    s.push_str(&format!(",{:x}", x.to_bits()));
                }
            }
        }
    }
    s
}

fn mixed_batch() -> Vec<JobSpec> {
    let a = Arc::new(gen::rmat(48, 3, 11));
    let b = Arc::new(gen::rmat(24, 2, 12));
    let x48: Vec<f64> = (0..48).map(|i| 0.5 + i as f64).collect();
    let x24: Vec<f64> = (0..24).map(|i| 1.0 + (i % 5) as f64).collect();
    vec![
        JobSpec::batch("alice", JobKind::spmv(Arc::clone(&a), x48.clone())),
        JobSpec::batch("bob", JobKind::spmv(Arc::clone(&b), x24.clone())),
        JobSpec::batch(
            "carol",
            JobKind::Dot {
                x: x48.clone(),
                y: x48.clone(),
            },
        )
        .with_class(JobClass::Interactive),
        JobSpec::batch(
            "alice",
            JobKind::Axpy {
                alpha: 1.5,
                x: x24.clone(),
                y: x24.clone(),
            },
        ),
        JobSpec::batch("bob", JobKind::Norm2 { x: x48.clone() }).with_class(JobClass::BestEffort),
        JobSpec::batch(
            "carol",
            JobKind::Scal {
                alpha: -2.0,
                x: x24,
            },
        ),
        JobSpec::batch("dave", JobKind::spmv(a, x48)),
    ]
}

#[test]
fn threaded_run_is_byte_identical_to_serial() {
    let specs = mixed_batch();
    let serial = run_with_threads(&specs, 4, 1);
    let serial_fp = fingerprint(&serial);
    for threads in [2, 3, 4, 8] {
        let parallel = run_with_threads(&specs, 4, threads);
        assert_eq!(
            serial_fp,
            fingerprint(&parallel),
            "{threads} host threads diverged from serial"
        );
        // Host half may differ — but must report what actually ran.
        assert_eq!(parallel.stats.host.threads, threads.min(4));
    }
}

#[test]
fn shard_count_is_a_simulated_parameter_not_noise() {
    // Different shard counts ARE allowed to differ (a shard is a smaller
    // device) — but each must be self-consistent across thread counts.
    let specs = mixed_batch();
    for shards in [1, 2, 4] {
        let one = run_with_threads(&specs, shards, 1);
        let many = run_with_threads(&specs, shards, 4);
        assert_eq!(fingerprint(&one), fingerprint(&many), "shards = {shards}");
    }
}

/// Random multi-tenant job mixes for the property test.
fn arb_specs() -> impl Strategy<Value = Vec<JobSpec>> {
    let tenant = prop::sample::select(vec!["t0", "t1", "t2", "t3"]);
    let class = prop::sample::select(vec![
        JobClass::Interactive,
        JobClass::Batch,
        JobClass::BestEffort,
    ]);
    let kind = (2usize..24, 0u64..1000, 0usize..4).prop_map(|(n, seed, which)| {
        let x = gen::dense_vector(n, seed);
        let y = gen::dense_vector(n, seed.wrapping_add(7));
        match which {
            0 => {
                let degree = (n / 8).max(1);
                let a: Arc<Coo> = Arc::new(gen::rmat(n.next_power_of_two(), degree, seed));
                let x = gen::dense_vector(n.next_power_of_two(), seed);
                JobKind::spmv(a, x)
            }
            1 => JobKind::Axpy {
                alpha: 0.5 + seed as f64 / 100.0,
                x,
                y,
            },
            2 => JobKind::Dot { x, y },
            _ => JobKind::Norm2 { x },
        }
    });
    prop::collection::vec(
        (tenant, class, kind)
            .prop_map(|(tenant, class, kind)| JobSpec::batch(tenant, kind).with_class(class)),
        1..10,
    )
}

/// Random same-matrix SpMV streams (shared `Arc`, mixed tenants) that the
/// fusion window can actually coalesce, salted with non-fusible jobs.
fn arb_fusible_specs() -> impl Strategy<Value = Vec<JobSpec>> {
    (2usize..14, 0u64..1000).prop_map(|(count, seed)| {
        let n = 32usize;
        let a: Arc<Coo> = Arc::new(gen::rmat(n, 3, seed));
        (0..count)
            .map(|i| {
                let tenant = ["t0", "t1", "t2"][i % 3];
                if i % 5 == 4 {
                    JobSpec::batch(
                        tenant,
                        JobKind::Norm2 {
                            x: gen::dense_vector(n, seed + i as u64),
                        },
                    )
                } else {
                    let x = gen::dense_vector(n, seed + i as u64);
                    JobSpec::batch(tenant, JobKind::spmv(Arc::clone(&a), x))
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_job_mixes_are_deterministic_across_threads(specs in arb_specs()) {
        let serial = run_with_threads(&specs, 2, 1);
        let parallel = run_with_threads(&specs, 2, 4);
        prop_assert_eq!(fingerprint(&serial), fingerprint(&parallel));
        // The psim-trace registries must be bit-identical too, job by job,
        // and every traced job conserves its service cycles exactly.
        for (s, p) in serial.jobs.iter().zip(parallel.jobs.iter()) {
            prop_assert_eq!(&s.run.metrics, &p.run.metrics, "job {}", s.id);
            prop_assert_eq!(s.run.attr.total(), s.service_cycles, "job {}", s.id);
            let m = s.run.metrics.as_ref().expect("tracing on");
            prop_assert!(m.conservation_failures().is_empty(), "job {}", s.id);
        }
    }

    #[test]
    fn fused_runs_are_deterministic_and_never_change_values(specs in arb_fusible_specs()) {
        // The fusing, work-stealing executor keeps the determinism
        // contract: threads are noise even when groups fuse and lanes
        // steal. And fusion changes scheduling only — every job's value
        // must be bit-identical to the unfused run's.
        let fused_serial = run_with_fusion(&specs, 2, 1, 4);
        let fused_parallel = run_with_fusion(&specs, 2, 4, 4);
        prop_assert_eq!(fingerprint(&fused_serial), fingerprint(&fused_parallel));
        let unfused = run_with_threads(&specs, 2, 1);
        prop_assert_eq!(fused_serial.jobs.len(), unfused.jobs.len());
        let mut fused_cycles = 0u64;
        for (f, u) in fused_serial.jobs.iter().zip(unfused.jobs.iter()) {
            prop_assert_eq!(f.id, u.id);
            match (&f.value, &u.value) {
                (psim_sched::JobValue::Scalar(a), psim_sched::JobValue::Scalar(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "job {}", f.id);
                }
                (psim_sched::JobValue::Vector(a), psim_sched::JobValue::Vector(b)) => {
                    prop_assert_eq!(a.len(), b.len(), "job {}", f.id);
                    for (x, y) in a.iter().zip(b.iter()) {
                        prop_assert_eq!(x.to_bits(), y.to_bits(), "job {}", f.id);
                    }
                }
                _ => prop_assert!(false, "job {} changed value shape", f.id),
            }
            // Leaders carry the group's cycles once; followers zero.
            prop_assert_eq!(f.run.attr.total(), f.service_cycles, "job {}", f.id);
            if !f.fused_leader {
                prop_assert_eq!(f.service_cycles, 0, "follower {}", f.id);
            }
            fused_cycles += f.service_cycles;
        }
        prop_assert!(fused_cycles > 0);
        if specs.len() >= 4 {
            prop_assert!(
                fused_serial.stats.sim.fused_jobs > 0,
                "a same-matrix stream of {} jobs must fuse", specs.len()
            );
        }
    }
}
