//! Always-on service front-end: an admission loop over the bounded
//! [`JobQueue`] driving the fusing, work-stealing executor.
//!
//! The batch API ([`crate::ShardExecutor::drain_and_run`]) plans a closed
//! set of jobs once. A service instead faces *open arrivals*: producers
//! keep submitting (blocking on the queue's capacity for backpressure)
//! while the service admits windows of jobs, fuses same-matrix SpMV runs,
//! and streams completions into a caller-supplied sink. Statistics
//! accumulate incrementally ([`crate::stats::SimAcc`]), so a million-job
//! soak holds O(shards) state, not a million result vectors.
//!
//! Determinism: the service inherits the executor's contract —
//! `host_threads` never affects results — but adds one caveat the batch
//! API doesn't have: the *admission order* is whatever order jobs entered
//! the queue. With one producer (or producers synchronized by the
//! caller) a service run is exactly reproducible; with racing producers
//! the interleaving is the caller's nondeterminism, not the service's.
//!
//! Concurrency verification: the service's only synchronization is the
//! queue's shim-backed locks (`psim_conc`), and the lane path degrades
//! to serial under the interleaving explorer — so the model scenarios
//! (`tests/model_shutdown.rs`, the `psim_model` gate) cover close
//! racing an in-flight fusion window, blocked `pop_wait_batch` waiters,
//! and fused-vs-unfused value equivalence across every explored
//! schedule. See DESIGN.md §16.

use std::time::Instant;

use crate::executor::{CompletedJob, ExecutorConfig, LaneEngine, SchedError, ShardExecutor};
use crate::queue::JobQueue;
use crate::stats::{HostStats, ServiceStats, SimAcc};

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The executor the admission loop drives (shards, fusion window
    /// width, validation, cost tier).
    pub exec: ExecutorConfig,
    /// Jobs admitted per wakeup — the fusion stage scans one admission
    /// window at a time, so this bounds how far apart two SpMV jobs can
    /// be and still fuse. A few multiples of the fusion width is plenty.
    pub window: usize,
}

impl ServiceConfig {
    /// A service over `exec` with a default 4× fusion-width window.
    #[must_use]
    pub fn new(exec: ExecutorConfig) -> Self {
        let window = exec.fusion.max(1) * 4;
        ServiceConfig { exec, window }
    }
}

/// Report for one service run (queue opened → closed and drained).
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Aggregated statistics (simulated half is deterministic given the
    /// admission order).
    pub stats: ServiceStats,
}

/// The always-on front-end.
#[derive(Debug)]
pub struct Service {
    exec: ShardExecutor,
    window: usize,
}

impl Service {
    /// Build the service, validating the executor's shard split.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadShardSplit`] when the shard count does not divide
    /// the device's pseudo-channels.
    pub fn new(cfg: ServiceConfig) -> Result<Self, SchedError> {
        Ok(Service {
            window: cfg.window.max(1),
            exec: ShardExecutor::new(cfg.exec)?,
        })
    }

    /// The underlying executor.
    #[must_use]
    pub fn executor(&self) -> &ShardExecutor {
        &self.exec
    }

    /// Serve the queue until it is closed and drained, streaming each
    /// completed job into `sink` (jobs are dropped after the sink returns
    /// — keep what you need). Lane clocks persist across admission
    /// windows, so simulated time is continuous for the whole run.
    ///
    /// # Errors
    ///
    /// [`SchedError::JobFailed`] when a kernel fails or its command
    /// stream breaks protocol; jobs admitted but not yet executed at that
    /// point are dropped.
    pub fn run(
        &self,
        queue: &JobQueue,
        sink: &mut dyn FnMut(CompletedJob),
    ) -> Result<ServiceReport, SchedError> {
        let started = Instant::now();
        let shards = self.exec.config().shards;
        let mut engine = LaneEngine::new(shards);
        let mut acc = SimAcc::new(shards);
        loop {
            let batch = queue.pop_wait_batch(self.window);
            if batch.is_empty() {
                break; // closed and drained
            }
            engine.feed(&self.exec, batch);
            engine.run_until_dry(&self.exec, &mut |job| {
                acc.record(&job);
                sink(job);
            })?;
        }
        acc.set_steals(engine.steals);
        Ok(ServiceReport {
            stats: ServiceStats {
                sim: acc.finish(),
                host: HostStats {
                    walltime_s: started.elapsed().as_secs_f64(),
                    threads: self.exec.config().host_threads,
                },
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec, JobValue};
    use psim_kernels::PimDevice;
    use std::sync::Arc;

    #[test]
    fn service_drains_open_arrivals_with_backpressure() {
        // A tiny queue (capacity 4) forces the producer to block on
        // submit while the service consumes — classic backpressure. The
        // producer stamps arrivals; the report must cover every job.
        let queue = Arc::new(JobQueue::bounded(4));
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let a = Arc::new(psim_sparse::gen::rmat(48, 3, 5));
                for i in 0..16u64 {
                    let x: Vec<f64> = (0..48).map(|k| (i + k + 1) as f64).collect();
                    let spec =
                        JobSpec::batch("t0", JobKind::spmv(Arc::clone(&a), x)).at(i as f64 * 1e-5);
                    queue.submit(spec).unwrap();
                }
                queue.close();
            })
        };
        let svc = Service::new(ServiceConfig::new(
            ExecutorConfig::sharded(PimDevice::tiny(2), 2).with_fusion(4),
        ))
        .unwrap();
        let mut seen = Vec::new();
        let report = svc.run(&queue, &mut |job| seen.push(job.id)).unwrap();
        producer.join().unwrap();
        assert_eq!(report.stats.sim.jobs, 16);
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        assert!(
            report.stats.sim.fused_jobs > 0,
            "same-matrix SpMV stream must fuse"
        );
        // Arrivals are honored: no wait can be negative, and the makespan
        // at least reaches the last arrival.
        assert!(report.stats.sim.makespan_s >= 15.0 * 1e-5);
    }

    #[test]
    fn service_matches_batch_executor_values() {
        // The same closed set of jobs through the service front-end and
        // through drain_and_run must produce identical values (the
        // service only changes *scheduling*, never numerics).
        let a = Arc::new(psim_sparse::gen::rmat(40, 3, 9));
        let mk_queue = || {
            let q = JobQueue::bounded(32);
            for i in 0..6u64 {
                let x: Vec<f64> = (0..40).map(|k| (i * 7 + k) as f64 * 0.25).collect();
                q.submit(JobSpec::batch("t", JobKind::spmv(Arc::clone(&a), x)))
                    .unwrap();
            }
            q.submit(JobSpec::batch("t", JobKind::Norm2 { x: vec![3.0, 4.0] }))
                .unwrap();
            q
        };
        let cfg = || ExecutorConfig::sharded(PimDevice::tiny(2), 2).with_fusion(3);

        let queue = mk_queue();
        queue.close();
        let svc = Service::new(ServiceConfig::new(cfg())).unwrap();
        let mut svc_values: Vec<(u64, JobValue)> = Vec::new();
        svc.run(&queue, &mut |job| svc_values.push((job.id, job.value)))
            .unwrap();
        svc_values.sort_by_key(|(id, _)| *id);

        let exec = ShardExecutor::new(cfg()).unwrap();
        let batch = exec.drain_and_run(&mk_queue()).unwrap();
        let batch_values: Vec<(u64, JobValue)> =
            batch.jobs.into_iter().map(|j| (j.id, j.value)).collect();
        assert_eq!(svc_values, batch_values);
    }
}
