//! psim-sched: multi-tenant job scheduling for the pSyncPIM simulator.
//!
//! Production PIM deployments don't run one kernel at a time — they serve
//! a stream of requests from many tenants against shared operands. This
//! crate layers that service model on top of the simulator:
//!
//! * [`job`] — job descriptions: a [`job::JobSpec`] names the tenant, a
//!   deadline [`job::JobClass`], the precision, and the requested kernel
//!   ([`job::JobKind`]: SpMV / SpTRSV / BLAS-1) over [`std::sync::Arc`]
//!   matrix handles registered in a [`job::MatrixStore`].
//! * [`queue`] — a bounded MPMC [`queue::JobQueue`] with backpressure
//!   (submitters block when full) and a fair drain order: strict class
//!   priority, least-attained-service across tenants, FIFO within a
//!   tenant. One tenant's giant matrix cannot starve another's small
//!   jobs.
//! * [`executor`] — the channel-sharded [`executor::ShardExecutor`]: the
//!   device's independent pseudo-channels are carved into equal shards
//!   ([`psim_kernels::PimDevice::shard`]) that serve different jobs
//!   concurrently *in simulated time*. Host threads (`std::thread::scope`)
//!   only accelerate the simulation itself: job→shard placement is
//!   deterministic and outcomes merge in shard order, so any thread count
//!   produces byte-identical results.
//! * [`stats`] — per-job service accounting: queue wait, service time and
//!   end-to-end latency histograms (p50/p95/p99 via
//!   [`psyncpim_core::Histogram`]), simulated makespan and jobs/s, split
//!   into a deterministic simulated half and a host-walltime half.
//!
//! # Example
//!
//! ```
//! use psim_sched::{ExecutorConfig, JobKind, JobQueue, JobSpec, ShardExecutor};
//! use psim_kernels::PimDevice;
//! use std::sync::Arc;
//!
//! let queue = JobQueue::bounded(32);
//! let a = Arc::new(psim_sparse::gen::rmat(32, 2, 1));
//! queue.submit(JobSpec::batch("alice", JobKind::spmv(a, vec![1.0; 32]))).unwrap();
//! queue.submit(JobSpec::batch("bob", JobKind::Norm2 { x: vec![3.0, 4.0] })).unwrap();
//!
//! let exec = ShardExecutor::new(ExecutorConfig::sharded(PimDevice::tiny(2), 2)).unwrap();
//! let report = exec.drain_and_run(&queue).unwrap();
//! assert_eq!(report.jobs.len(), 2);
//! assert!(report.stats.sim.jobs_per_sim_s > 0.0);
//! ```

pub mod executor;
pub mod job;
pub mod queue;
pub mod service;
pub mod stats;

pub use executor::{
    BatchReport, CompletedJob, CostTier, ExecutorConfig, SchedError, ShardExecutor,
};
pub use job::{Job, JobClass, JobId, JobKind, JobSpec, JobValue, MatrixStore};
pub use queue::{JobQueue, SubmitError};
pub use service::{Service, ServiceConfig, ServiceReport};
pub use stats::{ClassStats, HostStats, ServiceStats, SimAcc, SimStats};
