//! Channel-sharded job executor.
//!
//! The device's pseudo-channels are independent (the cube's wall-clock is
//! just the slowest channel), so the executor carves one device into
//! `shards` equal channel slices via [`PimDevice::shard`] and serves
//! different jobs on different shards *concurrently in simulated time*:
//! each shard has its own simulated clock that advances by the service
//! time of every job it runs, and the batch's makespan is the busiest
//! shard's clock instead of the serial sum.
//!
//! Determinism contract: `shards` is a *simulated resource* parameter and
//! changes results (a shard is a smaller device), but `host_threads` is
//! pure host-side parallelism and never does. Job→shard placement is
//! computed up front from a priori cost estimates, every shard runs its
//! jobs in assignment order, and shard outcomes are merged in shard order
//! — so an N-thread run is byte-identical to a serial one, which the
//! determinism tests check via [`SimStats`] JSON and job values.

use std::time::Instant;

use psim_kernels::blas1::Blas1Pim;
use psim_kernels::{CostModel, KernelRun, PimDevice, SpmvPim, SptrsvPim};
use psyncpim_core::CoreError;

use crate::job::{Job, JobClass, JobId, JobKind, JobValue};
use crate::queue::JobQueue;
use crate::stats::{HostStats, ServiceStats, SimStats};

/// Executor construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The requested shard count does not evenly divide the device's
    /// pseudo-channels.
    BadShardSplit {
        /// Pseudo-channels on the device.
        channels: usize,
        /// Requested shard count.
        shards: usize,
    },
    /// A job's kernel failed.
    JobFailed {
        /// The failing job.
        id: JobId,
        /// The kernel error message.
        error: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::BadShardSplit { channels, shards } => write!(
                f,
                "cannot split {channels} pseudo-channels into {shards} shards"
            ),
            SchedError::JobFailed { id, error } => write!(f, "job {id} failed: {error}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// How the executor estimates a job's cost for shard placement.
///
/// Placement never affects job *results*, only which shard serves which
/// job (and therefore simulated waiting time), so both tiers are safe —
/// they trade placement quality against estimation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostTier {
    /// Operand-size proxy (`nnz + len`): free, but blind to skew, waves
    /// and level-schedule serialization.
    #[default]
    Heuristic,
    /// The O(nnz) analytical model ([`psim_kernels::CostModel`]):
    /// predicts DRAM cycles from partition shape and level structure, so
    /// a skewed SpMV or a chain-like SpTRSV weighs what it will actually
    /// cost.
    Analytical,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// The device to carve up.
    pub device: PimDevice,
    /// Channel shards (simulated concurrency; must divide the device's
    /// pseudo-channel count).
    pub shards: usize,
    /// Host worker threads (host-side parallelism; never affects
    /// results). Clamped to the shard count.
    pub host_threads: usize,
    /// Run every job with the independent protocol checker attached and
    /// fail jobs whose command streams violate the JEDEC contract. On by
    /// default in the constructors: a multi-tenant service must not
    /// silently serve results produced through an illegal stream.
    pub validate: bool,
    /// Run every job with psim-trace cycle attribution: each completed
    /// job's `run.attr` then accounts its `service_cycles` per stall
    /// category, and [`SimStats`] aggregates the batch-wide breakdown.
    /// Off by default (tracing is cheap but not free).
    pub trace: bool,
    /// Cost estimator for shard placement. Heuristic by default.
    pub cost_tier: CostTier,
}

impl ExecutorConfig {
    /// Serial execution of the whole device: one shard, one thread.
    #[must_use]
    pub fn serial(device: PimDevice) -> Self {
        ExecutorConfig {
            device,
            shards: 1,
            host_threads: 1,
            validate: true,
            trace: false,
            cost_tier: CostTier::default(),
        }
    }

    /// `shards` shards served by as many host threads.
    #[must_use]
    pub fn sharded(device: PimDevice, shards: usize) -> Self {
        ExecutorConfig {
            device,
            shards,
            host_threads: shards,
            validate: true,
            trace: false,
            cost_tier: CostTier::default(),
        }
    }

    /// Same configuration under a different placement cost tier.
    #[must_use]
    pub fn with_cost_tier(mut self, tier: CostTier) -> Self {
        self.cost_tier = tier;
        self
    }
}

/// One finished job with its service accounting.
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// Queue id.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Deadline class.
    pub class: JobClass,
    /// Kernel-family label.
    pub kind: &'static str,
    /// Shard the job ran on.
    pub shard: usize,
    /// The numeric result.
    pub value: JobValue,
    /// Kernel-level accounting (commands, energy, bytes).
    pub run: KernelRun,
    /// Simulated seconds the job waited behind earlier jobs on its shard.
    pub wait_s: f64,
    /// Simulated service seconds (kernel + host interface).
    pub service_s: f64,
    /// Service DRAM command cycles (kernel portion, exact integer).
    pub service_cycles: u64,
}

/// Result of executing one batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Every job, sorted by id.
    pub jobs: Vec<CompletedJob>,
    /// Aggregated service statistics.
    pub stats: ServiceStats,
}

impl BatchReport {
    /// A completed job by id.
    #[must_use]
    pub fn job(&self, id: JobId) -> Option<&CompletedJob> {
        self.jobs.iter().find(|j| j.id == id)
    }
}

/// The channel-sharded executor.
#[derive(Debug, Clone)]
pub struct ShardExecutor {
    cfg: ExecutorConfig,
    shard_device: PimDevice,
}

impl ShardExecutor {
    /// Build an executor, validating the shard split.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadShardSplit`] when `shards` does not evenly divide
    /// the device's pseudo-channels.
    pub fn new(cfg: ExecutorConfig) -> Result<Self, SchedError> {
        let mut shard_device = cfg
            .device
            .shard(cfg.shards)
            .ok_or(SchedError::BadShardSplit {
                channels: cfg.device.hbm.num_pseudo_channels,
                shards: cfg.shards,
            })?;
        shard_device.validate = cfg.validate;
        shard_device.trace = cfg.trace;
        Ok(ShardExecutor { cfg, shard_device })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// The per-shard device slice jobs actually run on.
    #[must_use]
    pub fn shard_device(&self) -> &PimDevice {
        &self.shard_device
    }

    /// The placement cost of one job under the configured [`CostTier`].
    ///
    /// Heuristic: the operand-size proxy from [`Job::cost_estimate`].
    /// Analytical: predicted DRAM cycles on the *shard* device (jobs run
    /// on shard slices, so the slice geometry is what placement should
    /// weigh).
    #[must_use]
    pub fn job_cost(&self, job: &Job) -> u64 {
        match self.cfg.cost_tier {
            CostTier::Heuristic => job.cost_estimate(),
            CostTier::Analytical => {
                let model = CostModel::new(&self.shard_device);
                let p = job.spec.precision;
                let cycles = match &job.spec.kind {
                    JobKind::Spmv { a, .. } => model.spmv(a, p).cycles,
                    JobKind::Sptrsv { t, .. } => model.sptrsv(t, p).cycles,
                    JobKind::Axpy { x, .. } => model.axpy(x.len(), p).cycles,
                    JobKind::Scal { x, .. } => model.scal(x.len(), p).cycles,
                    JobKind::Vv { x, .. } => model.vv(x.len(), p).cycles,
                    JobKind::Dot { x, .. } => model.dot(x.len(), p).cycles,
                    JobKind::Norm2 { x } => model.norm2(x.len(), p).cycles,
                };
                cycles.max(1)
            }
        }
    }

    /// Drain every job currently queued (in the queue's fairness order)
    /// and execute the batch.
    ///
    /// # Errors
    ///
    /// [`SchedError::JobFailed`] when a kernel fails.
    pub fn drain_and_run(&self, queue: &JobQueue) -> Result<BatchReport, SchedError> {
        self.run_jobs(queue.drain())
    }

    /// Execute a batch of jobs (already ordered by the scheduling policy).
    ///
    /// # Errors
    ///
    /// [`SchedError::JobFailed`] when a kernel fails.
    pub fn run_jobs(&self, jobs: Vec<Job>) -> Result<BatchReport, SchedError> {
        let started = Instant::now();
        let shards = self.cfg.shards;
        let costs: Vec<u64> = jobs.iter().map(|j| self.job_cost(j)).collect();
        let plan = assign_shards(jobs, &costs, shards);
        let threads = self.cfg.host_threads.clamp(1, shards);

        // One result slot per shard, merged in shard order below.
        let mut outcomes: Vec<Option<Result<Vec<CompletedJob>, SchedError>>> =
            (0..shards).map(|_| None).collect();
        if threads <= 1 {
            for (shard, (lane, slot)) in plan.into_iter().zip(outcomes.iter_mut()).enumerate() {
                *slot = Some(self.run_shard(shard, lane));
            }
        } else {
            let mut buckets: Vec<Vec<_>> = (0..threads).map(|_| Vec::new()).collect();
            for (shard, (lane, slot)) in plan.into_iter().zip(outcomes.iter_mut()).enumerate() {
                buckets[shard % threads].push((shard, lane, slot));
            }
            std::thread::scope(|s| {
                for bucket in buckets {
                    s.spawn(|| {
                        for (shard, lane, slot) in bucket {
                            *slot = Some(self.run_shard(shard, lane));
                        }
                    });
                }
            });
        }

        let mut completed = Vec::new();
        for slot in outcomes {
            completed.extend(slot.expect("every shard executed")?);
        }
        completed.sort_by_key(|j| j.id);
        let sim = SimStats::from_jobs(&completed, shards);
        Ok(BatchReport {
            jobs: completed,
            stats: ServiceStats {
                sim,
                host: HostStats {
                    walltime_s: started.elapsed().as_secs_f64(),
                    threads,
                },
            },
        })
    }

    /// Run one shard's job lane sequentially, advancing its simulated
    /// clock.
    fn run_shard(&self, shard: usize, lane: Vec<Job>) -> Result<Vec<CompletedJob>, SchedError> {
        let mut clock_s = 0.0f64;
        let mut out = Vec::with_capacity(lane.len());
        for job in lane {
            let (value, run) = self.run_kernel(&job).map_err(|e| SchedError::JobFailed {
                id: job.id,
                error: e.to_string(),
            })?;
            if run.violations > 0 {
                return Err(SchedError::JobFailed {
                    id: job.id,
                    error: format!(
                        "protocol validation failed: {} violation(s) in the command stream",
                        run.violations
                    ),
                });
            }
            let service_s = run.total_s();
            out.push(CompletedJob {
                id: job.id,
                tenant: job.spec.tenant,
                class: job.spec.class,
                kind: job.spec.kind.label(),
                shard,
                value,
                wait_s: clock_s,
                service_s,
                service_cycles: run.dram_cycles,
                run,
            });
            clock_s += service_s;
        }
        Ok(out)
    }

    /// Dispatch one job's kernel on the shard device.
    fn run_kernel(&self, job: &Job) -> Result<(JobValue, KernelRun), CoreError> {
        let dev = self.shard_device.clone();
        let precision = job.spec.precision;
        let blas = || Blas1Pim::new(self.shard_device.clone(), precision);
        match &job.spec.kind {
            JobKind::Spmv { a, x, mul, acc } => {
                let r = SpmvPim::with_semiring(dev, precision, *mul, *acc).run(a, x)?;
                Ok((JobValue::Vector(r.y), r.run))
            }
            JobKind::Sptrsv { t, b } => {
                let mut solver = SptrsvPim::new(dev);
                solver.precision = precision;
                let r = solver.run(t, b)?;
                Ok((JobValue::Vector(r.x), r.run))
            }
            JobKind::Axpy { alpha, x, y } => {
                let r = blas().daxpy(*alpha, x, y)?;
                Ok((JobValue::Vector(r.v), r.run))
            }
            JobKind::Scal { alpha, x } => {
                let r = blas().dscal(*alpha, x)?;
                Ok((JobValue::Vector(r.v), r.run))
            }
            JobKind::Vv { x, y, op } => {
                let r = blas().dvdv(x, y, *op)?;
                Ok((JobValue::Vector(r.v), r.run))
            }
            JobKind::Dot { x, y } => {
                let r = blas().ddot(x, y)?;
                Ok((JobValue::Scalar(r.s), r.run))
            }
            JobKind::Norm2 { x } => {
                let r = blas().dnrm2(x)?;
                Ok((JobValue::Scalar(r.s), r.run))
            }
        }
    }
}

/// Deterministic job→shard placement: longest-processing-time-style greedy
/// by a priori cost — each job (in scheduling order) goes to the shard
/// with the least accumulated estimated cost, ties to the lowest shard id.
/// `costs` is parallel to `jobs` (computed by the configured [`CostTier`]).
fn assign_shards(jobs: Vec<Job>, costs: &[u64], shards: usize) -> Vec<Vec<Job>> {
    let mut lanes: Vec<Vec<Job>> = (0..shards).map(|_| Vec::new()).collect();
    let mut load = vec![0u64; shards];
    for (job, &cost) in jobs.into_iter().zip(costs) {
        let target = (0..shards)
            .min_by_key(|&s| (load[s], s))
            .expect("shards >= 1");
        load[target] += cost;
        lanes[target].push(job);
    }
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use serde::Serialize as _;
    use std::sync::Arc;

    fn scal_job(tenant: &str, n: usize) -> JobSpec {
        JobSpec::batch(
            tenant,
            JobKind::Scal {
                alpha: 2.0,
                x: vec![1.0; n],
            },
        )
    }

    #[test]
    fn executor_validates_jobs_by_default() {
        let cfg = ExecutorConfig::serial(PimDevice::tiny(2));
        assert!(cfg.validate, "constructors must default validation on");
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(exec.shard_device().validate);
        // A validated batch runs clean: jobs complete, accounting carries
        // the checker's verdict and real service cycles.
        let queue = JobQueue::bounded(4);
        let a = Arc::new(psim_sparse::gen::rmat(32, 2, 3));
        let x: Vec<f64> = (0..32).map(|i| 1.0 + i as f64).collect();
        queue
            .submit(JobSpec::batch("t0", JobKind::spmv(a, x)))
            .unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        let job = &report.jobs[0];
        assert_eq!(job.run.violations, 0);
        assert!(job.service_cycles > 0, "dram_cycles must be accounted");
        assert!(job.run.mem_ops <= job.run.bank_bursts);
        // Validation can still be switched off explicitly.
        let mut cfg = ExecutorConfig::serial(PimDevice::tiny(2));
        cfg.validate = false;
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(!exec.shard_device().validate);
    }

    #[test]
    fn shard_device_refuses_unverifiable_programs() {
        // ExecutorConfig::validate flows into the shard device, whose
        // engines run psim-lint before cycle 0: a job built on a program
        // with an Error-level diagnostic (here: SpFW draining a queue
        // nothing fills — a guaranteed no-op data path) fails instead of
        // silently serving a wrong answer.
        use psyncpim_core::isa::assemble;
        let exec = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(2))).unwrap();
        let bad = assemble("SPFW SPVQ0, FP64\nEXIT\n").unwrap();

        let err = exec.shard_device().verify_program(&bad).unwrap_err();
        assert!(matches!(err, CoreError::Verify { .. }));
        // The wrapped form a failing job reports carries the lint code.
        let job_err = SchedError::JobFailed {
            id: 7,
            error: err.to_string(),
        };
        assert!(job_err.to_string().contains("PSL011"), "{job_err}");

        // The engine refuses the load too — the defense is layered.
        let mut engine = exec.shard_device().make_engine();
        let load = engine.load_kernel(bad.clone(), vec![None::<psyncpim_core::memory::Binding>; 2]);
        assert!(matches!(load, Err(CoreError::Verify { .. })));

        // With validation off the same program is accepted (ablation /
        // fault-injection runs need this escape hatch).
        let mut cfg = ExecutorConfig::serial(PimDevice::tiny(2));
        cfg.validate = false;
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(exec.shard_device().verify_program(&bad).is_ok());
    }

    #[test]
    fn traced_batches_attribute_every_service_cycle() {
        let mut cfg = ExecutorConfig::sharded(PimDevice::tiny(4), 2);
        cfg.trace = true;
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(exec.shard_device().trace);
        let queue = JobQueue::bounded(16);
        let a = Arc::new(psim_sparse::gen::rmat(32, 2, 3));
        let x: Vec<f64> = (0..32).map(|i| 1.0 + i as f64).collect();
        queue
            .submit(JobSpec::batch(
                "t0",
                JobKind::spmv(Arc::clone(&a), x.clone()),
            ))
            .unwrap();
        queue
            .submit(JobSpec::batch("t1", JobKind::Dot { x: x.clone(), y: x }))
            .unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        assert_eq!(report.jobs.len(), 2);
        let mut total_cycles = 0u64;
        for job in &report.jobs {
            // Per-job service attribution accounts every service cycle.
            assert_eq!(
                job.run.attr.total(),
                job.service_cycles,
                "job {} ({})",
                job.id,
                job.kind
            );
            let m = job.run.metrics.as_ref().expect("tracing on");
            assert!(m.conservation_failures().is_empty(), "job {}", job.id);
            total_cycles += job.service_cycles;
        }
        assert_eq!(report.stats.sim.service_attr.total(), total_cycles);
        let js = report.stats.sim.to_json();
        assert!(js.contains("\"service_attr\""), "{js}");
        assert!(js.contains("\"trace_dropped\""), "{js}");
        // Untraced batches keep the attribution all-zero with no registry.
        let exec = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(2))).unwrap();
        let queue = JobQueue::bounded(4);
        queue.submit(scal_job("t0", 32)).unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        assert_eq!(report.stats.sim.service_attr.total(), 0);
        assert!(report.jobs[0].run.metrics.is_none());
    }

    #[test]
    fn tiny_trace_buffers_count_drops_instead_of_truncating() {
        let mut device = PimDevice::tiny(2);
        device.trace_events = 1;
        let mut cfg = ExecutorConfig::serial(device);
        cfg.trace = true;
        let exec = ShardExecutor::new(cfg).unwrap();
        let queue = JobQueue::bounded(4);
        // An irregular SpMV: banks get unequal entry counts, so lighter
        // banks stream queue-empty rounds — far more stalls than one slot.
        let a = Arc::new(psim_sparse::gen::rmat(64, 3, 7));
        let x: Vec<f64> = (0..64).map(|i| 1.0 + i as f64).collect();
        queue
            .submit(JobSpec::batch("t0", JobKind::spmv(a, x)))
            .unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        let m = report.jobs[0].run.metrics.as_ref().unwrap();
        assert!(m.events.len() <= 1);
        assert!(m.events_dropped > 0, "overflow must be counted");
        assert_eq!(report.stats.sim.trace_dropped, m.events_dropped);
        // Dropping events never breaks cycle conservation.
        assert_eq!(
            report.jobs[0].run.attr.total(),
            report.jobs[0].service_cycles
        );
    }

    #[test]
    fn bad_shard_split_is_rejected() {
        let cfg = ExecutorConfig::sharded(PimDevice::tiny(4), 3);
        assert!(matches!(
            ShardExecutor::new(cfg),
            Err(SchedError::BadShardSplit {
                channels: 4,
                shards: 3
            })
        ));
    }

    #[test]
    fn assignment_balances_estimated_cost() {
        let jobs: Vec<Job> = [100, 100, 10, 10, 10, 10]
            .iter()
            .enumerate()
            .map(|(i, &n)| Job {
                id: i as u64,
                spec: scal_job("t", n),
            })
            .collect();
        let costs: Vec<u64> = jobs.iter().map(Job::cost_estimate).collect();
        let lanes = assign_shards(jobs, &costs, 2);
        // Greedy: 100→s0, 100→s1, then the small jobs alternate.
        let cost = |lane: &Vec<Job>| lane.iter().map(Job::cost_estimate).sum::<u64>();
        assert_eq!(cost(&lanes[0]), 120);
        assert_eq!(cost(&lanes[1]), 120);
    }

    #[test]
    fn analytical_tier_sees_serialization_the_heuristic_misses() {
        // Two SpTRSV jobs with identical nnz: a pure dependency chain
        // (n levels, one launch each) and a star (every row depends only
        // on x[0] — one level, one launch). The heuristic proxy
        // (nnz + len) prices them identically; the analytical tier walks
        // the level schedule and must see the chain's serialization.
        use psim_sparse::triangular::{Triangle, UnitTriangular};
        let n = 64usize;
        let mut chain = psim_sparse::Coo::new(n, n);
        let mut star = psim_sparse::Coo::new(n, n);
        for i in 1..n {
            chain.push(i as u32, i as u32 - 1, 0.5);
            star.push(i as u32, 0, 0.5);
        }
        let b = vec![1.0; n];
        let job = |s: psim_sparse::Coo| Job {
            id: 0,
            spec: JobSpec::batch(
                "t",
                JobKind::Sptrsv {
                    t: Arc::new(UnitTriangular::from_strict(Triangle::Lower, s).unwrap()),
                    b: b.clone(),
                },
            ),
        };
        let (chain, star) = (job(chain), job(star));
        // The heuristic proxy is identical by construction.
        assert_eq!(chain.cost_estimate(), star.cost_estimate());
        let cfg = ExecutorConfig::serial(PimDevice::tiny(2)).with_cost_tier(CostTier::Analytical);
        let exec = ShardExecutor::new(cfg).unwrap();
        let (c, s) = (exec.job_cost(&chain), exec.job_cost(&star));
        assert!(
            c > s * 10,
            "analytical cost must punish level serialization: chain {c} vs star {s}"
        );
    }

    #[test]
    fn analytical_placement_preserves_results() {
        // Placement tier changes *which shard* serves a job, never the
        // job's value: the same batch under both tiers returns the same
        // numbers.
        let a = Arc::new(psim_sparse::gen::rmat(48, 4, 9));
        let x: Vec<f64> = (0..48).map(|i| 0.5 + i as f64).collect();
        let run = |tier: CostTier| {
            let queue = JobQueue::bounded(8);
            let spmv = queue
                .submit(JobSpec::batch(
                    "t0",
                    JobKind::spmv(Arc::clone(&a), x.clone()),
                ))
                .unwrap();
            let dot = queue
                .submit(JobSpec::batch(
                    "t1",
                    JobKind::Dot {
                        x: x.clone(),
                        y: x.clone(),
                    },
                ))
                .unwrap();
            let exec = ShardExecutor::new(
                ExecutorConfig::sharded(PimDevice::tiny(2), 2).with_cost_tier(tier),
            )
            .unwrap();
            let report = exec.drain_and_run(&queue).unwrap();
            (
                report.job(spmv).unwrap().value.clone(),
                report.job(dot).unwrap().value.clone(),
            )
        };
        assert_eq!(run(CostTier::Heuristic), run(CostTier::Analytical));
    }

    #[test]
    fn executes_jobs_and_preserves_values() {
        let queue = JobQueue::bounded(16);
        let a = Arc::new(psim_sparse::gen::rmat(32, 2, 3));
        let x: Vec<f64> = (0..32).map(|i| 1.0 + i as f64).collect();
        let id_spmv = queue
            .submit(JobSpec::batch(
                "t0",
                JobKind::spmv(Arc::clone(&a), x.clone()),
            ))
            .unwrap();
        let id_dot = queue
            .submit(JobSpec::batch(
                "t1",
                JobKind::Dot {
                    x: x.clone(),
                    y: x.clone(),
                },
            ))
            .unwrap();
        let exec = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(2))).unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        assert_eq!(report.jobs.len(), 2);
        let y = report.job(id_spmv).unwrap().value.as_vector().unwrap();
        let want = a.spmv(&x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
        let d = report.job(id_dot).unwrap().value.as_scalar().unwrap();
        let want_d: f64 = x.iter().map(|v| v * v).sum();
        assert!((d - want_d).abs() < 1e-6 * want_d);
        assert!(report.stats.sim.makespan_s > 0.0);
        assert!(report.stats.host.walltime_s > 0.0);
    }

    #[test]
    fn sharded_concurrency_beats_serial_in_sim_time() {
        let mk_queue = || {
            let q = JobQueue::bounded(64);
            for i in 0..8 {
                q.submit(scal_job(&format!("t{}", i % 4), 64)).unwrap();
            }
            q
        };
        let serial = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(4)))
            .unwrap()
            .drain_and_run(&mk_queue())
            .unwrap();
        let sharded = ShardExecutor::new(ExecutorConfig::sharded(PimDevice::tiny(4), 4))
            .unwrap()
            .drain_and_run(&mk_queue())
            .unwrap();
        assert!(
            sharded.stats.sim.makespan_s < serial.stats.sim.makespan_s,
            "sharded {} vs serial {}",
            sharded.stats.sim.makespan_s,
            serial.stats.sim.makespan_s
        );
        assert!(sharded.stats.sim.speedup_vs_serial > 1.0);
    }
}
