//! Channel-sharded job executor with SpMV→SpMM fusion and deterministic
//! work-stealing lanes.
//!
//! The device's pseudo-channels are independent (the cube's wall-clock is
//! just the slowest channel), so the executor carves one device into
//! `shards` equal channel slices via [`PimDevice::shard`] and serves
//! different jobs on different shards *concurrently in simulated time*:
//! each shard lane has its own simulated clock that advances by the
//! service time of every job it runs, and the batch's makespan is the
//! latest lane finish instead of the serial sum.
//!
//! Two service-mode optimizations live here:
//!
//! * **Fusion** — same-matrix SpMV jobs (same semiring, precision, class)
//!   arriving in one admission batch coalesce into a single
//!   [`psim_kernels::SpmmPim`] pass of up to [`ExecutorConfig::fusion`]
//!   vectors. The fused kernel's per-vector results are bit-identical to
//!   per-job SpMV (see `spmm.rs`), so fusion changes *when* jobs finish,
//!   never *what* they compute. The first member of a group is the
//!   *leader* and carries the real [`KernelRun`]; followers carry zeroed
//!   accounting (cycle conservation holds batch-wide) but the group's
//!   service time (their latency is real).
//! * **Work stealing** — jobs are dealt to per-lane deques by projected
//!   finish time; whenever a lane's deque runs dry it steals the *back*
//!   of the most-loaded lane. All steal decisions are planned
//!   single-threaded on simulated state (lane clocks + remaining
//!   estimated cost) in lane-index order at epoch barriers, then the
//!   planned groups execute host-parallel and merge in lane order — so
//!   stealing is a pure function of the batch, never of thread timing.
//!
//! Determinism contract: `shards` is a *simulated resource* parameter and
//! changes results (a shard is a smaller device), but `host_threads` is
//! pure host-side parallelism and never does. An N-thread run is
//! byte-identical to a serial one, which the determinism tests check via
//! [`SimStats`] JSON and job values.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use psim_conc::Mutex;
use psim_kernels::blas1::Blas1Pim;
use psim_kernels::{CostModel, KernelRun, PimDevice, SpmmPim, SpmvPim, SptrsvPim, MAX_SPMM_WIDTH};
use psim_sparse::{Coo, Layout, MatrixFormat, Precision};
use psim_tune::Autotuner;
use psyncpim_core::isa::BinaryOp;
use psyncpim_core::CoreError;

use crate::job::{Job, JobClass, JobId, JobKind, JobValue};
use crate::queue::JobQueue;
use crate::stats::{HostStats, ServiceStats, SimStats};

/// Executor construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The requested shard count does not evenly divide the device's
    /// pseudo-channels.
    BadShardSplit {
        /// Pseudo-channels on the device.
        channels: usize,
        /// Requested shard count.
        shards: usize,
    },
    /// A job's kernel failed.
    JobFailed {
        /// The failing job.
        id: JobId,
        /// The kernel error message.
        error: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::BadShardSplit { channels, shards } => write!(
                f,
                "cannot split {channels} pseudo-channels into {shards} shards"
            ),
            SchedError::JobFailed { id, error } => write!(f, "job {id} failed: {error}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// How the executor estimates a job's cost for shard placement.
///
/// Placement never affects job *results*, only which shard serves which
/// job (and therefore simulated waiting time), so both tiers are safe —
/// they trade placement quality against estimation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostTier {
    /// Operand-size proxy (`nnz + len`): free, but blind to skew, waves
    /// and level-schedule serialization.
    #[default]
    Heuristic,
    /// The O(nnz) analytical model ([`psim_kernels::CostModel`]):
    /// predicts DRAM cycles from partition shape and level structure, so
    /// a skewed SpMV or a chain-like SpTRSV weighs what it will actually
    /// cost.
    Analytical,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// The device to carve up.
    pub device: PimDevice,
    /// Channel shards (simulated concurrency; must divide the device's
    /// pseudo-channel count).
    pub shards: usize,
    /// Host worker threads (host-side parallelism; never affects
    /// results). Clamped to the shard count.
    pub host_threads: usize,
    /// Run every job with the independent protocol checker attached and
    /// fail jobs whose command streams violate the JEDEC contract. On by
    /// default in the constructors: a multi-tenant service must not
    /// silently serve results produced through an illegal stream.
    pub validate: bool,
    /// Run every job with psim-trace cycle attribution: each completed
    /// job's `run.attr` then accounts its `service_cycles` per stall
    /// category, and [`SimStats`] aggregates the batch-wide breakdown.
    /// Off by default (tracing is cheap but not free).
    pub trace: bool,
    /// Cost estimator for shard placement. Heuristic by default.
    pub cost_tier: CostTier,
    /// Fusion window width: up to this many same-matrix SpMV jobs (same
    /// semiring, precision and class) from one admission batch coalesce
    /// into a single SpMM pass. `1` (the constructors' default) disables
    /// fusion; values above [`MAX_SPMM_WIDTH`] are clamped.
    pub fusion: usize,
    /// Autotune each SpMV/SpMM matrix's execution layout (storage format,
    /// partition scheme, placement policy) with [`psim_tune::Autotuner`]
    /// at its first job, memoized by matrix identity so store-resident
    /// operands are analyzed once. Off by default: the baseline layout
    /// keeps results and schedules bit-identical to the pre-tuner
    /// executor. Every layout computes the same product — tuned results
    /// agree with the baseline to floating-point summation order (the
    /// differential oracle bounds the drift at 1e-9) — so tuning changes
    /// cycle accounting and placement, never what a job means.
    pub autotune: bool,
}

impl ExecutorConfig {
    /// Serial execution of the whole device: one shard, one thread.
    #[must_use]
    pub fn serial(device: PimDevice) -> Self {
        ExecutorConfig {
            device,
            shards: 1,
            host_threads: 1,
            validate: true,
            trace: false,
            cost_tier: CostTier::default(),
            fusion: 1,
            autotune: false,
        }
    }

    /// `shards` shards served by as many host threads.
    #[must_use]
    pub fn sharded(device: PimDevice, shards: usize) -> Self {
        ExecutorConfig {
            device,
            shards,
            host_threads: shards,
            validate: true,
            trace: false,
            cost_tier: CostTier::default(),
            fusion: 1,
            autotune: false,
        }
    }

    /// Same configuration under a different placement cost tier.
    #[must_use]
    pub fn with_cost_tier(mut self, tier: CostTier) -> Self {
        self.cost_tier = tier;
        self
    }

    /// Same configuration with an SpMV→SpMM fusion window of `width`.
    #[must_use]
    pub fn with_fusion(mut self, width: usize) -> Self {
        self.fusion = width;
        self
    }

    /// Same configuration with per-matrix layout autotuning switched on.
    #[must_use]
    pub fn with_autotune(mut self) -> Self {
        self.autotune = true;
        self
    }
}

/// One finished job with its service accounting.
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// Queue id.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Deadline class.
    pub class: JobClass,
    /// Kernel-family label.
    pub kind: &'static str,
    /// Shard the job ran on.
    pub shard: usize,
    /// The numeric result.
    pub value: JobValue,
    /// Kernel-level accounting (commands, energy, bytes).
    pub run: KernelRun,
    /// Simulated seconds the job waited between arrival and service start
    /// (queue time plus any time behind earlier jobs on its lane).
    pub wait_s: f64,
    /// Simulated service seconds (kernel + host interface). Fused
    /// followers share their group's service time — their end-to-end
    /// latency is the fused pass's, which is what tenants observe.
    pub service_s: f64,
    /// Service DRAM command cycles (kernel portion, exact integer).
    /// Zero for fused followers: the leader carries the whole group's
    /// cycles exactly once, so cycle conservation holds batch-wide.
    pub service_cycles: u64,
    /// Simulated arrival instant (0.0 for closed batches).
    pub arrival_s: f64,
    /// Simulated completion instant (`arrival_s + wait_s + service_s`).
    pub finish_s: f64,
    /// Width of the fused group this job ran in (1 = ran alone).
    pub fused_width: u32,
    /// Whether this job was its group's leader (always true when
    /// `fused_width == 1`). The leader carries the group's [`KernelRun`].
    pub fused_leader: bool,
}

/// Result of executing one batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Every job, sorted by id.
    pub jobs: Vec<CompletedJob>,
    /// Aggregated service statistics.
    pub stats: ServiceStats,
}

impl BatchReport {
    /// A completed job by id.
    #[must_use]
    pub fn job(&self, id: JobId) -> Option<&CompletedJob> {
        self.jobs.iter().find(|j| j.id == id)
    }
}

/// The channel-sharded executor.
#[derive(Debug, Clone)]
pub struct ShardExecutor {
    cfg: ExecutorConfig,
    shard_device: PimDevice,
    /// Tuned-layout memo, keyed by matrix identity (`Arc` pointer — the
    /// same key fusion uses): a [`MatrixStore`](crate::MatrixStore)-
    /// resident matrix is analyzed once, at its first job, and every
    /// later job against the same handle reuses the decision. Shared
    /// across clones so a service front-end and its workers agree.
    tuned: Arc<Mutex<HashMap<usize, Layout>>>,
}

impl ShardExecutor {
    /// Build an executor, validating the shard split.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadShardSplit`] when `shards` does not evenly divide
    /// the device's pseudo-channels.
    pub fn new(cfg: ExecutorConfig) -> Result<Self, SchedError> {
        let mut shard_device = cfg
            .device
            .shard(cfg.shards)
            .ok_or(SchedError::BadShardSplit {
                channels: cfg.device.hbm.num_pseudo_channels,
                shards: cfg.shards,
            })?;
        shard_device.validate = cfg.validate;
        shard_device.trace = cfg.trace;
        Ok(ShardExecutor {
            cfg,
            shard_device,
            tuned: Arc::new(Mutex::labeled("sched.tune", HashMap::new())),
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// The per-shard device slice jobs actually run on.
    #[must_use]
    pub fn shard_device(&self) -> &PimDevice {
        &self.shard_device
    }

    /// The layout this executor runs matrix `a` from.
    ///
    /// With autotuning off this is the baseline layout — identical to the
    /// kernels' own defaults, so existing configurations stay bit-exact.
    /// With it on, the first job naming `a` pays one O(nnz)
    /// [`Autotuner::decide`] pass against the shard device and the choice
    /// is memoized by `Arc` identity. Non-arithmetic semirings keep the
    /// tuned scheme and policy but fall back to the element format:
    /// blocked zero-fill is only sound under `(Mul, Add)`.
    #[must_use]
    pub fn tuned_layout(
        &self,
        a: &Arc<Coo>,
        precision: Precision,
        mul: BinaryOp,
        acc: BinaryOp,
    ) -> Layout {
        if !self.cfg.autotune {
            return Layout::baseline();
        }
        let key = Arc::as_ptr(a) as usize;
        let cached = self.tuned.lock().get(&key).copied();
        let mut layout = cached.unwrap_or_else(|| {
            // Decide outside the lock (the pass walks all of `a`), then
            // keep whichever decision reached the memo first — decide()
            // is deterministic, so racers agree anyway.
            let choice = Autotuner::new(&self.shard_device)
                .decide(a, precision)
                .choice;
            *self.tuned.lock().entry(key).or_insert(choice)
        });
        if !(mul == BinaryOp::Mul && acc == BinaryOp::Add) {
            layout.format = MatrixFormat::Coo;
        }
        layout
    }

    /// The placement cost of one job under the configured [`CostTier`].
    ///
    /// Heuristic: the operand-size proxy from [`Job::cost_estimate`].
    /// Analytical: predicted DRAM cycles on the *shard* device (jobs run
    /// on shard slices, so the slice geometry is what placement should
    /// weigh).
    #[must_use]
    pub fn job_cost(&self, job: &Job) -> u64 {
        match self.cfg.cost_tier {
            CostTier::Heuristic => job.cost_estimate(),
            CostTier::Analytical => {
                let model = CostModel::new(&self.shard_device);
                let p = job.spec.precision;
                let cycles = match &job.spec.kind {
                    JobKind::Spmv { a, mul, acc, .. } => {
                        if self.cfg.autotune {
                            let layout = self.tuned_layout(a, p, *mul, *acc);
                            model.spmv_layout(a, p, layout).cycles
                        } else {
                            model.spmv(a, p).cycles
                        }
                    }
                    JobKind::Sptrsv { t, .. } => model.sptrsv(t, p).cycles,
                    JobKind::Axpy { x, .. } => model.axpy(x.len(), p).cycles,
                    JobKind::Scal { x, .. } => model.scal(x.len(), p).cycles,
                    JobKind::Vv { x, .. } => model.vv(x.len(), p).cycles,
                    JobKind::Dot { x, .. } => model.dot(x.len(), p).cycles,
                    JobKind::Norm2 { x } => model.norm2(x.len(), p).cycles,
                };
                cycles.max(1)
            }
        }
    }

    /// Drain every job currently queued (in the queue's fairness order)
    /// and execute the batch.
    ///
    /// # Errors
    ///
    /// [`SchedError::JobFailed`] when a kernel fails.
    pub fn drain_and_run(&self, queue: &JobQueue) -> Result<BatchReport, SchedError> {
        self.run_jobs(queue.drain())
    }

    /// Execute a batch of jobs (already ordered by the scheduling policy).
    ///
    /// # Errors
    ///
    /// [`SchedError::JobFailed`] when a kernel fails.
    pub fn run_jobs(&self, jobs: Vec<Job>) -> Result<BatchReport, SchedError> {
        let started = Instant::now();
        let shards = self.cfg.shards;
        let threads = self.cfg.host_threads.clamp(1, shards);
        let mut engine = LaneEngine::new(shards);
        engine.feed(self, jobs);
        let mut completed = Vec::new();
        engine.run_until_dry(self, &mut |job| completed.push(job))?;
        completed.sort_by_key(|j| j.id);
        let sim = SimStats::from_jobs(&completed, shards, engine.steals);
        Ok(BatchReport {
            jobs: completed,
            stats: ServiceStats {
                sim,
                host: HostStats {
                    walltime_s: started.elapsed().as_secs_f64(),
                    threads,
                },
            },
        })
    }

    /// Coalesce a batch (in scheduling order) into execution groups:
    /// same-matrix SpMV jobs with matching semiring, precision and class
    /// fuse up to the configured window width; everything else runs as a
    /// singleton. Group order follows each group's first member, so the
    /// queue's fairness order survives fusion.
    fn fuse_batch(&self, jobs: Vec<Job>) -> Vec<Group> {
        let width = self.cfg.fusion.clamp(1, MAX_SPMM_WIDTH);
        let mut groups: Vec<Group> = Vec::new();
        // Indices of still-open fusion groups; a linear scan is plenty at
        // admission-window sizes and keeps the matching deterministic.
        let mut open: Vec<usize> = Vec::new();
        for job in jobs {
            if width > 1 {
                if let Some(key) = fusion_key(&job) {
                    if let Some(pos) = open
                        .iter()
                        .position(|&gi| fusion_key(&groups[gi].jobs[0]) == Some(key))
                    {
                        let gi = open[pos];
                        groups[gi].arrival_s = groups[gi].arrival_s.max(job.spec.arrival_s);
                        groups[gi].jobs.push(job);
                        if groups[gi].jobs.len() >= width {
                            open.remove(pos);
                        }
                        continue;
                    }
                    open.push(groups.len());
                    groups.push(Group::singleton(job));
                    continue;
                }
            }
            groups.push(Group::singleton(job));
        }
        for g in &mut groups {
            g.cost = self.group_cost(g);
        }
        groups
    }

    /// Placement cost of one execution group.
    fn group_cost(&self, group: &Group) -> u64 {
        if group.jobs.len() == 1 {
            return self.job_cost(&group.jobs[0]);
        }
        match self.cfg.cost_tier {
            // The proxy just sums members: blind to traversal sharing but
            // monotone in group size, which is all placement needs.
            CostTier::Heuristic => group
                .jobs
                .iter()
                .map(Job::cost_estimate)
                .sum::<u64>()
                .max(1),
            CostTier::Analytical => {
                let JobKind::Spmv { a, mul, acc, .. } = &group.jobs[0].spec.kind else {
                    unreachable!("fused groups are SpMV by construction")
                };
                let p = group.jobs[0].spec.precision;
                let model = CostModel::new(&self.shard_device);
                let est = if self.cfg.autotune {
                    let layout = self.tuned_layout(a, p, *mul, *acc);
                    model.spmm_layout(a, group.jobs.len(), p, layout)
                } else {
                    model.spmm(a, group.jobs.len(), p)
                };
                est.cycles.max(1)
            }
        }
    }

    /// Execute one group on the shard device: the fused SpMM pass for
    /// multi-member groups, the job's own kernel for singletons. Returns
    /// one value per member (member order) plus the group's [`KernelRun`].
    fn run_group(&self, group: &Group) -> Result<(Vec<JobValue>, KernelRun), SchedError> {
        let leader = &group.jobs[0];
        let fail = |e: String| SchedError::JobFailed {
            id: leader.id,
            error: e,
        };
        let (values, run) = if group.jobs.len() == 1 {
            let (value, run) = self.run_kernel(leader).map_err(|e| fail(e.to_string()))?;
            (vec![value], run)
        } else {
            let JobKind::Spmv { a, mul, acc, .. } = &leader.spec.kind else {
                unreachable!("fused groups are SpMV by construction")
            };
            let xs: Vec<Vec<f64>> = group
                .jobs
                .iter()
                .map(|j| {
                    let JobKind::Spmv { x, .. } = &j.spec.kind else {
                        unreachable!("fused groups are SpMV by construction")
                    };
                    x.clone()
                })
                .collect();
            let layout = self.tuned_layout(a, leader.spec.precision, *mul, *acc);
            let spmm = SpmmPim::with_semiring(
                self.shard_device.clone(),
                leader.spec.precision,
                *mul,
                *acc,
            )
            .with_layout(layout);
            let r = spmm.run(a, &xs).map_err(|e| fail(e.to_string()))?;
            (r.ys.into_iter().map(JobValue::Vector).collect(), r.run)
        };
        if run.violations > 0 {
            return Err(fail(format!(
                "protocol validation failed: {} violation(s) in the command stream",
                run.violations
            )));
        }
        Ok((values, run))
    }

    /// Dispatch one job's kernel on the shard device.
    fn run_kernel(&self, job: &Job) -> Result<(JobValue, KernelRun), CoreError> {
        let dev = self.shard_device.clone();
        let precision = job.spec.precision;
        let blas = || Blas1Pim::new(self.shard_device.clone(), precision);
        match &job.spec.kind {
            JobKind::Spmv { a, x, mul, acc } => {
                let layout = self.tuned_layout(a, precision, *mul, *acc);
                let r = SpmvPim::with_semiring(dev, precision, *mul, *acc)
                    .with_layout(layout)
                    .run(a, x)?;
                Ok((JobValue::Vector(r.y), r.run))
            }
            JobKind::Sptrsv { t, b } => {
                let mut solver = SptrsvPim::new(dev);
                solver.precision = precision;
                let r = solver.run(t, b)?;
                Ok((JobValue::Vector(r.x), r.run))
            }
            JobKind::Axpy { alpha, x, y } => {
                let r = blas().daxpy(*alpha, x, y)?;
                Ok((JobValue::Vector(r.v), r.run))
            }
            JobKind::Scal { alpha, x } => {
                let r = blas().dscal(*alpha, x)?;
                Ok((JobValue::Vector(r.v), r.run))
            }
            JobKind::Vv { x, y, op } => {
                let r = blas().dvdv(x, y, *op)?;
                Ok((JobValue::Vector(r.v), r.run))
            }
            JobKind::Dot { x, y } => {
                let r = blas().ddot(x, y)?;
                Ok((JobValue::Scalar(r.s), r.run))
            }
            JobKind::Norm2 { x } => {
                let r = blas().dnrm2(x)?;
                Ok((JobValue::Scalar(r.s), r.run))
            }
        }
    }
}

/// The fusion identity of an SpMV job: matrix identity (by `Arc` pointer
/// — same handle, not merely equal contents), semiring, precision, class.
/// `None` for every other kind.
type FusionKey = (
    *const psim_sparse::Coo,
    psyncpim_core::isa::BinaryOp,
    psyncpim_core::isa::BinaryOp,
    psim_sparse::Precision,
    JobClass,
);

fn fusion_key(job: &Job) -> Option<FusionKey> {
    match &job.spec.kind {
        JobKind::Spmv { a, mul, acc, .. } => Some((
            Arc::as_ptr(a),
            *mul,
            *acc,
            job.spec.precision,
            job.spec.class,
        )),
        _ => None,
    }
}

/// One execution unit: a fused SpMV group or a singleton of any kind.
#[derive(Debug)]
struct Group {
    /// Members in admission order; `jobs[0]` is the leader.
    jobs: Vec<Job>,
    /// Placement cost estimate (configured [`CostTier`] units).
    cost: u64,
    /// The group becomes runnable when its latest member has arrived.
    arrival_s: f64,
}

impl Group {
    fn singleton(job: Job) -> Self {
        Group {
            arrival_s: job.spec.arrival_s,
            cost: 0,
            jobs: vec![job],
        }
    }
}

/// Per-lane deques with deterministic work stealing.
///
/// The engine is the executor's scheduling state machine, persistent
/// across admission batches (the service front-end keeps one alive for
/// its whole run so lane clocks carry over):
///
/// * **deal** — each fed group goes to the lane with the earliest
///   *projected finish* (`clock + remaining_cost × scale`), ties to the
///   lowest lane index. With idle lanes this degenerates to the classic
///   least-loaded greedy.
/// * **epoch loop** — each epoch plans at most one group per lane,
///   single-threaded in lane-index order: a lane pops its own front, or
///   steals from the *back* of the lane with the most remaining estimated
///   cost — but only when the thief's projected finish of the stolen
///   group beats the victim's projected finish of its whole queue (a
///   steal that wouldn't help is not a steal). The planned groups then
///   execute host-parallel and merge in lane order.
///
/// Every decision reads only simulated state, so the schedule — and
/// therefore every statistic — is a pure function of the fed batches,
/// independent of host thread count.
#[derive(Debug)]
pub(crate) struct LaneEngine {
    lanes: Vec<VecDeque<Group>>,
    /// Simulated completion time of each lane's last finished group.
    clocks: Vec<f64>,
    /// Estimated cost still queued per lane.
    remaining: Vec<u64>,
    /// Groups moved between lanes by the stealer.
    pub(crate) steals: u64,
    /// Calibration: observed service seconds per executed cost unit.
    total_service_s: f64,
    total_cost: f64,
}

impl LaneEngine {
    pub(crate) fn new(shards: usize) -> Self {
        LaneEngine {
            lanes: (0..shards).map(|_| VecDeque::new()).collect(),
            clocks: vec![0.0; shards],
            remaining: vec![0; shards],
            steals: 0,
            total_service_s: 0.0,
            total_cost: 0.0,
        }
    }

    /// Seconds one estimated cost unit is currently worth — calibrated
    /// from every group executed so far (deterministic: simulated service
    /// seconds over estimated cost). The bootstrap value only matters for
    /// the very first deal, where all clocks are 0 anyway.
    fn scale(&self) -> f64 {
        if self.total_cost > 0.0 {
            self.total_service_s / self.total_cost
        } else {
            1e-9
        }
    }

    fn projected_finish(&self, lane: usize, scale: f64) -> f64 {
        self.clocks[lane] + self.remaining[lane] as f64 * scale
    }

    /// Fuse and deal one admission batch onto the lanes.
    pub(crate) fn feed(&mut self, exec: &ShardExecutor, jobs: Vec<Job>) {
        let scale = self.scale();
        for group in exec.fuse_batch(jobs) {
            let lane = (0..self.lanes.len())
                .min_by(|&a, &b| {
                    self.projected_finish(a, scale)
                        .partial_cmp(&self.projected_finish(b, scale))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                })
                .expect("shards >= 1");
            self.remaining[lane] += group.cost;
            self.lanes[lane].push_back(group);
        }
    }

    /// Plan one epoch: at most one group per lane, in lane-index order.
    /// Mutates deques and steal counters; pure simulated state in, so the
    /// plan is deterministic.
    fn plan_epoch(&mut self) -> Vec<(usize, Group)> {
        let scale = self.scale();
        let mut plan = Vec::new();
        for lane in 0..self.lanes.len() {
            if let Some(group) = self.lanes[lane].pop_front() {
                self.remaining[lane] -= group.cost;
                plan.push((lane, group));
                continue;
            }
            // Steal from the back of the most-loaded victim, ties to the
            // lowest index.
            let Some(victim) = (0..self.lanes.len())
                .filter(|&v| !self.lanes[v].is_empty())
                .max_by_key(|&v| (self.remaining[v], std::cmp::Reverse(v)))
            else {
                continue;
            };
            let back = self.lanes[victim].back().expect("non-empty");
            let thief_finish = self.clocks[lane].max(back.arrival_s) + back.cost as f64 * scale;
            if thief_finish < self.projected_finish(victim, scale) {
                let group = self.lanes[victim].pop_back().expect("non-empty");
                self.remaining[victim] -= group.cost;
                self.steals += 1;
                plan.push((lane, group));
            }
        }
        plan
    }

    /// Run epochs until every lane's deque is empty, streaming each
    /// completed job (leader first within a group, groups in lane order
    /// within an epoch) into `sink`.
    pub(crate) fn run_until_dry(
        &mut self,
        exec: &ShardExecutor,
        sink: &mut dyn FnMut(CompletedJob),
    ) -> Result<(), SchedError> {
        type GroupOutcome = Result<(Vec<JobValue>, KernelRun), SchedError>;
        // Under the interleaving explorer raw scoped threads would be
        // invisible to the model scheduler, so the lane path degrades to
        // serial execution there — same results by the determinism
        // contract, every schedule decision stays explorable.
        let threads = if psim_conc::model::in_model() {
            1
        } else {
            exec.cfg.host_threads.max(1)
        };
        loop {
            let plan = self.plan_epoch();
            if plan.is_empty() {
                return Ok(());
            }
            // Execute the planned groups host-parallel. Kernel results
            // depend only on the group (every lane is the same device
            // slice), so threads never influence outcomes.
            let mut slots: Vec<Option<GroupOutcome>> = plan.iter().map(|_| None).collect();
            if threads <= 1 || plan.len() <= 1 {
                for ((_, group), slot) in plan.iter().zip(slots.iter_mut()) {
                    *slot = Some(exec.run_group(group));
                }
            } else {
                let mut buckets: Vec<Vec<_>> = (0..threads).map(|_| Vec::new()).collect();
                for (i, ((_, group), slot)) in plan.iter().zip(slots.iter_mut()).enumerate() {
                    buckets[i % threads].push((group, slot));
                }
                std::thread::scope(|s| {
                    for bucket in buckets {
                        s.spawn(|| {
                            for (group, slot) in bucket {
                                *slot = Some(exec.run_group(group));
                            }
                        });
                    }
                });
            }
            // Merge in plan (lane) order, advancing simulated clocks.
            for ((lane, group), slot) in plan.into_iter().zip(slots) {
                let (values, run) = slot.expect("every planned group executed")?;
                let service_s = run.total_s();
                let start_s = self.clocks[lane].max(group.arrival_s);
                self.clocks[lane] = start_s + service_s;
                self.total_service_s += service_s;
                self.total_cost += group.cost as f64;
                let width = group.jobs.len() as u32;
                for (i, (job, value)) in group.jobs.into_iter().zip(values).enumerate() {
                    let leader = i == 0;
                    sink(CompletedJob {
                        id: job.id,
                        tenant: job.spec.tenant,
                        class: job.spec.class,
                        kind: job.spec.kind.label(),
                        shard: lane,
                        value,
                        run: if leader {
                            run.clone()
                        } else {
                            KernelRun::default()
                        },
                        wait_s: start_s - job.spec.arrival_s,
                        service_s,
                        service_cycles: if leader { run.dram_cycles } else { 0 },
                        arrival_s: job.spec.arrival_s,
                        finish_s: start_s + service_s,
                        fused_width: width,
                        fused_leader: leader,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use serde::Serialize as _;
    use std::sync::Arc;

    fn scal_job(tenant: &str, n: usize) -> JobSpec {
        JobSpec::batch(
            tenant,
            JobKind::Scal {
                alpha: 2.0,
                x: vec![1.0; n],
            },
        )
    }

    #[test]
    fn executor_validates_jobs_by_default() {
        let cfg = ExecutorConfig::serial(PimDevice::tiny(2));
        assert!(cfg.validate, "constructors must default validation on");
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(exec.shard_device().validate);
        // A validated batch runs clean: jobs complete, accounting carries
        // the checker's verdict and real service cycles.
        let queue = JobQueue::bounded(4);
        let a = Arc::new(psim_sparse::gen::rmat(32, 2, 3));
        let x: Vec<f64> = (0..32).map(|i| 1.0 + i as f64).collect();
        queue
            .submit(JobSpec::batch("t0", JobKind::spmv(a, x)))
            .unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        let job = &report.jobs[0];
        assert_eq!(job.run.violations, 0);
        assert!(job.service_cycles > 0, "dram_cycles must be accounted");
        assert!(job.run.mem_ops <= job.run.bank_bursts);
        // Validation can still be switched off explicitly.
        let mut cfg = ExecutorConfig::serial(PimDevice::tiny(2));
        cfg.validate = false;
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(!exec.shard_device().validate);
    }

    #[test]
    fn shard_device_refuses_unverifiable_programs() {
        // ExecutorConfig::validate flows into the shard device, whose
        // engines run psim-lint before cycle 0: a job built on a program
        // with an Error-level diagnostic (here: SpFW draining a queue
        // nothing fills — a guaranteed no-op data path) fails instead of
        // silently serving a wrong answer.
        use psyncpim_core::isa::assemble;
        let exec = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(2))).unwrap();
        let bad = assemble("SPFW SPVQ0, FP64\nEXIT\n").unwrap();

        let err = exec.shard_device().verify_program(&bad).unwrap_err();
        assert!(matches!(err, CoreError::Verify { .. }));
        // The wrapped form a failing job reports carries the lint code.
        let job_err = SchedError::JobFailed {
            id: 7,
            error: err.to_string(),
        };
        assert!(job_err.to_string().contains("PSL011"), "{job_err}");

        // The engine refuses the load too — the defense is layered.
        let mut engine = exec.shard_device().make_engine();
        let load = engine.load_kernel(bad.clone(), vec![None::<psyncpim_core::memory::Binding>; 2]);
        assert!(matches!(load, Err(CoreError::Verify { .. })));

        // With validation off the same program is accepted (ablation /
        // fault-injection runs need this escape hatch).
        let mut cfg = ExecutorConfig::serial(PimDevice::tiny(2));
        cfg.validate = false;
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(exec.shard_device().verify_program(&bad).is_ok());
    }

    #[test]
    fn traced_batches_attribute_every_service_cycle() {
        let mut cfg = ExecutorConfig::sharded(PimDevice::tiny(4), 2);
        cfg.trace = true;
        let exec = ShardExecutor::new(cfg).unwrap();
        assert!(exec.shard_device().trace);
        let queue = JobQueue::bounded(16);
        let a = Arc::new(psim_sparse::gen::rmat(32, 2, 3));
        let x: Vec<f64> = (0..32).map(|i| 1.0 + i as f64).collect();
        queue
            .submit(JobSpec::batch(
                "t0",
                JobKind::spmv(Arc::clone(&a), x.clone()),
            ))
            .unwrap();
        queue
            .submit(JobSpec::batch("t1", JobKind::Dot { x: x.clone(), y: x }))
            .unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        assert_eq!(report.jobs.len(), 2);
        let mut total_cycles = 0u64;
        for job in &report.jobs {
            // Per-job service attribution accounts every service cycle.
            assert_eq!(
                job.run.attr.total(),
                job.service_cycles,
                "job {} ({})",
                job.id,
                job.kind
            );
            let m = job.run.metrics.as_ref().expect("tracing on");
            assert!(m.conservation_failures().is_empty(), "job {}", job.id);
            total_cycles += job.service_cycles;
        }
        assert_eq!(report.stats.sim.service_attr.total(), total_cycles);
        let js = report.stats.sim.to_json();
        assert!(js.contains("\"service_attr\""), "{js}");
        assert!(js.contains("\"trace_dropped\""), "{js}");
        // Untraced batches keep the attribution all-zero with no registry.
        let exec = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(2))).unwrap();
        let queue = JobQueue::bounded(4);
        queue.submit(scal_job("t0", 32)).unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        assert_eq!(report.stats.sim.service_attr.total(), 0);
        assert!(report.jobs[0].run.metrics.is_none());
    }

    #[test]
    fn tiny_trace_buffers_count_drops_instead_of_truncating() {
        let mut device = PimDevice::tiny(2);
        device.trace_events = 1;
        let mut cfg = ExecutorConfig::serial(device);
        cfg.trace = true;
        let exec = ShardExecutor::new(cfg).unwrap();
        let queue = JobQueue::bounded(4);
        // An irregular SpMV: banks get unequal entry counts, so lighter
        // banks stream queue-empty rounds — far more stalls than one slot.
        let a = Arc::new(psim_sparse::gen::rmat(64, 3, 7));
        let x: Vec<f64> = (0..64).map(|i| 1.0 + i as f64).collect();
        queue
            .submit(JobSpec::batch("t0", JobKind::spmv(a, x)))
            .unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        let m = report.jobs[0].run.metrics.as_ref().unwrap();
        assert!(m.events.len() <= 1);
        assert!(m.events_dropped > 0, "overflow must be counted");
        assert_eq!(report.stats.sim.trace_dropped, m.events_dropped);
        // Dropping events never breaks cycle conservation.
        assert_eq!(
            report.jobs[0].run.attr.total(),
            report.jobs[0].service_cycles
        );
    }

    #[test]
    fn bad_shard_split_is_rejected() {
        let cfg = ExecutorConfig::sharded(PimDevice::tiny(4), 3);
        assert!(matches!(
            ShardExecutor::new(cfg),
            Err(SchedError::BadShardSplit {
                channels: 4,
                shards: 3
            })
        ));
    }

    #[test]
    fn assignment_balances_estimated_cost() {
        let jobs: Vec<Job> = [100, 100, 10, 10, 10, 10]
            .iter()
            .enumerate()
            .map(|(i, &n)| Job {
                id: i as u64,
                spec: scal_job("t", n),
            })
            .collect();
        let exec = ShardExecutor::new(ExecutorConfig::sharded(PimDevice::tiny(2), 2)).unwrap();
        let mut engine = LaneEngine::new(2);
        engine.feed(&exec, jobs);
        // Greedy by projected finish: 100→lane0, 100→lane1, then the
        // small jobs alternate — both lanes end at 120 estimated cost.
        assert_eq!(engine.remaining, vec![120, 120]);
        assert_eq!(engine.lanes[0].len(), 3);
        assert_eq!(engine.lanes[1].len(), 3);
    }

    #[test]
    fn idle_lane_steals_from_the_most_loaded_back() {
        // Calibrate the engine's cost→seconds scale first, then load lane
        // 0 with everything (by feeding while lane 1's clock is inflated)
        // and watch lane 1 steal from lane 0's back once it is idle.
        let exec = ShardExecutor::new(ExecutorConfig::sharded(PimDevice::tiny(2), 2)).unwrap();
        let mut engine = LaneEngine::new(2);
        engine.total_service_s = 1.0;
        engine.total_cost = 1.0; // scale = 1.0 s per cost unit
        engine.clocks[1] = 1e6; // repel the dealer from lane 1
        engine.feed(
            &exec,
            (0..4u64)
                .map(|i| Job {
                    id: i,
                    spec: scal_job("t", 64),
                })
                .collect(),
        );
        assert_eq!(engine.lanes[0].len(), 4, "deal must avoid the busy lane");
        engine.clocks[1] = 0.0; // lane 1 becomes idle before epoch 1
        let plan = engine.plan_epoch();
        // Lane 0 pops its front (job 0); lane 1 steals lane 0's back
        // (job 3) because its projected finish beats waiting behind the
        // victim's whole queue.
        let planned: Vec<(usize, u64)> =
            plan.iter().map(|(lane, g)| (*lane, g.jobs[0].id)).collect();
        assert_eq!(planned, vec![(0, 0), (1, 3)]);
        assert_eq!(engine.steals, 1);
    }

    #[test]
    fn analytical_tier_sees_serialization_the_heuristic_misses() {
        // Two SpTRSV jobs with identical nnz: a pure dependency chain
        // (n levels, one launch each) and a star (every row depends only
        // on x[0] — one level, one launch). The heuristic proxy
        // (nnz + len) prices them identically; the analytical tier walks
        // the level schedule and must see the chain's serialization.
        use psim_sparse::triangular::{Triangle, UnitTriangular};
        let n = 64usize;
        let mut chain = psim_sparse::Coo::new(n, n);
        let mut star = psim_sparse::Coo::new(n, n);
        for i in 1..n {
            chain.push(i as u32, i as u32 - 1, 0.5);
            star.push(i as u32, 0, 0.5);
        }
        let b = vec![1.0; n];
        let job = |s: psim_sparse::Coo| Job {
            id: 0,
            spec: JobSpec::batch(
                "t",
                JobKind::Sptrsv {
                    t: Arc::new(UnitTriangular::from_strict(Triangle::Lower, s).unwrap()),
                    b: b.clone(),
                },
            ),
        };
        let (chain, star) = (job(chain), job(star));
        // The heuristic proxy is identical by construction.
        assert_eq!(chain.cost_estimate(), star.cost_estimate());
        let cfg = ExecutorConfig::serial(PimDevice::tiny(2)).with_cost_tier(CostTier::Analytical);
        let exec = ShardExecutor::new(cfg).unwrap();
        let (c, s) = (exec.job_cost(&chain), exec.job_cost(&star));
        assert!(
            c > s * 10,
            "analytical cost must punish level serialization: chain {c} vs star {s}"
        );
    }

    #[test]
    fn analytical_placement_preserves_results() {
        // Placement tier changes *which shard* serves a job, never the
        // job's value: the same batch under both tiers returns the same
        // numbers.
        let a = Arc::new(psim_sparse::gen::rmat(48, 4, 9));
        let x: Vec<f64> = (0..48).map(|i| 0.5 + i as f64).collect();
        let run = |tier: CostTier| {
            let queue = JobQueue::bounded(8);
            let spmv = queue
                .submit(JobSpec::batch(
                    "t0",
                    JobKind::spmv(Arc::clone(&a), x.clone()),
                ))
                .unwrap();
            let dot = queue
                .submit(JobSpec::batch(
                    "t1",
                    JobKind::Dot {
                        x: x.clone(),
                        y: x.clone(),
                    },
                ))
                .unwrap();
            let exec = ShardExecutor::new(
                ExecutorConfig::sharded(PimDevice::tiny(2), 2).with_cost_tier(tier),
            )
            .unwrap();
            let report = exec.drain_and_run(&queue).unwrap();
            (
                report.job(spmv).unwrap().value.clone(),
                report.job(dot).unwrap().value.clone(),
            )
        };
        assert_eq!(run(CostTier::Heuristic), run(CostTier::Analytical));
    }

    #[test]
    fn executes_jobs_and_preserves_values() {
        let queue = JobQueue::bounded(16);
        let a = Arc::new(psim_sparse::gen::rmat(32, 2, 3));
        let x: Vec<f64> = (0..32).map(|i| 1.0 + i as f64).collect();
        let id_spmv = queue
            .submit(JobSpec::batch(
                "t0",
                JobKind::spmv(Arc::clone(&a), x.clone()),
            ))
            .unwrap();
        let id_dot = queue
            .submit(JobSpec::batch(
                "t1",
                JobKind::Dot {
                    x: x.clone(),
                    y: x.clone(),
                },
            ))
            .unwrap();
        let exec = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(2))).unwrap();
        let report = exec.drain_and_run(&queue).unwrap();
        assert_eq!(report.jobs.len(), 2);
        let y = report.job(id_spmv).unwrap().value.as_vector().unwrap();
        let want = a.spmv(&x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
        let d = report.job(id_dot).unwrap().value.as_scalar().unwrap();
        let want_d: f64 = x.iter().map(|v| v * v).sum();
        assert!((d - want_d).abs() < 1e-6 * want_d);
        assert!(report.stats.sim.makespan_s > 0.0);
        assert!(report.stats.host.walltime_s > 0.0);
    }

    /// Tuned and untuned runs compute the same product; layouts reorder
    /// floating-point accumulation, so compare to the oracle tolerance.
    fn assert_values_close(base: &[JobValue], tuned: &[JobValue]) {
        assert_eq!(base.len(), tuned.len());
        for (b, t) in base.iter().zip(tuned) {
            match (b, t) {
                (JobValue::Vector(b), JobValue::Vector(t)) => {
                    for (bv, tv) in b.iter().zip(t) {
                        assert!((bv - tv).abs() <= 1e-9 * bv.abs().max(1.0), "{bv} vs {tv}");
                    }
                }
                (JobValue::Scalar(b), JobValue::Scalar(t)) => {
                    assert!((b - t).abs() <= 1e-9 * b.abs().max(1.0));
                }
                _ => panic!("value kinds diverged"),
            }
        }
    }

    #[test]
    fn autotuned_executor_preserves_values_and_memoizes() {
        // Adversarial shapes that exercise non-baseline tuner choices:
        // hub rows (balancing rules) and near-dense blocks (blocked
        // candidates). The tuned executor must return the same values as
        // the untuned one — layouts change the schedule, not the
        // product — and tune each Arc-identical matrix only once.
        let hubs = Arc::new(psim_sparse::adversarial::power_law_hubs(96, 800, 3, 5));
        let blocks = Arc::new(psim_sparse::adversarial::near_dense_blocks(64, 8, 4, 5));
        let run = |autotune: bool| {
            let queue = JobQueue::bounded(16);
            for a in [&hubs, &blocks] {
                let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + i as f64).collect();
                for _ in 0..2 {
                    queue
                        .submit(JobSpec::batch(
                            "t0",
                            JobKind::spmv(Arc::clone(a), x.clone()),
                        ))
                        .unwrap();
                }
            }
            let mut cfg =
                ExecutorConfig::sharded(PimDevice::tiny(2), 2).with_cost_tier(CostTier::Analytical);
            if autotune {
                cfg = cfg.with_autotune();
            }
            let exec = ShardExecutor::new(cfg).unwrap();
            let report = exec.drain_and_run(&queue).unwrap();
            let values: Vec<JobValue> = report.jobs.iter().map(|j| j.value.clone()).collect();
            (exec, values)
        };
        let (exec_off, base) = run(false);
        let (exec_on, tuned) = run(true);
        assert_values_close(&base, &tuned);
        assert_eq!(exec_off.tuned.lock().len(), 0, "off: no decisions made");
        assert_eq!(
            exec_on.tuned.lock().len(),
            2,
            "one memoized decision per distinct matrix handle"
        );
        // The tuner actually moved off the baseline for the skewed matrix.
        let l = exec_on.tuned_layout(&hubs, Precision::Fp64, BinaryOp::Mul, BinaryOp::Add);
        assert_ne!(
            l,
            Layout::baseline(),
            "hub rows must tune away from baseline"
        );
        // And with tuning off, every matrix reports the baseline layout.
        let l = exec_off.tuned_layout(&hubs, Precision::Fp64, BinaryOp::Mul, BinaryOp::Add);
        assert_eq!(l, Layout::baseline());
    }

    #[test]
    fn autotune_forces_element_format_for_exotic_semirings() {
        // Tropical (min-plus) SpMV: blocked zero-fill would corrupt the
        // result (an explicit 0 is not the semiring identity), so the
        // tuned layout must fall back to an element format while keeping
        // the tuned scheme/policy. Seed the memo with a blocked decision
        // directly — whether the tuner *would* pick blocked for this
        // matrix is a cost question; the safety demotion must hold for
        // any memoized layout.
        let a = Arc::new(psim_sparse::adversarial::near_dense_blocks(64, 8, 4, 11));
        let x: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let tropical = |a: &Arc<Coo>, x: &[f64]| JobKind::Spmv {
            a: Arc::clone(a),
            x: x.to_vec(),
            mul: BinaryOp::Add,
            acc: BinaryOp::Min,
        };
        let blocked = Layout {
            format: MatrixFormat::Bcsr { block: 4 },
            scheme: psim_sparse::PartitionScheme::Balanced2D { col_blocks: 2 },
            policy: psim_sparse::DistPolicy::LeastLoaded,
        };
        let run = |autotune: bool| {
            let queue = JobQueue::bounded(4);
            queue
                .submit(JobSpec::batch("t0", tropical(&a, &x)))
                .unwrap();
            let mut cfg = ExecutorConfig::serial(PimDevice::tiny(2));
            if autotune {
                cfg = cfg.with_autotune();
            }
            let exec = ShardExecutor::new(cfg).unwrap();
            if autotune {
                exec.tuned.lock().insert(Arc::as_ptr(&a) as usize, blocked);
            }
            let report = exec.drain_and_run(&queue).unwrap();
            (exec, report.jobs[0].value.clone())
        };
        let (_, base) = run(false);
        let (exec, tuned) = run(true);
        // min-accumulation is order-insensitive and per-entry Add is
        // exact, so the demoted layout's values match bit-for-bit.
        assert_eq!(base, tuned, "semiring values must survive tuning");
        let l = exec.tuned_layout(&a, Precision::Fp64, BinaryOp::Add, BinaryOp::Min);
        assert!(
            !l.format.is_blocked(),
            "non-arithmetic semirings must not execute from a zero-filled blocked stream: {}",
            l.label()
        );
        assert_eq!(l.scheme, blocked.scheme, "the tuned scheme survives");
        assert_eq!(l.policy, blocked.policy, "the tuned policy survives");
        // The arithmetic view of the same memo entry stays blocked.
        let arith = exec.tuned_layout(&a, Precision::Fp64, BinaryOp::Mul, BinaryOp::Add);
        assert_eq!(arith, blocked);
    }

    #[test]
    fn autotuned_fusion_stays_bit_identical_to_solo_jobs() {
        // Fusion under a tuned layout: the fused SpMM pass adopts the
        // same layout as solo SpMV jobs, so per-vector results stay
        // bit-identical whether the batch fuses or not.
        let a = Arc::new(psim_sparse::adversarial::power_law_hubs(80, 600, 2, 9));
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|v| (0..80).map(|i| 1.0 + (i * (v + 1)) as f64).collect())
            .collect();
        let run = |fusion: usize| {
            let queue = JobQueue::bounded(8);
            for x in &xs {
                queue
                    .submit(JobSpec::batch(
                        "t0",
                        JobKind::spmv(Arc::clone(&a), x.clone()),
                    ))
                    .unwrap();
            }
            let cfg = ExecutorConfig::serial(PimDevice::tiny(2))
                .with_fusion(fusion)
                .with_autotune();
            let exec = ShardExecutor::new(cfg).unwrap();
            let report = exec.drain_and_run(&queue).unwrap();
            report
                .jobs
                .iter()
                .map(|j| j.value.clone())
                .collect::<Vec<_>>()
        };
        let solo = run(1);
        let fused = run(3);
        assert_eq!(solo, fused, "fused tuned results must match solo tuned");
    }

    #[test]
    fn sharded_concurrency_beats_serial_in_sim_time() {
        let mk_queue = || {
            let q = JobQueue::bounded(64);
            for i in 0..8 {
                q.submit(scal_job(&format!("t{}", i % 4), 64)).unwrap();
            }
            q
        };
        let serial = ShardExecutor::new(ExecutorConfig::serial(PimDevice::tiny(4)))
            .unwrap()
            .drain_and_run(&mk_queue())
            .unwrap();
        let sharded = ShardExecutor::new(ExecutorConfig::sharded(PimDevice::tiny(4), 4))
            .unwrap()
            .drain_and_run(&mk_queue())
            .unwrap();
        assert!(
            sharded.stats.sim.makespan_s < serial.stats.sim.makespan_s,
            "sharded {} vs serial {}",
            sharded.stats.sim.makespan_s,
            serial.stats.sim.makespan_s
        );
        assert!(sharded.stats.sim.speedup_vs_serial > 1.0);
    }
}
