//! Per-job service statistics.
//!
//! Split into two halves on purpose:
//!
//! * [`SimStats`] is computed entirely from *simulated* quantities (DRAM
//!   cycles, modeled seconds) in deterministic merge order, so its JSON
//!   serialization is byte-identical across host thread counts — the
//!   determinism tests compare exactly this.
//! * [`HostStats`] is the host-side measurement (walltime, threads used)
//!   and is excluded from determinism comparisons.
//!
//! [`SimAcc`] is the streaming accumulator behind [`SimStats::from_jobs`]:
//! the service front-end records each [`CompletedJob`] as it finishes and
//! drops it, so a million-job soak never retains a million result vectors
//! just to report quantiles at the end.

use psyncpim_core::{CycleBreakdown, Histogram};
use serde::Serialize;

use crate::executor::CompletedJob;
use crate::job::JobClass;

/// Latency breakdown for one deadline class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassStats {
    /// Class label (`interactive`, `batch`, `best-effort`).
    pub class: String,
    /// Jobs completed in this class.
    pub jobs: u64,
    /// End-to-end simulated latency (queue wait + service), nanoseconds.
    pub latency_ns: Histogram,
}

/// Deterministic simulated-time statistics for one executed batch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Shards the device was split into.
    pub shards: usize,
    /// Simulated makespan: the busiest shard's total service time, in
    /// DRAM command cycles (kernel portion).
    pub makespan_cycles: u64,
    /// Simulated makespan in seconds: the latest job finish instant
    /// (kernel + host-interface service; includes arrival gaps under an
    /// open-arrival trace).
    pub makespan_s: f64,
    /// Device-busy seconds: the sum of every executed group's service
    /// time (fused followers excluded — their group's leader already
    /// carries it). For an unfused closed batch this is what a 1-shard
    /// device would need.
    pub serial_s: f64,
    /// `serial_s / makespan_s`: concurrency the shard split achieved.
    pub speedup_vs_serial: f64,
    /// Completed jobs per simulated second (`jobs / makespan_s`).
    pub jobs_per_sim_s: f64,
    /// Queue-wait (time on the shard's run queue), nanoseconds.
    pub wait_ns: Histogram,
    /// Service time (kernel + host interface), nanoseconds.
    pub service_ns: Histogram,
    /// End-to-end latency (wait + service), nanoseconds.
    pub latency_ns: Histogram,
    /// Per-class latency breakdown, in class-priority order (classes with
    /// no jobs omitted).
    pub per_class: Vec<ClassStats>,
    /// Busy cycles per shard, in shard order (load-balance visibility).
    pub per_shard_busy_cycles: Vec<u64>,
    /// psim-trace service attribution summed over jobs: where every
    /// service cycle of the batch went, per stall category. All-zero
    /// unless the executor traces; with tracing on its total equals the
    /// sum of every job's `service_cycles`.
    pub service_attr: CycleBreakdown,
    /// Stall events the jobs' bounded trace buffers could not hold —
    /// counted here so truncation is never silent.
    pub trace_dropped: u64,
    /// Groups moved between shard lanes by the deterministic stealer.
    pub steals: u64,
    /// Jobs that ran inside a fused SpMM group of width > 1.
    pub fused_jobs: u64,
    /// Fused SpMM passes executed (groups of width > 1).
    pub fused_groups: u64,
}

impl SimStats {
    /// Aggregate per-job records (must already be in deterministic order;
    /// the executor sorts by job id).
    #[must_use]
    pub fn from_jobs(jobs: &[CompletedJob], shards: usize, steals: u64) -> Self {
        let mut acc = SimAcc::new(shards);
        for job in jobs {
            acc.record(job);
        }
        acc.set_steals(steals);
        acc.finish()
    }
}

/// Streaming accumulator for [`SimStats`]: record each completed job as it
/// finishes (any order — every aggregate is order-independent), then
/// [`SimAcc::finish`]. Holds histograms and counters only, never the jobs,
/// so memory stays O(shards) across a million-job soak.
#[derive(Debug, Clone)]
pub struct SimAcc {
    shards: usize,
    jobs: u64,
    wait_ns: Histogram,
    service_ns: Histogram,
    latency_ns: Histogram,
    class_hists: [(u64, Histogram); 3],
    per_shard_busy_cycles: Vec<u64>,
    shard_end_s: Vec<f64>,
    serial_s: f64,
    service_attr: CycleBreakdown,
    trace_dropped: u64,
    steals: u64,
    fused_jobs: u64,
    fused_groups: u64,
}

impl SimAcc {
    /// An empty accumulator for a `shards`-lane executor.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        SimAcc {
            shards,
            jobs: 0,
            wait_ns: Histogram::new(),
            service_ns: Histogram::new(),
            latency_ns: Histogram::new(),
            class_hists: [
                (0, Histogram::new()),
                (0, Histogram::new()),
                (0, Histogram::new()),
            ],
            per_shard_busy_cycles: vec![0; shards],
            shard_end_s: vec![0.0; shards],
            serial_s: 0.0,
            service_attr: CycleBreakdown::default(),
            trace_dropped: 0,
            steals: 0,
            fused_jobs: 0,
            fused_groups: 0,
        }
    }

    /// Fold one completed job in.
    pub fn record(&mut self, job: &CompletedJob) {
        self.jobs += 1;
        self.wait_ns.record_seconds(job.wait_s);
        self.service_ns.record_seconds(job.service_s);
        let latency_s = job.wait_s + job.service_s;
        self.latency_ns.record_seconds(latency_s);
        // Followers share their leader's service time; counting it once
        // (the leader) keeps serial_s equal to device-busy seconds.
        if job.fused_leader {
            self.serial_s += job.service_s;
        }
        if job.fused_width > 1 {
            self.fused_jobs += 1;
            if job.fused_leader {
                self.fused_groups += 1;
            }
        }
        self.per_shard_busy_cycles[job.shard] += job.service_cycles;
        self.shard_end_s[job.shard] = self.shard_end_s[job.shard].max(job.finish_s);
        self.service_attr.add_all(&job.run.attr);
        self.trace_dropped += job.run.metrics.as_ref().map_or(0, |m| m.events_dropped);
        let slot = &mut self.class_hists[job.class as usize];
        slot.0 += 1;
        slot.1.record_seconds(latency_s);
    }

    /// Record the executor's steal count (kept out of [`SimAcc::record`]
    /// because steals are per-run, not per-job).
    pub fn set_steals(&mut self, steals: u64) {
        self.steals = steals;
    }

    /// The aggregated statistics.
    #[must_use]
    pub fn finish(self) -> SimStats {
        let makespan_s = self.shard_end_s.iter().copied().fold(0.0f64, f64::max);
        let makespan_cycles = self
            .per_shard_busy_cycles
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let per_class = JobClass::ALL
            .iter()
            .filter_map(|&c| {
                let (n, h) = &self.class_hists[c as usize];
                (*n > 0).then(|| ClassStats {
                    class: c.label().to_string(),
                    jobs: *n,
                    latency_ns: *h,
                })
            })
            .collect();
        SimStats {
            jobs: self.jobs,
            shards: self.shards,
            makespan_cycles,
            makespan_s,
            serial_s: self.serial_s,
            speedup_vs_serial: if makespan_s > 0.0 {
                self.serial_s / makespan_s
            } else {
                0.0
            },
            jobs_per_sim_s: if makespan_s > 0.0 {
                self.jobs as f64 / makespan_s
            } else {
                0.0
            },
            wait_ns: self.wait_ns,
            service_ns: self.service_ns,
            latency_ns: self.latency_ns,
            per_class,
            per_shard_busy_cycles: self.per_shard_busy_cycles,
            service_attr: self.service_attr,
            trace_dropped: self.trace_dropped,
            steals: self.steals,
            fused_jobs: self.fused_jobs,
            fused_groups: self.fused_groups,
        }
    }
}

/// Host-side (non-deterministic) measurements for one executed batch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HostStats {
    /// Wall-clock seconds the host spent executing the batch.
    pub walltime_s: f64,
    /// Host worker threads used.
    pub threads: usize,
}

/// Full service report: deterministic simulated half plus host half.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceStats {
    /// Simulated-time statistics (deterministic; compare this).
    pub sim: SimStats,
    /// Host-side measurements (informational only).
    pub host: HostStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::CompletedJob;
    use crate::job::JobValue;

    fn job(id: u64, shard: usize, class: JobClass, wait_s: f64, service_s: f64) -> CompletedJob {
        CompletedJob {
            id,
            tenant: "t".to_string(),
            class,
            kind: "scal",
            shard,
            value: JobValue::Scalar(0.0),
            run: psim_kernels::KernelRun::default(),
            wait_s,
            service_s,
            service_cycles: (service_s * 1e9) as u64,
            arrival_s: 0.0,
            finish_s: wait_s + service_s,
            fused_width: 1,
            fused_leader: true,
        }
    }

    #[test]
    fn aggregates_makespan_and_speedup() {
        let jobs = vec![
            job(0, 0, JobClass::Batch, 0.0, 2e-6),
            job(1, 1, JobClass::Batch, 0.0, 1e-6),
            job(2, 1, JobClass::Interactive, 1e-6, 1e-6),
        ];
        let s = SimStats::from_jobs(&jobs, 2, 0);
        assert_eq!(s.jobs, 3);
        assert!((s.serial_s - 4e-6).abs() < 1e-18);
        assert!((s.makespan_s - 2e-6).abs() < 1e-18);
        assert!((s.speedup_vs_serial - 2.0).abs() < 1e-9);
        assert_eq!(s.per_shard_busy_cycles, vec![2000, 2000]);
        // Interactive class appears first in the per-class breakdown.
        assert_eq!(s.per_class[0].class, "interactive");
        assert_eq!(s.per_class[0].jobs, 1);
        assert_eq!(s.per_class[1].jobs, 2);
        assert_eq!((s.steals, s.fused_jobs, s.fused_groups), (0, 0, 0));
    }

    #[test]
    fn fused_groups_count_service_once() {
        // A fused pair: leader carries the group's run, the follower
        // shares service_s but contributes no cycles. serial_s must count
        // the group once; both jobs' latencies still register.
        let leader = job(0, 0, JobClass::Batch, 0.0, 2e-6);
        let mut follower = job(1, 0, JobClass::Batch, 0.0, 2e-6);
        follower.service_cycles = 0;
        follower.fused_leader = false;
        let mut jobs = vec![leader, follower];
        for j in &mut jobs {
            j.fused_width = 2;
        }
        let s = SimStats::from_jobs(&jobs, 1, 3);
        assert_eq!(s.jobs, 2);
        assert!((s.serial_s - 2e-6).abs() < 1e-18, "group counted once");
        assert_eq!(s.latency_ns.count, 2, "both latencies recorded");
        assert_eq!(s.per_shard_busy_cycles, vec![2000]);
        assert_eq!(s.fused_jobs, 2);
        assert_eq!(s.fused_groups, 1);
        assert_eq!(s.steals, 3);
    }

    #[test]
    fn open_arrivals_stretch_makespan_not_busy_time() {
        // One job arrives late on an idle lane: makespan covers the
        // arrival gap, serial_s only the service.
        let mut late = job(0, 0, JobClass::Batch, 0.0, 1e-6);
        late.arrival_s = 5e-6;
        late.finish_s = 6e-6;
        let s = SimStats::from_jobs(&[late], 1, 0);
        assert!((s.makespan_s - 6e-6).abs() < 1e-18);
        assert!((s.serial_s - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn streaming_acc_matches_batch_aggregation() {
        let jobs = vec![
            job(0, 0, JobClass::Batch, 0.0, 2e-6),
            job(1, 1, JobClass::Interactive, 1e-7, 1e-6),
            job(2, 0, JobClass::BestEffort, 3e-6, 4e-6),
        ];
        let batch = SimStats::from_jobs(&jobs, 2, 1);
        let mut acc = SimAcc::new(2);
        for j in &jobs {
            acc.record(j);
        }
        acc.set_steals(1);
        assert_eq!(acc.finish(), batch);
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let s = SimStats::from_jobs(&[], 4, 0);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.makespan_cycles, 0);
        assert_eq!(s.jobs_per_sim_s, 0.0);
        assert!(s.per_class.is_empty());
    }

    #[test]
    fn sim_stats_serialize_to_json() {
        use serde::Serialize as _;
        let jobs = vec![job(0, 0, JobClass::Batch, 0.0, 5e-7)];
        let s = SimStats::from_jobs(&jobs, 1, 0);
        let js = s.to_json();
        assert!(js.starts_with('{'), "{js}");
        assert!(js.contains("\"makespan_cycles\""));
        assert!(js.contains("\"per_class\""));
        assert!(js.contains("\"steals\""));
        assert!(js.contains("\"fused_groups\""));
    }
}
