//! Per-job service statistics.
//!
//! Split into two halves on purpose:
//!
//! * [`SimStats`] is computed entirely from *simulated* quantities (DRAM
//!   cycles, modeled seconds) in deterministic merge order, so its JSON
//!   serialization is byte-identical across host thread counts — the
//!   determinism tests compare exactly this.
//! * [`HostStats`] is the host-side measurement (walltime, threads used)
//!   and is excluded from determinism comparisons.

use psyncpim_core::{CycleBreakdown, Histogram};
use serde::Serialize;

use crate::executor::CompletedJob;
use crate::job::JobClass;

/// Latency breakdown for one deadline class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassStats {
    /// Class label (`interactive`, `batch`, `best-effort`).
    pub class: String,
    /// Jobs completed in this class.
    pub jobs: u64,
    /// End-to-end simulated latency (queue wait + service), nanoseconds.
    pub latency_ns: Histogram,
}

/// Deterministic simulated-time statistics for one executed batch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Shards the device was split into.
    pub shards: usize,
    /// Simulated makespan: the busiest shard's total service time, in
    /// DRAM command cycles (kernel portion).
    pub makespan_cycles: u64,
    /// Simulated makespan in seconds (kernel + host-interface service).
    pub makespan_s: f64,
    /// Sum of every job's service seconds — what a 1-shard device would
    /// need (its makespan is the full serial sum).
    pub serial_s: f64,
    /// `serial_s / makespan_s`: concurrency the shard split achieved.
    pub speedup_vs_serial: f64,
    /// Completed jobs per simulated second (`jobs / makespan_s`).
    pub jobs_per_sim_s: f64,
    /// Queue-wait (time on the shard's run queue), nanoseconds.
    pub wait_ns: Histogram,
    /// Service time (kernel + host interface), nanoseconds.
    pub service_ns: Histogram,
    /// End-to-end latency (wait + service), nanoseconds.
    pub latency_ns: Histogram,
    /// Per-class latency breakdown, in class-priority order (classes with
    /// no jobs omitted).
    pub per_class: Vec<ClassStats>,
    /// Busy cycles per shard, in shard order (load-balance visibility).
    pub per_shard_busy_cycles: Vec<u64>,
    /// psim-trace service attribution summed over jobs: where every
    /// service cycle of the batch went, per stall category. All-zero
    /// unless the executor traces; with tracing on its total equals the
    /// sum of every job's `service_cycles`.
    pub service_attr: CycleBreakdown,
    /// Stall events the jobs' bounded trace buffers could not hold —
    /// counted here so truncation is never silent.
    pub trace_dropped: u64,
}

impl SimStats {
    /// Aggregate per-job records (must already be in deterministic order;
    /// the executor sorts by job id).
    #[must_use]
    pub fn from_jobs(jobs: &[CompletedJob], shards: usize) -> Self {
        let mut wait_ns = Histogram::new();
        let mut service_ns = Histogram::new();
        let mut latency_ns = Histogram::new();
        let mut per_shard_busy_cycles = vec![0u64; shards];
        let mut serial_s = 0.0;
        let mut service_attr = CycleBreakdown::default();
        let mut trace_dropped = 0u64;
        let mut class_hists: [(u64, Histogram); 3] = [
            (0, Histogram::new()),
            (0, Histogram::new()),
            (0, Histogram::new()),
        ];
        for job in jobs {
            wait_ns.record_seconds(job.wait_s);
            service_ns.record_seconds(job.service_s);
            latency_ns.record_seconds(job.wait_s + job.service_s);
            serial_s += job.service_s;
            per_shard_busy_cycles[job.shard] += job.service_cycles;
            service_attr.add_all(&job.run.attr);
            trace_dropped += job.run.metrics.as_ref().map_or(0, |m| m.events_dropped);
            let slot = &mut class_hists[job.class as usize];
            slot.0 += 1;
            slot.1.record_seconds(job.wait_s + job.service_s);
        }
        // Makespan: per-shard completion is wait + service of the shard's
        // last job; equivalently the max accumulated service per shard.
        let mut shard_end_s = vec![0.0f64; shards];
        for job in jobs {
            shard_end_s[job.shard] = shard_end_s[job.shard].max(job.wait_s + job.service_s);
        }
        let makespan_s = shard_end_s.iter().copied().fold(0.0f64, f64::max);
        let makespan_cycles = per_shard_busy_cycles.iter().copied().max().unwrap_or(0);
        let per_class = JobClass::ALL
            .iter()
            .filter_map(|&c| {
                let (n, h) = &class_hists[c as usize];
                (*n > 0).then(|| ClassStats {
                    class: c.label().to_string(),
                    jobs: *n,
                    latency_ns: *h,
                })
            })
            .collect();
        SimStats {
            jobs: jobs.len() as u64,
            shards,
            makespan_cycles,
            makespan_s,
            serial_s,
            speedup_vs_serial: if makespan_s > 0.0 {
                serial_s / makespan_s
            } else {
                0.0
            },
            jobs_per_sim_s: if makespan_s > 0.0 {
                jobs.len() as f64 / makespan_s
            } else {
                0.0
            },
            wait_ns,
            service_ns,
            latency_ns,
            per_class,
            per_shard_busy_cycles,
            service_attr,
            trace_dropped,
        }
    }
}

/// Host-side (non-deterministic) measurements for one executed batch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HostStats {
    /// Wall-clock seconds the host spent executing the batch.
    pub walltime_s: f64,
    /// Host worker threads used.
    pub threads: usize,
}

/// Full service report: deterministic simulated half plus host half.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceStats {
    /// Simulated-time statistics (deterministic; compare this).
    pub sim: SimStats,
    /// Host-side measurements (informational only).
    pub host: HostStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::CompletedJob;
    use crate::job::JobValue;

    fn job(id: u64, shard: usize, class: JobClass, wait_s: f64, service_s: f64) -> CompletedJob {
        CompletedJob {
            id,
            tenant: "t".to_string(),
            class,
            kind: "scal",
            shard,
            value: JobValue::Scalar(0.0),
            run: psim_kernels::KernelRun::default(),
            wait_s,
            service_s,
            service_cycles: (service_s * 1e9) as u64,
        }
    }

    #[test]
    fn aggregates_makespan_and_speedup() {
        let jobs = vec![
            job(0, 0, JobClass::Batch, 0.0, 2e-6),
            job(1, 1, JobClass::Batch, 0.0, 1e-6),
            job(2, 1, JobClass::Interactive, 1e-6, 1e-6),
        ];
        let s = SimStats::from_jobs(&jobs, 2);
        assert_eq!(s.jobs, 3);
        assert!((s.serial_s - 4e-6).abs() < 1e-18);
        assert!((s.makespan_s - 2e-6).abs() < 1e-18);
        assert!((s.speedup_vs_serial - 2.0).abs() < 1e-9);
        assert_eq!(s.per_shard_busy_cycles, vec![2000, 2000]);
        // Interactive class appears first in the per-class breakdown.
        assert_eq!(s.per_class[0].class, "interactive");
        assert_eq!(s.per_class[0].jobs, 1);
        assert_eq!(s.per_class[1].jobs, 2);
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let s = SimStats::from_jobs(&[], 4);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.makespan_cycles, 0);
        assert_eq!(s.jobs_per_sim_s, 0.0);
        assert!(s.per_class.is_empty());
    }

    #[test]
    fn sim_stats_serialize_to_json() {
        use serde::Serialize as _;
        let jobs = vec![job(0, 0, JobClass::Batch, 0.0, 5e-7)];
        let s = SimStats::from_jobs(&jobs, 1);
        let js = s.to_json();
        assert!(js.starts_with('{'), "{js}");
        assert!(js.contains("\"makespan_cycles\""));
        assert!(js.contains("\"per_class\""));
    }
}
