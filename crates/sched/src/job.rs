//! Job descriptions: what a tenant asks the device to do.
//!
//! A [`JobSpec`] names the tenant, a deadline [`JobClass`], the element
//! [`Precision`] and the requested operation ([`JobKind`]). Matrices are
//! held behind [`std::sync::Arc`] (see [`MatrixStore`]) so many queued jobs
//! can reference the same operand without cloning megabytes per job.

use std::collections::HashMap;
use std::sync::Arc;

use psim_conc::Mutex;

use psim_sparse::triangular::UnitTriangular;
use psim_sparse::{Coo, Precision};
use psyncpim_core::isa::BinaryOp;
use serde::{Deserialize, Serialize};

/// Monotonically increasing job identifier (assigned at submission).
pub type JobId = u64;

/// Deadline class, in strictly decreasing scheduling priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Latency-sensitive: always served before lower classes.
    Interactive,
    /// Default throughput class.
    Batch,
    /// Served only when nothing else is waiting.
    BestEffort,
}

impl JobClass {
    /// All classes in scheduling-priority order.
    pub const ALL: [JobClass; 3] = [JobClass::Interactive, JobClass::Batch, JobClass::BestEffort];

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Batch => "batch",
            JobClass::BestEffort => "best-effort",
        }
    }
}

/// The requested operation.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// `y = A x` over an arbitrary `(mul, acc)` semiring; arithmetic SpMV
    /// uses `(Mul, Add)`.
    Spmv {
        /// The matrix.
        a: Arc<Coo>,
        /// The dense operand.
        x: Vec<f64>,
        /// Semiring multiply.
        mul: BinaryOp,
        /// Semiring accumulate.
        acc: BinaryOp,
    },
    /// Solve `T x = b` for unit triangular `T`.
    Sptrsv {
        /// The triangular factor.
        t: Arc<UnitTriangular>,
        /// Right-hand side.
        b: Vec<f64>,
    },
    /// `y <- alpha x + y`.
    Axpy {
        /// Scale factor.
        alpha: f64,
        /// Scaled operand.
        x: Vec<f64>,
        /// Accumulated operand.
        y: Vec<f64>,
    },
    /// `x <- alpha x`.
    Scal {
        /// Scale factor.
        alpha: f64,
        /// The vector.
        x: Vec<f64>,
    },
    /// Element-wise `z = x (op) y`.
    Vv {
        /// Left operand.
        x: Vec<f64>,
        /// Right operand.
        y: Vec<f64>,
        /// The element-wise operator.
        op: BinaryOp,
    },
    /// Dot product.
    Dot {
        /// Left operand.
        x: Vec<f64>,
        /// Right operand.
        y: Vec<f64>,
    },
    /// Euclidean norm.
    Norm2 {
        /// The vector.
        x: Vec<f64>,
    },
}

impl JobKind {
    /// Arithmetic SpMV (`mul = Mul`, `acc = Add`).
    #[must_use]
    pub fn spmv(a: Arc<Coo>, x: Vec<f64>) -> Self {
        JobKind::Spmv {
            a,
            x,
            mul: BinaryOp::Mul,
            acc: BinaryOp::Add,
        }
    }

    /// Short kernel-family label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Spmv { .. } => "spmv",
            JobKind::Sptrsv { .. } => "sptrsv",
            JobKind::Axpy { .. } => "axpy",
            JobKind::Scal { .. } => "scal",
            JobKind::Vv { .. } => "vv",
            JobKind::Dot { .. } => "dot",
            JobKind::Norm2 { .. } => "norm2",
        }
    }

    /// A priori work estimate in abstract units (nonzeros for sparse
    /// kernels, elements for dense ones). The scheduler uses this for
    /// fairness accounting and shard placement *before* a job runs; it
    /// never affects results, only ordering.
    #[must_use]
    pub fn cost_estimate(&self) -> u64 {
        let est = match self {
            JobKind::Spmv { a, x, .. } => a.nnz() + x.len(),
            JobKind::Sptrsv { t, b } => t.nnz() + b.len(),
            JobKind::Axpy { x, y, .. } => x.len() + y.len(),
            JobKind::Scal { x, .. } => x.len(),
            JobKind::Vv { x, y, .. } => x.len() + y.len(),
            JobKind::Dot { x, y } => x.len() + y.len(),
            JobKind::Norm2 { x } => x.len(),
        };
        est.max(1) as u64
    }
}

/// A tenant's request, ready for submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Submitting tenant (fairness accounting key).
    pub tenant: String,
    /// Deadline class.
    pub class: JobClass,
    /// Element precision for the kernels.
    pub precision: Precision,
    /// The operation.
    pub kind: JobKind,
    /// Simulated arrival time (seconds on the service clock). Closed
    /// batches leave it at 0.0; open-arrival traces stamp each job so the
    /// executor charges queue wait from arrival, not from batch start.
    pub arrival_s: f64,
}

impl JobSpec {
    /// A batch-class FP64 job — the common case.
    #[must_use]
    pub fn batch(tenant: &str, kind: JobKind) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            class: JobClass::Batch,
            precision: Precision::Fp64,
            kind,
            arrival_s: 0.0,
        }
    }

    /// Same job in a different class.
    #[must_use]
    pub fn with_class(mut self, class: JobClass) -> Self {
        self.class = class;
        self
    }

    /// Same job arriving at a simulated instant (open-arrival traces).
    #[must_use]
    pub fn at(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s;
        self
    }
}

/// A submitted job: spec plus its queue identity.
#[derive(Debug, Clone)]
pub struct Job {
    /// Queue-assigned identifier (submission order).
    pub id: JobId,
    /// What to run.
    pub spec: JobSpec,
}

impl Job {
    /// The job's a priori cost estimate.
    #[must_use]
    pub fn cost_estimate(&self) -> u64 {
        self.spec.kind.cost_estimate()
    }
}

/// The numeric result a job produces.
#[derive(Debug, Clone, PartialEq)]
pub enum JobValue {
    /// Vector-valued kernels (SpMV, SpTRSV, AXPY, SCAL, VV).
    Vector(Vec<f64>),
    /// Scalar-valued kernels (DOT, NRM2).
    Scalar(f64),
}

impl JobValue {
    /// The vector, if this is a vector result.
    #[must_use]
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            JobValue::Vector(v) => Some(v),
            JobValue::Scalar(_) => None,
        }
    }

    /// The scalar, if this is a scalar result.
    #[must_use]
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            JobValue::Scalar(s) => Some(*s),
            JobValue::Vector(_) => None,
        }
    }
}

/// One resident operand with its LRU bookkeeping.
#[derive(Debug)]
struct StoreEntry<T> {
    value: Arc<T>,
    bytes: usize,
    /// Last-touch tick (monotone per store); smallest = least recent.
    touched: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    matrices: HashMap<String, StoreEntry<Coo>>,
    triangulars: HashMap<String, StoreEntry<UnitTriangular>>,
    resident_bytes: usize,
    tick: u64,
    evictions: u64,
}

impl StoreInner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evict least-recently-used operands (across both maps) until the
    /// resident set fits the budget. Entries still referenced elsewhere
    /// stay alive through their `Arc`s — eviction only drops the *cache's*
    /// reference, so in-flight jobs are never invalidated.
    fn evict_to(&mut self, budget: usize) {
        while self.resident_bytes > budget {
            let lru_m = self
                .matrices
                .iter()
                .min_by_key(|(n, e)| (e.touched, n.as_str()));
            let lru_t = self
                .triangulars
                .iter()
                .min_by_key(|(n, e)| (e.touched, n.as_str()));
            match (lru_m, lru_t) {
                (Some((nm, em)), Some((nt, et))) => {
                    if em.touched <= et.touched {
                        let name = nm.clone();
                        let e = self.matrices.remove(&name).expect("present");
                        self.resident_bytes -= e.bytes;
                    } else {
                        let name = nt.clone();
                        let e = self.triangulars.remove(&name).expect("present");
                        self.resident_bytes -= e.bytes;
                    }
                }
                (Some((nm, _)), None) => {
                    let name = nm.clone();
                    let e = self.matrices.remove(&name).expect("present");
                    self.resident_bytes -= e.bytes;
                }
                (None, Some((nt, _))) => {
                    let name = nt.clone();
                    let e = self.triangulars.remove(&name).expect("present");
                    self.resident_bytes -= e.bytes;
                }
                (None, None) => break,
            }
            self.evictions += 1;
        }
    }
}

/// Shared concurrent matrix registry: tenants register operands once and
/// submit many jobs against the returned handles. Interior mutability
/// (`&self` everywhere) lets producer threads register and look up
/// operands concurrently with the admission loop; a byte budget with LRU
/// eviction bounds the resident set for long-running services. Evicted
/// operands stay alive for jobs already holding their `Arc` — eviction
/// only governs what *future* lookups can find.
///
/// Synchronization goes through the [`psim_conc`] shim (label
/// `"sched.store"`), so the insert/evict paths are interleaving-explored
/// and lock-order checked by the `psim_model` gate.
#[derive(Debug)]
pub struct MatrixStore {
    inner: Mutex<StoreInner>,
    /// Resident-set budget in bytes (`usize::MAX` = unbounded).
    budget: usize,
}

/// Same as [`MatrixStore::new`]: unbounded. (A derived `Default` would
/// zero the byte budget and evict every operand on the next insert.)
impl Default for MatrixStore {
    fn default() -> Self {
        MatrixStore::new()
    }
}

impl MatrixStore {
    /// An unbounded store.
    #[must_use]
    pub fn new() -> Self {
        MatrixStore {
            inner: Mutex::labeled("sched.store", StoreInner::default()),
            budget: usize::MAX,
        }
    }

    /// A store that evicts least-recently-used operands once the resident
    /// set exceeds `budget` bytes. A single operand larger than the budget
    /// is admitted (and evicted on the next insert) — refusing it would
    /// deadlock the tenant, and the service still holds it only as long as
    /// jobs do.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        MatrixStore {
            inner: Mutex::labeled("sched.store", StoreInner::default()),
            budget: budget.max(1),
        }
    }

    /// Register a matrix under a name, returning its shared handle.
    pub fn insert(&self, name: &str, a: Coo) -> Arc<Coo> {
        let bytes = a.storage_bytes(Precision::Fp64);
        let arc = Arc::new(a);
        let mut inner = self.inner.lock();
        let touched = inner.touch();
        if let Some(old) = inner.matrices.insert(
            name.to_string(),
            StoreEntry {
                value: Arc::clone(&arc),
                bytes,
                touched,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        inner.evict_to(self.budget);
        arc
    }

    /// Register a triangular factor under a name.
    pub fn insert_triangular(&self, name: &str, t: UnitTriangular) -> Arc<UnitTriangular> {
        // Strict part in COO-equivalent storage plus the unit diagonal.
        let bytes = t.nnz() * 16 + t.dim() * 8;
        let arc = Arc::new(t);
        let mut inner = self.inner.lock();
        let touched = inner.touch();
        if let Some(old) = inner.triangulars.insert(
            name.to_string(),
            StoreEntry {
                value: Arc::clone(&arc),
                bytes,
                touched,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        inner.evict_to(self.budget);
        arc
    }

    /// Look up a registered matrix (refreshes its LRU position).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Coo>> {
        let mut inner = self.inner.lock();
        let touched = inner.touch();
        let entry = inner.matrices.get_mut(name)?;
        entry.touched = touched;
        Some(Arc::clone(&entry.value))
    }

    /// Look up a registered triangular factor (refreshes its LRU
    /// position).
    #[must_use]
    pub fn get_triangular(&self, name: &str) -> Option<Arc<UnitTriangular>> {
        let mut inner = self.inner.lock();
        let touched = inner.touch();
        let entry = inner.triangulars.get_mut(name)?;
        entry.touched = touched;
        Some(Arc::clone(&entry.value))
    }

    /// Number of resident operands.
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.matrices.len() + inner.triangulars.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident_bytes
    }

    /// Operands evicted under the byte budget so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Check the store's accounting invariants in one atomic snapshot:
    /// `resident_bytes` equals the sum of resident entry sizes, the
    /// resident set fits the budget whenever eviction could have run,
    /// and no entry's LRU stamp is ahead of the clock. The model-check
    /// scenarios call this after every explored interleaving — a lost
    /// update under concurrent insert/evict shows up here as a byte
    /// mismatch rather than as a silent leak.
    ///
    /// # Panics
    ///
    /// Panics (with the broken invariant) when the accounting is
    /// inconsistent.
    pub fn audit(&self) {
        let inner = self.inner.lock();
        let sum: usize = inner.matrices.values().map(|e| e.bytes).sum::<usize>()
            + inner.triangulars.values().map(|e| e.bytes).sum::<usize>();
        assert_eq!(
            inner.resident_bytes, sum,
            "resident_bytes out of sync with entry sizes"
        );
        let max_one = inner
            .matrices
            .values()
            .map(|e| e.bytes)
            .chain(inner.triangulars.values().map(|e| e.bytes))
            .max()
            .unwrap_or(0);
        assert!(
            inner.resident_bytes <= self.budget.max(max_one),
            "resident set exceeds budget beyond the single-oversized-operand allowance"
        );
        let ahead = inner
            .matrices
            .values()
            .map(|e| e.touched)
            .chain(inner.triangulars.values().map(|e| e.touched))
            .all(|t| t <= inner.tick);
        assert!(ahead, "an LRU stamp is ahead of the store clock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::gen;

    #[test]
    fn cost_estimates_scale_with_work() {
        let small = Arc::new(gen::rmat(16, 2, 1));
        let large = Arc::new(gen::rmat(256, 8, 1));
        let x_small = vec![1.0; 16];
        let x_large = vec![1.0; 256];
        let c_small = JobKind::spmv(Arc::clone(&small), x_small).cost_estimate();
        let c_large = JobKind::spmv(Arc::clone(&large), x_large).cost_estimate();
        assert!(c_large > c_small);
        assert!(JobKind::Norm2 { x: vec![] }.cost_estimate() >= 1);
    }

    #[test]
    fn default_store_is_unbounded_like_new() {
        // Regression: the derived Default used to leave budget = 0, so a
        // default-constructed store evicted everything on every insert.
        let store = MatrixStore::default();
        store.insert("a", gen::rmat(32, 2, 7));
        store.insert("b", gen::rmat(32, 2, 8));
        assert!(store.get("a").is_some());
        assert!(store.get("b").is_some());
        assert_eq!(store.evictions(), 0);
        store.audit();
    }

    #[test]
    fn store_shares_matrices() {
        let store = MatrixStore::new();
        let a = store.insert("web", gen::rmat(32, 2, 7));
        let b = store.get("web").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(store.get("absent").is_none());
        assert_eq!(store.len(), 1);
        assert!(store.resident_bytes() > 0);
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn store_evicts_lru_under_byte_budget() {
        let small = gen::rmat(32, 2, 7);
        let per = small.storage_bytes(psim_sparse::Precision::Fp64);
        // Room for roughly two matrices of this size.
        let store = MatrixStore::with_budget(per * 2 + per / 2);
        let a = store.insert("a", small.clone());
        store.insert("b", gen::rmat(32, 2, 8));
        // Touch "a" so "b" becomes the LRU victim when "c" arrives.
        assert!(store.get("a").is_some());
        store.insert("c", gen::rmat(32, 2, 9));
        assert!(store.get("b").is_none(), "LRU entry must be evicted");
        assert!(store.get("a").is_some());
        assert!(store.get("c").is_some());
        assert_eq!(store.evictions(), 1);
        assert!(store.resident_bytes() <= per * 2 + per / 2);
        // The evicted-era handle we still hold remains fully usable.
        assert_eq!(a.nnz(), small.nnz());
    }

    #[test]
    fn store_is_usable_from_concurrent_producers() {
        let store = MatrixStore::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..8 {
                        store.insert(&format!("m{t}-{i}"), gen::rmat(16, 2, t * 100 + i));
                        assert!(store.get(&format!("m{t}-{i}")).is_some());
                    }
                });
            }
        });
        assert_eq!(store.len(), 32);
    }

    #[test]
    fn arrival_stamp_travels_with_the_spec() {
        let spec = JobSpec::batch("t", JobKind::Norm2 { x: vec![1.0] }).at(2.5e-3);
        assert_eq!(spec.arrival_s, 2.5e-3);
        assert_eq!(
            JobSpec::batch("t", JobKind::Norm2 { x: vec![] }).arrival_s,
            0.0
        );
    }

    #[test]
    fn class_priority_order() {
        assert!(JobClass::Interactive < JobClass::Batch);
        assert!(JobClass::Batch < JobClass::BestEffort);
        assert_eq!(JobClass::ALL[0], JobClass::Interactive);
    }
}
