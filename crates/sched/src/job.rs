//! Job descriptions: what a tenant asks the device to do.
//!
//! A [`JobSpec`] names the tenant, a deadline [`JobClass`], the element
//! [`Precision`] and the requested operation ([`JobKind`]). Matrices are
//! held behind [`std::sync::Arc`] (see [`MatrixStore`]) so many queued jobs
//! can reference the same operand without cloning megabytes per job.

use std::collections::HashMap;
use std::sync::Arc;

use psim_sparse::triangular::UnitTriangular;
use psim_sparse::{Coo, Precision};
use psyncpim_core::isa::BinaryOp;
use serde::{Deserialize, Serialize};

/// Monotonically increasing job identifier (assigned at submission).
pub type JobId = u64;

/// Deadline class, in strictly decreasing scheduling priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Latency-sensitive: always served before lower classes.
    Interactive,
    /// Default throughput class.
    Batch,
    /// Served only when nothing else is waiting.
    BestEffort,
}

impl JobClass {
    /// All classes in scheduling-priority order.
    pub const ALL: [JobClass; 3] = [JobClass::Interactive, JobClass::Batch, JobClass::BestEffort];

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Batch => "batch",
            JobClass::BestEffort => "best-effort",
        }
    }
}

/// The requested operation.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// `y = A x` over an arbitrary `(mul, acc)` semiring; arithmetic SpMV
    /// uses `(Mul, Add)`.
    Spmv {
        /// The matrix.
        a: Arc<Coo>,
        /// The dense operand.
        x: Vec<f64>,
        /// Semiring multiply.
        mul: BinaryOp,
        /// Semiring accumulate.
        acc: BinaryOp,
    },
    /// Solve `T x = b` for unit triangular `T`.
    Sptrsv {
        /// The triangular factor.
        t: Arc<UnitTriangular>,
        /// Right-hand side.
        b: Vec<f64>,
    },
    /// `y <- alpha x + y`.
    Axpy {
        /// Scale factor.
        alpha: f64,
        /// Scaled operand.
        x: Vec<f64>,
        /// Accumulated operand.
        y: Vec<f64>,
    },
    /// `x <- alpha x`.
    Scal {
        /// Scale factor.
        alpha: f64,
        /// The vector.
        x: Vec<f64>,
    },
    /// Element-wise `z = x (op) y`.
    Vv {
        /// Left operand.
        x: Vec<f64>,
        /// Right operand.
        y: Vec<f64>,
        /// The element-wise operator.
        op: BinaryOp,
    },
    /// Dot product.
    Dot {
        /// Left operand.
        x: Vec<f64>,
        /// Right operand.
        y: Vec<f64>,
    },
    /// Euclidean norm.
    Norm2 {
        /// The vector.
        x: Vec<f64>,
    },
}

impl JobKind {
    /// Arithmetic SpMV (`mul = Mul`, `acc = Add`).
    #[must_use]
    pub fn spmv(a: Arc<Coo>, x: Vec<f64>) -> Self {
        JobKind::Spmv {
            a,
            x,
            mul: BinaryOp::Mul,
            acc: BinaryOp::Add,
        }
    }

    /// Short kernel-family label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Spmv { .. } => "spmv",
            JobKind::Sptrsv { .. } => "sptrsv",
            JobKind::Axpy { .. } => "axpy",
            JobKind::Scal { .. } => "scal",
            JobKind::Vv { .. } => "vv",
            JobKind::Dot { .. } => "dot",
            JobKind::Norm2 { .. } => "norm2",
        }
    }

    /// A priori work estimate in abstract units (nonzeros for sparse
    /// kernels, elements for dense ones). The scheduler uses this for
    /// fairness accounting and shard placement *before* a job runs; it
    /// never affects results, only ordering.
    #[must_use]
    pub fn cost_estimate(&self) -> u64 {
        let est = match self {
            JobKind::Spmv { a, x, .. } => a.nnz() + x.len(),
            JobKind::Sptrsv { t, b } => t.nnz() + b.len(),
            JobKind::Axpy { x, y, .. } => x.len() + y.len(),
            JobKind::Scal { x, .. } => x.len(),
            JobKind::Vv { x, y, .. } => x.len() + y.len(),
            JobKind::Dot { x, y } => x.len() + y.len(),
            JobKind::Norm2 { x } => x.len(),
        };
        est.max(1) as u64
    }
}

/// A tenant's request, ready for submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Submitting tenant (fairness accounting key).
    pub tenant: String,
    /// Deadline class.
    pub class: JobClass,
    /// Element precision for the kernels.
    pub precision: Precision,
    /// The operation.
    pub kind: JobKind,
}

impl JobSpec {
    /// A batch-class FP64 job — the common case.
    #[must_use]
    pub fn batch(tenant: &str, kind: JobKind) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            class: JobClass::Batch,
            precision: Precision::Fp64,
            kind,
        }
    }

    /// Same job in a different class.
    #[must_use]
    pub fn with_class(mut self, class: JobClass) -> Self {
        self.class = class;
        self
    }
}

/// A submitted job: spec plus its queue identity.
#[derive(Debug, Clone)]
pub struct Job {
    /// Queue-assigned identifier (submission order).
    pub id: JobId,
    /// What to run.
    pub spec: JobSpec,
}

impl Job {
    /// The job's a priori cost estimate.
    #[must_use]
    pub fn cost_estimate(&self) -> u64 {
        self.spec.kind.cost_estimate()
    }
}

/// The numeric result a job produces.
#[derive(Debug, Clone, PartialEq)]
pub enum JobValue {
    /// Vector-valued kernels (SpMV, SpTRSV, AXPY, SCAL, VV).
    Vector(Vec<f64>),
    /// Scalar-valued kernels (DOT, NRM2).
    Scalar(f64),
}

impl JobValue {
    /// The vector, if this is a vector result.
    #[must_use]
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            JobValue::Vector(v) => Some(v),
            JobValue::Scalar(_) => None,
        }
    }

    /// The scalar, if this is a scalar result.
    #[must_use]
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            JobValue::Scalar(s) => Some(*s),
            JobValue::Vector(_) => None,
        }
    }
}

/// Shared matrix registry: tenants register operands once and submit many
/// jobs against the returned handles.
#[derive(Debug, Clone, Default)]
pub struct MatrixStore {
    matrices: HashMap<String, Arc<Coo>>,
    triangulars: HashMap<String, Arc<UnitTriangular>>,
}

impl MatrixStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a matrix under a name, returning its shared handle.
    pub fn insert(&mut self, name: &str, a: Coo) -> Arc<Coo> {
        let arc = Arc::new(a);
        self.matrices.insert(name.to_string(), Arc::clone(&arc));
        arc
    }

    /// Register a triangular factor under a name.
    pub fn insert_triangular(&mut self, name: &str, t: UnitTriangular) -> Arc<UnitTriangular> {
        let arc = Arc::new(t);
        self.triangulars.insert(name.to_string(), Arc::clone(&arc));
        arc
    }

    /// Look up a registered matrix.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Coo>> {
        self.matrices.get(name).cloned()
    }

    /// Look up a registered triangular factor.
    #[must_use]
    pub fn get_triangular(&self, name: &str) -> Option<Arc<UnitTriangular>> {
        self.triangulars.get(name).cloned()
    }

    /// Number of registered operands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.matrices.len() + self.triangulars.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty() && self.triangulars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::gen;

    #[test]
    fn cost_estimates_scale_with_work() {
        let small = Arc::new(gen::rmat(16, 2, 1));
        let large = Arc::new(gen::rmat(256, 8, 1));
        let x_small = vec![1.0; 16];
        let x_large = vec![1.0; 256];
        let c_small = JobKind::spmv(Arc::clone(&small), x_small).cost_estimate();
        let c_large = JobKind::spmv(Arc::clone(&large), x_large).cost_estimate();
        assert!(c_large > c_small);
        assert!(JobKind::Norm2 { x: vec![] }.cost_estimate() >= 1);
    }

    #[test]
    fn store_shares_matrices() {
        let mut store = MatrixStore::new();
        let a = store.insert("web", gen::rmat(32, 2, 7));
        let b = store.get("web").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(store.get("absent").is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn class_priority_order() {
        assert!(JobClass::Interactive < JobClass::Batch);
        assert!(JobClass::Batch < JobClass::BestEffort);
        assert_eq!(JobClass::ALL[0], JobClass::Interactive);
    }
}
