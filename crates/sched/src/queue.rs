//! Bounded multi-tenant job queue with fair drain ordering.
//!
//! The queue is MPMC: any number of submitter threads block on
//! [`JobQueue::submit`] when the queue is full (backpressure instead of
//! unbounded memory growth), and any number of workers call
//! [`JobQueue::pop`] / [`JobQueue::pop_wait`].
//!
//! Drain order implements the scheduling policy:
//!
//! 1. **Strict class priority** — every queued [`JobClass::Interactive`]
//!    job is served before any [`JobClass::Batch`] job, which is served
//!    before any [`JobClass::BestEffort`] job.
//! 2. **Least-attained-service across tenants** — within a class, the next
//!    job comes from the tenant with the smallest accumulated served cost
//!    (a priori [`JobKind::cost_estimate`] units, ties broken by tenant
//!    name). A tenant that just ran a huge matrix therefore waits while
//!    tenants with small jobs catch up — one tenant cannot starve the
//!    others.
//! 3. **FIFO within a tenant** — a tenant's own jobs run in submission
//!    order.
//!
//! Given the same set of queued jobs, the drain order is a pure function
//! of specs and submission order — never of thread timing — which is what
//! lets the sharded executor promise bit-identical parallel results.
//!
//! Synchronization goes through the [`psim_conc`] shim: in production it
//! is `std::sync` with poisoning recovered (a panicked worker must not
//! cascade `Err(Poisoned)` into every submitter — all queue invariants
//! are re-established under the lock, and every wait re-checks its
//! predicate in a loop), while under `PSIM_SYNC=instrument` or the
//! `psim_conc::model` explorer the same code paths are lock-order
//! checked and interleaving-explored (see the `psim_model` gate).
//! Wakeups are signalled *after* the lock is released: correctness never
//! depends on it (waiters re-check predicates), it just spares the woken
//! thread an immediate block on the still-held mutex.

use std::collections::{BTreeMap, VecDeque};

use psim_conc::{Condvar, Mutex};

#[allow(unused_imports)] // doc link
use crate::job::JobKind;
use crate::job::{Job, JobClass, JobId, JobSpec};

/// Submission failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only from [`JobQueue::try_submit`]).
    Full,
    /// The queue was closed; no further jobs are accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "job queue is full"),
            SubmitError::Closed => write!(f, "job queue is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug, Default)]
struct TenantState {
    /// Per-class FIFO of this tenant's pending jobs.
    pending: [VecDeque<Job>; 3],
    /// Cost units this tenant has been served so far (fairness key).
    served_cost: u64,
}

#[derive(Debug)]
struct Inner {
    tenants: BTreeMap<String, TenantState>,
    len: usize,
    capacity: usize,
    next_id: JobId,
    closed: bool,
}

/// The bounded multi-tenant queue.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl JobQueue {
    /// A queue holding at most `capacity` pending jobs.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::labeled(
                "sched.queue",
                Inner {
                    tenants: BTreeMap::new(),
                    len: 0,
                    capacity: capacity.max(1),
                    next_id: 0,
                    closed: false,
                },
            ),
            not_full: Condvar::labeled("sched.queue.not_full"),
            not_empty: Condvar::labeled("sched.queue.not_empty"),
        }
    }

    /// Submit a job, blocking while the queue is full. Returns the
    /// assigned id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] if the queue has been closed.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let mut inner = self.inner.lock();
        loop {
            if inner.closed {
                return Err(SubmitError::Closed);
            }
            if inner.len < inner.capacity {
                break;
            }
            inner = self.not_full.wait(inner);
        }
        let id = Self::enqueue(&mut inner, spec);
        drop(inner);
        self.not_empty.notify_one();
        Ok(id)
    }

    /// Submit without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when at capacity, [`SubmitError::Closed`]
    /// after [`JobQueue::close`].
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.len >= inner.capacity {
            return Err(SubmitError::Full);
        }
        let id = Self::enqueue(&mut inner, spec);
        drop(inner);
        self.not_empty.notify_one();
        Ok(id)
    }

    fn enqueue(inner: &mut Inner, spec: JobSpec) -> JobId {
        let id = inner.next_id;
        inner.next_id += 1;
        let class_idx = spec.class as usize;
        let tenant = inner.tenants.entry(spec.tenant.clone()).or_default();
        tenant.pending[class_idx].push_back(Job { id, spec });
        inner.len += 1;
        id
    }

    /// Close the queue: submissions fail from now on, pops drain what is
    /// left.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Take the next job per the fairness policy, or `None` if nothing is
    /// pending.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock();
        let job = Self::pick(&mut inner);
        drop(inner);
        if job.is_some() {
            self.not_full.notify_one();
        }
        job
    }

    /// Take the next job, blocking until one is available. Returns `None`
    /// only when the queue is closed *and* drained.
    pub fn pop_wait(&self) -> Option<Job> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = Self::pick(&mut inner) {
                drop(inner);
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner);
        }
    }

    /// Take up to `max` jobs in fairness order, blocking until at least
    /// one is available. Returns an empty vector only when the queue is
    /// closed *and* drained. This is the service admission primitive: one
    /// wakeup admits a whole window (the executor's fusion stage scans
    /// it for same-matrix SpMV runs), instead of paying a lock round-trip
    /// per job.
    #[must_use]
    pub fn pop_wait_batch(&self, max: usize) -> Vec<Job> {
        let mut inner = self.inner.lock();
        loop {
            if inner.len > 0 {
                break;
            }
            if inner.closed {
                return Vec::new();
            }
            inner = self.not_empty.wait(inner);
        }
        let take = max.max(1).min(inner.len);
        let mut jobs = Vec::with_capacity(take);
        while jobs.len() < take {
            jobs.push(Self::pick(&mut inner).expect("len > 0"));
        }
        drop(inner);
        self.not_full.notify_all();
        jobs
    }

    /// Drain every pending job in fairness order (the batch the sharded
    /// executor plans over).
    #[must_use]
    pub fn drain(&self) -> Vec<Job> {
        let mut inner = self.inner.lock();
        let mut jobs = Vec::with_capacity(inner.len);
        while let Some(job) = Self::pick(&mut inner) {
            jobs.push(job);
        }
        drop(inner);
        self.not_full.notify_all();
        jobs
    }

    /// The fairness policy: highest non-empty class; within it, the tenant
    /// with least attained service (ties by name); within the tenant,
    /// FIFO.
    fn pick(inner: &mut Inner) -> Option<Job> {
        for class in JobClass::ALL {
            let class_idx = class as usize;
            let winner = inner
                .tenants
                .iter()
                .filter(|(_, t)| !t.pending[class_idx].is_empty())
                .min_by_key(|(name, t)| (t.served_cost, name.as_str().to_owned()))
                .map(|(name, _)| name.clone());
            if let Some(name) = winner {
                let tenant = inner.tenants.get_mut(&name).expect("winner exists");
                let job = tenant.pending[class_idx].pop_front().expect("non-empty");
                tenant.served_cost += job.cost_estimate();
                inner.len -= 1;
                return Some(job);
            }
        }
        None
    }

    /// Pending jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// Whether nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum pending jobs before submitters block.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use std::sync::Arc;

    fn vec_job(tenant: &str, n: usize) -> JobSpec {
        JobSpec::batch(
            tenant,
            JobKind::Scal {
                alpha: 2.0,
                x: vec![1.0; n],
            },
        )
    }

    #[test]
    fn fifo_within_single_tenant() {
        let q = JobQueue::bounded(16);
        let a = q.submit(vec_job("t0", 8)).unwrap();
        let b = q.submit(vec_job("t0", 8)).unwrap();
        assert_eq!(q.pop().unwrap().id, a);
        assert_eq!(q.pop().unwrap().id, b);
        assert!(q.pop().is_none());
    }

    #[test]
    fn class_priority_beats_submission_order() {
        let q = JobQueue::bounded(16);
        let _batch = q.submit(vec_job("t0", 8)).unwrap();
        let urgent = q
            .submit(vec_job("t0", 8).with_class(JobClass::Interactive))
            .unwrap();
        let _idle = q
            .submit(vec_job("t0", 8).with_class(JobClass::BestEffort))
            .unwrap();
        assert_eq!(q.pop().unwrap().id, urgent);
        assert_eq!(q.pop().unwrap().spec.class, JobClass::Batch);
        assert_eq!(q.pop().unwrap().spec.class, JobClass::BestEffort);
    }

    #[test]
    fn large_tenant_cannot_starve_small_jobs() {
        let q = JobQueue::bounded(64);
        // "whale" queues five huge jobs before "minnow" queues four tiny
        // ones; least-attained-service must still interleave them.
        for _ in 0..5 {
            q.submit(vec_job("whale", 100_000)).unwrap();
        }
        for _ in 0..4 {
            q.submit(vec_job("minnow", 16)).unwrap();
        }
        let order: Vec<String> = q.drain().into_iter().map(|j| j.spec.tenant).collect();
        // One whale job charges 100k service units, so every minnow job
        // must drain before the whale's *second* job.
        let second_whale = order
            .iter()
            .enumerate()
            .filter(|(_, t)| *t == "whale")
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        let last_minnow = order.iter().rposition(|t| t == "minnow").unwrap();
        assert!(
            last_minnow < second_whale,
            "minnow starved: order {order:?}"
        );
    }

    #[test]
    fn try_submit_backpressure_and_close() {
        let q = JobQueue::bounded(2);
        q.try_submit(vec_job("t", 4)).unwrap();
        q.try_submit(vec_job("t", 4)).unwrap();
        assert_eq!(q.try_submit(vec_job("t", 4)), Err(SubmitError::Full));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_submit(vec_job("t", 4)), Err(SubmitError::Closed));
        // Draining still works after close.
        assert!(q.pop_wait().is_some());
        assert!(q.pop_wait().is_some());
        assert!(q.pop_wait().is_none());
    }

    #[test]
    fn blocking_submit_resumes_after_pop() {
        let q = Arc::new(JobQueue::bounded(1));
        q.submit(vec_job("t", 4)).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.submit(vec_job("t", 8)).unwrap());
        // The producer blocks until this pop frees a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(q.pop().is_some());
        let id = producer.join().unwrap();
        assert_eq!(q.pop().unwrap().id, id);
    }

    #[test]
    fn pop_wait_batch_takes_a_fair_window() {
        let q = JobQueue::bounded(16);
        for n in [8, 16, 32, 64] {
            q.submit(vec_job("t0", n)).unwrap();
        }
        let urgent = q
            .submit(vec_job("t1", 8).with_class(JobClass::Interactive))
            .unwrap();
        let batch = q.pop_wait_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].id, urgent, "class priority leads the window");
        assert_eq!(q.len(), 2);
        // Asking for more than is pending returns what's there.
        assert_eq!(q.pop_wait_batch(10).len(), 2);
        // Closed and drained: empty without blocking.
        q.close();
        assert!(q.pop_wait_batch(4).is_empty());
    }

    #[test]
    fn drain_order_is_reproducible() {
        let build = || {
            let q = JobQueue::bounded(64);
            for (tenant, n) in [("a", 100), ("b", 10), ("a", 5), ("c", 50), ("b", 200)] {
                q.submit(vec_job(tenant, n)).unwrap();
            }
            q.drain().into_iter().map(|j| j.id).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
