//! Execution-mode switching (paper Figure 1).
//!
//! HBM-PIM interoperates between three modes:
//!
//! * **SB** (single-bank): ordinary DRAM, host memory requests;
//! * **AB** (all-bank): one command drives all banks; the host programs PIM
//!   kernels into the control registers in this mode;
//! * **AB-PIM**: every column command additionally steps the programmed
//!   kernel in every processing unit.
//!
//! Switches are performed with JEDEC-compatible MRS-like command sequences.
//! The exact sequences are not published; we model each transition as a
//! fixed run of [`SWITCH_SEQUENCE_LEN`] MRS commands (a conservative cost
//! that the kernel-time measurements include, matching §VII-A: "the kernel
//! execution time of pSyncPIM includes mode switching and PIM kernel
//! programming overheads").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Commands per mode transition (modeling assumption, see module docs).
pub const SWITCH_SEQUENCE_LEN: usize = 8;

/// Execution mode of a pseudo-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Single-bank: normal DRAM operation.
    Sb,
    /// All-bank: broadcast commands, kernel programming allowed.
    Ab,
    /// All-bank PIM: column commands execute kernel instructions.
    AbPim,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Sb => "SB",
            Mode::Ab => "AB",
            Mode::AbPim => "AB-PIM",
        })
    }
}

/// Error for disallowed mode transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeError {
    /// Mode before the attempted switch.
    pub from: Mode,
    /// Requested mode.
    pub to: Mode,
}

impl fmt::Display for ModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal mode switch {} -> {}", self.from, self.to)
    }
}

impl std::error::Error for ModeError {}

/// Tracks the current mode and the switching cost incurred.
///
/// Legal transitions follow Figure 1's state machine:
/// `SB ↔ AB ↔ AB-PIM` (no direct SB ↔ AB-PIM edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeController {
    mode: Mode,
    switches: u64,
    switch_commands: u64,
}

impl Default for ModeController {
    fn default() -> Self {
        ModeController::new()
    }
}

impl ModeController {
    /// Start in SB mode (power-on state).
    #[must_use]
    pub fn new() -> Self {
        ModeController {
            mode: Mode::Sb,
            switches: 0,
            switch_commands: 0,
        }
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of transitions performed.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Total MRS commands spent on switching.
    #[must_use]
    pub fn switch_commands(&self) -> u64 {
        self.switch_commands
    }

    /// Attempt a transition; returns the number of MRS commands the host
    /// must issue (0 when already in the target mode).
    ///
    /// # Errors
    ///
    /// [`ModeError`] when the edge does not exist in Figure 1's state
    /// machine (SB ↔ AB-PIM directly).
    pub fn switch_to(&mut self, to: Mode) -> Result<usize, ModeError> {
        if self.mode == to {
            return Ok(0);
        }
        let legal = matches!(
            (self.mode, to),
            (Mode::Sb, Mode::Ab)
                | (Mode::Ab, Mode::Sb)
                | (Mode::Ab, Mode::AbPim)
                | (Mode::AbPim, Mode::Ab)
        );
        if !legal {
            return Err(ModeError {
                from: self.mode,
                to,
            });
        }
        self.mode = to;
        self.switches += 1;
        self.switch_commands += SWITCH_SEQUENCE_LEN as u64;
        Ok(SWITCH_SEQUENCE_LEN)
    }

    /// Route to a target mode through the legal chain, returning the total
    /// MRS commands (e.g. SB → AB-PIM costs two transitions).
    pub fn route_to(&mut self, to: Mode) -> usize {
        let mut cost = 0;
        while self.mode != to {
            let next = match (self.mode, to) {
                (Mode::Sb, _) => Mode::Ab,
                (Mode::Ab, Mode::Sb) => Mode::Sb,
                (Mode::Ab, _) => Mode::AbPim,
                (Mode::AbPim, _) => Mode::Ab,
            };
            cost += self.switch_to(next).expect("chain transitions are legal");
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_sb() {
        assert_eq!(ModeController::new().mode(), Mode::Sb);
    }

    #[test]
    fn legal_chain() {
        let mut m = ModeController::new();
        assert_eq!(m.switch_to(Mode::Ab).unwrap(), SWITCH_SEQUENCE_LEN);
        assert_eq!(m.switch_to(Mode::AbPim).unwrap(), SWITCH_SEQUENCE_LEN);
        assert_eq!(m.switch_to(Mode::Ab).unwrap(), SWITCH_SEQUENCE_LEN);
        assert_eq!(m.switch_to(Mode::Sb).unwrap(), SWITCH_SEQUENCE_LEN);
        assert_eq!(m.switches(), 4);
        assert_eq!(m.switch_commands(), 4 * SWITCH_SEQUENCE_LEN as u64);
    }

    #[test]
    fn direct_sb_abpim_is_illegal() {
        let mut m = ModeController::new();
        assert!(m.switch_to(Mode::AbPim).is_err());
        m.switch_to(Mode::Ab).unwrap();
        m.switch_to(Mode::AbPim).unwrap();
        assert!(m.switch_to(Mode::Sb).is_err());
    }

    #[test]
    fn same_mode_is_free() {
        let mut m = ModeController::new();
        assert_eq!(m.switch_to(Mode::Sb).unwrap(), 0);
        assert_eq!(m.switches(), 0);
    }

    #[test]
    fn route_chains_transitions() {
        let mut m = ModeController::new();
        let cost = m.route_to(Mode::AbPim);
        assert_eq!(cost, 2 * SWITCH_SEQUENCE_LEN);
        assert_eq!(m.mode(), Mode::AbPim);
        let back = m.route_to(Mode::Sb);
        assert_eq!(back, 2 * SWITCH_SEQUENCE_LEN);
    }
}
