//! Pseudo-channel command scheduler.
//!
//! A channel owns 16 banks (4 groups × 4). It enforces:
//!
//! * per-bank state/timing (delegated to [`Bank`]),
//! * inter-bank column spacing: tCCD_L within a bank group, tCCD_S across
//!   groups,
//! * activation pacing for per-bank commands: tRRD_L/tRRD_S and the
//!   four-activation window tFAW,
//! * the command-bus limit: at most two commands per clock per channel
//!   (the bottleneck that penalizes per-bank PIM execution, paper §III-B),
//! * all-bank scope: one command applies to every bank simultaneously.
//!   All-bank ACT is modeled as a single super-activation exempt from
//!   tRRD/tFAW (the HBM-PIM execution model; energy still scales with the
//!   number of banks opened).

use crate::bank::Bank;
use crate::command::{CmdKind, Scope};
use crate::config::HbmConfig;
use crate::stats::ChannelStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of successfully issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Issued {
    /// The cycle the command went onto the bus.
    pub issue_cycle: u64,
    /// For column commands, the cycle the data burst completes (read data
    /// valid at the PU / write restored enough for consumers).
    pub data_cycle: u64,
}

/// Error returned when a command cannot issue as requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueError {
    /// Issue requested before the earliest legal cycle.
    TooEarly {
        /// Requested cycle.
        requested: u64,
        /// Earliest legal cycle.
        earliest: u64,
    },
    /// The command is illegal in the current bank state (e.g. RD on an idle
    /// bank, mismatched open rows under all-bank scope).
    IllegalState(String),
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::TooEarly {
                requested,
                earliest,
            } => write!(
                f,
                "issue at {requested} precedes earliest legal cycle {earliest}"
            ),
            IssueError::IllegalState(msg) => write!(f, "illegal command: {msg}"),
        }
    }
}

impl std::error::Error for IssueError {}

/// One pseudo-channel: banks plus channel-level scheduling state.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: HbmConfig,
    banks: Vec<Bank>, // indexed bg * banks_per_group + ba
    /// Bus occupancy: the latest cycle that carried a command and how many
    /// commands it carried. Issue is monotonic (nothing may issue before
    /// `bus_cycle`), so one `(cycle, count)` pair models the 2-slot bus
    /// exactly — the old two-slot array forgot older cycles and let 3+
    /// commands share a slot under out-of-order probing.
    bus_cycle: i64,
    bus_count: u8,
    /// Last column-command issue per bank group (for tCCD_L) and channel
    /// wide (for tCCD_S).
    last_col_group: Vec<i64>,
    last_col_any: i64,
    /// Last per-bank ACT per group / channel (tRRD) and the last four ACT
    /// times (tFAW).
    last_act_group: Vec<i64>,
    last_act_any: i64,
    act_window: [i64; 4],
    stats: ChannelStats,
}

const NEVER: i64 = i64::MIN / 4;

impl Channel {
    /// A fresh channel for the given configuration.
    #[must_use]
    pub fn new(cfg: &HbmConfig) -> Self {
        Channel {
            cfg: cfg.clone(),
            banks: (0..cfg.banks_per_channel()).map(|_| Bank::new()).collect(),
            bus_cycle: NEVER,
            bus_count: 0,
            last_col_group: vec![NEVER; cfg.num_bankgroups],
            last_col_any: NEVER,
            last_act_group: vec![NEVER; cfg.num_bankgroups],
            last_act_any: NEVER,
            act_window: [NEVER; 4],
            stats: ChannelStats::default(),
        }
    }

    /// The configuration this channel was built with.
    #[must_use]
    pub fn config(&self) -> &HbmConfig {
        &self.cfg
    }

    /// Borrow a bank.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    #[must_use]
    pub fn bank(&self, bg: usize, ba: usize) -> &Bank {
        &self.banks[bg * self.cfg.banks_per_group + ba]
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Earliest cycle (≥ `from`) at which `cmd` with `scope` may issue.
    ///
    /// Illegal state (e.g. reading an idle bank) saturates to `u64::MAX`;
    /// callers that may be in an illegal state should use [`Channel::issue`]
    /// and handle the error.
    #[must_use]
    pub fn earliest(&self, scope: Scope, cmd: CmdKind, from: u64) -> u64 {
        self.earliest_inner(scope, cmd, from as i64)
            .map_or(u64::MAX, |e| e.max(0) as u64)
    }

    fn earliest_inner(&self, scope: Scope, cmd: CmdKind, from: i64) -> Option<i64> {
        let t = &self.cfg.timing;
        let mut e = from;

        // Bus: at most 2 commands on the same cycle. The bus is monotonic —
        // a candidate cycle behind `bus_cycle` is clamped forward, and after
        // bumping off a full cycle the new cycle is re-checked (the pre-fix
        // code bumped once without re-checking, so a stale candidate could
        // become the 3rd command on an already-full slot).
        let bus_free = |mut cyc: i64| -> i64 {
            loop {
                if cyc < self.bus_cycle {
                    cyc = self.bus_cycle;
                    continue;
                }
                if cyc == self.bus_cycle && self.bus_count >= 2 {
                    cyc += 1;
                    continue;
                }
                return cyc;
            }
        };

        // Bank-level earliest.
        for bi in self.bank_range(scope) {
            e = e.max(self.banks[bi].earliest(cmd, t)?);
        }

        // Channel-level constraints.
        match cmd {
            CmdKind::Act { .. } => {
                if let Scope::OneBank { bg, .. } = scope {
                    e = e.max(self.last_act_group[bg] + t.t_rrd_l as i64);
                    e = e.max(self.last_act_any + t.t_rrd_s as i64);
                    // tFAW: at most 4 activations in any tFAW window.
                    let oldest = self.act_window.iter().copied().min().unwrap_or(NEVER);
                    e = e.max(oldest + t.t_faw as i64);
                }
                // All-bank ACT: single broadcast, exempt from tRRD/tFAW.
            }
            CmdKind::Rd { .. } | CmdKind::Wr { .. } => match scope {
                Scope::OneBank { bg, .. } => {
                    e = e.max(self.last_col_group[bg] + t.t_ccd_l as i64);
                    e = e.max(self.last_col_any + t.t_ccd_s as i64);
                }
                Scope::AllBanks => {
                    // Broadcast columns pace at tCCD_L: every bank group's
                    // internal datapath is occupied.
                    e = e.max(self.last_col_any + t.t_ccd_l as i64);
                }
            },
            CmdKind::Pre | CmdKind::Ref | CmdKind::Mrs => {}
        }

        e = bus_free(e);
        Some(e)
    }

    /// The bank indices a scope addresses, as a range (all-bank scopes are
    /// contiguous, so no per-call index vector is needed).
    fn bank_range(&self, scope: Scope) -> std::ops::Range<usize> {
        match scope {
            Scope::OneBank { bg, ba } => {
                let i = bg * self.cfg.banks_per_group + ba;
                i..i + 1
            }
            Scope::AllBanks => 0..self.banks.len(),
        }
    }

    /// Apply `cmd` at `at` unconditionally: bank state, channel cursors,
    /// bus slots, stats. Callers must have established legality via
    /// [`Channel::earliest_inner`] first.
    fn apply_at(&mut self, scope: Scope, cmd: CmdKind, at: u64) -> Issued {
        let t = self.cfg.timing;
        let at_i = at as i64;
        let range = self.bank_range(scope);
        let nbanks = range.len();
        for bi in range {
            self.banks[bi].apply(cmd, at_i, &t);
        }

        match cmd {
            CmdKind::Act { .. } => {
                if let Scope::OneBank { bg, .. } = scope {
                    self.last_act_group[bg] = at_i;
                    self.last_act_any = at_i;
                    // Slide the tFAW window.
                    let oldest = self
                        .act_window
                        .iter_mut()
                        .min_by_key(|v| **v)
                        .expect("window non-empty");
                    *oldest = at_i;
                }
            }
            CmdKind::Rd { .. } | CmdKind::Wr { .. } => {
                if let Scope::OneBank { bg, .. } = scope {
                    self.last_col_group[bg] = at_i;
                }
                self.last_col_any = at_i;
            }
            _ => {}
        }

        // Bus slot bookkeeping: `earliest_inner` guarantees at_i is either
        // on the current (non-full) bus cycle or strictly after it.
        if at_i == self.bus_cycle {
            self.bus_count += 1;
        } else {
            debug_assert!(at_i > self.bus_cycle, "bus issue went backwards");
            self.bus_cycle = at_i;
            self.bus_count = 1;
        }

        self.stats.record(scope, cmd, nbanks);

        let data_cycle = match cmd {
            CmdKind::Rd { .. } => at + t.rl + 1,
            CmdKind::Wr { .. } => at + t.wl + 1,
            _ => at,
        };
        Issued {
            issue_cycle: at,
            data_cycle,
        }
    }

    /// Issue `cmd` at cycle `at`.
    ///
    /// # Errors
    ///
    /// [`IssueError::TooEarly`] if `at` precedes the earliest legal cycle,
    /// [`IssueError::IllegalState`] if the command cannot issue in the
    /// current bank state.
    pub fn issue(&mut self, scope: Scope, cmd: CmdKind, at: u64) -> Result<Issued, IssueError> {
        let earliest = self
            .earliest_inner(scope, cmd, 0)
            .ok_or_else(|| IssueError::IllegalState(format!("{cmd} with {scope}")))?
            .max(0) as u64;
        if at < earliest {
            return Err(IssueError::TooEarly {
                requested: at,
                earliest,
            });
        }
        Ok(self.apply_at(scope, cmd, at))
    }

    /// Convenience: issue at the earliest legal cycle ≥ `from`.
    ///
    /// # Errors
    ///
    /// [`IssueError::IllegalState`] if the command cannot issue at all.
    pub fn issue_earliest(
        &mut self,
        scope: Scope,
        cmd: CmdKind,
        from: u64,
    ) -> Result<Issued, IssueError> {
        let e = self.earliest(scope, cmd, from);
        if e == u64::MAX {
            return Err(IssueError::IllegalState(format!("{cmd} with {scope}")));
        }
        self.issue(scope, cmd, e)
    }

    /// Single-pass [`Channel::issue_earliest`]: one constraint evaluation,
    /// then commit. Produces identical results — `issue_earliest` computes
    /// `e = earliest(from) ≥ earliest(0)`, so the re-check inside `issue`
    /// never fires; this variant just skips it. The event-driven engine
    /// tier uses it on its per-bank hot path.
    ///
    /// # Errors
    ///
    /// [`IssueError::IllegalState`] if the command cannot issue at all.
    pub fn issue_earliest_fast(
        &mut self,
        scope: Scope,
        cmd: CmdKind,
        from: u64,
    ) -> Result<Issued, IssueError> {
        let e = self
            .earliest_inner(scope, cmd, from as i64)
            .ok_or_else(|| IssueError::IllegalState(format!("{cmd} with {scope}")))?
            .max(0) as u64;
        Ok(self.apply_at(scope, cmd, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Channel {
        Channel::new(&HbmConfig::default())
    }

    #[test]
    fn allbank_act_then_columns() {
        let mut c = ch();
        let a = c
            .issue_earliest(Scope::AllBanks, CmdKind::Act { row: 9 }, 0)
            .unwrap();
        assert_eq!(a.issue_cycle, 0);
        let r = c
            .issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 0 }, 0)
            .unwrap();
        assert_eq!(r.issue_cycle, c.config().timing.t_rcd);
        // All banks now have row 9 open.
        for bg in 0..4 {
            for ba in 0..4 {
                assert_eq!(c.bank(bg, ba).open_row(), Some(9));
            }
        }
    }

    #[test]
    fn allbank_columns_pace_at_tccd_l() {
        let mut c = ch();
        c.issue_earliest(Scope::AllBanks, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        let r1 = c
            .issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 0 }, 0)
            .unwrap();
        let r2 = c
            .issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 1 }, 0)
            .unwrap();
        assert_eq!(r2.issue_cycle - r1.issue_cycle, c.config().timing.t_ccd_l);
    }

    #[test]
    fn perbank_acts_respect_trrd_and_tfaw() {
        let mut c = ch();
        let t = c.config().timing;
        let mut cycles = Vec::new();
        // Activate 5 different bank groups' banks back to back.
        for i in 0..5 {
            let scope = Scope::OneBank {
                bg: i % 4,
                ba: i / 4,
            };
            let got = c.issue_earliest(scope, CmdKind::Act { row: 0 }, 0).unwrap();
            cycles.push(got.issue_cycle);
        }
        // Different groups: spaced at least tRRD_S.
        assert!(cycles[1] - cycles[0] >= t.t_rrd_s);
        // Fifth activation within the tFAW window of the first.
        assert!(cycles[4] >= cycles[0] + t.t_faw);
    }

    #[test]
    fn same_group_columns_pace_tccd_l_cross_group_tccd_s() {
        let mut c = ch();
        let t = c.config().timing;
        c.issue_earliest(Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        c.issue_earliest(Scope::OneBank { bg: 0, ba: 1 }, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        c.issue_earliest(Scope::OneBank { bg: 1, ba: 0 }, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        // Start well past every tRCD so only the CCD constraints bind.
        let r1 = c
            .issue_earliest(Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Rd { col: 0 }, 50)
            .unwrap();
        let r2 = c
            .issue_earliest(Scope::OneBank { bg: 1, ba: 0 }, CmdKind::Rd { col: 0 }, 0)
            .unwrap();
        assert_eq!(r2.issue_cycle - r1.issue_cycle, t.t_ccd_s);
        let r3 = c
            .issue_earliest(Scope::OneBank { bg: 0, ba: 1 }, CmdKind::Rd { col: 0 }, 0)
            .unwrap();
        assert!(r3.issue_cycle - r1.issue_cycle >= t.t_ccd_l);
    }

    #[test]
    fn too_early_is_rejected() {
        let mut c = ch();
        c.issue_earliest(Scope::AllBanks, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        let err = c
            .issue(Scope::AllBanks, CmdKind::Rd { col: 0 }, 1)
            .unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { .. }));
    }

    #[test]
    fn illegal_state_is_reported() {
        let mut c = ch();
        let err = c
            .issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 0 }, 0)
            .unwrap_err();
        assert!(matches!(err, IssueError::IllegalState(_)));
    }

    #[test]
    fn read_data_arrives_after_rl() {
        let mut c = ch();
        c.issue_earliest(Scope::AllBanks, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        let r = c
            .issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 0 }, 0)
            .unwrap();
        assert_eq!(r.data_cycle, r.issue_cycle + c.config().timing.rl + 1);
    }

    #[test]
    fn stats_count_scope_and_kind() {
        let mut c = ch();
        c.issue_earliest(Scope::AllBanks, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        c.issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 0 }, 0)
            .unwrap();
        c.issue_earliest(Scope::AllBanks, CmdKind::Pre, 0).unwrap();
        let s = c.stats();
        assert_eq!(s.total_commands(), 3);
        assert_eq!(s.acts, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.pres, 1);
        assert_eq!(s.bank_activations, 16); // one AB ACT opens 16 banks
    }

    #[test]
    fn bus_admits_at_most_two_commands_per_cycle_under_saturation() {
        // MRS has no timing constraints, so a burst of them saturates the
        // command bus: 6 commands must spread over >= 3 distinct cycles
        // with never more than 2 sharing one.
        let mut c = ch();
        let mut cycles = Vec::new();
        for _ in 0..6 {
            cycles.push(
                c.issue_earliest(Scope::AllBanks, CmdKind::Mrs, 0)
                    .unwrap()
                    .issue_cycle,
            );
        }
        assert_eq!(cycles, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn bus_rejects_third_command_on_a_past_slot() {
        // Regression: with the old two-slot array, issuing at cycle 0, then
        // cycle 2, evicted the record of cycle 0 — two further commands at
        // cycle 0 then issued, putting 3 commands on one bus slot.
        let mut c = ch();
        c.issue(Scope::AllBanks, CmdKind::Mrs, 0).unwrap();
        c.issue(Scope::AllBanks, CmdKind::Mrs, 2).unwrap();
        let err = c.issue(Scope::AllBanks, CmdKind::Mrs, 0).unwrap_err();
        assert!(
            matches!(err, IssueError::TooEarly { earliest: 2, .. }),
            "bus must stay monotonic: {err:?}"
        );
        // Cycle 2 still has a free slot; cycle 3 is fresh.
        c.issue(Scope::AllBanks, CmdKind::Mrs, 2).unwrap();
        let err = c.issue(Scope::AllBanks, CmdKind::Mrs, 2).unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { earliest: 3, .. }));
    }

    #[test]
    fn full_row_cycle_all_banks() {
        // ACT -> 32 reads -> PRE -> ACT again must take >= tRC.
        let mut c = ch();
        let t = c.config().timing;
        c.issue_earliest(Scope::AllBanks, CmdKind::Act { row: 0 }, 0)
            .unwrap();
        let mut cur = 0;
        for col in 0..4 {
            cur = c
                .issue_earliest(Scope::AllBanks, CmdKind::Rd { col }, cur)
                .unwrap()
                .issue_cycle;
        }
        let p = c
            .issue_earliest(Scope::AllBanks, CmdKind::Pre, cur)
            .unwrap();
        let a = c
            .issue_earliest(Scope::AllBanks, CmdKind::Act { row: 1 }, p.issue_cycle)
            .unwrap();
        assert!(a.issue_cycle >= t.t_rc());
    }
}
