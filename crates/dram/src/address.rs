//! Physical address mapping.
//!
//! Table VII specifies the `rorabgbachco` mapping (row : rank : bank group :
//! bank : channel : column, most- to least-significant; rank is 0 bits).
//! Only single-bank (SB) host accesses use linear addresses — the PIM
//! engine drives channels with explicit (row, column) commands — but the
//! mapping matters for where the host places vectors and matrices.

use crate::config::HbmConfig;
use serde::{Deserialize, Serialize};

/// A decoded physical location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// Pseudo-channel.
    pub channel: usize,
    /// Bank group within the channel.
    pub bankgroup: usize,
    /// Bank within the group.
    pub bank: usize,
    /// Row.
    pub row: usize,
    /// Column address.
    pub col: usize,
}

/// The `rorabgbachco` address mapping of Table VII.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressMapping {
    col_bits: u32,
    ch_bits: u32,
    ba_bits: u32,
    bg_bits: u32,
    row_bits: u32,
    col_shift: u32,
}

impl AddressMapping {
    /// Build the mapping for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not a power of two.
    #[must_use]
    pub fn new(cfg: &HbmConfig) -> Self {
        let bits = |n: usize, what: &str| -> u32 {
            assert!(n.is_power_of_two(), "{what} ({n}) must be a power of two");
            n.trailing_zeros()
        };
        AddressMapping {
            col_shift: bits(cfg.col_bytes, "col_bytes"),
            col_bits: bits(cfg.num_cols, "num_cols"),
            ch_bits: bits(cfg.num_pseudo_channels, "num_pseudo_channels"),
            ba_bits: bits(cfg.banks_per_group, "banks_per_group"),
            bg_bits: bits(cfg.num_bankgroups, "num_bankgroups"),
            row_bits: bits(cfg.num_rows, "num_rows"),
        }
    }

    /// Total addressable bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        1u64 << (self.col_shift
            + self.col_bits
            + self.ch_bits
            + self.ba_bits
            + self.bg_bits
            + self.row_bits)
    }

    /// Decode a byte address into its location.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the capacity.
    #[must_use]
    pub fn decode(&self, addr: u64) -> DecodedAddress {
        assert!(addr < self.capacity(), "address {addr:#x} out of range");
        let mut a = addr >> self.col_shift;
        let mut take = |bits: u32| -> usize {
            let v = (a & ((1 << bits) - 1)) as usize;
            a >>= bits;
            v
        };
        // Least significant first: co, ch, ba, bg, (ra: 0 bits), ro.
        let col = take(self.col_bits);
        let channel = take(self.ch_bits);
        let bank = take(self.ba_bits);
        let bankgroup = take(self.bg_bits);
        let row = take(self.row_bits);
        DecodedAddress {
            channel,
            bankgroup,
            bank,
            row,
            col,
        }
    }

    /// Encode a location back to a byte address (inverse of
    /// [`AddressMapping::decode`]).
    #[must_use]
    pub fn encode(&self, d: DecodedAddress) -> u64 {
        let mut a = d.row as u64;
        a = (a << self.bg_bits) | d.bankgroup as u64;
        a = (a << self.ba_bits) | d.bank as u64;
        a = (a << self.ch_bits) | d.channel as u64;
        a = (a << self.col_bits) | d.col as u64;
        a << self.col_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&HbmConfig::default())
    }

    #[test]
    fn capacity_matches_config() {
        let cfg = HbmConfig::default();
        assert_eq!(mapping().capacity(), cfg.capacity_bytes() as u64);
    }

    #[test]
    fn decode_zero() {
        let d = mapping().decode(0);
        assert_eq!(
            d,
            DecodedAddress {
                channel: 0,
                bankgroup: 0,
                bank: 0,
                row: 0,
                col: 0
            }
        );
    }

    #[test]
    fn channel_interleave_is_below_bank() {
        let m = mapping();
        // One full row of one channel is 64 cols * 16B = 1KB; the next KB
        // lands on the next channel (co then ch ordering).
        let a = m.decode(1024);
        assert_eq!(a.channel, 1);
        assert_eq!(a.row, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = mapping();
        for addr in [0u64, 16, 1024, 123_456, 1 << 30, m.capacity() - 16] {
            let d = m.decode(addr);
            assert_eq!(m.encode(d), addr & !15, "addr {addr:#x}");
        }
    }

    #[test]
    fn row_is_most_significant() {
        let m = mapping();
        let top = m.capacity() / 2;
        let d = m.decode(top);
        assert_eq!(d.row, 8192);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_out_of_range_panics() {
        let m = mapping();
        let _ = m.decode(m.capacity());
    }
}
