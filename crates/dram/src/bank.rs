//! Per-bank state machine and timing bookkeeping.

use crate::command::CmdKind;
use crate::config::Timing;
use serde::{Deserialize, Serialize};

/// Sentinel for "never happened".
const NEVER: i64 = i64::MIN / 4;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// No row open.
    Idle,
    /// A row is open.
    Active {
        /// The open row.
        row: u32,
    },
}

/// One DRAM bank: open-row state plus the timestamps needed to evaluate the
/// JEDEC constraints for the next command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    last_act: i64,
    last_pre: i64,
    last_rd: i64,
    last_wr: i64,
    last_ref: i64,
    row_hits: u64,
    row_misses: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl Bank {
    /// A fresh idle bank.
    #[must_use]
    pub fn new() -> Self {
        Bank {
            state: BankState::Idle,
            last_act: NEVER,
            last_pre: NEVER,
            last_rd: NEVER,
            last_wr: NEVER,
            last_ref: NEVER,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Current row-buffer state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Row-buffer hits observed (column command to the already-open row).
    #[must_use]
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer misses observed (activations).
    #[must_use]
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Earliest cycle at which `cmd` may legally issue to this bank,
    /// considering only *intra-bank* constraints (inter-bank tRRD/tFAW/tCCD
    /// are the channel's job).
    ///
    /// Returns `None` when the command is illegal in the current state
    /// (e.g. RD with no open row, ACT with a row already open).
    #[must_use]
    pub fn earliest(&self, cmd: CmdKind, t: &Timing) -> Option<i64> {
        match cmd {
            CmdKind::Act { .. } => match self.state {
                BankState::Active { .. } => None,
                BankState::Idle => {
                    Some((self.last_pre + t.t_rp as i64).max(self.last_ref + t.t_rfc as i64))
                }
            },
            CmdKind::Rd { .. } => match self.state {
                BankState::Idle => None,
                BankState::Active { .. } => Some(
                    (self.last_act + t.t_rcd as i64).max(self.last_wr + (t.wl + t.t_wtr) as i64),
                ),
            },
            CmdKind::Wr { .. } => match self.state {
                BankState::Idle => None,
                BankState::Active { .. } => {
                    Some((self.last_act + t.t_rcd as i64).max(self.last_rd + t.rl as i64))
                }
            },
            CmdKind::Pre => match self.state {
                BankState::Idle => None,
                BankState::Active { .. } => Some(
                    (self.last_act + t.t_ras as i64)
                        .max(self.last_rd + t.t_rtp as i64)
                        .max(self.last_wr + (t.wl + t.t_wr) as i64),
                ),
            },
            // REF and MRS are legal only while the bank is idle, and must
            // wait out both tRP after the closing precharge and tRFC after
            // any in-flight refresh.
            CmdKind::Ref | CmdKind::Mrs => match self.state {
                BankState::Active { .. } => None,
                BankState::Idle => {
                    Some((self.last_pre + t.t_rp as i64).max(self.last_ref + t.t_rfc as i64))
                }
            },
        }
    }

    /// Apply `cmd` at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if the command is illegal in the current state — the channel
    /// must consult [`Bank::earliest`] first.
    pub fn apply(&mut self, cmd: CmdKind, at: i64, t: &Timing) {
        debug_assert!(
            self.earliest(cmd, t).is_some_and(|e| at >= e),
            "command {cmd:?} issued at {at} violates bank state/timing"
        );
        match cmd {
            CmdKind::Act { row } => {
                self.state = BankState::Active { row };
                self.last_act = at;
                self.row_misses += 1;
            }
            CmdKind::Rd { .. } => {
                self.last_rd = at;
                self.row_hits += 1;
            }
            CmdKind::Wr { .. } => {
                self.last_wr = at;
                self.row_hits += 1;
            }
            CmdKind::Pre => {
                self.state = BankState::Idle;
                self.last_pre = at;
            }
            CmdKind::Ref => {
                // The bank is busy until `at + tRFC`; ACT/REF/MRS earliest
                // all consult `last_ref` directly rather than back-dating
                // `last_pre` (which would corrupt the tRP history).
                self.last_ref = at;
            }
            CmdKind::Mrs => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::hbm2_default()
    }

    #[test]
    fn fresh_bank_activates_immediately() {
        let b = Bank::new();
        assert!(b.earliest(CmdKind::Act { row: 0 }, &t()).unwrap() <= 0);
        assert!(b.earliest(CmdKind::Rd { col: 0 }, &t()).is_none());
        assert!(b.earliest(CmdKind::Pre, &t()).is_none());
    }

    #[test]
    fn act_then_read_obeys_trcd() {
        let tm = t();
        let mut b = Bank::new();
        b.apply(CmdKind::Act { row: 5 }, 0, &tm);
        assert_eq!(b.open_row(), Some(5));
        let e = b.earliest(CmdKind::Rd { col: 0 }, &tm).unwrap();
        assert_eq!(e, tm.t_rcd as i64);
    }

    #[test]
    fn precharge_obeys_tras_and_trtp() {
        let tm = t();
        let mut b = Bank::new();
        b.apply(CmdKind::Act { row: 5 }, 0, &tm);
        b.apply(CmdKind::Rd { col: 0 }, tm.t_rcd as i64, &tm);
        let e = b.earliest(CmdKind::Pre, &tm).unwrap();
        assert_eq!(e, (tm.t_ras as i64).max(tm.t_rcd as i64 + tm.t_rtp as i64));
    }

    #[test]
    fn write_to_read_turnaround() {
        let tm = t();
        let mut b = Bank::new();
        b.apply(CmdKind::Act { row: 1 }, 0, &tm);
        let w = b.earliest(CmdKind::Wr { col: 0 }, &tm).unwrap();
        b.apply(CmdKind::Wr { col: 0 }, w, &tm);
        let r = b.earliest(CmdKind::Rd { col: 1 }, &tm).unwrap();
        assert_eq!(r, w + (tm.wl + tm.t_wtr) as i64);
    }

    #[test]
    fn act_on_open_row_is_illegal() {
        let tm = t();
        let mut b = Bank::new();
        b.apply(CmdKind::Act { row: 1 }, 0, &tm);
        assert!(b.earliest(CmdKind::Act { row: 2 }, &tm).is_none());
    }

    #[test]
    fn reopen_after_precharge_obeys_trp() {
        let tm = t();
        let mut b = Bank::new();
        b.apply(CmdKind::Act { row: 1 }, 0, &tm);
        let p = b.earliest(CmdKind::Pre, &tm).unwrap();
        b.apply(CmdKind::Pre, p, &tm);
        let a = b.earliest(CmdKind::Act { row: 2 }, &tm).unwrap();
        assert_eq!(a, p + tm.t_rp as i64);
        // Full row cycle from first ACT: tRAS + tRP = tRC.
        assert_eq!(a, tm.t_rc() as i64);
    }

    #[test]
    fn hit_miss_accounting() {
        let tm = t();
        let mut b = Bank::new();
        b.apply(CmdKind::Act { row: 1 }, 0, &tm);
        b.apply(CmdKind::Rd { col: 0 }, 20, &tm);
        b.apply(CmdKind::Rd { col: 1 }, 25, &tm);
        assert_eq!(b.row_misses(), 1);
        assert_eq!(b.row_hits(), 2);
    }

    #[test]
    fn refresh_busies_bank() {
        let tm = t();
        let mut b = Bank::new();
        let r = b.earliest(CmdKind::Ref, &tm).unwrap().max(0);
        b.apply(CmdKind::Ref, r, &tm);
        let a = b.earliest(CmdKind::Act { row: 0 }, &tm).unwrap();
        assert_eq!(a, r + tm.t_rfc as i64);
    }

    #[test]
    fn mrs_is_illegal_while_a_row_is_open() {
        // Regression: the MRS arm used to return `Some(..)` regardless of
        // bank state, letting mode switches land mid-row-cycle.
        let tm = t();
        let mut b = Bank::new();
        assert!(b.earliest(CmdKind::Mrs, &tm).is_some(), "idle bank: legal");
        b.apply(CmdKind::Act { row: 3 }, 0, &tm);
        assert!(
            b.earliest(CmdKind::Mrs, &tm).is_none(),
            "MRS must be rejected while row 3 is open"
        );
        let p = b.earliest(CmdKind::Pre, &tm).unwrap();
        b.apply(CmdKind::Pre, p, &tm);
        assert_eq!(b.earliest(CmdKind::Mrs, &tm).unwrap(), p + tm.t_rp as i64);
    }

    #[test]
    fn back_to_back_refreshes_obey_trfc() {
        // Regression: REF used to back-date `last_pre` to fake the tRFC
        // busy window, which broke as soon as anything else read last_pre.
        let tm = t();
        let mut b = Bank::new();
        b.apply(CmdKind::Ref, 0, &tm);
        assert_eq!(b.earliest(CmdKind::Ref, &tm).unwrap(), tm.t_rfc as i64);
        assert_eq!(b.earliest(CmdKind::Mrs, &tm).unwrap(), tm.t_rfc as i64);
        b.apply(CmdKind::Ref, tm.t_rfc as i64, &tm);
        // A row cycle after the second refresh still honors tRP from the
        // genuine precharge history, not a synthetic one.
        let a = b.earliest(CmdKind::Act { row: 0 }, &tm).unwrap();
        assert_eq!(a, 2 * tm.t_rfc as i64);
    }
}
