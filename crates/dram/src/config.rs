//! Memory organization and timing parameters (paper Table VII).

use serde::{Deserialize, Serialize};

/// HBM2 organization of one pSyncPIM cube (Table VII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Bank groups per pseudo-channel.
    pub num_bankgroups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub num_rows: usize,
    /// Column addresses per row.
    pub num_cols: usize,
    /// Bytes per column address (64 columns × 16 B = the paper's 1 KB row).
    pub col_bytes: usize,
    /// Bytes moved by one RD/WR burst (BL4 over the 64-bit pseudo-channel
    /// DQ = 32 B — also the PU datapath width).
    pub burst_bytes: usize,
    /// HBM stacks per cube.
    pub num_stacks: usize,
    /// Pseudo-channels per cube.
    pub num_pseudo_channels: usize,
    /// Command clock in Hz (1 GHz ⇒ 1 ns per cycle).
    pub clock_hz: f64,
    /// External (host-visible) bandwidth in bytes/s.
    pub external_bw: f64,
    /// Internal (all-bank aggregate) bandwidth in bytes/s.
    pub internal_bw: f64,
    /// Timing constraints in command-clock cycles.
    pub timing: Timing,
}

impl Default for HbmConfig {
    /// The Table VII configuration.
    fn default() -> Self {
        HbmConfig {
            num_bankgroups: 4,
            banks_per_group: 4,
            num_rows: 16_384,
            num_cols: 64,
            col_bytes: 16,
            burst_bytes: 32,
            num_stacks: 8,
            num_pseudo_channels: 16,
            clock_hz: 1e9,
            external_bw: 256e9,
            internal_bw: 2e12,
            timing: Timing::hbm2_default(),
        }
    }
}

impl HbmConfig {
    /// Banks per pseudo-channel.
    #[must_use]
    pub fn banks_per_channel(&self) -> usize {
        self.num_bankgroups * self.banks_per_group
    }

    /// Total banks (= processing units) per cube; the paper's is 256.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.banks_per_channel() * self.num_pseudo_channels
    }

    /// Bytes per DRAM row.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.num_cols * self.col_bytes
    }

    /// Bursts needed to stream one full row.
    #[must_use]
    pub fn bursts_per_row(&self) -> usize {
        self.row_bytes() / self.burst_bytes
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.total_banks() * self.num_rows * self.row_bytes()
    }

    /// Seconds per command-clock cycle.
    #[must_use]
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

/// JEDEC-style timing constraints in command-clock cycles.
///
/// Values follow DRAMsim3's HBM2 defaults at 1 GHz (the paper: "HBM2
/// default timing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are the JEDEC parameter names
pub struct Timing {
    pub t_rcd: u64,
    pub t_rp: u64,
    pub t_ras: u64,
    pub t_ccd_s: u64,
    pub t_ccd_l: u64,
    pub t_rrd_s: u64,
    pub t_rrd_l: u64,
    pub t_faw: u64,
    pub t_rtp: u64,
    pub t_wr: u64,
    pub t_wtr: u64,
    /// Read latency (CAS).
    pub rl: u64,
    /// Write latency.
    pub wl: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time.
    pub t_rfc: u64,
}

impl Timing {
    /// DRAMsim3 HBM2 default timing at 1 GHz.
    #[must_use]
    pub const fn hbm2_default() -> Self {
        Timing {
            t_rcd: 14,
            t_rp: 14,
            t_ras: 33,
            t_ccd_s: 2,
            t_ccd_l: 4,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 30,
            t_rtp: 5,
            t_wr: 16,
            t_wtr: 8,
            rl: 14,
            wl: 7,
            t_refi: 3_900,
            t_rfc: 260,
        }
    }

    /// Row cycle time `tRC = tRAS + tRP`.
    #[must_use]
    pub const fn t_rc(&self) -> u64 {
        self.t_ras + self.t_rp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vii_derived_quantities() {
        let c = HbmConfig::default();
        assert_eq!(c.banks_per_channel(), 16);
        assert_eq!(c.total_banks(), 256);
        assert_eq!(c.row_bytes(), 1024);
        assert_eq!(c.bursts_per_row(), 32);
        assert_eq!(c.capacity_bytes(), 4 * 1024 * 1024 * 1024usize);
        assert_eq!(c.cycle_seconds(), 1e-9);
    }

    #[test]
    fn timing_trc() {
        let t = Timing::hbm2_default();
        assert_eq!(t.t_rc(), 47);
    }

    #[test]
    fn bandwidth_gap_is_about_8x() {
        let c = HbmConfig::default();
        let gap = c.internal_bw / c.external_bw;
        assert!((7.0..9.0).contains(&gap));
    }
}
