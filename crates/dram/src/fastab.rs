//! All-bank-only fast channel.
//!
//! Under pSyncPIM's lockstep execution every command a channel sees is an
//! all-bank broadcast, so all 16 banks move through *identical* state: the
//! per-bank `earliest` maximum collapses to a single representative bank,
//! and the per-bank-scope cursors (`last_col_group`, tRRD/tFAW windows)
//! are never consulted. [`AbChannel`] exploits that: one [`Bank`], the
//! channel-wide column cursor, and the 2-slot bus — a drop-in replacement
//! for [`Channel`](crate::Channel) restricted to [`Scope::AllBanks`],
//! proven equivalent by the exhaustive cross-check tests below and by the
//! engine's golden-trace equivalence gate.

use crate::bank::Bank;
use crate::channel::{IssueError, Issued};
use crate::command::{CmdKind, Scope};
use crate::config::HbmConfig;
use crate::stats::ChannelStats;

const NEVER: i64 = i64::MIN / 4;

/// A pseudo-channel that only ever issues all-bank broadcasts: one
/// representative bank stands in for all `nbanks` identical ones.
#[derive(Debug, Clone)]
pub struct AbChannel {
    timing: crate::config::Timing,
    nbanks: usize,
    bank: Bank,
    bus_cycle: i64,
    bus_count: u8,
    last_col_any: i64,
    stats: ChannelStats,
}

impl AbChannel {
    /// A fresh all-bank channel for the given configuration.
    #[must_use]
    pub fn new(cfg: &HbmConfig) -> Self {
        AbChannel {
            timing: cfg.timing,
            nbanks: cfg.banks_per_channel(),
            bank: Bank::new(),
            bus_cycle: NEVER,
            bus_count: 0,
            last_col_any: NEVER,
            stats: ChannelStats::default(),
        }
    }

    /// Accumulated statistics (broadcasts count banks exactly like the
    /// full channel).
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Issue `cmd` as an all-bank broadcast at the earliest legal cycle
    /// ≥ `from`.
    ///
    /// # Errors
    ///
    /// [`IssueError::IllegalState`] if the command cannot issue at all —
    /// same message the full channel produces, so engine error paths are
    /// tier-independent.
    pub fn issue_earliest(&mut self, cmd: CmdKind, from: u64) -> Result<Issued, IssueError> {
        let t = &self.timing;
        let mut e = from as i64;

        e =
            e.max(self.bank.earliest(cmd, t).ok_or_else(|| {
                IssueError::IllegalState(format!("{cmd} with {}", Scope::AllBanks))
            })?);
        if matches!(cmd, CmdKind::Rd { .. } | CmdKind::Wr { .. }) {
            // Broadcast columns pace at tCCD_L (every group's datapath is
            // occupied), exactly as the full channel's AllBanks arm.
            e = e.max(self.last_col_any + t.t_ccd_l as i64);
        }

        // 2-slot command bus, monotonic.
        loop {
            if e < self.bus_cycle {
                e = self.bus_cycle;
                continue;
            }
            if e == self.bus_cycle && self.bus_count >= 2 {
                e += 1;
                continue;
            }
            break;
        }
        let at = e.max(0);

        self.bank.apply(cmd, at, t);
        if matches!(cmd, CmdKind::Rd { .. } | CmdKind::Wr { .. }) {
            self.last_col_any = at;
        }
        if at == self.bus_cycle {
            self.bus_count += 1;
        } else {
            self.bus_cycle = at;
            self.bus_count = 1;
        }
        self.stats.record(Scope::AllBanks, cmd, self.nbanks);

        let at = at as u64;
        let data_cycle = match cmd {
            CmdKind::Rd { .. } => at + t.rl + 1,
            CmdKind::Wr { .. } => at + t.wl + 1,
            _ => at,
        };
        Ok(Issued {
            issue_cycle: at,
            data_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;

    /// Drive the same pseudo-random all-bank command stream through the
    /// full channel and the representative-bank channel; every issue
    /// result and the final stats must agree exactly.
    #[test]
    fn matches_full_channel_on_random_allbank_streams() {
        let cfg = HbmConfig::default();
        for seed in 0..8u64 {
            let mut full = Channel::new(&cfg);
            let mut fast = AbChannel::new(&cfg);
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut from = 0u64;
            let mut open = false;
            for _ in 0..400 {
                let r = rng();
                let cmd = if open {
                    match r % 8 {
                        0 => CmdKind::Pre,
                        1..=5 => CmdKind::Rd {
                            col: (r / 8 % 64) as u32,
                        },
                        _ => CmdKind::Wr {
                            col: (r / 8 % 64) as u32,
                        },
                    }
                } else {
                    match r % 4 {
                        0 => CmdKind::Ref,
                        1 => CmdKind::Mrs,
                        _ => CmdKind::Act {
                            row: (r / 4 % 1024) as u32,
                        },
                    }
                };
                match cmd {
                    CmdKind::Act { .. } => open = true,
                    CmdKind::Pre => open = false,
                    _ => {}
                }
                let a = full.issue_earliest(Scope::AllBanks, cmd, from).unwrap();
                let b = fast.issue_earliest(cmd, from).unwrap();
                assert_eq!(a, b, "seed {seed}: {cmd:?} from {from}");
                // Exercise both from == issue and from behind the bus.
                from = if r % 3 == 0 { a.issue_cycle } else { 0 };
            }
            assert_eq!(full.stats(), fast.stats(), "seed {seed}");
        }
    }

    #[test]
    fn illegal_state_errors_match() {
        let cfg = HbmConfig::default();
        let mut full = Channel::new(&cfg);
        let mut fast = AbChannel::new(&cfg);
        let a = full
            .issue_earliest(Scope::AllBanks, CmdKind::Rd { col: 0 }, 0)
            .unwrap_err();
        let b = fast.issue_earliest(CmdKind::Rd { col: 0 }, 0).unwrap_err();
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn single_pass_issue_earliest_fast_matches_two_pass() {
        // The tick path's two-pass earliest+issue and the event path's
        // single-pass variant must pick the same cycles on the full
        // channel too (per-bank scopes included).
        let cfg = HbmConfig::default();
        let mut two = Channel::new(&cfg);
        let mut one = Channel::new(&cfg);
        let seq = [
            (Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Act { row: 3 }),
            (Scope::OneBank { bg: 1, ba: 2 }, CmdKind::Act { row: 5 }),
            (Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Rd { col: 1 }),
            (Scope::OneBank { bg: 1, ba: 2 }, CmdKind::Wr { col: 2 }),
            (Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Pre),
            (Scope::OneBank { bg: 1, ba: 2 }, CmdKind::Pre),
            (Scope::AllBanks, CmdKind::Ref),
        ];
        let mut from = 0;
        for (scope, cmd) in seq {
            let a = two.issue_earliest(scope, cmd, from).unwrap();
            let b = one.issue_earliest_fast(scope, cmd, from).unwrap();
            assert_eq!(a, b, "{cmd:?}");
            from = a.issue_cycle;
        }
    }
}
