//! DRAM commands and their issue scope.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmdKind {
    /// Activate (open) a row.
    Act {
        /// Row to open.
        row: u32,
    },
    /// Read one burst at a column of the open row.
    Rd {
        /// Column address.
        col: u32,
    },
    /// Write one burst at a column of the open row.
    Wr {
        /// Column address.
        col: u32,
    },
    /// Precharge (close) the open row.
    Pre,
    /// Refresh.
    Ref,
    /// Mode-register set (used by the SB/AB/AB-PIM switch sequences and for
    /// programming PIM kernels into the control registers).
    Mrs,
}

impl CmdKind {
    /// Short mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmdKind::Act { .. } => "ACT",
            CmdKind::Rd { .. } => "RD",
            CmdKind::Wr { .. } => "WR",
            CmdKind::Pre => "PRE",
            CmdKind::Ref => "REF",
            CmdKind::Mrs => "MRS",
        }
    }

    /// Whether this is a column (data-moving) command.
    #[must_use]
    pub fn is_column(self) -> bool {
        matches!(self, CmdKind::Rd { .. } | CmdKind::Wr { .. })
    }
}

impl fmt::Display for CmdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdKind::Act { row } => write!(f, "ACT(r{row})"),
            CmdKind::Rd { col } => write!(f, "RD(c{col})"),
            CmdKind::Wr { col } => write!(f, "WR(c{col})"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// Which banks a command addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// One bank, addressed by `(bank_group, bank)` — SB mode and the
    /// per-bank (PB) PIM baseline.
    OneBank {
        /// Bank group index.
        bg: usize,
        /// Bank index within the group.
        ba: usize,
    },
    /// Every bank in the pseudo-channel at once — AB / AB-PIM modes.
    AllBanks,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::OneBank { bg, ba } => write!(f, "bank({bg},{ba})"),
            Scope::AllBanks => f.write_str("all-banks"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(CmdKind::Act { row: 1 }.mnemonic(), "ACT");
        assert_eq!(CmdKind::Pre.mnemonic(), "PRE");
        assert_eq!(format!("{}", CmdKind::Rd { col: 7 }), "RD(c7)");
    }

    #[test]
    fn column_classification() {
        assert!(CmdKind::Rd { col: 0 }.is_column());
        assert!(CmdKind::Wr { col: 0 }.is_column());
        assert!(!CmdKind::Act { row: 0 }.is_column());
        assert!(!CmdKind::Mrs.is_column());
    }

    #[test]
    fn scope_display() {
        assert_eq!(format!("{}", Scope::AllBanks), "all-banks");
        assert_eq!(format!("{}", Scope::OneBank { bg: 1, ba: 2 }), "bank(1,2)");
    }
}
