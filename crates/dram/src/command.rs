//! DRAM commands and their issue scope.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse bus-occupancy class of a command — what a cycle spent issuing it
/// should be attributed to. The trace layer maps these onto its stall
/// categories; keeping the classification here keeps it next to the
/// command definitions it must stay exhaustive over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmdClass {
    /// Data movement: column reads and writes.
    Data,
    /// Row-buffer management: activates and precharges.
    RowSwitch,
    /// Refresh maintenance.
    Refresh,
    /// Mode/config traffic: MRS streams for mode switching and kernel
    /// programming.
    Config,
}

impl CmdClass {
    /// Short label for reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            CmdClass::Data => "data",
            CmdClass::RowSwitch => "row-switch",
            CmdClass::Refresh => "refresh",
            CmdClass::Config => "config",
        }
    }
}

/// The kind of a DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmdKind {
    /// Activate (open) a row.
    Act {
        /// Row to open.
        row: u32,
    },
    /// Read one burst at a column of the open row.
    Rd {
        /// Column address.
        col: u32,
    },
    /// Write one burst at a column of the open row.
    Wr {
        /// Column address.
        col: u32,
    },
    /// Precharge (close) the open row.
    Pre,
    /// Refresh.
    Ref,
    /// Mode-register set (used by the SB/AB/AB-PIM switch sequences and for
    /// programming PIM kernels into the control registers).
    Mrs,
}

impl CmdKind {
    /// Short mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmdKind::Act { .. } => "ACT",
            CmdKind::Rd { .. } => "RD",
            CmdKind::Wr { .. } => "WR",
            CmdKind::Pre => "PRE",
            CmdKind::Ref => "REF",
            CmdKind::Mrs => "MRS",
        }
    }

    /// Whether this is a column (data-moving) command.
    #[must_use]
    pub fn is_column(self) -> bool {
        matches!(self, CmdKind::Rd { .. } | CmdKind::Wr { .. })
    }

    /// Bus-occupancy class, for cycle attribution.
    #[must_use]
    pub fn class(self) -> CmdClass {
        match self {
            CmdKind::Rd { .. } | CmdKind::Wr { .. } => CmdClass::Data,
            CmdKind::Act { .. } | CmdKind::Pre => CmdClass::RowSwitch,
            CmdKind::Ref => CmdClass::Refresh,
            CmdKind::Mrs => CmdClass::Config,
        }
    }
}

impl fmt::Display for CmdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdKind::Act { row } => write!(f, "ACT(r{row})"),
            CmdKind::Rd { col } => write!(f, "RD(c{col})"),
            CmdKind::Wr { col } => write!(f, "WR(c{col})"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// Which banks a command addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// One bank, addressed by `(bank_group, bank)` — SB mode and the
    /// per-bank (PB) PIM baseline.
    OneBank {
        /// Bank group index.
        bg: usize,
        /// Bank index within the group.
        ba: usize,
    },
    /// Every bank in the pseudo-channel at once — AB / AB-PIM modes.
    AllBanks,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::OneBank { bg, ba } => write!(f, "bank({bg},{ba})"),
            Scope::AllBanks => f.write_str("all-banks"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(CmdKind::Act { row: 1 }.mnemonic(), "ACT");
        assert_eq!(CmdKind::Pre.mnemonic(), "PRE");
        assert_eq!(format!("{}", CmdKind::Rd { col: 7 }), "RD(c7)");
    }

    #[test]
    fn column_classification() {
        assert!(CmdKind::Rd { col: 0 }.is_column());
        assert!(CmdKind::Wr { col: 0 }.is_column());
        assert!(!CmdKind::Act { row: 0 }.is_column());
        assert!(!CmdKind::Mrs.is_column());
    }

    #[test]
    fn bus_occupancy_classes() {
        assert_eq!(CmdKind::Rd { col: 0 }.class(), CmdClass::Data);
        assert_eq!(CmdKind::Wr { col: 0 }.class(), CmdClass::Data);
        assert_eq!(CmdKind::Act { row: 3 }.class(), CmdClass::RowSwitch);
        assert_eq!(CmdKind::Pre.class(), CmdClass::RowSwitch);
        assert_eq!(CmdKind::Ref.class(), CmdClass::Refresh);
        assert_eq!(CmdKind::Mrs.class(), CmdClass::Config);
        assert_eq!(CmdClass::RowSwitch.label(), "row-switch");
    }

    #[test]
    fn scope_display() {
        assert_eq!(format!("{}", Scope::AllBanks), "all-banks");
        assert_eq!(format!("{}", Scope::OneBank { bg: 1, ba: 2 }), "bank(1,2)");
    }
}
