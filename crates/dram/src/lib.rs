//! Cycle-level HBM2 DRAM simulator for the pSyncPIM reproduction.
//!
//! The paper modifies DRAMsim3 to support all-bank PIM; this crate rebuilds
//! the subset that pSyncPIM's results depend on:
//!
//! * the Table VII memory organization ([`HbmConfig`]): 16 pseudo-channels
//!   × 4 bank groups × 4 banks, 16,384 rows of 1 KB, 1 GHz command clock,
//! * per-bank state machines with JEDEC-style timing constraints
//!   (tRCD/tRP/tRAS/tCCD/tRRD/tFAW/tWR/tRTP, read/write latencies),
//! * *all-bank* command scope: one ACT/RD/WR/PRE drives every bank in a
//!   pseudo-channel simultaneously (the HBM-PIM/AiM execution model),
//! * per-bank scope with the channel command-bus limit (2 commands/cycle)
//!   that makes the per-bank PIM baseline slow (paper Figure 3),
//! * the SB → AB → AB-PIM mode-switch protocol of Figure 1,
//! * command/energy accounting for Figures 3 and 14.
//!
//! # Example
//!
//! ```
//! use psim_dram::{Channel, CmdKind, HbmConfig, Scope};
//!
//! let cfg = HbmConfig::default();
//! let mut ch = Channel::new(&cfg);
//! let t0 = ch.earliest(Scope::AllBanks, CmdKind::Act { row: 3 }, 0);
//! let issued = ch.issue(Scope::AllBanks, CmdKind::Act { row: 3 }, t0).unwrap();
//! assert_eq!(issued.issue_cycle, t0);
//! ```

pub mod address;
pub mod bank;
pub mod channel;
pub mod checker;
pub mod command;
pub mod config;
pub mod fastab;
pub mod mode;
pub mod power;
pub mod stats;

pub use address::{AddressMapping, DecodedAddress};
pub use bank::Bank;
pub use channel::{Channel, IssueError, Issued};
pub use checker::{check_trace, CheckPolicy, CheckReport, ProtocolChecker, Rule, Violation};
pub use command::{CmdClass, CmdKind, Scope};
pub use config::{HbmConfig, Timing};
pub use fastab::AbChannel;
pub use mode::{Mode, ModeController, ModeError};
pub use power::{EnergyModel, EnergyStats};
pub use stats::ChannelStats;
