//! Independent trace-level JEDEC protocol validation (`psim-check`).
//!
//! The [`Channel`](crate::Channel) enforces timing at issue time, but a bug
//! in its bookkeeping silently invalidates every result built on top of it.
//! Production memory-controller stacks therefore ship a *validator* that
//! replays the emitted command trace and re-derives legality from scratch —
//! this module is that validator. It shares no state with the channel: it
//! keeps its own per-bank timestamps, its own activation window, its own bus
//! counter, and re-checks
//!
//! * per-bank state legality (ACT needs an idle bank, RD/WR/PRE an open
//!   row, REF/MRS idle banks),
//! * intra-bank timing: tRCD, tRAS, tRP, tWR, tRTP, tWTR, read-to-write
//!   turnaround, tRFC,
//! * inter-bank timing: tRRD_S/tRRD_L, the four-activation window tFAW,
//!   tCCD_S/tCCD_L (broadcast columns pace at tCCD_L),
//! * the 2-command-per-cycle command-bus limit,
//!
//! plus two whole-trace invariants nothing else checks:
//!
//! * **lockstep** — in all-bank execution every bank must observe the same
//!   ACT/PRE row sequence (the pSyncPIM premise: one legal command stream,
//!   divergence only inside the PUs),
//! * **refresh** — the trace must contain at least one REF per refresh
//!   audit window. JEDEC permits postponing up to 8 REF commands, so the
//!   audit bound is `9 × tREFI` between consecutive REFs.
//!
//! All-bank ACT is treated as a single super-activation exempt from
//! tRRD/tFAW, mirroring the documented channel model.

use crate::command::{CmdKind, Scope};
use crate::config::{HbmConfig, Timing};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel for "never happened".
const NEVER: i64 = i64::MIN / 4;

/// JEDEC allows a device to postpone up to 8 refreshes, so a legal trace
/// never goes more than 9 average-refresh-intervals without a REF.
pub const REFRESH_POSTPONE_LIMIT: u64 = 9;

/// The protocol rule a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // names are the JEDEC parameter names
pub enum Rule {
    /// Command illegal in the bank's current state.
    BankState,
    Trcd,
    Tras,
    Trp,
    Trtp,
    Twr,
    Twtr,
    /// Write issued before the preceding read's data left the bank (RL).
    ReadToWrite,
    Trfc,
    TrrdS,
    TrrdL,
    Tfaw,
    TccdS,
    TccdL,
    /// More than two commands on one bus cycle.
    BusOverflow,
    /// Trace cycles went backwards within one channel.
    NonMonotonic,
    /// Banks diverged in their ACT/PRE row sequence under all-bank mode.
    Lockstep,
    /// A refresh audit window elapsed without a REF.
    RefreshGap,
}

impl Rule {
    /// Short human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::BankState => "bank-state",
            Rule::Trcd => "tRCD",
            Rule::Tras => "tRAS",
            Rule::Trp => "tRP",
            Rule::Trtp => "tRTP",
            Rule::Twr => "tWR",
            Rule::Twtr => "tWTR",
            Rule::ReadToWrite => "read-to-write",
            Rule::Trfc => "tRFC",
            Rule::TrrdS => "tRRD_S",
            Rule::TrrdL => "tRRD_L",
            Rule::Tfaw => "tFAW",
            Rule::TccdS => "tCCD_S",
            Rule::TccdL => "tCCD_L",
            Rule::BusOverflow => "bus-overflow",
            Rule::NonMonotonic => "non-monotonic",
            Rule::Lockstep => "lockstep",
            Rule::RefreshGap => "refresh-gap",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One protocol violation, with enough context to locate it in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Channel the offending command was issued on.
    pub channel: usize,
    /// Issue cycle of the offending command (or trace end for whole-trace
    /// invariants).
    pub cycle: u64,
    /// The rule broken.
    pub rule: Rule,
    /// The offending command, if the violation is tied to one.
    pub cmd: Option<CmdKind>,
    /// The offending command's scope.
    pub scope: Option<Scope>,
    /// Bank `(bg, ba)` the violation was detected on, if bank-specific.
    pub bank: Option<(usize, usize)>,
    /// Human-readable explanation with the violated bound.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[ch{} cyc{}] {}: {}",
            self.channel, self.cycle, self.rule, self.detail
        )?;
        if let (Some(cmd), Some(scope)) = (self.cmd, self.scope) {
            write!(f, " ({cmd} {scope})")?;
        }
        if let Some((bg, ba)) = self.bank {
            write!(f, " @bank({bg},{ba})")?;
        }
        Ok(())
    }
}

/// What the checker should enforce beyond raw JEDEC timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckPolicy {
    /// Enforce the all-bank lockstep invariant (every bank sees the same
    /// ACT/PRE row sequence). Disable for per-bank execution traces.
    pub lockstep: bool,
    /// Enforce the refresh contract (≥ 1 REF per audit window).
    pub expect_refresh: bool,
    /// Keep at most this many violations; the rest are only counted.
    pub max_violations: usize,
}

impl Default for CheckPolicy {
    fn default() -> Self {
        CheckPolicy {
            lockstep: true,
            expect_refresh: false,
            max_violations: 64,
        }
    }
}

/// Result of replaying one channel's trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Commands replayed.
    pub commands: u64,
    /// Violations found (capped at the policy's `max_violations`).
    pub violations: Vec<Violation>,
    /// Violations found beyond the cap (count only).
    pub suppressed: u64,
}

impl CheckReport {
    /// True when the trace was fully protocol-legal.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Total violation count including suppressed ones.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.suppressed
    }

    /// Fold another channel's report into this one (keeps at most the
    /// default cap of detailed violations; the rest are counted).
    pub fn merge(&mut self, other: &CheckReport) {
        self.commands += other.commands;
        for v in &other.violations {
            if self.violations.len() < 64 {
                self.violations.push(v.clone());
            } else {
                self.suppressed += 1;
            }
        }
        self.suppressed += other.suppressed;
    }
}

/// Independent per-bank replay state (deliberately *not* [`crate::Bank`] —
/// sharing the implementation under test would defeat the audit).
#[derive(Debug, Clone)]
struct BankCheck {
    open_row: Option<u32>,
    last_act: i64,
    last_pre: i64,
    last_rd: i64,
    last_wr: i64,
    last_ref: i64,
    /// Rolling FNV-1a hash + length of the bank's ACT/PRE row sequence,
    /// compared across banks at [`ProtocolChecker::finish`] for lockstep.
    seq_hash: u64,
    seq_len: u64,
}

impl BankCheck {
    fn new() -> Self {
        BankCheck {
            open_row: None,
            last_act: NEVER,
            last_pre: NEVER,
            last_rd: NEVER,
            last_wr: NEVER,
            last_ref: NEVER,
            seq_hash: 0xcbf2_9ce4_8422_2325,
            seq_len: 0,
        }
    }

    fn hash_event(&mut self, tag: u8, row: u32) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.seq_hash;
        h = (h ^ u64::from(tag)).wrapping_mul(PRIME);
        for b in row.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        self.seq_hash = h;
        self.seq_len += 1;
    }
}

/// Replays a command trace and re-verifies every protocol constraint from
/// scratch. Feed commands in trace order with [`ProtocolChecker::observe`],
/// then call [`ProtocolChecker::finish`] for the whole-trace invariants.
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    timing: Timing,
    banks_per_group: usize,
    policy: CheckPolicy,
    channel: usize,
    banks: Vec<BankCheck>,
    bus_cycle: i64,
    bus_count: u32,
    last_col_group: Vec<i64>,
    last_col_any: i64,
    last_act_group: Vec<i64>,
    last_act_any: i64,
    act_window: [i64; 4],
    first_cycle: Option<u64>,
    last_cycle: i64,
    last_ref_cycle: Option<u64>,
    commands: u64,
    violations: Vec<Violation>,
    suppressed: u64,
}

impl ProtocolChecker {
    /// A checker for one channel of the given configuration.
    #[must_use]
    pub fn new(cfg: &HbmConfig) -> Self {
        Self::with_policy(cfg, CheckPolicy::default())
    }

    /// A checker with an explicit policy.
    #[must_use]
    pub fn with_policy(cfg: &HbmConfig, policy: CheckPolicy) -> Self {
        ProtocolChecker {
            timing: cfg.timing,
            banks_per_group: cfg.banks_per_group,
            policy,
            channel: 0,
            banks: (0..cfg.banks_per_channel())
                .map(|_| BankCheck::new())
                .collect(),
            bus_cycle: NEVER,
            bus_count: 0,
            last_col_group: vec![NEVER; cfg.num_bankgroups],
            last_col_any: NEVER,
            last_act_group: vec![NEVER; cfg.num_bankgroups],
            last_act_any: NEVER,
            act_window: [NEVER; 4],
            first_cycle: None,
            last_cycle: NEVER,
            last_ref_cycle: None,
            commands: 0,
            violations: Vec::new(),
            suppressed: 0,
        }
    }

    /// Tag subsequent violations with a channel index.
    #[must_use]
    pub fn for_channel(mut self, channel: usize) -> Self {
        self.channel = channel;
        self
    }

    /// Violations recorded so far (whole-trace invariants land in
    /// [`ProtocolChecker::finish`]).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn violate(
        &mut self,
        cycle: u64,
        rule: Rule,
        cmd: Option<CmdKind>,
        scope: Option<Scope>,
        bank: Option<(usize, usize)>,
        detail: String,
    ) {
        if self.violations.len() >= self.policy.max_violations {
            self.suppressed += 1;
            return;
        }
        self.violations.push(Violation {
            channel: self.channel,
            cycle,
            rule,
            cmd,
            scope,
            bank,
            detail,
        });
    }

    /// Replay one command. Commands must arrive in trace (issue) order.
    pub fn observe(&mut self, cycle: u64, scope: Scope, cmd: CmdKind) {
        let t = self.timing;
        let at = cycle as i64;
        self.commands += 1;
        if self.first_cycle.is_none() {
            self.first_cycle = Some(cycle);
        }

        // Trace order and the 2-slot command bus.
        if at < self.last_cycle {
            self.violate(
                cycle,
                Rule::NonMonotonic,
                Some(cmd),
                Some(scope),
                None,
                format!("cycle {cycle} after cycle {} in trace", self.last_cycle),
            );
        }
        self.last_cycle = self.last_cycle.max(at);
        if at == self.bus_cycle {
            self.bus_count += 1;
            if self.bus_count > 2 {
                self.violate(
                    cycle,
                    Rule::BusOverflow,
                    Some(cmd),
                    Some(scope),
                    None,
                    format!("{} commands on bus cycle {cycle} (limit 2)", self.bus_count),
                );
            }
        } else if at > self.bus_cycle {
            self.bus_cycle = at;
            self.bus_count = 1;
        }

        // Per-bank state + intra-bank timing.
        let bank_indices: Vec<usize> = match scope {
            Scope::OneBank { bg, ba } => vec![bg * self.banks_per_group + ba],
            Scope::AllBanks => (0..self.banks.len()).collect(),
        };
        for &bi in &bank_indices {
            self.check_bank(bi, cycle, scope, cmd);
        }

        // Channel-level (inter-bank) constraints.
        match cmd {
            CmdKind::Act { .. } => {
                if let Scope::OneBank { bg, .. } = scope {
                    self.check_gap(
                        cycle,
                        self.last_act_group[bg],
                        t.t_rrd_l,
                        Rule::TrrdL,
                        cmd,
                        scope,
                    );
                    self.check_gap(cycle, self.last_act_any, t.t_rrd_s, Rule::TrrdS, cmd, scope);
                    let oldest = self.act_window.iter().copied().min().unwrap_or(NEVER);
                    self.check_gap(cycle, oldest, t.t_faw, Rule::Tfaw, cmd, scope);
                    self.last_act_group[bg] = at;
                    self.last_act_any = at;
                    let slot = self
                        .act_window
                        .iter_mut()
                        .min_by_key(|v| **v)
                        .expect("window non-empty");
                    *slot = at;
                }
                // All-bank ACT: single broadcast, exempt from tRRD/tFAW
                // (the documented channel model).
            }
            CmdKind::Rd { .. } | CmdKind::Wr { .. } => match scope {
                Scope::OneBank { bg, .. } => {
                    self.check_gap(
                        cycle,
                        self.last_col_group[bg],
                        t.t_ccd_l,
                        Rule::TccdL,
                        cmd,
                        scope,
                    );
                    self.check_gap(cycle, self.last_col_any, t.t_ccd_s, Rule::TccdS, cmd, scope);
                    self.last_col_group[bg] = at;
                    self.last_col_any = at;
                }
                Scope::AllBanks => {
                    // Broadcast columns occupy every bank group's datapath:
                    // pace at tCCD_L.
                    self.check_gap(cycle, self.last_col_any, t.t_ccd_l, Rule::TccdL, cmd, scope);
                    self.last_col_any = at;
                }
            },
            CmdKind::Ref => {
                // Refresh contract: track the gap between consecutive REFs.
                if self.policy.expect_refresh {
                    let since = self.last_ref_cycle.or(self.first_cycle).unwrap_or(cycle);
                    let bound = REFRESH_POSTPONE_LIMIT * t.t_refi;
                    if cycle.saturating_sub(since) > bound {
                        self.violate(
                            cycle,
                            Rule::RefreshGap,
                            Some(cmd),
                            Some(scope),
                            None,
                            format!(
                                "{} cycles since previous REF exceeds audit bound {bound}",
                                cycle - since
                            ),
                        );
                    }
                }
                self.last_ref_cycle = Some(cycle);
            }
            CmdKind::Pre | CmdKind::Mrs => {}
        }
    }

    fn check_gap(
        &mut self,
        cycle: u64,
        last: i64,
        bound: u64,
        rule: Rule,
        cmd: CmdKind,
        scope: Scope,
    ) {
        if (cycle as i64) < last + bound as i64 {
            self.violate(
                cycle,
                rule,
                Some(cmd),
                Some(scope),
                None,
                format!(
                    "issued {} cycles after predecessor at {last}, need {bound}",
                    cycle as i64 - last
                ),
            );
        }
    }

    fn check_bank(&mut self, bi: usize, cycle: u64, scope: Scope, cmd: CmdKind) {
        let t = self.timing;
        let at = cycle as i64;
        let bg = bi / self.banks_per_group;
        let ba = bi % self.banks_per_group;
        let bank = (bg, ba);
        // (rule, earliest legal cycle) pairs gathered per command, checked
        // below; state errors short-circuit without mutating.
        let mut bounds: Vec<(Rule, i64)> = Vec::new();
        let open = self.banks[bi].open_row;
        let b = &self.banks[bi];
        let state_err: Option<String> = match cmd {
            CmdKind::Act { .. } => {
                if let Some(row) = open {
                    Some(format!("ACT while row {row} is open"))
                } else {
                    bounds.push((Rule::Trp, b.last_pre + t.t_rp as i64));
                    bounds.push((Rule::Trfc, b.last_ref + t.t_rfc as i64));
                    None
                }
            }
            CmdKind::Rd { .. } => {
                if open.is_none() {
                    Some("RD with no open row".to_string())
                } else {
                    bounds.push((Rule::Trcd, b.last_act + t.t_rcd as i64));
                    bounds.push((Rule::Twtr, b.last_wr + (t.wl + t.t_wtr) as i64));
                    None
                }
            }
            CmdKind::Wr { .. } => {
                if open.is_none() {
                    Some("WR with no open row".to_string())
                } else {
                    bounds.push((Rule::Trcd, b.last_act + t.t_rcd as i64));
                    bounds.push((Rule::ReadToWrite, b.last_rd + t.rl as i64));
                    None
                }
            }
            CmdKind::Pre => {
                if open.is_none() {
                    Some("PRE with no open row".to_string())
                } else {
                    bounds.push((Rule::Tras, b.last_act + t.t_ras as i64));
                    bounds.push((Rule::Trtp, b.last_rd + t.t_rtp as i64));
                    bounds.push((Rule::Twr, b.last_wr + (t.wl + t.t_wr) as i64));
                    None
                }
            }
            CmdKind::Ref | CmdKind::Mrs => {
                if let Some(row) = open {
                    Some(format!("{} while row {row} is open", cmd.mnemonic()))
                } else {
                    bounds.push((Rule::Trp, b.last_pre + t.t_rp as i64));
                    bounds.push((Rule::Trfc, b.last_ref + t.t_rfc as i64));
                    None
                }
            }
        };
        if let Some(msg) = state_err {
            self.violate(
                cycle,
                Rule::BankState,
                Some(cmd),
                Some(scope),
                Some(bank),
                msg,
            );
            return;
        }
        for (rule, earliest) in bounds {
            if at < earliest {
                self.violate(
                    cycle,
                    rule,
                    Some(cmd),
                    Some(scope),
                    Some(bank),
                    format!("issued at {cycle}, earliest legal {earliest}"),
                );
            }
        }
        // Apply the command to the replay state.
        let b = &mut self.banks[bi];
        match cmd {
            CmdKind::Act { row } => {
                b.open_row = Some(row);
                b.last_act = at;
                b.hash_event(1, row);
            }
            CmdKind::Rd { .. } => b.last_rd = at,
            CmdKind::Wr { .. } => b.last_wr = at,
            CmdKind::Pre => {
                b.open_row = None;
                b.last_pre = at;
                b.hash_event(2, 0);
            }
            CmdKind::Ref => b.last_ref = at,
            CmdKind::Mrs => {}
        }
    }

    /// Close the trace at `end_cycle` and evaluate the whole-trace
    /// invariants (lockstep, trailing refresh window).
    #[must_use]
    pub fn finish(mut self, end_cycle: u64) -> CheckReport {
        if self.policy.lockstep && self.commands > 0 {
            let reference = (self.banks[0].seq_hash, self.banks[0].seq_len);
            for (bi, b) in self.banks.iter().enumerate() {
                if (b.seq_hash, b.seq_len) != reference {
                    let bank = (bi / self.banks_per_group, bi % self.banks_per_group);
                    let detail = format!(
                        "bank({},{}) saw {} ACT/PRE events, bank(0,0) saw {} — \
                         banks diverged from the lockstep row sequence",
                        bank.0, bank.1, b.seq_len, self.banks[0].seq_len
                    );
                    self.violations.push(Violation {
                        channel: self.channel,
                        cycle: end_cycle,
                        rule: Rule::Lockstep,
                        cmd: None,
                        scope: None,
                        bank: Some(bank),
                        detail,
                    });
                    break; // one divergence report per channel is enough
                }
            }
        }
        if self.policy.expect_refresh {
            let bound = REFRESH_POSTPONE_LIMIT * self.timing.t_refi;
            let since = self.last_ref_cycle.or(self.first_cycle);
            if let Some(since) = since {
                if end_cycle.saturating_sub(since) > bound {
                    let detail = match self.last_ref_cycle {
                        Some(r) => format!(
                            "no REF in the {} trailing cycles after cycle {r} (bound {bound})",
                            end_cycle - r
                        ),
                        None => format!(
                            "trace spans {} cycles with no REF at all (bound {bound})",
                            end_cycle.saturating_sub(since)
                        ),
                    };
                    self.violations.push(Violation {
                        channel: self.channel,
                        cycle: end_cycle,
                        rule: Rule::RefreshGap,
                        cmd: None,
                        scope: None,
                        bank: None,
                        detail,
                    });
                }
            }
        }
        CheckReport {
            commands: self.commands,
            violations: self.violations,
            suppressed: self.suppressed,
        }
    }
}

/// Replay a full recorded trace in one call.
///
/// `trace` yields `(issue_cycle, scope, cmd)` in trace order; `end_cycle`
/// is the cycle the run finished at (used for the trailing refresh window).
pub fn check_trace<I>(
    cfg: &HbmConfig,
    policy: CheckPolicy,
    channel: usize,
    trace: I,
    end_cycle: u64,
) -> CheckReport
where
    I: IntoIterator<Item = (u64, Scope, CmdKind)>,
{
    let mut checker = ProtocolChecker::with_policy(cfg, policy).for_channel(channel);
    for (cycle, scope, cmd) in trace {
        checker.observe(cycle, scope, cmd);
    }
    checker.finish(end_cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;

    fn cfg() -> HbmConfig {
        HbmConfig::default()
    }

    fn policy() -> CheckPolicy {
        CheckPolicy {
            lockstep: true,
            expect_refresh: false,
            max_violations: 64,
        }
    }

    /// Drive the checker from a real channel: everything the channel admits
    /// must replay clean.
    #[test]
    fn channel_issued_allbank_trace_is_clean() {
        let c = cfg();
        let mut ch = Channel::new(&c);
        let mut checker = ProtocolChecker::with_policy(&c, policy());
        let mut now = 0;
        for row in 0..3u32 {
            let a = ch
                .issue_earliest(Scope::AllBanks, CmdKind::Act { row }, now)
                .unwrap();
            checker.observe(a.issue_cycle, Scope::AllBanks, CmdKind::Act { row });
            now = a.issue_cycle;
            for col in 0..4u32 {
                let r = ch
                    .issue_earliest(Scope::AllBanks, CmdKind::Rd { col }, now)
                    .unwrap();
                checker.observe(r.issue_cycle, Scope::AllBanks, CmdKind::Rd { col });
                now = r.issue_cycle;
            }
            let p = ch
                .issue_earliest(Scope::AllBanks, CmdKind::Pre, now)
                .unwrap();
            checker.observe(p.issue_cycle, Scope::AllBanks, CmdKind::Pre);
            now = p.issue_cycle;
        }
        let report = checker.finish(now);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.commands, 3 * 6);
    }

    #[test]
    fn trcd_violation_is_caught() {
        let c = cfg();
        let t = c.timing;
        let mut k = ProtocolChecker::with_policy(&c, policy());
        k.observe(0, Scope::AllBanks, CmdKind::Act { row: 0 });
        k.observe(t.t_rcd - 1, Scope::AllBanks, CmdKind::Rd { col: 0 });
        let report = k.finish(t.t_rcd);
        assert!(report.violations.iter().any(|v| v.rule == Rule::Trcd));
    }

    #[test]
    fn tras_and_trp_violations_are_caught() {
        let c = cfg();
        let t = c.timing;
        let mut k = ProtocolChecker::with_policy(&c, policy());
        k.observe(0, Scope::AllBanks, CmdKind::Act { row: 0 });
        k.observe(t.t_ras - 1, Scope::AllBanks, CmdKind::Pre); // tRAS short
        k.observe(t.t_ras + 5, Scope::AllBanks, CmdKind::Act { row: 1 }); // tRP short
        let report = k.finish(100);
        assert!(report.violations.iter().any(|v| v.rule == Rule::Tras));
        assert!(report.violations.iter().any(|v| v.rule == Rule::Trp));
    }

    #[test]
    fn state_errors_are_caught() {
        let c = cfg();
        let mut k = ProtocolChecker::with_policy(&c, policy());
        k.observe(0, Scope::AllBanks, CmdKind::Rd { col: 0 }); // no open row
        k.observe(1, Scope::AllBanks, CmdKind::Act { row: 0 });
        k.observe(2, Scope::AllBanks, CmdKind::Act { row: 1 }); // row open
        k.observe(3, Scope::AllBanks, CmdKind::Mrs); // MRS while active
        let report = k.finish(10);
        let states = report
            .violations
            .iter()
            .filter(|v| v.rule == Rule::BankState)
            .count();
        // Each of the three illegal commands fires on all 16 banks but the
        // cap keeps one violation per (cycle, bank) pair up to the limit.
        assert!(states >= 3, "{:?}", report.violations);
    }

    #[test]
    fn bus_overflow_is_caught() {
        let c = cfg();
        let mut k = ProtocolChecker::with_policy(&c, policy());
        k.observe(5, Scope::AllBanks, CmdKind::Mrs);
        k.observe(5, Scope::AllBanks, CmdKind::Mrs);
        k.observe(5, Scope::AllBanks, CmdKind::Mrs);
        let report = k.finish(5);
        assert_eq!(
            report
                .violations
                .iter()
                .filter(|v| v.rule == Rule::BusOverflow)
                .count(),
            1
        );
    }

    #[test]
    fn perbank_act_pacing_violations_are_caught() {
        let c = cfg();
        let mut k = ProtocolChecker::with_policy(
            &c,
            CheckPolicy {
                lockstep: false,
                ..policy()
            },
        );
        k.observe(0, Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Act { row: 0 });
        // Same group too soon: tRRD_L (6); different group too soon: tRRD_S (4).
        k.observe(2, Scope::OneBank { bg: 0, ba: 1 }, CmdKind::Act { row: 0 });
        k.observe(3, Scope::OneBank { bg: 1, ba: 0 }, CmdKind::Act { row: 0 });
        let report = k.finish(50);
        assert!(report.violations.iter().any(|v| v.rule == Rule::TrrdL));
        assert!(report.violations.iter().any(|v| v.rule == Rule::TrrdS));
    }

    #[test]
    fn tfaw_violation_is_caught() {
        let c = cfg();
        let t = c.timing;
        let mut k = ProtocolChecker::with_policy(
            &c,
            CheckPolicy {
                lockstep: false,
                ..policy()
            },
        );
        // Four activations legally spread, then a fifth inside the tFAW
        // window of the first.
        let mut at = 0;
        for i in 0..4 {
            k.observe(
                at,
                Scope::OneBank {
                    bg: i % 4,
                    ba: i / 4,
                },
                CmdKind::Act { row: 0 },
            );
            at += t.t_rrd_s;
        }
        assert!(at < t.t_faw, "test assumes 4*tRRD_S < tFAW");
        k.observe(at, Scope::OneBank { bg: 0, ba: 1 }, CmdKind::Act { row: 0 });
        let report = k.finish(at);
        assert!(report.violations.iter().any(|v| v.rule == Rule::Tfaw));
    }

    #[test]
    fn allbank_columns_must_pace_at_tccd_l() {
        let c = cfg();
        let t = c.timing;
        let mut k = ProtocolChecker::with_policy(&c, policy());
        k.observe(0, Scope::AllBanks, CmdKind::Act { row: 0 });
        k.observe(t.t_rcd, Scope::AllBanks, CmdKind::Rd { col: 0 });
        // tCCD_S spacing is fine for one-bank but too tight for broadcast.
        k.observe(t.t_rcd + t.t_ccd_s, Scope::AllBanks, CmdKind::Rd { col: 1 });
        let report = k.finish(100);
        assert!(report.violations.iter().any(|v| v.rule == Rule::TccdL));
    }

    #[test]
    fn lockstep_divergence_is_caught() {
        let c = cfg();
        let mut k = ProtocolChecker::with_policy(&c, policy());
        // One bank takes a private row cycle: the lockstep premise breaks
        // even though every timing constraint is satisfied.
        k.observe(0, Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Act { row: 7 });
        k.observe(40, Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Pre);
        let report = k.finish(100);
        assert!(report.violations.iter().any(|v| v.rule == Rule::Lockstep));
    }

    #[test]
    fn lockstep_same_sequence_everywhere_is_clean() {
        let c = cfg();
        let t = c.timing;
        let mut k = ProtocolChecker::with_policy(&c, policy());
        k.observe(0, Scope::AllBanks, CmdKind::Act { row: 7 });
        k.observe(t.t_ras, Scope::AllBanks, CmdKind::Pre);
        let report = k.finish(100);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn missing_refresh_is_caught_and_scheduled_refresh_passes() {
        let c = cfg();
        let t = c.timing;
        let p = CheckPolicy {
            expect_refresh: true,
            ..policy()
        };
        let bound = REFRESH_POSTPONE_LIMIT * t.t_refi;

        // A long refresh-free trace violates the audit bound.
        let mut k = ProtocolChecker::with_policy(&c, p);
        k.observe(0, Scope::AllBanks, CmdKind::Mrs);
        let report = k.finish(bound + 10);
        assert!(report.violations.iter().any(|v| v.rule == Rule::RefreshGap));

        // REF every tREFI passes with plenty of margin.
        let mut k = ProtocolChecker::with_policy(&c, p);
        k.observe(0, Scope::AllBanks, CmdKind::Mrs);
        let mut at = t.t_refi;
        while at < 3 * bound {
            k.observe(at, Scope::AllBanks, CmdKind::Ref);
            at += t.t_refi;
        }
        let report = k.finish(at);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn refresh_too_soon_violates_trfc() {
        let c = cfg();
        let t = c.timing;
        let mut k = ProtocolChecker::with_policy(&c, policy());
        k.observe(0, Scope::AllBanks, CmdKind::Ref);
        k.observe(t.t_rfc - 1, Scope::AllBanks, CmdKind::Ref);
        let report = k.finish(t.t_rfc);
        assert!(report.violations.iter().any(|v| v.rule == Rule::Trfc));
    }

    #[test]
    fn violation_cap_suppresses_overflow() {
        let c = cfg();
        let mut k = ProtocolChecker::with_policy(
            &c,
            CheckPolicy {
                max_violations: 4,
                ..policy()
            },
        );
        for _ in 0..10 {
            // RD with no open row: one state violation per bank per call.
            k.observe(0, Scope::AllBanks, CmdKind::Rd { col: 0 });
        }
        let report = k.finish(0);
        assert_eq!(report.violations.len(), 4);
        assert!(report.suppressed > 0);
        assert!(!report.is_clean());
        assert_eq!(report.total_violations(), 4 + report.suppressed);
    }

    #[test]
    fn check_trace_convenience_matches_incremental() {
        let c = cfg();
        let t = c.timing;
        let trace = vec![
            (0, Scope::AllBanks, CmdKind::Act { row: 0 }),
            (t.t_rcd, Scope::AllBanks, CmdKind::Rd { col: 0 }),
            (t.t_rcd + t.t_ccd_l, Scope::AllBanks, CmdKind::Rd { col: 1 }),
            (t.t_ras + t.t_rtp + t.t_rcd, Scope::AllBanks, CmdKind::Pre),
        ];
        let report = check_trace(&c, policy(), 3, trace, 200);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.commands, 4);
    }

    #[test]
    fn violations_display_with_context() {
        let c = cfg();
        let mut k = ProtocolChecker::with_policy(&c, policy()).for_channel(2);
        k.observe(0, Scope::AllBanks, CmdKind::Act { row: 0 });
        k.observe(1, Scope::AllBanks, CmdKind::Rd { col: 0 });
        let report = k.finish(10);
        let text = format!("{}", report.violations[0]);
        assert!(text.contains("ch2"), "{text}");
        assert!(text.contains("tRCD"), "{text}");
    }
}
