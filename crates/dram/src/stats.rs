//! Command and traffic accounting.

use crate::command::{CmdKind, Scope};
use serde::{Deserialize, Serialize};

/// Per-channel command counters — the raw material of paper Figures 3
/// (command counts) and 14 (energy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// ACT commands issued (a broadcast counts once).
    pub acts: u64,
    /// RD commands issued.
    pub reads: u64,
    /// WR commands issued.
    pub writes: u64,
    /// PRE commands issued.
    pub pres: u64,
    /// REF commands issued.
    pub refs: u64,
    /// MRS commands issued (mode switches, kernel programming).
    pub mrs: u64,
    /// Commands issued with all-bank scope.
    pub all_bank_commands: u64,
    /// Commands issued with one-bank scope.
    pub per_bank_commands: u64,
    /// Individual bank-row activations (a broadcast ACT opens every bank,
    /// so it adds `banks_per_channel` here — this drives activate energy).
    pub bank_activations: u64,
    /// Individual bank column bursts (reads + writes × banks addressed).
    pub bank_bursts: u64,
}

impl ChannelStats {
    /// Record one issued command covering `banks` banks.
    pub fn record(&mut self, scope: Scope, cmd: CmdKind, banks: usize) {
        match cmd {
            CmdKind::Act { .. } => {
                self.acts += 1;
                self.bank_activations += banks as u64;
            }
            CmdKind::Rd { .. } => {
                self.reads += 1;
                self.bank_bursts += banks as u64;
            }
            CmdKind::Wr { .. } => {
                self.writes += 1;
                self.bank_bursts += banks as u64;
            }
            CmdKind::Pre => self.pres += 1,
            CmdKind::Ref => self.refs += 1,
            CmdKind::Mrs => self.mrs += 1,
        }
        match scope {
            Scope::AllBanks => self.all_bank_commands += 1,
            Scope::OneBank { .. } => self.per_bank_commands += 1,
        }
    }

    /// Total commands issued.
    #[must_use]
    pub fn total_commands(&self) -> u64 {
        self.acts + self.reads + self.writes + self.pres + self.refs + self.mrs
    }

    /// Merge another channel's counters into this one (cube-level totals).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.acts += other.acts;
        self.reads += other.reads;
        self.writes += other.writes;
        self.pres += other.pres;
        self.refs += other.refs;
        self.mrs += other.mrs;
        self.all_bank_commands += other.all_bank_commands;
        self.per_bank_commands += other.per_bank_commands;
        self.bank_activations += other.bank_activations;
        self.bank_bursts += other.bank_bursts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = ChannelStats::default();
        s.record(Scope::AllBanks, CmdKind::Act { row: 0 }, 16);
        s.record(Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Rd { col: 0 }, 1);
        assert_eq!(s.total_commands(), 2);
        assert_eq!(s.all_bank_commands, 1);
        assert_eq!(s.per_bank_commands, 1);
        assert_eq!(s.bank_activations, 16);
        assert_eq!(s.bank_bursts, 1);
    }

    #[test]
    fn merge_adds() {
        let mut a = ChannelStats::default();
        a.record(Scope::AllBanks, CmdKind::Wr { col: 1 }, 16);
        let mut b = ChannelStats::default();
        b.record(Scope::AllBanks, CmdKind::Mrs, 16);
        a.merge(&b);
        assert_eq!(a.writes, 1);
        assert_eq!(a.mrs, 1);
        assert_eq!(a.total_commands(), 2);
    }
}
