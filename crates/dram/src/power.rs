//! Energy model (paper §VII-F, Figure 14).
//!
//! The paper estimates power from the Samsung HBM-PIM silicon report (ref 24)
//! plus the Galal–Horowitz FPU energy data (ref 10), assuming the buffer die's
//! 1024-bit external I/O is gated off during PIM execution. We encode those
//! ballparks as per-event energies and a background term; the calibration
//! keeps all-bank SpMV streaming below the paper's 5 W HBM2 power ceiling.

use crate::stats::ChannelStats;
use serde::{Deserialize, Serialize};

/// Per-event energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One bank's row activation (per bank — a broadcast ACT pays this for
    /// every bank it opens).
    pub act_pj_per_bank: f64,
    /// One 32 B internal read burst per bank.
    pub rd_pj_per_burst: f64,
    /// One 32 B internal write burst per bank.
    pub wr_pj_per_burst: f64,
    /// Extra cost when a burst crosses the external interface (SB-mode host
    /// traffic; gated off in PIM mode).
    pub external_io_pj_per_burst: f64,
    /// One MRS command.
    pub mrs_pj: f64,
    /// One refresh.
    pub ref_pj: f64,
    /// Static background power per cube in watts (peripheral + standby).
    pub background_w: f64,
    /// One processing-unit ALU lane-operation at FP64 (scales down with
    /// narrower precisions roughly linearly in width).
    pub pu_fp64_op_pj: f64,
    /// Static power per active processing unit in watts.
    pub pu_static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            act_pj_per_bank: 400.0,
            rd_pj_per_burst: 30.0,
            wr_pj_per_burst: 34.0,
            external_io_pj_per_burst: 250.0,
            mrs_pj: 10.0,
            ref_pj: 5_000.0,
            background_w: 0.30,
            pu_fp64_op_pj: 6.0,
            pu_static_w: 0.000_5,
        }
    }
}

impl EnergyModel {
    /// DRAM energy implied by a channel's counters, in picojoules.
    /// `external_bursts` is how many of the bursts crossed the external
    /// interface (0 in PIM mode).
    #[must_use]
    pub fn dram_energy_pj(&self, stats: &ChannelStats, external_bursts: u64) -> f64 {
        stats.bank_activations as f64 * self.act_pj_per_bank
            + stats.reads as f64 * 0.0 // per-bank bursts carry the cost:
            + stats.bank_bursts as f64 * self.rd_wr_avg()
            + external_bursts as f64 * self.external_io_pj_per_burst
            + stats.mrs as f64 * self.mrs_pj
            + stats.refs as f64 * self.ref_pj
    }

    fn rd_wr_avg(&self) -> f64 {
        0.5 * (self.rd_pj_per_burst + self.wr_pj_per_burst)
    }

    /// Energy of `ops` ALU operations at an element width of `bytes`
    /// (1 for INT8 … 8 for FP64/INT64), in picojoules.
    #[must_use]
    pub fn pu_op_energy_pj(&self, bytes: usize, ops: u64) -> f64 {
        let scale = bytes as f64 / 8.0;
        ops as f64 * self.pu_fp64_op_pj * scale
    }

    /// Background (static) energy over a run, in picojoules.
    /// `active_pus` adds per-unit static power while the kernel runs.
    #[must_use]
    pub fn background_pj(&self, seconds: f64, active_pus: usize) -> f64 {
        (self.background_w + self.pu_static_w * active_pus as f64) * seconds * 1e12
    }
}

/// Accumulated energy of a run, split by source.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyStats {
    /// DRAM array + peripheral energy (pJ).
    pub dram_pj: f64,
    /// Processing-unit dynamic energy (pJ).
    pub pu_pj: f64,
    /// External interface energy (pJ).
    pub external_pj: f64,
    /// Static/background energy (pJ).
    pub background_pj: f64,
}

impl EnergyStats {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.pu_pj + self.external_pj + self.background_pj
    }

    /// Total energy in joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Average power over `seconds`, in watts.
    #[must_use]
    pub fn avg_watts(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.total_j() / seconds
    }

    /// Add another accumulation.
    pub fn merge(&mut self, other: &EnergyStats) {
        self.dram_pj += other.dram_pj;
        self.pu_pj += other.pu_pj;
        self.external_pj += other.external_pj;
        self.background_pj += other.background_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{CmdKind, Scope};

    #[test]
    fn streaming_power_stays_under_hbm2_ceiling() {
        // Full-rate all-bank streaming: one AB RD every tCCD_L = 4 ns per
        // channel, 16 channels, plus an AB ACT per 32 bursts.
        let m = EnergyModel::default();
        let seconds = 1e-3;
        let bursts_per_channel = (seconds / 4e-9) as u64;
        let mut stats = ChannelStats::default();
        for _ in 0..16u64 {
            // per channel
            let mut ch = ChannelStats::default();
            for i in 0..bursts_per_channel {
                if i % 32 == 0 {
                    ch.record(Scope::AllBanks, CmdKind::Act { row: 0 }, 16);
                }
                ch.record(Scope::AllBanks, CmdKind::Rd { col: 0 }, 16);
            }
            stats.merge(&ch);
        }
        let e = EnergyStats {
            dram_pj: m.dram_energy_pj(&stats, 0),
            pu_pj: m.pu_op_energy_pj(8, stats.bank_bursts * 4),
            background_pj: m.background_pj(seconds, 256),
            ..EnergyStats::default()
        };
        let w = e.avg_watts(seconds);
        assert!(w < 5.0, "streaming power {w:.2} W exceeds the 5 W ceiling");
        assert!(w > 1.0, "streaming power {w:.2} W implausibly low");
    }

    #[test]
    fn narrower_precisions_cost_less() {
        let m = EnergyModel::default();
        assert!(m.pu_op_energy_pj(1, 100) < m.pu_op_energy_pj(8, 100));
    }

    #[test]
    fn external_io_adds_energy() {
        let m = EnergyModel::default();
        let mut s = ChannelStats::default();
        s.record(Scope::OneBank { bg: 0, ba: 0 }, CmdKind::Rd { col: 0 }, 1);
        let internal = m.dram_energy_pj(&s, 0);
        let external = m.dram_energy_pj(&s, 1);
        assert!(external > internal);
    }

    #[test]
    fn stats_merge_and_watts() {
        let mut a = EnergyStats {
            dram_pj: 1e12,
            ..Default::default()
        };
        let b = EnergyStats {
            pu_pj: 1e12,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_j(), 2.0);
        assert_eq!(a.avg_watts(2.0), 1.0);
        assert_eq!(a.avg_watts(0.0), 0.0);
    }
}
