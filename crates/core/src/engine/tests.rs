//! Engine tests: all-bank lockstep execution, per-bank baseline, load
//! imbalance, command accounting.

use super::*;
use crate::isa::assemble;
use crate::memory::{RegionId, SENTINEL};
use crate::trace::Category;

const SPMV_ASM: &str = r"
SPMOV  SPVQ0, BANK, ROW, FP64
SPMOV  SPVQ0, BANK, COL, FP64
SPMOV  SPVQ0, BANK, VAL, FP64
INDMOV DRF2, SPVQ0, FP64
SPVDV  SPVQ1, SPVQ0, DRF2, MUL, INTER, FP64
SPVDV  BANK, SPVQ1, BANK, ADD, UNION, FP64
CEXIT  SPVQ0
JUMP   0, 0, 0
";

/// A small test cube: 2 channels × (2 bankgroups × 2 banks) = 8 banks,
/// so tests stay fast while still exercising multi-channel paths.
fn small_cfg(mode: ExecMode) -> EngineConfig {
    let hbm = HbmConfig {
        num_bankgroups: 2,
        banks_per_group: 2,
        num_pseudo_channels: 2,
        ..HbmConfig::default()
    };
    EngineConfig {
        hbm,
        mode,
        ..Default::default()
    }
}

/// Place per-bank SpMV operands: every bank gets its own entry list over a
/// shared x of length n, with index streams padded to the same length on
/// every bank (the paper's equal-rows-per-bank layout).
fn setup_spmv(
    engine: &mut Engine,
    per_bank: &[Vec<(u32, u32, f64)>],
    x: &[f64],
    n: usize,
) -> Vec<Option<RegionId>> {
    let lanes = 4; // FP64
    let max_len = per_bank
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
        .div_ceil(lanes)
        .max(1)
        * lanes;
    let mut bindings = Vec::new();
    for (b, entries) in per_bank.iter().enumerate() {
        let mut rows = vec![SENTINEL; max_len];
        let mut cols = vec![SENTINEL; max_len];
        let mut vals = vec![0.0; max_len];
        for (i, &(r, c, v)) in entries.iter().enumerate() {
            rows[i] = f64::from(r);
            cols[i] = f64::from(c);
            vals[i] = v;
        }
        let mem = engine.mem_mut(b);
        let r0 = mem.alloc("rows", 8, rows);
        let r1 = mem.alloc("cols", 8, cols);
        let r2 = mem.alloc("vals", 8, vals);
        let r3 = mem.alloc("x", 8, x.to_vec());
        let r4 = mem.alloc_zeroed("y", 8, n);
        if b == 0 {
            bindings = vec![
                Some(r0),
                Some(r1),
                Some(r2),
                Some(r3),
                None,
                Some(r4),
                None,
                None,
            ];
        }
    }
    bindings
}

fn per_bank_entries(nbanks: usize, n: usize) -> Vec<Vec<(u32, u32, f64)>> {
    (0..nbanks)
        .map(|b| {
            (0..=b)
                .map(|i| {
                    (
                        ((b + i) % n) as u32,
                        ((b * 3 + i) % n) as u32,
                        1.0 + (b * 7 + i) as f64,
                    )
                })
                .collect()
        })
        .collect()
}

fn reference_y(entries: &[(u32, u32, f64)], x: &[f64], n: usize) -> Vec<f64> {
    let mut y = vec![0.0; n];
    for &(r, c, v) in entries {
        y[r as usize] += v * x[c as usize];
    }
    y
}

#[test]
fn allbank_spmv_is_functionally_correct_on_every_bank() {
    let mut engine = Engine::new(small_cfg(ExecMode::AllBank));
    let n = 16;
    let nbanks = engine.num_banks();
    assert_eq!(nbanks, 8);
    let x: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
    let per_bank = per_bank_entries(nbanks, n);
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    let program = assemble(SPMV_ASM).unwrap();
    engine.load_kernel(program, bindings.clone()).unwrap();
    let report = engine.run().unwrap();

    for (b, entries) in per_bank.iter().enumerate() {
        let y = engine.mem(b).region(bindings[5].unwrap()).data().to_vec();
        let want = reference_y(entries, &x, n);
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9, "bank {b}: {got} vs {want}");
        }
    }
    assert!(report.dram_cycles > 0);
    assert!(report.seconds > 0.0);
    assert!(report.commands.all_bank_commands > 0);
    assert_eq!(report.commands.per_bank_commands, 0);
    assert!(report.energy.total_pj() > 0.0);
}

#[test]
fn perbank_spmv_matches_allbank_functionally() {
    let n = 16;
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();

    let mut ab = Engine::new(small_cfg(ExecMode::AllBank));
    let per_bank = per_bank_entries(ab.num_banks(), n);
    let bind_ab = setup_spmv(&mut ab, &per_bank, &x, n);
    ab.load_kernel(assemble(SPMV_ASM).unwrap(), bind_ab.clone())
        .unwrap();
    ab.run().unwrap();

    let mut pb = Engine::new(small_cfg(ExecMode::PerBank));
    let bind_pb = setup_spmv(&mut pb, &per_bank, &x, n);
    pb.load_kernel(assemble(SPMV_ASM).unwrap(), bind_pb.clone())
        .unwrap();
    pb.run().unwrap();

    for b in 0..ab.num_banks() {
        let ya = ab.mem(b).region(bind_ab[5].unwrap()).data().to_vec();
        let yb = pb.mem(b).region(bind_pb[5].unwrap()).data().to_vec();
        assert_eq!(ya, yb, "bank {b}");
    }
}

#[test]
fn perbank_issues_more_commands_and_is_slower() {
    let n = 16;
    let x = vec![1.0; n];

    let mut ab = Engine::new(small_cfg(ExecMode::AllBank));
    let per_bank = per_bank_entries(ab.num_banks(), n);
    let bind = setup_spmv(&mut ab, &per_bank, &x, n);
    ab.load_kernel(assemble(SPMV_ASM).unwrap(), bind).unwrap();
    let rep_ab = ab.run().unwrap();

    let mut pb = Engine::new(small_cfg(ExecMode::PerBank));
    let bind = setup_spmv(&mut pb, &per_bank, &x, n);
    pb.load_kernel(assemble(SPMV_ASM).unwrap(), bind).unwrap();
    let rep_pb = pb.run().unwrap();

    let cmd_ratio =
        rep_pb.commands.total_commands() as f64 / rep_ab.commands.total_commands() as f64;
    assert!(
        cmd_ratio > 1.3,
        "per-bank should need more commands (paper Fig. 3: ~2.74x), got {cmd_ratio:.2}x"
    );
    assert!(
        rep_pb.dram_cycles > rep_ab.dram_cycles,
        "per-bank {} should be slower than all-bank {}",
        rep_pb.dram_cycles,
        rep_ab.dram_cycles
    );
}

#[test]
fn imbalanced_banks_stretch_rounds_and_record_exits() {
    let mut engine = Engine::new(small_cfg(ExecMode::AllBank));
    let n = 16;
    let nbanks = engine.num_banks();
    let x = vec![1.0; n];
    // Bank 0 gets 1 entry; the last bank gets 40.
    let mut per_bank: Vec<Vec<(u32, u32, f64)>> = vec![vec![(0, 0, 1.0)]; nbanks];
    per_bank[nbanks - 1] = (0..40)
        .map(|i| ((i % 16) as u32, (i % 16) as u32, 1.0))
        .collect();
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    // 40 entries at 4 lanes = 10 iterations minimum on the heavy bank.
    assert!(report.rounds >= 10, "rounds = {}", report.rounds);
    // The light bank exits earlier than the heavy one.
    let light_exit = engine.pu(0).stats().exit_round;
    let heavy_exit = engine.pu(nbanks - 1).stats().exit_round;
    assert!(light_exit < heavy_exit, "{light_exit} vs {heavy_exit}");
    assert_eq!(report.pu.exit_round, heavy_exit);
}

#[test]
fn run_without_kernel_errors() {
    let mut engine = Engine::new(small_cfg(ExecMode::AllBank));
    assert!(matches!(engine.run(), Err(CoreError::Execution(_))));
}

#[test]
fn active_pus_counts_working_banks() {
    let mut engine = Engine::new(small_cfg(ExecMode::AllBank));
    let n = 8;
    let nbanks = engine.num_banks();
    let x = vec![1.0; n];
    // Only banks 0 and 3 have work.
    let mut per_bank: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); nbanks];
    per_bank[0] = vec![(0, 0, 2.0)];
    per_bank[3] = vec![(1, 1, 3.0), (2, 2, 4.0)];
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    // Banks without entries still execute the (no-op) loads of round 1;
    // active = performed at least one productive mem op, which includes
    // the no-op-consuming loads, so check the productive lower bound.
    assert!(report.active_pus >= 2);
}

#[test]
fn trace_records_ordered_commands_when_enabled() {
    let mut cfg = small_cfg(ExecMode::AllBank);
    cfg.record_trace = true;
    let mut engine = Engine::new(cfg);
    let n = 8;
    let nbanks = engine.num_banks();
    let x = vec![1.0; n];
    let per_bank = per_bank_entries(nbanks, n);
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    assert!(!report.trace.is_empty());
    assert_eq!(report.trace.len() as u64, report.commands.total_commands());
    // Per channel, cycles are non-decreasing and the stream starts with the
    // MRS setup sequence.
    for ch in 0..2 {
        let evs: Vec<_> = report.trace.iter().filter(|e| e.channel == ch).collect();
        assert!(evs.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(matches!(evs[0].cmd, psim_dram::CmdKind::Mrs));
        // An ACT precedes the first RD.
        let first_rd = evs
            .iter()
            .position(|e| matches!(e.cmd, psim_dram::CmdKind::Rd { .. }));
        let first_act = evs
            .iter()
            .position(|e| matches!(e.cmd, psim_dram::CmdKind::Act { .. }));
        assert!(first_act.unwrap() < first_rd.unwrap());
    }
    // Default config records nothing.
    let mut engine2 = Engine::new(small_cfg(ExecMode::AllBank));
    let bindings2 = setup_spmv(&mut engine2, &per_bank, &x, n);
    engine2
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings2)
        .unwrap();
    assert!(engine2.run().unwrap().trace.is_empty());
}

#[test]
fn trace_limit_caps_events_and_counts_drops() {
    let mut cfg = small_cfg(ExecMode::AllBank);
    cfg.record_trace = true;
    cfg.trace_limit = 10;
    let mut engine = Engine::new(cfg);
    let n = 8;
    let per_bank = per_bank_entries(engine.num_banks(), n);
    let x = vec![1.0; n];
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    // 10 per channel × 2 channels recorded; the rest counted, not stored.
    assert_eq!(report.trace.len(), 20);
    assert!(report.trace_dropped > 0);
    assert_eq!(
        report.trace.len() as u64 + report.trace_dropped,
        report.commands.total_commands()
    );
}

#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let run = |workers: usize, trace: bool| {
        let mut cfg = small_cfg(ExecMode::AllBank);
        cfg.record_trace = trace;
        cfg.attribute = true;
        let mut engine = Engine::new(cfg);
        let n = 16;
        let per_bank = per_bank_entries(engine.num_banks(), n);
        let x: Vec<f64> = (0..n).map(|i| 0.25 + i as f64).collect();
        let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
        engine
            .load_kernel(assemble(SPMV_ASM).unwrap(), bindings.clone())
            .unwrap();
        let report = if workers == 1 {
            engine.run().unwrap()
        } else {
            engine.run_parallel(workers).unwrap()
        };
        let ys: Vec<Vec<f64>> = (0..engine.num_banks())
            .map(|b| engine.mem(b).region(bindings[5].unwrap()).data().to_vec())
            .collect();
        (report, ys)
    };
    let (serial, ys_serial) = run(1, true);
    for workers in [2, 4, 7] {
        let (parallel, ys_par) = run(workers, true);
        assert_eq!(serial, parallel, "{workers} workers");
        assert_eq!(ys_serial, ys_par, "{workers} workers");
    }
}

#[test]
fn attribution_conserves_cycles_in_both_modes() {
    for mode in [ExecMode::AllBank, ExecMode::PerBank] {
        let mut cfg = small_cfg(mode);
        cfg.attribute = true;
        let mut engine = Engine::new(cfg);
        let n = 16;
        let per_bank = per_bank_entries(engine.num_banks(), n);
        let x: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
        let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
        engine
            .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
            .unwrap();
        let report = engine.run().unwrap();
        let metrics = report.metrics.as_ref().expect("attribution enabled");
        let failures = metrics.conservation_failures();
        assert!(failures.is_empty(), "{mode:?}: {failures:?}");
        assert_eq!(metrics.channels.len(), 2, "{mode:?}");
        for ch in &metrics.channels {
            assert!(ch.cycles > 0, "{mode:?}");
            assert_eq!(ch.bus.total(), ch.cycles, "{mode:?} bus");
            for (i, pu) in ch.pu.iter().enumerate() {
                assert_eq!(pu.total(), ch.cycles, "{mode:?} pu {i}");
                assert!(pu.get(Category::Busy) > 0, "{mode:?} pu {i} never busy");
            }
        }
        // The slowest channel's bus view spans the full reported runtime.
        assert_eq!(metrics.wall().total(), report.dram_cycles, "{mode:?}");
    }
}

#[test]
fn attribution_defaults_off_and_reports_no_metrics() {
    let cfg = small_cfg(ExecMode::AllBank);
    assert!(!cfg.attribute);
    let mut engine = Engine::new(cfg);
    let n = 8;
    let per_bank = per_bank_entries(engine.num_banks(), n);
    let x = vec![1.0; n];
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    assert!(engine.run().unwrap().metrics.is_none());
}

#[test]
fn attribution_event_limit_counts_drops_instead_of_truncating() {
    let run = |limit: usize| {
        let mut cfg = small_cfg(ExecMode::AllBank);
        cfg.attribute = true;
        cfg.event_limit = limit;
        let mut engine = Engine::new(cfg);
        let n = 16;
        // Imbalanced work so light banks stream empty iterations, which
        // generate queue-empty stall events every round after they drain.
        let nbanks = engine.num_banks();
        let mut per_bank: Vec<Vec<(u32, u32, f64)>> = vec![vec![(0, 0, 1.0)]; nbanks];
        per_bank[nbanks - 1] = (0..40)
            .map(|i| ((i % 16) as u32, (i % 16) as u32, 1.0))
            .collect();
        let x = vec![1.0; n];
        let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
        engine
            .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
            .unwrap();
        engine.run().unwrap().metrics.unwrap()
    };
    let full = run(1 << 20);
    assert_eq!(full.events_dropped, 0);
    assert!(!full.events.is_empty(), "expected stall events");
    let capped = run(1);
    assert_eq!(capped.events.len(), 1);
    assert!(capped.events_dropped > 0);
    assert_eq!(
        capped.events.len() as u64 + capped.events_dropped,
        full.events.len() as u64,
        "drops must account for every suppressed event"
    );
    // Stall accounting itself is unaffected by the event cap.
    assert_eq!(full.channels, capped.channels);
}

#[test]
fn dense_kernel_runs_on_all_banks() {
    // DCOPY 64 elements per bank via jump counts.
    let asm = r"
DMOV DRF0, BANK, FP64
DMOV BANK, DRF0, FP64
JUMP 0, 1, 15
EXIT
";
    let mut engine = Engine::new(small_cfg(ExecMode::AllBank));
    let nbanks = engine.num_banks();
    let mut bindings = Vec::new();
    for b in 0..nbanks {
        let src: Vec<f64> = (0..64).map(|i| (b * 100 + i) as f64).collect();
        let mem = engine.mem_mut(b);
        let rs = mem.alloc("src", 8, src);
        let rd = mem.alloc_zeroed("dst", 8, 64);
        if b == 0 {
            bindings = vec![Some(rs), Some(rd), None, None];
        }
    }
    engine
        .load_kernel(assemble(asm).unwrap(), bindings.clone())
        .unwrap();
    let report = engine.run().unwrap();
    for b in 0..nbanks {
        let dst = engine.mem(b).region(bindings[1].unwrap()).data().to_vec();
        let want: Vec<f64> = (0..64).map(|i| (b * 100 + i) as f64).collect();
        assert_eq!(dst, want, "bank {b}");
    }
    // 16 iterations × 2 commands + setup/teardown.
    assert!(report.commands.reads >= 16 * 2);
}

#[test]
fn refresh_taxes_bandwidth_when_enabled() {
    let build = |refresh: bool| {
        let mut cfg = small_cfg(ExecMode::AllBank);
        cfg.refresh = refresh;
        let mut engine = Engine::new(cfg);
        let n = 16;
        let nbanks = engine.num_banks();
        let x = vec![1.0; n];
        // Enough work that several tREFI windows elapse.
        let per_bank: Vec<Vec<(u32, u32, f64)>> = (0..nbanks)
            .map(|b| {
                (0..800)
                    .map(|i| (((b + i) % n) as u32, ((b * 3 + i) % n) as u32, 1.0))
                    .collect()
            })
            .collect();
        let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
        engine
            .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
            .unwrap();
        engine.run().unwrap()
    };
    let without = build(false);
    let with = build(true);
    assert_eq!(without.commands.refs, 0);
    assert!(with.commands.refs > 0, "expected refreshes to be issued");
    assert!(
        with.dram_cycles > without.dram_cycles,
        "refresh must cost cycles: {} vs {}",
        with.dram_cycles,
        without.dram_cycles
    );
    // tREFI spacing: roughly one REF per channel per tREFI of runtime.
    let expected = without.dram_cycles / 3_900;
    assert!(
        with.commands.refs >= expected.saturating_sub(2) * 2,
        "refs {} vs expected ~{} per channel",
        with.commands.refs,
        expected
    );
}

#[test]
fn bandwidth_utilization_is_positive_and_bounded() {
    let mut engine = Engine::new(small_cfg(ExecMode::AllBank));
    let n = 16;
    let nbanks = engine.num_banks();
    let x = vec![1.0; n];
    let per_bank: Vec<Vec<(u32, u32, f64)>> = (0..nbanks)
        .map(|b| {
            (0..64)
                .map(|i| (((b + i) % n) as u32, (i % n) as u32, 1.0))
                .collect()
        })
        .collect();
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    let cfg = &engine.config().hbm;
    assert!(report.data_bytes(cfg) > 0);
    let util = report.internal_utilization(cfg);
    assert!(util > 0.0 && util < 1.0, "utilization {util}");
}

#[test]
fn validated_runs_are_protocol_clean_in_both_modes() {
    for mode in [ExecMode::AllBank, ExecMode::PerBank] {
        let mut cfg = small_cfg(mode);
        cfg.validate = true;
        let mut engine = Engine::new(cfg);
        let n = 16;
        let nbanks = engine.num_banks();
        let x = vec![1.0; n];
        // Enough work that refresh windows elapse, so the checker audits
        // the refresh contract too (refresh defaults to on).
        let per_bank: Vec<Vec<(u32, u32, f64)>> = (0..nbanks)
            .map(|b| {
                (0..400)
                    .map(|i| (((b + i) % n) as u32, ((b * 3 + i) % n) as u32, 1.0))
                    .collect()
            })
            .collect();
        let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
        engine
            .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
            .unwrap();
        let report = engine.run().unwrap();
        assert!(
            report.violations.is_empty(),
            "{mode:?}: {:?}",
            report.violations
        );
        assert_eq!(report.violations_suppressed, 0, "{mode:?}");
        assert!(
            report.pu_audit.is_empty(),
            "{mode:?}: {:?}",
            report.pu_audit
        );
        assert_eq!(report.violation_count(), 0, "{mode:?}");
    }
}

#[test]
fn validation_defaults_off_and_reports_nothing() {
    let cfg = small_cfg(ExecMode::AllBank);
    assert!(!cfg.validate);
    let mut engine = Engine::new(cfg);
    let n = 8;
    let per_bank = per_bank_entries(engine.num_banks(), n);
    let x = vec![1.0; n];
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    assert!(report.violations.is_empty());
    assert!(report.pu_audit.is_empty());
}

#[test]
fn perbank_refresh_issues_refs_on_long_runs() {
    // Refresh defaults to on and applies to the per-bank baseline too:
    // rows close, one all-bank REF is issued, and the run stays legal.
    let mut cfg = small_cfg(ExecMode::PerBank);
    cfg.validate = true;
    assert!(cfg.refresh, "refresh must default to on");
    let mut engine = Engine::new(cfg);
    let n = 16;
    let nbanks = engine.num_banks();
    let x = vec![1.0; n];
    let per_bank: Vec<Vec<(u32, u32, f64)>> = (0..nbanks)
        .map(|b| {
            (0..400)
                .map(|i| (((b + i) % n) as u32, ((b * 3 + i) % n) as u32, 1.0))
                .collect()
        })
        .collect();
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    assert!(report.commands.refs > 0, "expected REFs in per-bank mode");
    assert_eq!(report.violation_count(), 0, "{:?}", report.violations);
}

#[test]
fn pu_audit_flags_inconsistent_claims() {
    let mut engine = Engine::new(small_cfg(ExecMode::AllBank));
    let n = 8;
    let per_bank = per_bank_entries(engine.num_banks(), n);
    let x = vec![1.0; n];
    let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
    engine
        .load_kernel(assemble(SPMV_ASM).unwrap(), bindings)
        .unwrap();
    let report = engine.run().unwrap();
    // Auditing the real run against its own command stats is clean.
    assert!(engine.audit_pus(report.rounds, &report.commands).is_empty());
    // Auditing against an impossible claim (zero rounds, zero bursts)
    // flags both the exit rounds and the mem-op budget.
    let audit = engine.audit_pus(0, &psim_dram::ChannelStats::default());
    assert!(
        audit.iter().any(|f| f.contains("exceeds executed rounds")),
        "{audit:?}"
    );
    assert!(audit.iter().any(|f| f.contains("bank bursts")), "{audit:?}");
}

#[test]
fn event_tier_is_bit_identical_to_tick() {
    // Full-report equality (cycles, commands, energy, trace, attribution,
    // checker findings) plus final memory equality, across both exec
    // modes and both serial and parallel execution, with every auditing
    // feature enabled so nothing is compared away.
    let run = |mode: ExecMode, tier: EngineTier, workers: usize| {
        let mut cfg = small_cfg(mode);
        cfg.record_trace = true;
        cfg.attribute = true;
        cfg.validate = true;
        cfg.tier = tier;
        let mut engine = Engine::new(cfg);
        let n = 16;
        let per_bank = per_bank_entries(engine.num_banks(), n);
        let x: Vec<f64> = (0..n).map(|i| 0.25 + i as f64).collect();
        let bindings = setup_spmv(&mut engine, &per_bank, &x, n);
        engine
            .load_kernel(assemble(SPMV_ASM).unwrap(), bindings.clone())
            .unwrap();
        let report = if workers == 1 {
            engine.run().unwrap()
        } else {
            engine.run_parallel(workers).unwrap()
        };
        let ys: Vec<Vec<f64>> = (0..engine.num_banks())
            .map(|b| engine.mem(b).region(bindings[5].unwrap()).data().to_vec())
            .collect();
        (report, ys)
    };
    for mode in [ExecMode::AllBank, ExecMode::PerBank] {
        let (tick, ys_tick) = run(mode, EngineTier::Tick, 1);
        assert_eq!(tick.violation_count(), 0, "{mode:?} tick must be clean");
        for workers in [1usize, 3] {
            let (event, ys_event) = run(mode, EngineTier::Event, workers);
            assert_eq!(tick, event, "{mode:?}, {workers} workers");
            assert_eq!(ys_tick, ys_event, "{mode:?}, {workers} workers");
        }
    }
}

#[test]
fn engine_tier_from_env_defaults_to_tick() {
    // Guard the default: an unset/garbage PSIM_ENGINE must leave the
    // reference tier in charge (the fast path is opt-in).
    assert_eq!(EngineTier::default(), EngineTier::Tick);
    assert_eq!(EngineConfig::default().tier, EngineTier::Tick);
}
