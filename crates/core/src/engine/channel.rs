//! Pure per-channel kernel execution.
//!
//! The paper's channels execute independently — the cube's wall-clock is
//! the slowest channel — so per-channel replay is written as a pure
//! function over `(&Program, channel state)`: shared read-only inputs in
//! [`ChannelCtx`] plus this channel's disjoint `&mut` slices of processing
//! units and bank memories. [`Engine::run`](super::Engine::run) replays
//! channels serially; [`Engine::run_parallel`](super::Engine::run_parallel)
//! and the `psim-sched` executor fan the same function out across scoped
//! worker threads, merging [`ChannelOutcome`]s in channel order so the
//! result is bit-identical either way.

use super::{EngineConfig, EngineTier, ExecMode, TraceEvent};
use crate::error::CoreError;
use crate::isa::Program;
use crate::memory::{BankMemory, Binding};
use crate::pu::{ProcessingUnit, StepOutcome, StepReport, DRAM_CYCLES_PER_PU_CYCLE};
use crate::trace::{Category, ChannelMetrics, CycleBreakdown, StallEvent};
use psim_dram::{
    AbChannel, Channel, ChannelStats, CheckPolicy, CheckReport, CmdKind, IssueError, Issued,
    ProtocolChecker, Scope,
};

/// Read-only inputs shared by every channel of one kernel execution.
pub(super) struct ChannelCtx<'a> {
    /// Engine configuration (timing, mode, trace policy).
    pub cfg: &'a EngineConfig,
    /// The loaded kernel.
    pub program: &'a Program,
    /// Derived per-iteration command schedule.
    pub schedule: &'a [usize],
    /// Per-slot region bindings.
    pub bindings: &'a [Option<Binding>],
}

/// Everything one channel's replay produces, merged by the engine in
/// channel order.
pub(super) struct ChannelOutcome {
    /// Channel-local wall-clock in DRAM command cycles.
    pub cycles: u64,
    /// Command counters.
    pub stats: ChannelStats,
    /// Kernel loop iterations.
    pub rounds: u64,
    /// Recorded commands (empty unless tracing).
    pub trace: Vec<TraceEvent>,
    /// Commands not recorded because the trace hit
    /// [`EngineConfig::trace_limit`].
    pub trace_dropped: u64,
    /// Independent protocol-checker verdict (`Some` only when
    /// [`EngineConfig::validate`] is set).
    pub check: Option<CheckReport>,
    /// psim-trace cycle attribution (`Some` only when
    /// [`EngineConfig::attribute`] is set).
    pub metrics: Option<ChannelMetrics>,
    /// Recorded stall events (empty unless attribution is on).
    pub stall_events: Vec<StallEvent>,
    /// Stalls beyond [`EngineConfig::event_limit`], counted not stored.
    pub stall_events_dropped: u64,
}

/// Per-channel cycle-attribution accumulator. The replay's timeline is
/// monotone (all-bank: `now`; per-bank: each bank's `ready` plus the bus
/// `floor`), so attribution keeps one cursor per PU and one for the bus
/// and classifies every cursor advance as it happens — the categories sum
/// to the channel wall-clock by construction.
struct Attr {
    channel: usize,
    bus: CycleBreakdown,
    pu: Vec<CycleBreakdown>,
    bus_last: u64,
    pu_last: Vec<u64>,
    events: Vec<StallEvent>,
    event_limit: usize,
    events_dropped: u64,
}

impl Attr {
    fn new(channel: usize, nbanks: usize, event_limit: usize) -> Self {
        Attr {
            channel,
            bus: CycleBreakdown::default(),
            pu: vec![CycleBreakdown::default(); nbanks],
            bus_last: 0,
            pu_last: vec![0; nbanks],
            events: Vec::new(),
            event_limit,
            events_dropped: 0,
        }
    }

    /// Advance the bus cursor to `to`, attributing the span to `cat`.
    fn bus_span(&mut self, to: u64, cat: Category) {
        self.bus.add(cat, to - self.bus_last);
        self.bus_last = to;
    }

    /// Advance one PU's cursor to `to`, attributing the span to `cat`.
    fn pu_span(&mut self, i: usize, to: u64, cat: Category) {
        self.pu[i].add(cat, to - self.pu_last[i]);
        self.pu_last[i] = to;
    }

    /// Advance every cursor to `to` (all-bank lockstep spans): the bus
    /// gets `cat`; a PU that has already exited idles post-CEXIT instead.
    ///
    /// Exit state comes from the driver's consumed-offer flags, not the
    /// units themselves: the event tier's interpreter runs ahead of the
    /// timing loop, so `pus[i].exited()` may already be true for a unit
    /// that (on the command timeline) has offers still in flight.
    fn span_all(&mut self, to: u64, cat: Category, exited: &[bool]) {
        self.bus_span(to, cat);
        for (i, &ex) in exited.iter().enumerate() {
            let c = if ex { Category::PostExitIdle } else { cat };
            self.pu_span(i, to, c);
        }
    }

    /// Attribute one data command's span for one PU: up to the PU's own
    /// work is Busy; the remainder goes to the outcome's stall category.
    #[allow(clippy::too_many_arguments)]
    fn pu_data(
        &mut self,
        i: usize,
        issue: u64,
        end: u64,
        rep: &StepReport,
        round: u64,
        slot: usize,
    ) {
        let delta = end - self.pu_last[i];
        if rep.outcome == StepOutcome::Exited {
            self.pu[i].add(Category::PostExitIdle, delta);
        } else {
            let busy = delta.min(rep.pu_cycles * DRAM_CYCLES_PER_PU_CYCLE);
            self.pu[i].add(Category::Busy, busy);
            let rest = delta - busy;
            let cat = match rep.outcome {
                StepOutcome::Executed => Category::LockstepWait,
                StepOutcome::ExecutedEmpty => Category::QueueEmptyStall,
                StepOutcome::OutOfPhase => Category::PredicatedOff,
                StepOutcome::QueueFull => Category::QueueFullStall,
                StepOutcome::Exited => unreachable!("handled above"),
            };
            self.pu[i].add(cat, rest);
            if matches!(
                rep.outcome,
                StepOutcome::ExecutedEmpty | StepOutcome::QueueFull
            ) {
                let kind = if rep.outcome == StepOutcome::QueueFull {
                    Category::QueueFullStall
                } else {
                    Category::QueueEmptyStall
                };
                self.event(StallEvent {
                    channel: self.channel,
                    bank: i,
                    round,
                    slot,
                    cycle: issue,
                    kind,
                });
            }
        }
        self.pu_last[i] = end;
    }

    /// Attribute one all-bank data command: the bus is Busy up to the
    /// issue cycle; any back-pressure drag past it is LockstepWait. Each
    /// PU splits its span via [`Attr::pu_data`].
    fn data_all(&mut self, issue: u64, end: u64, steps: &[StepReport], round: u64, slot: usize) {
        self.bus.add(Category::Busy, issue - self.bus_last);
        self.bus.add(Category::LockstepWait, end - issue);
        self.bus_last = end;
        for (i, rep) in steps.iter().enumerate() {
            self.pu_data(i, issue, end, rep, round, slot);
        }
    }

    fn event(&mut self, ev: StallEvent) {
        if self.events.len() < self.event_limit {
            self.events.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Close the books at the channel wall-clock: residual PU time is
    /// post-CEXIT idle (per-bank lanes drain at different times), residual
    /// bus time is back-pressure drag.
    fn finish(mut self, cycles: u64) -> (ChannelMetrics, Vec<StallEvent>, u64) {
        self.bus.add(Category::LockstepWait, cycles - self.bus_last);
        for i in 0..self.pu.len() {
            self.pu[i].add(Category::PostExitIdle, cycles - self.pu_last[i]);
        }
        (
            ChannelMetrics {
                cycles,
                bus: self.bus,
                pu: self.pu,
            },
            self.events,
            self.events_dropped,
        )
    }
}

/// Build the outcome's attribution fields from a finished accumulator.
fn finish_attr(attr: Option<Attr>, cycles: u64) -> (Option<ChannelMetrics>, Vec<StallEvent>, u64) {
    match attr {
        Some(a) => {
            let (m, e, d) = a.finish(cycles);
            (Some(m), e, d)
        }
        None => (None, Vec::new(), 0),
    }
}

/// Bounded command-trace sink: records up to `limit` events and counts the
/// overflow instead of growing without bound on long kernels.
struct TraceBuf {
    events: Vec<TraceEvent>,
    limit: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceBuf {
    fn new(cfg: &EngineConfig) -> Self {
        TraceBuf {
            events: Vec::new(),
            limit: cfg.trace_limit,
            dropped: 0,
            enabled: cfg.record_trace,
        }
    }

    fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.limit {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// The channel model behind a replay, selected by
/// [`EngineConfig::tier`](super::EngineConfig): the tick tier's two-pass
/// earliest+issue full channel, or the event tier's single-pass variants —
/// the representative-bank [`AbChannel`] for all-bank lockstep, the full
/// channel's fused `issue_earliest_fast` for per-bank scopes. All three
/// pick identical cycles (cross-checked in `psim_dram::fastab`), so the
/// command stream is tier-independent.
enum Issuer {
    Tick(Channel),
    Fast(Channel),
    FastAb(AbChannel),
}

impl Issuer {
    fn new(cfg: &EngineConfig) -> Self {
        match (cfg.tier, cfg.mode) {
            (EngineTier::Tick, _) => Issuer::Tick(Channel::new(&cfg.hbm)),
            (EngineTier::Event, ExecMode::AllBank) => Issuer::FastAb(AbChannel::new(&cfg.hbm)),
            (EngineTier::Event, ExecMode::PerBank) => Issuer::Fast(Channel::new(&cfg.hbm)),
        }
    }

    fn issue_earliest(
        &mut self,
        scope: Scope,
        cmd: CmdKind,
        from: u64,
    ) -> Result<Issued, IssueError> {
        match self {
            Issuer::Tick(c) => c.issue_earliest(scope, cmd, from),
            Issuer::Fast(c) => c.issue_earliest_fast(scope, cmd, from),
            Issuer::FastAb(c) => {
                debug_assert!(matches!(scope, Scope::AllBanks));
                c.issue_earliest(cmd, from)
            }
        }
    }

    fn stats(&self) -> &ChannelStats {
        match self {
            Issuer::Tick(c) | Issuer::Fast(c) => c.stats(),
            Issuer::FastAb(c) => c.stats(),
        }
    }
}

/// Issue a command, optionally recording it and feeding it to the
/// independent protocol checker.
fn issue_traced(
    channel: &mut Issuer,
    trace: &mut TraceBuf,
    checker: &mut Option<ProtocolChecker>,
    ch: usize,
    scope: Scope,
    cmd: CmdKind,
    from: u64,
) -> Result<psim_dram::Issued, IssueError> {
    let issued = channel.issue_earliest(scope, cmd, from)?;
    trace.record(TraceEvent {
        channel: ch,
        cycle: issued.issue_cycle,
        scope,
        cmd,
    });
    if let Some(c) = checker.as_mut() {
        c.observe(issued.issue_cycle, scope, cmd);
    }
    Ok(issued)
}

/// An independent checker for this channel when self-auditing is on. The
/// lockstep invariant only applies to all-bank execution; refresh is
/// audited exactly when the engine models it.
fn make_checker(cfg: &EngineConfig, ch: usize) -> Option<ProtocolChecker> {
    cfg.validate.then(|| {
        ProtocolChecker::with_policy(
            &cfg.hbm,
            CheckPolicy {
                lockstep: matches!(cfg.mode, ExecMode::AllBank),
                expect_refresh: cfg.refresh,
                ..CheckPolicy::default()
            },
        )
        .for_channel(ch)
    })
}

/// Element width/advance for the engine's open-row cursor at a slot.
fn slot_advance(ins: &crate::isa::Instruction) -> (usize, usize) {
    use crate::isa::{Instruction as I, Operand};
    match *ins {
        I::Dmov {
            dst: Operand::Srf, ..
        }
        | I::Dmov {
            src: Operand::Srf, ..
        } => (8, 1),
        I::Dmov { precision, .. } | I::SpMov { precision, .. } => {
            (precision.bytes(), precision.lanes())
        }
        I::GthSct {
            dst: Operand::Bank, ..
        } => (8, 0), // scatter is random within the open row
        I::GthSct { precision, .. } => (precision.bytes(), precision.lanes()),
        I::SpFw { precision, .. } => (precision.bytes(), 3 * precision.lanes()),
        // Gathers/accumulates address randomly within their (single-row)
        // region; the cursor stays at the region head.
        I::IndMov { .. } | I::SpVdv { .. } => (8, 0),
        _ => (8, 0),
    }
}

/// Resolve a slot's cursor to the DRAM row to open and the column within
/// it. Shared by every replay path (tick/event × all-bank/per-bank) so the
/// four formerly-duplicated decode sites cannot drift apart, and checked:
/// a cursor that has run past the `u32` row space aborts the run instead
/// of silently truncating into a bogus row.
fn decode_slot_addr(
    start_row: u32,
    cursor: usize,
    elem_bytes: usize,
    row_bytes: usize,
    col_bytes: usize,
) -> Result<(u32, u32), CoreError> {
    let overflow = |byte_off: usize| {
        CoreError::Execution(format!(
            "slot byte offset {byte_off} (cursor {cursor} x {elem_bytes} B from row \
             {start_row}) overflows the DRAM row address space"
        ))
    };
    let byte_off = cursor
        .checked_mul(elem_bytes)
        .ok_or_else(|| overflow(usize::MAX))?;
    let want_row = u32::try_from(byte_off / row_bytes)
        .ok()
        .and_then(|r| start_row.checked_add(r))
        .ok_or_else(|| overflow(byte_off))?;
    let col = u32::try_from((byte_off % row_bytes) / col_bytes)
        .expect("column index is bounded by columns per row");
    Ok((want_row, col))
}

/// A parked-slot cache entry meaning "unknown / not parked": the next
/// offer must go through the interpreter.
const NOT_PARKED: usize = usize::MAX;

/// Tier-agnostic PU stepping front-end.
///
/// Under partially synchronous execution every offer a bank sees is
/// determined by the fixed cyclic command schedule alone — the timing loop
/// decides *when* commands issue, never *which* PU steps next. The tick
/// tier steps the interpreter on every offer. The event tier skips it
/// whenever the outcome is already known without running it:
///
/// * a live unit parked at memory slot `m` ([`ProcessingUnit::parked_memory_slot`])
///   offered any `slot != m` only bumps `predicated_off` and reports
///   `OutOfPhase` — synthesized here from the cached parked slot;
/// * an exited unit only bumps `predicated_off` and reports `Exited`.
///
/// Everything else (the schedule reaching the parked slot) steps the
/// alloc-free interpreter ([`ProcessingUnit::on_command_fast`]) and
/// refreshes the cache. Most offers in a partially synchronous stream are
/// predications — the whole point of the execution model — so this removes
/// the interpreter from the common case entirely.
///
/// `exited`/`live` track exit state *as consumed by the timing loop* —
/// exactly what `pus[i].exited()` reads as on the tick path — so round
/// bookkeeping, attribution and loop termination are tier-independent.
struct PuDriver<'a> {
    pus: &'a mut [ProcessingUnit],
    mems: &'a mut [BankMemory],
    exited: Vec<bool>,
    live: usize,
    /// Event tier only: per-bank parked memory slot, [`NOT_PARKED`] when
    /// the unit must be stepped through the interpreter.
    parked: Option<Vec<usize>>,
}

impl<'a> PuDriver<'a> {
    fn new(tier: EngineTier, pus: &'a mut [ProcessingUnit], mems: &'a mut [BankMemory]) -> Self {
        let n = pus.len();
        PuDriver {
            pus,
            mems,
            exited: vec![false; n],
            live: n,
            parked: matches!(tier, EngineTier::Event).then(|| vec![NOT_PARKED; n]),
        }
    }

    /// Run every unit's free prelude (control/compute instructions before
    /// the first memory slot) and record prelude exits.
    fn prelude(&mut self) {
        for b in 0..self.pus.len() {
            self.pus[b].run_free(&mut self.mems[b]);
            if self.pus[b].exited() {
                self.exited[b] = true;
                self.live -= 1;
            } else if let Some(parked) = &mut self.parked {
                parked[b] = self.pus[b].parked_memory_slot().unwrap_or(NOT_PARKED);
            }
        }
    }

    /// Offer the command at `slot` to bank `b` and return its report.
    /// Updates the consumed-offer exit flags; exit-*round* bookkeeping
    /// stays with the caller (the two exec modes time-stamp it
    /// differently).
    fn step(&mut self, b: usize, slot: usize) -> StepReport {
        let Some(parked) = &mut self.parked else {
            let rep = self.pus[b].on_command(slot, &mut self.mems[b]);
            if !self.exited[b] && self.pus[b].exited() {
                self.exited[b] = true;
                self.live -= 1;
            }
            return rep;
        };
        if self.exited[b] {
            // Post-exit offers on the tick path still run the interpreter
            // far enough to count a predication; reproduce the count.
            self.pus[b].note_predicated_off(1);
            return StepReport {
                executed: false,
                pu_cycles: 0,
                outcome: StepOutcome::Exited,
            };
        }
        let m = parked[b];
        if m != NOT_PARKED && m != slot {
            // Parked unit, foreign slot: a pure predication (see
            // `parked_memory_slot`); the interpreter would change nothing
            // but this counter.
            self.pus[b].note_predicated_off(1);
            return StepReport {
                executed: false,
                pu_cycles: 0,
                outcome: StepOutcome::OutOfPhase,
            };
        }
        let rep = self.pus[b].on_command_fast(slot, &mut self.mems[b]);
        if self.pus[b].exited() {
            self.exited[b] = true;
            self.live -= 1;
        } else {
            parked[b] = self.pus[b].parked_memory_slot().unwrap_or(NOT_PARKED);
        }
        rep
    }
}

/// Replay channel `ch` of the kernel to completion over this channel's
/// banks. `pus`/`mems` are the channel's slice of the cube (bank `i` of
/// the channel at index `i`); no state outside the slices is touched, so
/// disjoint channels may run concurrently.
pub(super) fn run_channel(
    ctx: &ChannelCtx<'_>,
    ch: usize,
    pus: &mut [ProcessingUnit],
    mems: &mut [BankMemory],
) -> Result<ChannelOutcome, CoreError> {
    match ctx.cfg.mode {
        ExecMode::AllBank => run_channel_allbank(ctx, ch, pus, mems),
        ExecMode::PerBank => run_channel_perbank(ctx, ch, pus, mems),
    }
}

fn run_channel_allbank(
    ctx: &ChannelCtx<'_>,
    ch: usize,
    pus: &mut [ProcessingUnit],
    mems: &mut [BankMemory],
) -> Result<ChannelOutcome, CoreError> {
    let cfg = ctx.cfg;
    let program = ctx.program;
    let mut channel = Issuer::new(cfg);
    let mut trace = TraceBuf::new(cfg);
    let mut checker = make_checker(cfg, ch);
    let row_bytes = cfg.hbm.row_bytes();
    let col_bytes = cfg.hbm.col_bytes;
    let nbanks = pus.len();
    let mut driver = PuDriver::new(cfg.tier, pus, mems);
    let mut attr = cfg
        .attribute
        .then(|| Attr::new(ch, nbanks, cfg.event_limit));
    let mut step_buf: Vec<StepReport> = Vec::with_capacity(if attr.is_some() { nbanks } else { 0 });
    let mut now: u64 = 0;

    // Mode switching (SB→AB→AB-PIM) + CRF programming as MRS commands.
    let setup_cmds = 2 * psim_dram::mode::SWITCH_SEQUENCE_LEN + program.len();
    for _ in 0..setup_cmds {
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            CmdKind::Mrs,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }
    if let Some(a) = attr.as_mut() {
        a.span_all(now, Category::Setup, &driver.exited);
    }

    driver.prelude();

    let t_refi = cfg.hbm.timing.t_refi;
    let mut next_refresh = now + t_refi;
    let mut cursors: Vec<usize> = (0..program.len())
        .map(|slot| {
            ctx.bindings
                .get(slot)
                .copied()
                .flatten()
                .map_or(0, |b| b.offset)
        })
        .collect();
    let mut open_row: Option<u32> = None;
    let mut rounds = 0u64;
    // Read-latency depth the command pipeline hides: PU consumption of
    // burst k overlaps issue of burst k+1.
    let pipeline = cfg.hbm.timing.rl + 1;
    let mut pu_free: u64 = 0;

    'outer: loop {
        if driver.live == 0 {
            break;
        }
        rounds += 1;
        if rounds > cfg.max_rounds {
            return Err(CoreError::Execution(format!(
                "kernel exceeded {} rounds without exiting",
                cfg.max_rounds
            )));
        }
        for &slot in ctx.schedule {
            if cfg.refresh && now >= next_refresh {
                if open_row.is_some() {
                    now = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        Scope::AllBanks,
                        CmdKind::Pre,
                        now,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                    open_row = None;
                }
                now = issue_traced(
                    &mut channel,
                    &mut trace,
                    &mut checker,
                    ch,
                    Scope::AllBanks,
                    CmdKind::Ref,
                    now,
                )
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
                next_refresh = now + t_refi;
                if let Some(a) = attr.as_mut() {
                    a.span_all(now, Category::RefreshShadow, &driver.exited);
                }
            }
            let ins = &program[slot];
            let binding = ctx.bindings[slot].expect("validated at load");
            let region_id = binding.region;
            let (elem_bytes, natural) = slot_advance(ins);
            let advance = binding.stride.unwrap_or(natural);
            // Engine-side open-row bookkeeping uses the first bank's
            // layout; all banks allocate regions identically (equal
            // rows/bank).
            let start_row = driver.mems[0].region(region_id).start_row();
            let (want_row, col) =
                decode_slot_addr(start_row, cursors[slot], elem_bytes, row_bytes, col_bytes)?;
            if open_row != Some(want_row) {
                if open_row.is_some() {
                    now = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        Scope::AllBanks,
                        CmdKind::Pre,
                        now,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                }
                now = issue_traced(
                    &mut channel,
                    &mut trace,
                    &mut checker,
                    ch,
                    Scope::AllBanks,
                    CmdKind::Act { row: want_row },
                    now,
                )
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
                open_row = Some(want_row);
                if let Some(a) = attr.as_mut() {
                    a.span_all(now, Category::RowSwitchWait, &driver.exited);
                }
            }
            let kind = if ins.writes_bank() {
                CmdKind::Wr { col }
            } else {
                CmdKind::Rd { col }
            };
            let issued = issue_traced(
                &mut channel,
                &mut trace,
                &mut checker,
                ch,
                Scope::AllBanks,
                kind,
                now,
            )
            .map_err(|e| CoreError::Execution(e.to_string()))?;
            now = issued.issue_cycle;

            let mut max_busy = 0u64;
            if attr.is_some() {
                step_buf.clear();
            }
            for b in 0..nbanks {
                let was_exited = driver.exited[b];
                let rep = driver.step(b, slot);
                max_busy = max_busy.max(rep.pu_cycles);
                if !was_exited && driver.exited[b] {
                    driver.pus[b].mark_exit_round(rounds);
                }
                if attr.is_some() {
                    step_buf.push(rep);
                }
            }
            // Lockstep back-pressure with pipelining: the slowest PU
            // consumes burst k while burst k+1 is in flight; only a PU
            // that falls behind the read latency stalls the bus.
            pu_free = pu_free.max(issued.data_cycle) + max_busy * DRAM_CYCLES_PER_PU_CYCLE;
            now = now.max(pu_free.saturating_sub(pipeline));
            cursors[slot] += advance;
            if let Some(a) = attr.as_mut() {
                a.data_all(issued.issue_cycle, now, &step_buf, rounds, slot);
            }

            if driver.live == 0 {
                break 'outer;
            }
        }
        // Host completion poll once per iteration: a column read of the
        // status location while a row is open (HBM-PIM style polling), an
        // MRS register read otherwise — MRS is illegal with an open row.
        let poll = if open_row.is_some() {
            CmdKind::Rd { col: 0 }
        } else {
            CmdKind::Mrs
        };
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            poll,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
        if let Some(a) = attr.as_mut() {
            a.span_all(now, Category::HostSync, &driver.exited);
        }
    }
    // PUs that exited during the free prelude never went through the
    // in-round exit bookkeeping; mark_exit_round is idempotent.
    for pu in driver.pus.iter_mut() {
        if pu.exited() {
            pu.mark_exit_round(rounds);
        }
    }
    if open_row.is_some() {
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            CmdKind::Pre,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }
    // Switch back to SB mode.
    for _ in 0..2 * psim_dram::mode::SWITCH_SEQUENCE_LEN {
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            CmdKind::Mrs,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }
    if let Some(a) = attr.as_mut() {
        // Teardown precharge + SB switch: bus does setup work, every PU
        // (all exited by now) idles post-CEXIT via span_all.
        a.span_all(now, Category::Setup, &driver.exited);
    }
    let (metrics, stall_events, stall_events_dropped) = finish_attr(attr, now);
    Ok(ChannelOutcome {
        cycles: now,
        stats: *channel.stats(),
        rounds,
        trace: trace.events,
        trace_dropped: trace.dropped,
        check: checker.map(|c| c.finish(now)),
        metrics,
        stall_events,
        stall_events_dropped,
    })
}

/// Per-bank round-robin issue state (one per bank of the channel).
struct BankCtl {
    sched_idx: usize,
    rounds: u64,
    cursors: Vec<usize>,
    open_row: Option<u32>,
    ready: u64,
    pu_free: u64,
}

fn run_channel_perbank(
    ctx: &ChannelCtx<'_>,
    ch: usize,
    pus: &mut [ProcessingUnit],
    mems: &mut [BankMemory],
) -> Result<ChannelOutcome, CoreError> {
    let cfg = ctx.cfg;
    let program = ctx.program;
    let schedule = ctx.schedule;
    let mut channel = Issuer::new(cfg);
    let mut trace = TraceBuf::new(cfg);
    let mut checker = make_checker(cfg, ch);
    let row_bytes = cfg.hbm.row_bytes();
    let col_bytes = cfg.hbm.col_bytes;
    let nbanks = pus.len();
    let banks_per_group = cfg.hbm.banks_per_group;
    let mut driver = PuDriver::new(cfg.tier, pus, mems);
    let mut attr = cfg
        .attribute
        .then(|| Attr::new(ch, nbanks, cfg.event_limit));

    // Per-bank setup: each bank's CRF is programmed individually.
    let mut now: u64 = 0;
    let setup_cmds = (2 * psim_dram::mode::SWITCH_SEQUENCE_LEN + program.len()) * nbanks;
    for i in 0..setup_cmds {
        let b = i % nbanks;
        let scope = Scope::OneBank {
            bg: b / banks_per_group,
            ba: b % banks_per_group,
        };
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            scope,
            CmdKind::Mrs,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }
    if let Some(a) = attr.as_mut() {
        a.span_all(now, Category::Setup, &driver.exited);
    }

    let init_cursors: Vec<usize> = (0..program.len())
        .map(|slot| {
            ctx.bindings
                .get(slot)
                .copied()
                .flatten()
                .map_or(0, |b| b.offset)
        })
        .collect();
    let pipeline = cfg.hbm.timing.rl + 1;
    let mut ctls: Vec<BankCtl> = (0..nbanks)
        .map(|_| BankCtl {
            sched_idx: 0,
            rounds: 0,
            cursors: init_cursors.clone(),
            open_row: None,
            ready: now,
            pu_free: 0,
        })
        .collect();
    driver.prelude();

    let t_refi = cfg.hbm.timing.t_refi;
    let mut next_refresh = now + t_refi;
    let mut floor = now;
    let mut max_rounds = 0u64;
    loop {
        // Refresh is a channel-global event even in per-bank mode: close
        // every open row, then issue one all-bank REF that stalls all
        // per-bank streams for tRFC.
        if cfg.refresh && floor >= next_refresh {
            for (i, ctl) in ctls.iter_mut().enumerate() {
                if ctl.open_row.is_some() {
                    let scope = Scope::OneBank {
                        bg: i / banks_per_group,
                        ba: i % banks_per_group,
                    };
                    let from = ctl.ready.max(floor);
                    let p = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        scope,
                        CmdKind::Pre,
                        from,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                    floor = floor.max(p);
                    ctl.open_row = None;
                    ctl.ready = ctl.ready.max(p);
                }
            }
            let r = issue_traced(
                &mut channel,
                &mut trace,
                &mut checker,
                ch,
                Scope::AllBanks,
                CmdKind::Ref,
                floor,
            )
            .map_err(|e| CoreError::Execution(e.to_string()))?
            .issue_cycle;
            for ctl in &mut ctls {
                ctl.ready = ctl.ready.max(r);
            }
            floor = floor.max(r);
            next_refresh = r + t_refi;
            if let Some(a) = attr.as_mut() {
                a.bus_span(floor, Category::RefreshShadow);
                for (i, ctl) in ctls.iter().enumerate() {
                    let c = if driver.exited[i] {
                        Category::PostExitIdle
                    } else {
                        Category::RefreshShadow
                    };
                    a.pu_span(i, ctl.ready, c);
                }
            }
        }
        let mut any_active = false;
        for (i, ctl) in ctls.iter_mut().enumerate() {
            if driver.exited[i] {
                continue;
            }
            any_active = true;
            if ctl.rounds > cfg.max_rounds {
                return Err(CoreError::Execution(format!(
                    "per-bank kernel exceeded {} rounds",
                    cfg.max_rounds
                )));
            }
            let slot = schedule[ctl.sched_idx];
            let ins = &program[slot];
            let binding = ctx.bindings[slot].expect("validated at load");
            let region_id = binding.region;
            let (elem_bytes, natural) = slot_advance(ins);
            let advance = binding.stride.unwrap_or(natural);
            let start_row = driver.mems[i].region(region_id).start_row();
            let (want_row, col) = decode_slot_addr(
                start_row,
                ctl.cursors[slot],
                elem_bytes,
                row_bytes,
                col_bytes,
            )?;
            let scope = Scope::OneBank {
                bg: i / banks_per_group,
                ba: i % banks_per_group,
            };
            let mut t = ctl.ready.max(floor);
            if let Some(a) = attr.as_mut() {
                // The bank waited for the shared command bus to reach it.
                a.pu_span(i, t, Category::LockstepWait);
            }
            let mut switched_at: Option<u64> = None;
            if ctl.open_row != Some(want_row) {
                if ctl.open_row.is_some() {
                    t = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        scope,
                        CmdKind::Pre,
                        t,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                }
                t = issue_traced(
                    &mut channel,
                    &mut trace,
                    &mut checker,
                    ch,
                    scope,
                    CmdKind::Act { row: want_row },
                    t,
                )
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
                ctl.open_row = Some(want_row);
                switched_at = Some(t);
            }
            let kind = if ins.writes_bank() {
                CmdKind::Wr { col }
            } else {
                CmdKind::Rd { col }
            };
            let issued = issue_traced(&mut channel, &mut trace, &mut checker, ch, scope, kind, t)
                .map_err(|e| CoreError::Execution(e.to_string()))?;
            floor = floor.max(issued.issue_cycle);

            let rep = driver.step(i, slot);
            ctl.pu_free =
                ctl.pu_free.max(issued.data_cycle) + rep.pu_cycles * DRAM_CYCLES_PER_PU_CYCLE;
            ctl.ready = issued.issue_cycle.max(ctl.pu_free.saturating_sub(pipeline));
            ctl.cursors[slot] += advance;
            if let Some(a) = attr.as_mut() {
                if let Some(ts) = switched_at {
                    a.pu_span(i, ts, Category::RowSwitchWait);
                }
                // Bus-view split of this bank's floor advance: the part up
                // to the row activation is row switching, the rest is
                // issue work.
                let bus_delta = floor - a.bus_last;
                let row_part =
                    switched_at.map_or(0, |ts| ts.saturating_sub(a.bus_last).min(bus_delta));
                a.bus.add(Category::RowSwitchWait, row_part);
                a.bus.add(Category::Busy, bus_delta - row_part);
                a.bus_last = floor;
                a.pu_data(i, issued.issue_cycle, ctl.ready, &rep, ctl.rounds, slot);
            }
            ctl.sched_idx += 1;
            if ctl.sched_idx == schedule.len() {
                ctl.sched_idx = 0;
                ctl.rounds += 1;
                max_rounds = max_rounds.max(ctl.rounds);
            }
            if driver.exited[i] {
                driver.pus[i].mark_exit_round(ctl.rounds);
            }
        }
        if !any_active {
            break;
        }
    }
    // PUs that exited during the free prelude were skipped by the issue
    // loop and never recorded an exit round; mark_exit_round is
    // idempotent.
    for (pu, ctl) in driver.pus.iter_mut().zip(ctls.iter()) {
        if pu.exited() {
            pu.mark_exit_round(ctl.rounds);
        }
    }
    let end = ctls
        .iter()
        .map(|c| c.ready)
        .max()
        .unwrap_or(floor)
        .max(floor);
    let (metrics, stall_events, stall_events_dropped) = finish_attr(attr, end);
    Ok(ChannelOutcome {
        cycles: end,
        stats: *channel.stats(),
        rounds: max_rounds,
        trace: trace.events,
        trace_dropped: trace.dropped,
        check: checker.map(|c| c.finish(end)),
        metrics,
        stall_events,
        stall_events_dropped,
    })
}
