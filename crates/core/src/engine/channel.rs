//! Pure per-channel kernel execution.
//!
//! The paper's channels execute independently — the cube's wall-clock is
//! the slowest channel — so per-channel replay is written as a pure
//! function over `(&Program, channel state)`: shared read-only inputs in
//! [`ChannelCtx`] plus this channel's disjoint `&mut` slices of processing
//! units and bank memories. [`Engine::run`](super::Engine::run) replays
//! channels serially; [`Engine::run_parallel`](super::Engine::run_parallel)
//! and the `psim-sched` executor fan the same function out across scoped
//! worker threads, merging [`ChannelOutcome`]s in channel order so the
//! result is bit-identical either way.

use super::{EngineConfig, ExecMode, TraceEvent};
use crate::error::CoreError;
use crate::isa::Program;
use crate::memory::{BankMemory, Binding};
use crate::pu::{ProcessingUnit, DRAM_CYCLES_PER_PU_CYCLE};
use psim_dram::{
    Channel, ChannelStats, CheckPolicy, CheckReport, CmdKind, IssueError, ProtocolChecker, Scope,
};

/// Read-only inputs shared by every channel of one kernel execution.
pub(super) struct ChannelCtx<'a> {
    /// Engine configuration (timing, mode, trace policy).
    pub cfg: &'a EngineConfig,
    /// The loaded kernel.
    pub program: &'a Program,
    /// Derived per-iteration command schedule.
    pub schedule: &'a [usize],
    /// Per-slot region bindings.
    pub bindings: &'a [Option<Binding>],
}

/// Everything one channel's replay produces, merged by the engine in
/// channel order.
pub(super) struct ChannelOutcome {
    /// Channel-local wall-clock in DRAM command cycles.
    pub cycles: u64,
    /// Command counters.
    pub stats: ChannelStats,
    /// Kernel loop iterations.
    pub rounds: u64,
    /// Recorded commands (empty unless tracing).
    pub trace: Vec<TraceEvent>,
    /// Commands not recorded because the trace hit
    /// [`EngineConfig::trace_limit`].
    pub trace_dropped: u64,
    /// Independent protocol-checker verdict (`Some` only when
    /// [`EngineConfig::validate`] is set).
    pub check: Option<CheckReport>,
}

/// Bounded command-trace sink: records up to `limit` events and counts the
/// overflow instead of growing without bound on long kernels.
struct TraceBuf {
    events: Vec<TraceEvent>,
    limit: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceBuf {
    fn new(cfg: &EngineConfig) -> Self {
        TraceBuf {
            events: Vec::new(),
            limit: cfg.trace_limit,
            dropped: 0,
            enabled: cfg.record_trace,
        }
    }

    fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.limit {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// Issue a command, optionally recording it and feeding it to the
/// independent protocol checker.
fn issue_traced(
    channel: &mut Channel,
    trace: &mut TraceBuf,
    checker: &mut Option<ProtocolChecker>,
    ch: usize,
    scope: Scope,
    cmd: CmdKind,
    from: u64,
) -> Result<psim_dram::Issued, IssueError> {
    let issued = channel.issue_earliest(scope, cmd, from)?;
    trace.record(TraceEvent {
        channel: ch,
        cycle: issued.issue_cycle,
        scope,
        cmd,
    });
    if let Some(c) = checker.as_mut() {
        c.observe(issued.issue_cycle, scope, cmd);
    }
    Ok(issued)
}

/// An independent checker for this channel when self-auditing is on. The
/// lockstep invariant only applies to all-bank execution; refresh is
/// audited exactly when the engine models it.
fn make_checker(cfg: &EngineConfig, ch: usize) -> Option<ProtocolChecker> {
    cfg.validate.then(|| {
        ProtocolChecker::with_policy(
            &cfg.hbm,
            CheckPolicy {
                lockstep: matches!(cfg.mode, ExecMode::AllBank),
                expect_refresh: cfg.refresh,
                ..CheckPolicy::default()
            },
        )
        .for_channel(ch)
    })
}

/// Element width/advance for the engine's open-row cursor at a slot.
fn slot_advance(ins: &crate::isa::Instruction) -> (usize, usize) {
    use crate::isa::{Instruction as I, Operand};
    match *ins {
        I::Dmov {
            dst: Operand::Srf, ..
        }
        | I::Dmov {
            src: Operand::Srf, ..
        } => (8, 1),
        I::Dmov { precision, .. } | I::SpMov { precision, .. } => {
            (precision.bytes(), precision.lanes())
        }
        I::GthSct {
            dst: Operand::Bank, ..
        } => (8, 0), // scatter is random within the open row
        I::GthSct { precision, .. } => (precision.bytes(), precision.lanes()),
        I::SpFw { precision, .. } => (precision.bytes(), 3 * precision.lanes()),
        // Gathers/accumulates address randomly within their (single-row)
        // region; the cursor stays at the region head.
        I::IndMov { .. } | I::SpVdv { .. } => (8, 0),
        _ => (8, 0),
    }
}

/// Replay channel `ch` of the kernel to completion over this channel's
/// banks. `pus`/`mems` are the channel's slice of the cube (bank `i` of
/// the channel at index `i`); no state outside the slices is touched, so
/// disjoint channels may run concurrently.
pub(super) fn run_channel(
    ctx: &ChannelCtx<'_>,
    ch: usize,
    pus: &mut [ProcessingUnit],
    mems: &mut [BankMemory],
) -> Result<ChannelOutcome, CoreError> {
    match ctx.cfg.mode {
        ExecMode::AllBank => run_channel_allbank(ctx, ch, pus, mems),
        ExecMode::PerBank => run_channel_perbank(ctx, ch, pus, mems),
    }
}

fn run_channel_allbank(
    ctx: &ChannelCtx<'_>,
    ch: usize,
    pus: &mut [ProcessingUnit],
    mems: &mut [BankMemory],
) -> Result<ChannelOutcome, CoreError> {
    let cfg = ctx.cfg;
    let program = ctx.program;
    let mut channel = Channel::new(&cfg.hbm);
    let mut trace = TraceBuf::new(cfg);
    let mut checker = make_checker(cfg, ch);
    let row_bytes = cfg.hbm.row_bytes();
    let col_bytes = cfg.hbm.col_bytes;
    let nbanks = pus.len();
    let mut now: u64 = 0;

    // Mode switching (SB→AB→AB-PIM) + CRF programming as MRS commands.
    let setup_cmds = 2 * psim_dram::mode::SWITCH_SEQUENCE_LEN + program.len();
    for _ in 0..setup_cmds {
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            CmdKind::Mrs,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }

    for b in 0..nbanks {
        pus[b].run_free(&mut mems[b]);
    }

    let t_refi = cfg.hbm.timing.t_refi;
    let mut next_refresh = now + t_refi;
    let mut cursors: Vec<usize> = (0..program.len())
        .map(|slot| {
            ctx.bindings
                .get(slot)
                .copied()
                .flatten()
                .map_or(0, |b| b.offset)
        })
        .collect();
    let mut open_row: Option<u32> = None;
    let mut rounds = 0u64;
    // Read-latency depth the command pipeline hides: PU consumption of
    // burst k overlaps issue of burst k+1.
    let pipeline = cfg.hbm.timing.rl + 1;
    let mut pu_free: u64 = 0;

    'outer: loop {
        if pus.iter().all(ProcessingUnit::exited) {
            break;
        }
        rounds += 1;
        if rounds > cfg.max_rounds {
            return Err(CoreError::Execution(format!(
                "kernel exceeded {} rounds without exiting",
                cfg.max_rounds
            )));
        }
        for &slot in ctx.schedule {
            if cfg.refresh && now >= next_refresh {
                if open_row.is_some() {
                    now = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        Scope::AllBanks,
                        CmdKind::Pre,
                        now,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                    open_row = None;
                }
                now = issue_traced(
                    &mut channel,
                    &mut trace,
                    &mut checker,
                    ch,
                    Scope::AllBanks,
                    CmdKind::Ref,
                    now,
                )
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
                next_refresh = now + t_refi;
            }
            let ins = &program[slot];
            let binding = ctx.bindings[slot].expect("validated at load");
            let region_id = binding.region;
            let (elem_bytes, natural) = slot_advance(ins);
            let advance = binding.stride.unwrap_or(natural);
            // Engine-side open-row bookkeeping uses the first bank's
            // layout; all banks allocate regions identically (equal
            // rows/bank).
            let region = mems[0].region(region_id);
            let byte_off = cursors[slot] * elem_bytes;
            let want_row = region.start_row() + (byte_off / row_bytes) as u32;
            if open_row != Some(want_row) {
                if open_row.is_some() {
                    now = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        Scope::AllBanks,
                        CmdKind::Pre,
                        now,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                }
                now = issue_traced(
                    &mut channel,
                    &mut trace,
                    &mut checker,
                    ch,
                    Scope::AllBanks,
                    CmdKind::Act { row: want_row },
                    now,
                )
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
                open_row = Some(want_row);
            }
            let col = ((byte_off % row_bytes) / col_bytes) as u32;
            let kind = if ins.writes_bank() {
                CmdKind::Wr { col }
            } else {
                CmdKind::Rd { col }
            };
            let issued = issue_traced(
                &mut channel,
                &mut trace,
                &mut checker,
                ch,
                Scope::AllBanks,
                kind,
                now,
            )
            .map_err(|e| CoreError::Execution(e.to_string()))?;
            now = issued.issue_cycle;

            let mut max_busy = 0u64;
            for b in 0..nbanks {
                let was_exited = pus[b].exited();
                let rep = pus[b].on_command(slot, &mut mems[b]);
                max_busy = max_busy.max(rep.pu_cycles);
                if !was_exited && pus[b].exited() {
                    pus[b].mark_exit_round(rounds);
                }
            }
            // Lockstep back-pressure with pipelining: the slowest PU
            // consumes burst k while burst k+1 is in flight; only a PU
            // that falls behind the read latency stalls the bus.
            pu_free = pu_free.max(issued.data_cycle) + max_busy * DRAM_CYCLES_PER_PU_CYCLE;
            now = now.max(pu_free.saturating_sub(pipeline));
            cursors[slot] += advance;

            if pus.iter().all(ProcessingUnit::exited) {
                break 'outer;
            }
        }
        // Host completion poll once per iteration: a column read of the
        // status location while a row is open (HBM-PIM style polling), an
        // MRS register read otherwise — MRS is illegal with an open row.
        let poll = if open_row.is_some() {
            CmdKind::Rd { col: 0 }
        } else {
            CmdKind::Mrs
        };
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            poll,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }
    // PUs that exited during the free prelude never went through the
    // in-round exit bookkeeping; mark_exit_round is idempotent.
    for pu in pus.iter_mut() {
        if pu.exited() {
            pu.mark_exit_round(rounds);
        }
    }
    if open_row.is_some() {
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            CmdKind::Pre,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }
    // Switch back to SB mode.
    for _ in 0..2 * psim_dram::mode::SWITCH_SEQUENCE_LEN {
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            Scope::AllBanks,
            CmdKind::Mrs,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }
    Ok(ChannelOutcome {
        cycles: now,
        stats: *channel.stats(),
        rounds,
        trace: trace.events,
        trace_dropped: trace.dropped,
        check: checker.map(|c| c.finish(now)),
    })
}

/// Per-bank round-robin issue state (one per bank of the channel).
struct BankCtl {
    sched_idx: usize,
    rounds: u64,
    cursors: Vec<usize>,
    open_row: Option<u32>,
    ready: u64,
    pu_free: u64,
}

fn run_channel_perbank(
    ctx: &ChannelCtx<'_>,
    ch: usize,
    pus: &mut [ProcessingUnit],
    mems: &mut [BankMemory],
) -> Result<ChannelOutcome, CoreError> {
    let cfg = ctx.cfg;
    let program = ctx.program;
    let schedule = ctx.schedule;
    let mut channel = Channel::new(&cfg.hbm);
    let mut trace = TraceBuf::new(cfg);
    let mut checker = make_checker(cfg, ch);
    let row_bytes = cfg.hbm.row_bytes();
    let col_bytes = cfg.hbm.col_bytes;
    let nbanks = pus.len();
    let banks_per_group = cfg.hbm.banks_per_group;

    // Per-bank setup: each bank's CRF is programmed individually.
    let mut now: u64 = 0;
    let setup_cmds = (2 * psim_dram::mode::SWITCH_SEQUENCE_LEN + program.len()) * nbanks;
    for i in 0..setup_cmds {
        let b = i % nbanks;
        let scope = Scope::OneBank {
            bg: b / banks_per_group,
            ba: b % banks_per_group,
        };
        now = issue_traced(
            &mut channel,
            &mut trace,
            &mut checker,
            ch,
            scope,
            CmdKind::Mrs,
            now,
        )
        .map_err(|e| CoreError::Execution(e.to_string()))?
        .issue_cycle;
    }

    let init_cursors: Vec<usize> = (0..program.len())
        .map(|slot| {
            ctx.bindings
                .get(slot)
                .copied()
                .flatten()
                .map_or(0, |b| b.offset)
        })
        .collect();
    let pipeline = cfg.hbm.timing.rl + 1;
    let mut ctls: Vec<BankCtl> = (0..nbanks)
        .map(|_| BankCtl {
            sched_idx: 0,
            rounds: 0,
            cursors: init_cursors.clone(),
            open_row: None,
            ready: now,
            pu_free: 0,
        })
        .collect();
    for b in 0..nbanks {
        pus[b].run_free(&mut mems[b]);
    }

    let t_refi = cfg.hbm.timing.t_refi;
    let mut next_refresh = now + t_refi;
    let mut floor = now;
    let mut max_rounds = 0u64;
    loop {
        // Refresh is a channel-global event even in per-bank mode: close
        // every open row, then issue one all-bank REF that stalls all
        // per-bank streams for tRFC.
        if cfg.refresh && floor >= next_refresh {
            for (i, ctl) in ctls.iter_mut().enumerate() {
                if ctl.open_row.is_some() {
                    let scope = Scope::OneBank {
                        bg: i / banks_per_group,
                        ba: i % banks_per_group,
                    };
                    let from = ctl.ready.max(floor);
                    let p = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        scope,
                        CmdKind::Pre,
                        from,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                    floor = floor.max(p);
                    ctl.open_row = None;
                    ctl.ready = ctl.ready.max(p);
                }
            }
            let r = issue_traced(
                &mut channel,
                &mut trace,
                &mut checker,
                ch,
                Scope::AllBanks,
                CmdKind::Ref,
                floor,
            )
            .map_err(|e| CoreError::Execution(e.to_string()))?
            .issue_cycle;
            for ctl in &mut ctls {
                ctl.ready = ctl.ready.max(r);
            }
            floor = floor.max(r);
            next_refresh = r + t_refi;
        }
        let mut any_active = false;
        for i in 0..nbanks {
            if pus[i].exited() {
                continue;
            }
            any_active = true;
            let ctl = &mut ctls[i];
            if ctl.rounds > cfg.max_rounds {
                return Err(CoreError::Execution(format!(
                    "per-bank kernel exceeded {} rounds",
                    cfg.max_rounds
                )));
            }
            let slot = schedule[ctl.sched_idx];
            let ins = &program[slot];
            let binding = ctx.bindings[slot].expect("validated at load");
            let region_id = binding.region;
            let (elem_bytes, natural) = slot_advance(ins);
            let advance = binding.stride.unwrap_or(natural);
            let region = mems[i].region(region_id);
            let byte_off = ctl.cursors[slot] * elem_bytes;
            let want_row = region.start_row() + (byte_off / row_bytes) as u32;
            let scope = Scope::OneBank {
                bg: i / banks_per_group,
                ba: i % banks_per_group,
            };
            let mut t = ctl.ready.max(floor);
            if ctl.open_row != Some(want_row) {
                if ctl.open_row.is_some() {
                    t = issue_traced(
                        &mut channel,
                        &mut trace,
                        &mut checker,
                        ch,
                        scope,
                        CmdKind::Pre,
                        t,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                }
                t = issue_traced(
                    &mut channel,
                    &mut trace,
                    &mut checker,
                    ch,
                    scope,
                    CmdKind::Act { row: want_row },
                    t,
                )
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
                ctl.open_row = Some(want_row);
            }
            let col = ((byte_off % row_bytes) / col_bytes) as u32;
            let kind = if ins.writes_bank() {
                CmdKind::Wr { col }
            } else {
                CmdKind::Rd { col }
            };
            let issued = issue_traced(&mut channel, &mut trace, &mut checker, ch, scope, kind, t)
                .map_err(|e| CoreError::Execution(e.to_string()))?;
            floor = floor.max(issued.issue_cycle);

            let rep = pus[i].on_command(slot, &mut mems[i]);
            ctl.pu_free =
                ctl.pu_free.max(issued.data_cycle) + rep.pu_cycles * DRAM_CYCLES_PER_PU_CYCLE;
            ctl.ready = issued.issue_cycle.max(ctl.pu_free.saturating_sub(pipeline));
            ctl.cursors[slot] += advance;
            ctl.sched_idx += 1;
            if ctl.sched_idx == schedule.len() {
                ctl.sched_idx = 0;
                ctl.rounds += 1;
                max_rounds = max_rounds.max(ctl.rounds);
            }
            if pus[i].exited() {
                pus[i].mark_exit_round(ctl.rounds);
            }
        }
        if !any_active {
            break;
        }
    }
    // PUs that exited during the free prelude were skipped by the issue
    // loop and never recorded an exit round; mark_exit_round is
    // idempotent.
    for (pu, ctl) in pus.iter_mut().zip(ctls.iter()) {
        if pu.exited() {
            pu.mark_exit_round(ctl.rounds);
        }
    }
    let end = ctls
        .iter()
        .map(|c| c.ready)
        .max()
        .unwrap_or(floor)
        .max(floor);
    Ok(ChannelOutcome {
        cycles: end,
        stats: *channel.stats(),
        rounds: max_rounds,
        trace: trace.events,
        trace_dropped: trace.dropped,
        check: checker.map(|c| c.finish(end)),
    })
}
