//! Binary encoding of the ISA (paper Figure 5).
//!
//! Every instruction is 4 bytes. B-format field layout:
//! `OpCode[31:28] Dst[27:25] Src0[24:22] Src1[21:19] Value[18:15]
//! Binary[14:11] S[10] Idx[9:8] Idnt[7:6]`; C-format:
//! `OpCode[31:28] Imm0[23:16] Order[15:10] Imm1[9:0]`.

use super::{
    precision_code, precision_from_code, BinaryOp, Identity, Instruction, Operand, SetMode,
    SubQueue,
};
use crate::error::CoreError;

// Opcode assignments (4 bits, 15 instructions + unused 15).
const OP_NOP: u32 = 0;
const OP_JUMP: u32 = 1;
const OP_EXIT: u32 = 2;
const OP_CEXIT: u32 = 3;
const OP_DMOV: u32 = 4;
const OP_INDMOV: u32 = 5;
const OP_SPMOV: u32 = 6;
const OP_SPFW: u32 = 7;
const OP_GTHSCT: u32 = 8;
const OP_SDV: u32 = 9;
const OP_SSPV: u32 = 10;
const OP_REDUCE: u32 = 11;
const OP_DVDV: u32 = 12;
const OP_SPVDV: u32 = 13;
const OP_SPVSPV: u32 = 14;

#[allow(clippy::too_many_arguments)]
fn b_format(
    op: u32,
    dst: u32,
    src0: u32,
    src1: u32,
    value: u32,
    binary: u32,
    s: u32,
    idx: u32,
    idnt: u32,
) -> u32 {
    (op << 28)
        | (dst << 25)
        | (src0 << 22)
        | (src1 << 19)
        | (value << 15)
        | (binary << 11)
        | (s << 10)
        | (idx << 8)
        | (idnt << 6)
}

fn c_format(op: u32, imm0: u32, order: u32, imm1: u32) -> u32 {
    (op << 28) | (imm0 << 16) | (order << 10) | imm1
}

impl Instruction {
    /// Encode to the 32-bit machine word.
    ///
    /// # Errors
    ///
    /// [`CoreError::Encode`] when an immediate exceeds its field width.
    pub fn encode(&self) -> Result<u32, CoreError> {
        Ok(match *self {
            Instruction::Nop => c_format(OP_NOP, 0, 0, 0),
            Instruction::Jump {
                target,
                order,
                count,
            } => {
                if order >= 32 {
                    return Err(CoreError::Encode(format!("jump ORDER {order} >= 32")));
                }
                if count >= 1024 {
                    return Err(CoreError::Encode(format!("jump count {count} >= 1024")));
                }
                c_format(
                    OP_JUMP,
                    u32::from(target),
                    u32::from(order),
                    u32::from(count),
                )
            }
            Instruction::Exit => c_format(OP_EXIT, 0, 0, 0),
            Instruction::CExit { queue } => {
                if queue >= 3 {
                    return Err(CoreError::Encode(format!("CEXIT queue {queue} >= 3")));
                }
                c_format(OP_CEXIT, 0, 0, u32::from(queue))
            }
            Instruction::Dmov {
                dst,
                src,
                precision,
            } => b_format(
                OP_DMOV,
                dst.code(),
                src.code(),
                0,
                precision_code(precision),
                0,
                0,
                0,
                0,
            ),
            Instruction::IndMov {
                dst,
                idx_queue,
                precision,
            } => {
                if idx_queue >= 3 {
                    return Err(CoreError::Encode(format!("IndMOV queue {idx_queue} >= 3")));
                }
                b_format(
                    OP_INDMOV,
                    dst.code(),
                    Operand::Bank.code(),
                    Operand::SpVq(idx_queue).code(),
                    precision_code(precision),
                    0,
                    0,
                    0,
                    0,
                )
            }
            Instruction::SpMov {
                dst,
                src,
                sub,
                precision,
            } => b_format(
                OP_SPMOV,
                dst.code(),
                src.code(),
                0,
                precision_code(precision),
                0,
                0,
                sub.code(),
                0,
            ),
            Instruction::SpFw { src, precision } => {
                if src >= 3 {
                    return Err(CoreError::Encode(format!("SpFW queue {src} >= 3")));
                }
                b_format(
                    OP_SPFW,
                    Operand::Bank.code(),
                    Operand::SpVq(src).code(),
                    0,
                    precision_code(precision),
                    0,
                    0,
                    0,
                    0,
                )
            }
            Instruction::GthSct {
                dst,
                src,
                identity,
                precision,
            } => b_format(
                OP_GTHSCT,
                dst.code(),
                src.code(),
                0,
                precision_code(precision),
                0,
                0,
                SubQueue::All.code(),
                identity.code(),
            ),
            Instruction::Sdv {
                dst,
                src,
                op,
                precision,
            } => b_format(
                OP_SDV,
                dst.code(),
                src.code(),
                Operand::Srf.code(),
                precision_code(precision),
                op.code(),
                0,
                0,
                0,
            ),
            Instruction::SSpv {
                dst,
                src,
                op,
                precision,
            } => b_format(
                OP_SSPV,
                dst.code(),
                src.code(),
                Operand::Srf.code(),
                precision_code(precision),
                op.code(),
                0,
                0,
                0,
            ),
            Instruction::Reduce { src, op, precision } => b_format(
                OP_REDUCE,
                Operand::Srf.code(),
                src.code(),
                0,
                precision_code(precision),
                op.code(),
                0,
                0,
                0,
            ),
            Instruction::Dvdv {
                dst,
                src0,
                src1,
                op,
                precision,
            } => b_format(
                OP_DVDV,
                dst.code(),
                src0.code(),
                src1.code(),
                precision_code(precision),
                op.code(),
                0,
                0,
                0,
            ),
            Instruction::SpVdv {
                dst,
                src0,
                src1,
                op,
                set,
                precision,
            } => b_format(
                OP_SPVDV,
                dst.code(),
                src0.code(),
                src1.code(),
                precision_code(precision),
                op.code(),
                set.code(),
                0,
                0,
            ),
            Instruction::SpVSpv {
                dst,
                src0,
                src1,
                op,
                set,
                precision,
            } => b_format(
                OP_SPVSPV,
                dst.code(),
                src0.code(),
                src1.code(),
                precision_code(precision),
                op.code(),
                set.code(),
                0,
                0,
            ),
        })
    }

    /// Decode a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// [`CoreError::Decode`] when the word is not a valid instruction.
    pub fn decode(word: u32) -> Result<Instruction, CoreError> {
        let op = word >> 28;
        let dst = (word >> 25) & 7;
        let src0 = (word >> 22) & 7;
        let src1 = (word >> 19) & 7;
        let value = (word >> 15) & 15;
        let binary = (word >> 11) & 15;
        let s = (word >> 10) & 1;
        let idx = (word >> 8) & 3;
        let idnt = (word >> 6) & 3;
        let imm0 = (word >> 16) & 0xff;
        let order = (word >> 10) & 0x3f;
        let imm1 = word & 0x3ff;

        let operand = |code: u32, what: &str| {
            Operand::from_code(code)
                .ok_or_else(|| CoreError::Decode(word, format!("bad {what} operand {code}")))
        };
        let precision = || {
            precision_from_code(value)
                .ok_or_else(|| CoreError::Decode(word, format!("bad precision {value}")))
        };
        let bop = || {
            BinaryOp::from_code(binary)
                .ok_or_else(|| CoreError::Decode(word, format!("bad binary op {binary}")))
        };

        Ok(match op {
            OP_NOP => Instruction::Nop,
            OP_JUMP => Instruction::Jump {
                target: imm0 as u8,
                order: order as u8,
                count: imm1 as u16,
            },
            OP_EXIT => Instruction::Exit,
            OP_CEXIT => Instruction::CExit {
                queue: (imm1 & 3) as u8,
            },
            OP_DMOV => Instruction::Dmov {
                dst: operand(dst, "dst")?,
                src: operand(src0, "src")?,
                precision: precision()?,
            },
            OP_INDMOV => {
                let q = operand(src1, "index queue")?;
                let Operand::SpVq(idx_queue) = q else {
                    return Err(CoreError::Decode(word, "IndMOV src1 must be SpVQ".into()));
                };
                Instruction::IndMov {
                    dst: operand(dst, "dst")?,
                    idx_queue,
                    precision: precision()?,
                }
            }
            OP_SPMOV => Instruction::SpMov {
                dst: operand(dst, "dst")?,
                src: operand(src0, "src")?,
                sub: SubQueue::from_code(idx)
                    .ok_or_else(|| CoreError::Decode(word, "bad sub-queue".into()))?,
                precision: precision()?,
            },
            OP_SPFW => {
                let q = operand(src0, "src queue")?;
                let Operand::SpVq(src) = q else {
                    return Err(CoreError::Decode(word, "SpFW src must be SpVQ".into()));
                };
                Instruction::SpFw {
                    src,
                    precision: precision()?,
                }
            }
            OP_GTHSCT => Instruction::GthSct {
                dst: operand(dst, "dst")?,
                src: operand(src0, "src")?,
                identity: Identity::from_code(idnt),
                precision: precision()?,
            },
            OP_SDV => Instruction::Sdv {
                dst: operand(dst, "dst")?,
                src: operand(src0, "src")?,
                op: bop()?,
                precision: precision()?,
            },
            OP_SSPV => Instruction::SSpv {
                dst: operand(dst, "dst")?,
                src: operand(src0, "src")?,
                op: bop()?,
                precision: precision()?,
            },
            OP_REDUCE => Instruction::Reduce {
                src: operand(src0, "src")?,
                op: bop()?,
                precision: precision()?,
            },
            OP_DVDV => Instruction::Dvdv {
                dst: operand(dst, "dst")?,
                src0: operand(src0, "src0")?,
                src1: operand(src1, "src1")?,
                op: bop()?,
                precision: precision()?,
            },
            OP_SPVDV => Instruction::SpVdv {
                dst: operand(dst, "dst")?,
                src0: operand(src0, "src0")?,
                src1: operand(src1, "src1")?,
                op: bop()?,
                set: SetMode::from_code(s),
                precision: precision()?,
            },
            OP_SPVSPV => Instruction::SpVSpv {
                dst: operand(dst, "dst")?,
                src0: operand(src0, "src0")?,
                src1: operand(src1, "src1")?,
                op: bop()?,
                set: SetMode::from_code(s),
                precision: precision()?,
            },
            other => return Err(CoreError::Decode(word, format!("unknown opcode {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::Precision;

    fn all_instructions() -> Vec<Instruction> {
        use Instruction as I;
        let p = Precision::Fp64;
        vec![
            I::Nop,
            I::Jump {
                target: 3,
                order: 5,
                count: 100,
            },
            I::Exit,
            I::CExit { queue: 1 },
            I::Dmov {
                dst: Operand::Drf(0),
                src: Operand::Bank,
                precision: p,
            },
            I::IndMov {
                dst: Operand::Drf(1),
                idx_queue: 0,
                precision: Precision::Int8,
            },
            I::SpMov {
                dst: Operand::SpVq(2),
                src: Operand::Bank,
                sub: SubQueue::Col,
                precision: Precision::Fp32,
            },
            I::SpFw {
                src: 1,
                precision: p,
            },
            I::GthSct {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                identity: Identity::NegInf,
                precision: p,
            },
            I::Sdv {
                dst: Operand::Drf(2),
                src: Operand::Drf(0),
                op: BinaryOp::Mul,
                precision: p,
            },
            I::SSpv {
                dst: Operand::SpVq(1),
                src: Operand::SpVq(0),
                op: BinaryOp::Mul,
                precision: Precision::Int16,
            },
            I::Reduce {
                src: Operand::Drf(0),
                op: BinaryOp::Add,
                precision: p,
            },
            I::Dvdv {
                dst: Operand::Drf(0),
                src0: Operand::Drf(1),
                src1: Operand::Drf(2),
                op: BinaryOp::Max,
                precision: Precision::Int64,
            },
            I::SpVdv {
                dst: Operand::Bank,
                src0: Operand::SpVq(1),
                src1: Operand::Bank,
                op: BinaryOp::Add,
                set: SetMode::Union,
                precision: p,
            },
            I::SpVSpv {
                dst: Operand::SpVq(2),
                src0: Operand::SpVq(0),
                src1: Operand::SpVq(1),
                op: BinaryOp::Min,
                set: SetMode::Intersection,
                precision: Precision::Fp16,
            },
        ]
    }

    #[test]
    fn all_15_instructions_roundtrip() {
        let instrs = all_instructions();
        assert_eq!(instrs.len(), 15, "the ISA has exactly 15 instructions");
        for i in instrs {
            let word = i.encode().unwrap();
            let back = Instruction::decode(word).unwrap();
            assert_eq!(back, i, "word {word:#010x}");
        }
    }

    #[test]
    fn immediates_are_range_checked() {
        assert!(Instruction::Jump {
            target: 0,
            order: 32,
            count: 0
        }
        .encode()
        .is_err());
        assert!(Instruction::Jump {
            target: 0,
            order: 0,
            count: 1024
        }
        .encode()
        .is_err());
        assert!(Instruction::CExit { queue: 3 }.encode().is_err());
        assert!(Instruction::SpFw {
            src: 5,
            precision: Precision::Fp64
        }
        .encode()
        .is_err());
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(Instruction::decode(0xF000_0000).is_err());
    }

    #[test]
    fn bad_precision_rejected() {
        // DMOV with Value field = 15.
        let word = (4u32 << 28) | (15 << 15);
        assert!(Instruction::decode(word).is_err());
    }

    #[test]
    fn distinct_words() {
        let mut words: Vec<u32> = all_instructions()
            .iter()
            .map(|i| i.encode().unwrap())
            .collect();
        words.sort_unstable();
        words.dedup();
        assert_eq!(words.len(), 15);
    }
}
