//! psim-lint: static verification of PIM programs.
//!
//! A hand-written pSyncPIM kernel that is wrong in a *structural* way — an
//! out-of-range JUMP, a loop ORDER shared by two live loops, a queue that
//! is read but never filled — does not fail loudly on the device: it hangs
//! in lockstep or silently produces a wrong answer, and on-PIM failures
//! are undebuggable from the host. This module rejects such programs
//! before cycle 0, the static half of the repo's two-sided validation
//! story (the dynamic half is the `psim_dram::ProtocolChecker` replay of
//! PR 2).
//!
//! Three passes over the instruction list:
//!
//! 1. **Structural / control-flow** ([`cfg`]): per-slot field range checks
//!    (jump targets, the 32-entry loop-counter file, queue ids 0–2,
//!    register indices), the control-flow graph implied by
//!    `JUMP`/`EXIT`/`CEXIT`, reachability, exit-path analysis (every
//!    reachable instruction must reach `EXIT`/`CEXIT` or the program end;
//!    the unbounded `CEXIT` loop of Algorithm 2 is the intentional
//!    exception and needs no special casing — `CEXIT` *is* an exit edge),
//!    and live loop-ORDER reuse across overlapping loops.
//! 2. **Abstract interpretation** ([`absint`]): a worklist fixpoint over
//!    the dataflow — DRF read-before-write, sparse-queue depth intervals
//!    per sub-queue (statically guaranteed underflow = a consumer that can
//!    never see data, statically guaranteed overflow = a push that must
//!    stall forever; predication makes pops *optional*, so only
//!    impossibilities are errors), and precision consistency along
//!    def-use chains.
//! 3. **Partial-synchrony** ([`psync`]): loop-level hazards of the
//!    execution model itself — unbounded loops with no memory lockstep
//!    point (`PSL014`), gather-freshness / fused-SpMM cross-read
//!    violations (`PSL015`), and `CEXIT` loops whose watched queue can
//!    never drain (`PSL016`).
//!
//! Severity policy: **Error** marks programs the processing unit cannot
//! execute meaningfully (panic, hang, or a guaranteed no-op data path);
//! **Warning** marks legal-but-suspicious shapes (unreachable code, a path
//! that falls off the end, reads of maybe-uninitialized registers, mixed
//! precisions). Every shipped kernel builder lints completely clean — the
//! `psim_lint` CI gate keeps it that way.

mod absint;
mod cfg;
mod psync;

#[cfg(test)]
mod tests;

use super::{Instruction, Operand, Program};
use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Legal but suspicious; the program still executes deterministically.
    Warning,
    /// The program cannot execute meaningfully (panic, hang, or a
    /// guaranteed-dead data path). Validate mode refuses these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable lint codes (`PSL001`–`PSL016`). The number is the contract:
/// tests, CI output and the JSON summary key on it, so codes are never
/// renumbered — only appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// `PSL001` — JUMP target outside the program.
    JumpTargetRange,
    /// `PSL002` — JUMP ORDER outside the 32-entry loop-counter file
    /// (the PU indexes `loop_counters[order]`; ≥ 32 panics).
    OrderRange,
    /// `PSL003` — JUMP count beyond the 10-bit Imm1 field.
    CountRange,
    /// `PSL004` — a sparse-queue id outside 0–2 (`CEXIT`, `SpFW`,
    /// `IndMOV`).
    QueueIdRange,
    /// `PSL005` — a register operand index outside the file
    /// (`DRF0..2`, `SPVQ0..2`).
    RegIndexRange,
    /// `PSL006` — one live loop ORDER shared by two overlapping loops:
    /// the inner loop clobbers the outer counter (paper §IV-F).
    OrderReuse,
    /// `PSL007` — a reachable instruction from which no `EXIT`/`CEXIT`/
    /// program end is reachable: the kernel can never terminate.
    NoExitPath,
    /// `PSL008` — an instruction no execution path reaches.
    Unreachable,
    /// `PSL009` — a path falls off the program end without `EXIT`/`CEXIT`
    /// (the PU treats it as an exit, but it is almost always an oversight).
    ImplicitExit,
    /// `PSL010` — a DRF read on a path where it was never written.
    ReadBeforeWrite,
    /// `PSL011` — a queue consumer that can never observe data: the
    /// instruction is a guaranteed no-op (predication makes empty pops
    /// legal at runtime, which is exactly why this is only visible
    /// statically).
    QueueUnderflow,
    /// `PSL012` — a queue push guaranteed to exceed the 64 B sub-queue:
    /// the PU stalls forever (nothing can drain the queue while the
    /// program counter is blocked on the push).
    QueueOverflow,
    /// `PSL013` — a value produced at one precision and consumed at
    /// another along a def-use chain.
    PrecisionMismatch,
    /// `PSL014` — an unbounded loop (`JUMP` count 0) containing no memory
    /// instruction: banks never re-align at the controller and
    /// partial-synchrony phase drift is unbounded.
    PhaseDivergence,
    /// `PSL015` — a gather-freshness violation: an `INDMOV` gather is
    /// clobbered unconsumed, combined against a different queue than it
    /// was indexed through (fused SpMM cross-read), or combined after the
    /// queue advanced past the gathered segment.
    FusionSafety,
    /// `PSL016` — a reachable `CEXIT` inside a loop that pushes its
    /// watched queue but never drains it: the exit condition is
    /// unsatisfiable and the bank spins forever.
    CExitTermination,
}

/// Every lint code, for sweeps and reporting.
pub const ALL_LINT_CODES: [LintCode; 16] = [
    LintCode::JumpTargetRange,
    LintCode::OrderRange,
    LintCode::CountRange,
    LintCode::QueueIdRange,
    LintCode::RegIndexRange,
    LintCode::OrderReuse,
    LintCode::NoExitPath,
    LintCode::Unreachable,
    LintCode::ImplicitExit,
    LintCode::ReadBeforeWrite,
    LintCode::QueueUnderflow,
    LintCode::QueueOverflow,
    LintCode::PrecisionMismatch,
    LintCode::PhaseDivergence,
    LintCode::FusionSafety,
    LintCode::CExitTermination,
];

impl LintCode {
    /// The stable code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintCode::JumpTargetRange => "PSL001",
            LintCode::OrderRange => "PSL002",
            LintCode::CountRange => "PSL003",
            LintCode::QueueIdRange => "PSL004",
            LintCode::RegIndexRange => "PSL005",
            LintCode::OrderReuse => "PSL006",
            LintCode::NoExitPath => "PSL007",
            LintCode::Unreachable => "PSL008",
            LintCode::ImplicitExit => "PSL009",
            LintCode::ReadBeforeWrite => "PSL010",
            LintCode::QueueUnderflow => "PSL011",
            LintCode::QueueOverflow => "PSL012",
            LintCode::PrecisionMismatch => "PSL013",
            LintCode::PhaseDivergence => "PSL014",
            LintCode::FusionSafety => "PSL015",
            LintCode::CExitTermination => "PSL016",
        }
    }

    /// Severity is a property of the code, not the site.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintCode::JumpTargetRange
            | LintCode::OrderRange
            | LintCode::CountRange
            | LintCode::QueueIdRange
            | LintCode::RegIndexRange
            | LintCode::OrderReuse
            | LintCode::NoExitPath
            | LintCode::QueueUnderflow
            | LintCode::QueueOverflow
            | LintCode::PhaseDivergence
            | LintCode::FusionSafety
            | LintCode::CExitTermination => Severity::Error,
            LintCode::Unreachable
            | LintCode::ImplicitExit
            | LintCode::ReadBeforeWrite
            | LintCode::PrecisionMismatch => Severity::Warning,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: instruction slot, stable code, human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Instruction slot the finding anchors to.
    pub slot: usize,
    /// Stable lint code.
    pub code: LintCode,
    /// What is wrong, in terms of the program text.
    pub message: String,
}

impl Diagnostic {
    fn new(slot: usize, code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            slot,
            code,
            message: message.into(),
        }
    }

    /// Error or Warning, derived from the code.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] slot {}: {}",
            self.severity(),
            self.code,
            self.slot,
            self.message
        )
    }
}

/// Lint a raw instruction list (the pre-[`Program`] surface: corpus tests
/// and tooling lint shapes `Program::new` would already reject).
#[must_use]
pub fn lint(instrs: &[Instruction]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    range_checks(instrs, &mut diags);
    let graph = cfg::Cfg::build(instrs);
    graph.check(instrs, &mut diags);
    order_reuse(instrs, &mut diags);
    absint::check(instrs, &graph, &mut diags);
    psync::check(instrs, &graph, &mut diags);
    diags.sort_by_key(|d| (d.slot, d.code.code()));
    diags
}

impl Program {
    /// Run psim-lint over the program: control-flow checks plus the
    /// worklist abstract interpretation. Diagnostics are ordered by slot.
    #[must_use]
    pub fn verify(&self) -> Vec<Diagnostic> {
        lint(self.instructions())
    }
}

/// A program that passed verification with no Error-level diagnostics.
///
/// The newtype is the API contract between the layers: kernel builders
/// construct one in validate mode, the engine refuses to load anything
/// that cannot become one, and the scheduler fails jobs whose programs
/// cannot be verified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedProgram {
    program: Program,
    warnings: Vec<Diagnostic>,
}

impl VerifiedProgram {
    /// Verify a program, keeping Warning-level findings.
    ///
    /// # Errors
    ///
    /// [`CoreError::Verify`] carrying every Error-level diagnostic.
    pub fn new(program: Program) -> Result<Self, CoreError> {
        let mut warnings = program.verify();
        let errors: Vec<Diagnostic> = warnings
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .cloned()
            .collect();
        if !errors.is_empty() {
            return Err(CoreError::Verify {
                diagnostics: errors,
            });
        }
        warnings.retain(|d| d.severity() == Severity::Warning);
        Ok(VerifiedProgram { program, warnings })
    }

    /// The verified program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Warning-level findings that did not block verification.
    #[must_use]
    pub fn warnings(&self) -> &[Diagnostic] {
        &self.warnings
    }

    /// Unwrap back into the plain program.
    #[must_use]
    pub fn into_program(self) -> Program {
        self.program
    }
}

impl std::ops::Deref for VerifiedProgram {
    type Target = Program;
    fn deref(&self) -> &Program {
        &self.program
    }
}

impl From<VerifiedProgram> for Program {
    fn from(v: VerifiedProgram) -> Program {
        v.program
    }
}

impl TryFrom<Program> for VerifiedProgram {
    type Error = CoreError;
    fn try_from(p: Program) -> Result<Self, CoreError> {
        VerifiedProgram::new(p)
    }
}

// ---- pass 1a: per-slot field ranges ------------------------------------

/// Registers and queues referenced by one instruction (for range checks).
fn operands_of(ins: &Instruction) -> Vec<Operand> {
    match *ins {
        Instruction::Nop
        | Instruction::Jump { .. }
        | Instruction::Exit
        | Instruction::CExit { .. }
        | Instruction::SpFw { .. } => Vec::new(),
        Instruction::IndMov { dst, .. } => vec![dst],
        Instruction::Dmov { dst, src, .. }
        | Instruction::SpMov { dst, src, .. }
        | Instruction::GthSct { dst, src, .. }
        | Instruction::Sdv { dst, src, .. }
        | Instruction::SSpv { dst, src, .. } => vec![dst, src],
        Instruction::Reduce { src, .. } => vec![src],
        Instruction::Dvdv {
            dst, src0, src1, ..
        }
        | Instruction::SpVdv {
            dst, src0, src1, ..
        }
        | Instruction::SpVSpv {
            dst, src0, src1, ..
        } => vec![dst, src0, src1],
    }
}

fn range_checks(instrs: &[Instruction], diags: &mut Vec<Diagnostic>) {
    for (slot, ins) in instrs.iter().enumerate() {
        match *ins {
            Instruction::Jump {
                target,
                order,
                count,
            } => {
                if target as usize >= instrs.len() {
                    diags.push(Diagnostic::new(
                        slot,
                        LintCode::JumpTargetRange,
                        format!(
                            "JUMP targets slot {target} but the program ends at slot {}",
                            instrs.len().saturating_sub(1)
                        ),
                    ));
                }
                if order >= 32 {
                    diags.push(Diagnostic::new(
                        slot,
                        LintCode::OrderRange,
                        format!("JUMP ORDER {order} outside the 32-entry loop-counter file"),
                    ));
                }
                if count >= 1024 {
                    diags.push(Diagnostic::new(
                        slot,
                        LintCode::CountRange,
                        format!("JUMP count {count} beyond the 10-bit Imm1 field"),
                    ));
                }
            }
            Instruction::CExit { queue } if queue >= 3 => {
                diags.push(Diagnostic::new(
                    slot,
                    LintCode::QueueIdRange,
                    format!("CEXIT watches queue {queue}; only SPVQ0-2 exist"),
                ));
            }
            Instruction::IndMov { idx_queue, .. } if idx_queue >= 3 => {
                diags.push(Diagnostic::new(
                    slot,
                    LintCode::QueueIdRange,
                    format!("IndMOV indexes through queue {idx_queue}; only SPVQ0-2 exist"),
                ));
            }
            Instruction::SpFw { src, .. } if src >= 3 => {
                diags.push(Diagnostic::new(
                    slot,
                    LintCode::QueueIdRange,
                    format!("SpFW drains queue {src}; only SPVQ0-2 exist"),
                ));
            }
            _ => {}
        }
        for op in operands_of(ins) {
            match op {
                Operand::Drf(i) if i >= 3 => diags.push(Diagnostic::new(
                    slot,
                    LintCode::RegIndexRange,
                    format!("operand DRF{i} outside the 3-entry dense register file"),
                )),
                Operand::SpVq(i) if i >= 3 => diags.push(Diagnostic::new(
                    slot,
                    LintCode::RegIndexRange,
                    format!("operand SPVQ{i} outside the 3 sparse vector queues"),
                )),
                _ => {}
            }
        }
    }
}

// ---- pass 1b: live loop-ORDER reuse ------------------------------------

/// Two counted jumps sharing one ORDER whose loop bodies overlap clobber
/// each other's counter: the inner loop resets the outer count and the
/// nest executes the wrong number of iterations (paper §IV-F requires
/// distinct ORDERs per nesting level). Zero-count jumps use no counter.
fn order_reuse(instrs: &[Instruction], diags: &mut Vec<Diagnostic>) {
    let mut loops: Vec<(u8, usize, usize, usize)> = Vec::new(); // (order, lo, hi, slot)
    for (slot, ins) in instrs.iter().enumerate() {
        if let Instruction::Jump {
            target,
            order,
            count,
        } = *ins
        {
            if count > 0 && order < 32 {
                let t = target as usize;
                loops.push((order, t.min(slot), t.max(slot), slot));
            }
        }
    }
    for (i, &(order, lo, hi, slot)) in loops.iter().enumerate() {
        for &(order2, lo2, hi2, slot2) in &loops[..i] {
            if order == order2 && lo <= hi2 && lo2 <= hi {
                diags.push(Diagnostic::new(
                    slot,
                    LintCode::OrderReuse,
                    format!(
                        "ORDER {order} is live in the overlapping loop closed at slot {slot2} \
                         (bodies [{lo2}, {hi2}] and [{lo}, {hi}] share a counter)"
                    ),
                ));
            }
        }
    }
}
