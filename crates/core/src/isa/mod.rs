//! The pSyncPIM instruction set (paper §IV-D, Figure 5, Tables IV–VI).
//!
//! Fifteen instructions in two 4-byte formats:
//!
//! * **B format** (binary/data movement): `OpCode[31:28] Dst[27:25]
//!   Src0[24:22] Src1[21:19] Value[18:15] Binary[14:11] S[10] Idx[9:8]
//!   Idnt[7:6] Unused[5:0]`
//! * **C format** (control): `OpCode[31:28] Unused[27:24] Imm0[23:16]
//!   Order[15:10] Imm1[9:0]`
//!
//! Data movement: `DMOV`, `IndMOV`, `SpMOV`, `SpFW`, `GthSct` (Table V).
//! Binary ops: `SDV`, `SSpV`, `Reduce`, `DVDV`, `SpVDV`, `SpVSpV`
//! (Table VI). Control: `NOP`, `JUMP`, `EXIT`, `CEXIT`.

mod asm;
mod encode;
pub(crate) mod program;
pub mod verify;

pub use asm::{assemble, disassemble};
pub use program::Program;
pub use verify::{lint, Diagnostic, LintCode, Severity, VerifiedProgram, ALL_LINT_CODES};

use psim_sparse::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A register/queue operand (3-bit encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// The memory bank (through the open row).
    Bank,
    /// The 16 B scalar register.
    Srf,
    /// Dense vector register 0–2 (32 B each).
    Drf(u8),
    /// Sparse vector queue 0–2 (192 B each, three sub-queues).
    SpVq(u8),
}

impl Operand {
    /// 3-bit encoding.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            Operand::Bank => 0,
            Operand::Srf => 1,
            Operand::Drf(i) => 2 + u32::from(i),
            Operand::SpVq(i) => 5 + u32::from(i),
        }
    }

    /// Decode from the 3-bit field.
    #[must_use]
    pub fn from_code(code: u32) -> Option<Operand> {
        match code {
            0 => Some(Operand::Bank),
            1 => Some(Operand::Srf),
            2..=4 => Some(Operand::Drf((code - 2) as u8)),
            5..=7 => Some(Operand::SpVq((code - 5) as u8)),
            _ => None,
        }
    }

    /// Whether this operand touches the bank (makes an instruction a
    /// memory instruction).
    #[must_use]
    pub fn is_bank(self) -> bool {
        matches!(self, Operand::Bank)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Bank => f.write_str("BANK"),
            Operand::Srf => f.write_str("SRF"),
            Operand::Drf(i) => write!(f, "DRF{i}"),
            Operand::SpVq(i) => write!(f, "SPVQ{i}"),
        }
    }
}

/// The arithmetic selected by the Binary field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// pass the first operand (copy/select)
    First,
    /// pass the second operand
    Second,
    /// `b - a` (reverse subtract; used when operand order is fixed by the
    /// datapath, e.g. the SpTRSV update `x -= scale * v`)
    RSub,
}

impl BinaryOp {
    /// Apply to two scalars.
    #[must_use]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::First => a,
            BinaryOp::Second => b,
            BinaryOp::RSub => b - a,
        }
    }

    /// 4-bit encoding.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            BinaryOp::Add => 0,
            BinaryOp::Sub => 1,
            BinaryOp::Mul => 2,
            BinaryOp::Min => 3,
            BinaryOp::Max => 4,
            BinaryOp::First => 5,
            BinaryOp::Second => 6,
            BinaryOp::RSub => 7,
        }
    }

    /// Decode from the 4-bit field.
    #[must_use]
    pub fn from_code(code: u32) -> Option<BinaryOp> {
        Some(match code {
            0 => BinaryOp::Add,
            1 => BinaryOp::Sub,
            2 => BinaryOp::Mul,
            3 => BinaryOp::Min,
            4 => BinaryOp::Max,
            5 => BinaryOp::First,
            6 => BinaryOp::Second,
            7 => BinaryOp::RSub,
            _ => return None,
        })
    }

    /// The identity element (for reductions / union padding).
    #[must_use]
    pub fn identity(self) -> f64 {
        match self {
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::RSub => 0.0,
            BinaryOp::Mul => 1.0,
            BinaryOp::Min => f64::INFINITY,
            BinaryOp::Max => f64::NEG_INFINITY,
            BinaryOp::First | BinaryOp::Second => 0.0,
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::Add => "ADD",
            BinaryOp::Sub => "SUB",
            BinaryOp::Mul => "MUL",
            BinaryOp::Min => "MIN",
            BinaryOp::Max => "MAX",
            BinaryOp::First => "FST",
            BinaryOp::Second => "SND",
            BinaryOp::RSub => "RSUB",
        })
    }
}

/// Sub-queue selector of a sparse vector queue (the Idx field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubQueue {
    /// Row-index sub-queue.
    Row,
    /// Column-index sub-queue.
    Col,
    /// Value sub-queue.
    Val,
    /// All three (Gather/Scatter use every sub-queue).
    All,
}

impl SubQueue {
    /// 2-bit encoding.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            SubQueue::Row => 0,
            SubQueue::Col => 1,
            SubQueue::Val => 2,
            SubQueue::All => 3,
        }
    }

    /// Decode.
    #[must_use]
    pub fn from_code(code: u32) -> Option<SubQueue> {
        Some(match code {
            0 => SubQueue::Row,
            1 => SubQueue::Col,
            2 => SubQueue::Val,
            3 => SubQueue::All,
            _ => return None,
        })
    }
}

impl fmt::Display for SubQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SubQueue::Row => "ROW",
            SubQueue::Col => "COL",
            SubQueue::Val => "VAL",
            SubQueue::All => "ALL",
        })
    }
}

/// Union vs intersection semantics of the index calculator (the S field,
/// paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetMode {
    /// Index-matching elements only (ExTensor-style skipping).
    Intersection,
    /// Union of patterns; the missing side contributes the identity.
    Union,
}

impl SetMode {
    /// 1-bit encoding.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            SetMode::Intersection => 0,
            SetMode::Union => 1,
        }
    }

    /// Decode.
    #[must_use]
    pub fn from_code(code: u32) -> SetMode {
        if code == 0 {
            SetMode::Intersection
        } else {
            SetMode::Union
        }
    }
}

/// Identity element selector (the Idnt field, used by Gather/Scatter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Identity {
    /// 0
    Zero,
    /// 1
    One,
    /// −∞
    NegInf,
    /// +∞
    PosInf,
}

impl Identity {
    /// The value.
    #[must_use]
    pub fn value(self) -> f64 {
        match self {
            Identity::Zero => 0.0,
            Identity::One => 1.0,
            Identity::NegInf => f64::NEG_INFINITY,
            Identity::PosInf => f64::INFINITY,
        }
    }

    /// 2-bit encoding.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            Identity::Zero => 0,
            Identity::One => 1,
            Identity::NegInf => 2,
            Identity::PosInf => 3,
        }
    }

    /// Decode.
    #[must_use]
    pub fn from_code(code: u32) -> Identity {
        match code & 3 {
            0 => Identity::Zero,
            1 => Identity::One,
            2 => Identity::NegInf,
            _ => Identity::PosInf,
        }
    }
}

/// Encode a precision into the 4-bit Value field.
#[must_use]
pub fn precision_code(p: Precision) -> u32 {
    match p {
        Precision::Int8 => 0,
        Precision::Int16 => 1,
        Precision::Int32 => 2,
        Precision::Int64 => 3,
        Precision::Fp16 => 4,
        Precision::Fp32 => 5,
        Precision::Fp64 => 6,
    }
}

/// Decode the Value field.
#[must_use]
pub fn precision_from_code(code: u32) -> Option<Precision> {
    Some(match code {
        0 => Precision::Int8,
        1 => Precision::Int16,
        2 => Precision::Int32,
        3 => Precision::Int64,
        4 => Precision::Fp16,
        5 => Precision::Fp32,
        6 => Precision::Fp64,
        _ => return None,
    })
}

/// A decoded pSyncPIM instruction (the 15 of paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Backward/forward jump with a per-ORDER loop counter: the jump is
    /// taken `count` times, then falls through and the counter resets
    /// (supports nested loops, paper §IV-F).
    Jump {
        /// Target instruction index.
        target: u8,
        /// Loop id selecting one of the 32 loop counters.
        order: u8,
        /// Times to take the jump before falling through. `count == 0`
        /// jumps unconditionally (the infinite loop of Algorithm 2).
        count: u16,
    },
    /// Unconditional kernel termination.
    Exit,
    /// Conditional exit: terminate once the designated sparse vector queue
    /// is empty / has produced the −1 sentinel (paper §IV-D, §V).
    CExit {
        /// The queue whose exhaustion terminates the kernel (0–2).
        queue: u8,
    },
    /// Move one 32 B dense vector between bank and a DRF (Table V: DMOV).
    Dmov {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
        /// Element precision.
        precision: Precision,
    },
    /// Read scalars from the bank at the addresses held in a sparse
    /// queue's column sub-queue — the SpMV vector gather (Table V: IndMOV).
    IndMov {
        /// Destination (SRF or a DRF receiving the gathered values).
        dst: Operand,
        /// The queue providing indices.
        idx_queue: u8,
        /// Element precision.
        precision: Precision,
    },
    /// Move one 32 B block of one sub-queue between bank and a sparse
    /// vector queue (Table V: SpMOV).
    SpMov {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
        /// Which sub-queue.
        sub: SubQueue,
        /// Element precision.
        precision: Precision,
    },
    /// Force-write a sparse queue's remaining contents to the bank
    /// (Table V: SpFW).
    SpFw {
        /// Source queue.
        src: u8,
        /// Element precision.
        precision: Precision,
    },
    /// Transform between dense and sparse vectors (Table V: GthSct).
    /// Bank→queue gathers the non-identity elements of a dense region;
    /// queue→bank scatters.
    GthSct {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
        /// Identity element defining "zero".
        identity: Identity,
        /// Element precision.
        precision: Precision,
    },
    /// Scalar ⊙ dense vector → dense vector (Table VI: SDV).
    Sdv {
        /// Destination DRF.
        dst: Operand,
        /// Dense source DRF.
        src: Operand,
        /// Operation.
        op: BinaryOp,
        /// Element precision.
        precision: Precision,
    },
    /// Scalar ⊙ sparse vector → sparse vector (Table VI: SSpV).
    SSpv {
        /// Destination queue.
        dst: Operand,
        /// Source queue.
        src: Operand,
        /// Operation.
        op: BinaryOp,
        /// Element precision.
        precision: Precision,
    },
    /// Iterated reduction of a dense vector into the SRF (Table VI).
    Reduce {
        /// Source DRF.
        src: Operand,
        /// Operation.
        op: BinaryOp,
        /// Element precision.
        precision: Precision,
    },
    /// Element-wise dense ⊙ dense → dense (Table VI: DVDV).
    Dvdv {
        /// Destination DRF.
        dst: Operand,
        /// First source.
        src0: Operand,
        /// Second source.
        src1: Operand,
        /// Operation.
        op: BinaryOp,
        /// Element precision.
        precision: Precision,
    },
    /// Sparse ⊙ dense (Table VI: SpVDV). With `dst == Bank` this is the
    /// scatter-accumulate into the open output row that SpMV/SpTRSV use.
    SpVdv {
        /// Destination.
        dst: Operand,
        /// Sparse source queue.
        src0: Operand,
        /// Dense source.
        src1: Operand,
        /// Operation.
        op: BinaryOp,
        /// Union or intersection.
        set: SetMode,
        /// Element precision.
        precision: Precision,
    },
    /// Element-wise sparse ⊙ sparse → sparse (Table VI: SpVSpV).
    SpVSpv {
        /// Destination queue.
        dst: Operand,
        /// First source queue.
        src0: Operand,
        /// Second source queue.
        src1: Operand,
        /// Operation.
        op: BinaryOp,
        /// Union or intersection.
        set: SetMode,
        /// Element precision.
        precision: Precision,
    },
}

impl Instruction {
    /// Whether execution of this instruction consumes a DRAM column command
    /// (i.e. it has a `Bank` operand).
    #[must_use]
    pub fn is_memory(&self) -> bool {
        match self {
            Instruction::Dmov { dst, src, .. } => dst.is_bank() || src.is_bank(),
            Instruction::IndMov { .. } => true,
            Instruction::SpMov { dst, src, .. } => dst.is_bank() || src.is_bank(),
            Instruction::SpFw { .. } => true,
            Instruction::GthSct { dst, src, .. } => dst.is_bank() || src.is_bank(),
            Instruction::SpVdv { dst, src1, .. } => dst.is_bank() || src1.is_bank(),
            _ => false,
        }
    }

    /// Whether the bank access (if any) writes to the bank.
    #[must_use]
    pub fn writes_bank(&self) -> bool {
        match self {
            Instruction::Dmov { dst, .. }
            | Instruction::SpMov { dst, .. }
            | Instruction::GthSct { dst, .. } => dst.is_bank(),
            Instruction::SpFw { .. } => true,
            Instruction::SpVdv { dst, .. } => dst.is_bank(),
            _ => false,
        }
    }

    /// Whether this is a control (C-format) instruction.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Nop
                | Instruction::Jump { .. }
                | Instruction::Exit
                | Instruction::CExit { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_codes_roundtrip() {
        for code in 0..8 {
            let op = Operand::from_code(code).unwrap();
            assert_eq!(op.code(), code);
        }
        assert!(Operand::from_code(8).is_none());
    }

    #[test]
    fn binary_ops_apply() {
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinaryOp::RSub.apply(2.0, 3.0), 1.0);
        assert_eq!(BinaryOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinaryOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinaryOp::First.apply(2.0, 3.0), 2.0);
        assert_eq!(BinaryOp::Second.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn binary_identities() {
        assert_eq!(BinaryOp::Add.identity(), 0.0);
        assert_eq!(BinaryOp::Mul.identity(), 1.0);
        assert_eq!(BinaryOp::Min.identity(), f64::INFINITY);
        assert_eq!(BinaryOp::Max.identity(), f64::NEG_INFINITY);
    }

    #[test]
    fn binary_codes_roundtrip() {
        for code in 0..8 {
            let op = BinaryOp::from_code(code).unwrap();
            assert_eq!(op.code(), code);
        }
        assert!(BinaryOp::from_code(15).is_none());
    }

    #[test]
    fn memory_classification() {
        use psim_sparse::Precision::Fp64;
        let load = Instruction::Dmov {
            dst: Operand::Drf(0),
            src: Operand::Bank,
            precision: Fp64,
        };
        assert!(load.is_memory());
        assert!(!load.writes_bank());
        let store = Instruction::Dmov {
            dst: Operand::Bank,
            src: Operand::Drf(0),
            precision: Fp64,
        };
        assert!(store.writes_bank());
        let compute = Instruction::Dvdv {
            dst: Operand::Drf(0),
            src0: Operand::Drf(1),
            src1: Operand::Drf(2),
            op: BinaryOp::Add,
            precision: Fp64,
        };
        assert!(!compute.is_memory());
        assert!(Instruction::Exit.is_control());
    }

    #[test]
    fn precision_codes_roundtrip() {
        for p in Precision::ALL {
            assert_eq!(precision_from_code(precision_code(p)), Some(p));
        }
        assert!(precision_from_code(9).is_none());
    }

    #[test]
    fn identity_values() {
        assert_eq!(Identity::Zero.value(), 0.0);
        assert_eq!(Identity::One.value(), 1.0);
        assert!(Identity::NegInf.value().is_infinite());
        for c in 0..4 {
            assert_eq!(Identity::from_code(c).code(), c);
        }
    }
}
