//! Text assembler/disassembler for pSyncPIM kernels.
//!
//! The paper's kernels are "hand-coded PIM assembly" (§VIII); this module
//! gives them a readable surface syntax. One instruction per line;
//! `;` or `#` starts a comment. Operands: `BANK`, `SRF`, `DRF0..2`,
//! `SPVQ0..2`. Precisions: `INT8..INT64`, `FP16..FP64`. Examples:
//!
//! ```text
//! ; Algorithm 2 (SpMV inner loop)
//! SPMOV  SPVQ0, BANK, ROW, FP64
//! SPMOV  SPVQ0, BANK, COL, FP64
//! SPMOV  SPVQ0, BANK, VAL, FP64
//! INDMOV SRF, SPVQ0, FP64
//! SSPV   SPVQ1, SPVQ0, MUL, FP64
//! SPVDV  BANK, SPVQ1, BANK, ADD, UNION, FP64
//! CEXIT  SPVQ0
//! JUMP   0, 0, 0
//! ```

use super::{BinaryOp, Identity, Instruction, Operand, Program, SetMode, SubQueue};
use crate::error::CoreError;
use psim_sparse::Precision;

/// Assemble text into a [`Program`].
///
/// # Errors
///
/// [`CoreError::Asm`] with a line number for any syntax problem, plus the
/// usual program-validation errors.
pub fn assemble(text: &str) -> Result<Program, CoreError> {
    let mut instrs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        instrs.push(parse_line(line, lineno + 1)?);
    }
    Program::new(instrs)
}

/// Render a program back to canonical assembly text.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for ins in program.instructions() {
        out.push_str(&render(ins));
        out.push('\n');
    }
    out
}

fn render(ins: &Instruction) -> String {
    match *ins {
        Instruction::Nop => "NOP".to_string(),
        Instruction::Jump {
            target,
            order,
            count,
        } => format!("JUMP {target}, {order}, {count}"),
        Instruction::Exit => "EXIT".to_string(),
        Instruction::CExit { queue } => format!("CEXIT SPVQ{queue}"),
        Instruction::Dmov {
            dst,
            src,
            precision,
        } => format!("DMOV {dst}, {src}, {precision}"),
        Instruction::IndMov {
            dst,
            idx_queue,
            precision,
        } => format!("INDMOV {dst}, SPVQ{idx_queue}, {precision}"),
        Instruction::SpMov {
            dst,
            src,
            sub,
            precision,
        } => format!("SPMOV {dst}, {src}, {sub}, {precision}"),
        Instruction::SpFw { src, precision } => format!("SPFW SPVQ{src}, {precision}"),
        Instruction::GthSct {
            dst,
            src,
            identity,
            precision,
        } => format!(
            "GTHSCT {dst}, {src}, {}, {precision}",
            identity_name(identity)
        ),
        Instruction::Sdv {
            dst,
            src,
            op,
            precision,
        } => format!("SDV {dst}, {src}, {op}, {precision}"),
        Instruction::SSpv {
            dst,
            src,
            op,
            precision,
        } => format!("SSPV {dst}, {src}, {op}, {precision}"),
        Instruction::Reduce { src, op, precision } => format!("REDUCE {src}, {op}, {precision}"),
        Instruction::Dvdv {
            dst,
            src0,
            src1,
            op,
            precision,
        } => format!("DVDV {dst}, {src0}, {src1}, {op}, {precision}"),
        Instruction::SpVdv {
            dst,
            src0,
            src1,
            op,
            set,
            precision,
        } => format!(
            "SPVDV {dst}, {src0}, {src1}, {op}, {}, {precision}",
            set_name(set)
        ),
        Instruction::SpVSpv {
            dst,
            src0,
            src1,
            op,
            set,
            precision,
        } => format!(
            "SPVSPV {dst}, {src0}, {src1}, {op}, {}, {precision}",
            set_name(set)
        ),
    }
}

fn identity_name(i: Identity) -> &'static str {
    match i {
        Identity::Zero => "ZERO",
        Identity::One => "ONE",
        Identity::NegInf => "NEGINF",
        Identity::PosInf => "POSINF",
    }
}

fn set_name(s: SetMode) -> &'static str {
    match s {
        SetMode::Intersection => "INTER",
        SetMode::Union => "UNION",
    }
}

fn parse_line(line: &str, lineno: usize) -> Result<Instruction, CoreError> {
    let err = |msg: String| CoreError::Asm { line: lineno, msg };
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r),
        None => (line, ""),
    };
    let args: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let mnemonic = mnemonic.to_ascii_uppercase();

    let want = |n: usize| -> Result<(), CoreError> {
        if args.len() != n {
            Err(err(format!(
                "{mnemonic} expects {n} operands, got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };

    let operand = |s: &str| -> Result<Operand, CoreError> {
        match s.to_ascii_uppercase().as_str() {
            "BANK" => Ok(Operand::Bank),
            "SRF" => Ok(Operand::Srf),
            "DRF0" => Ok(Operand::Drf(0)),
            "DRF1" => Ok(Operand::Drf(1)),
            "DRF2" => Ok(Operand::Drf(2)),
            "SPVQ0" => Ok(Operand::SpVq(0)),
            "SPVQ1" => Ok(Operand::SpVq(1)),
            "SPVQ2" => Ok(Operand::SpVq(2)),
            other => Err(err(format!("unknown operand '{other}'"))),
        }
    };
    let queue = |s: &str| -> Result<u8, CoreError> {
        match operand(s)? {
            Operand::SpVq(i) => Ok(i),
            _ => Err(err(format!("'{s}' must be a sparse vector queue"))),
        }
    };
    let precision = |s: &str| -> Result<Precision, CoreError> {
        match s.to_ascii_uppercase().as_str() {
            "INT8" => Ok(Precision::Int8),
            "INT16" => Ok(Precision::Int16),
            "INT32" => Ok(Precision::Int32),
            "INT64" => Ok(Precision::Int64),
            "FP16" => Ok(Precision::Fp16),
            "FP32" => Ok(Precision::Fp32),
            "FP64" => Ok(Precision::Fp64),
            other => Err(err(format!("unknown precision '{other}'"))),
        }
    };
    let binop = |s: &str| -> Result<BinaryOp, CoreError> {
        match s.to_ascii_uppercase().as_str() {
            "ADD" => Ok(BinaryOp::Add),
            "SUB" => Ok(BinaryOp::Sub),
            "MUL" => Ok(BinaryOp::Mul),
            "MIN" => Ok(BinaryOp::Min),
            "MAX" => Ok(BinaryOp::Max),
            "FST" => Ok(BinaryOp::First),
            "SND" => Ok(BinaryOp::Second),
            "RSUB" => Ok(BinaryOp::RSub),
            other => Err(err(format!("unknown binary op '{other}'"))),
        }
    };
    let subq = |s: &str| -> Result<SubQueue, CoreError> {
        match s.to_ascii_uppercase().as_str() {
            "ROW" => Ok(SubQueue::Row),
            "COL" => Ok(SubQueue::Col),
            "VAL" => Ok(SubQueue::Val),
            "ALL" => Ok(SubQueue::All),
            other => Err(err(format!("unknown sub-queue '{other}'"))),
        }
    };
    let setmode = |s: &str| -> Result<SetMode, CoreError> {
        match s.to_ascii_uppercase().as_str() {
            "INTER" | "INTERSECTION" => Ok(SetMode::Intersection),
            "UNION" => Ok(SetMode::Union),
            other => Err(err(format!("unknown set mode '{other}'"))),
        }
    };
    let identity = |s: &str| -> Result<Identity, CoreError> {
        match s.to_ascii_uppercase().as_str() {
            "ZERO" => Ok(Identity::Zero),
            "ONE" => Ok(Identity::One),
            "NEGINF" => Ok(Identity::NegInf),
            "POSINF" => Ok(Identity::PosInf),
            other => Err(err(format!("unknown identity '{other}'"))),
        }
    };
    let int = |s: &str| -> Result<u16, CoreError> {
        s.parse()
            .map_err(|e| err(format!("bad integer '{s}': {e}")))
    };
    // Parse directly at u8 width so out-of-range slot/order fields are
    // rejected instead of silently truncated (JUMP 256 must not become
    // JUMP 0).
    let int8 = |s: &str| -> Result<u8, CoreError> {
        s.parse()
            .map_err(|e| err(format!("bad 8-bit integer '{s}': {e}")))
    };

    Ok(match mnemonic.as_str() {
        "NOP" => {
            want(0)?;
            Instruction::Nop
        }
        "JUMP" => {
            want(3)?;
            Instruction::Jump {
                target: int8(args[0])?,
                order: int8(args[1])?,
                count: int(args[2])?,
            }
        }
        "EXIT" => {
            want(0)?;
            Instruction::Exit
        }
        "CEXIT" => {
            want(1)?;
            Instruction::CExit {
                queue: queue(args[0])?,
            }
        }
        "DMOV" => {
            want(3)?;
            Instruction::Dmov {
                dst: operand(args[0])?,
                src: operand(args[1])?,
                precision: precision(args[2])?,
            }
        }
        "INDMOV" => {
            want(3)?;
            Instruction::IndMov {
                dst: operand(args[0])?,
                idx_queue: queue(args[1])?,
                precision: precision(args[2])?,
            }
        }
        "SPMOV" => {
            want(4)?;
            Instruction::SpMov {
                dst: operand(args[0])?,
                src: operand(args[1])?,
                sub: subq(args[2])?,
                precision: precision(args[3])?,
            }
        }
        "SPFW" => {
            want(2)?;
            Instruction::SpFw {
                src: queue(args[0])?,
                precision: precision(args[1])?,
            }
        }
        "GTHSCT" => {
            want(4)?;
            Instruction::GthSct {
                dst: operand(args[0])?,
                src: operand(args[1])?,
                identity: identity(args[2])?,
                precision: precision(args[3])?,
            }
        }
        "SDV" => {
            want(4)?;
            Instruction::Sdv {
                dst: operand(args[0])?,
                src: operand(args[1])?,
                op: binop(args[2])?,
                precision: precision(args[3])?,
            }
        }
        "SSPV" => {
            want(4)?;
            Instruction::SSpv {
                dst: operand(args[0])?,
                src: operand(args[1])?,
                op: binop(args[2])?,
                precision: precision(args[3])?,
            }
        }
        "REDUCE" => {
            want(3)?;
            Instruction::Reduce {
                src: operand(args[0])?,
                op: binop(args[1])?,
                precision: precision(args[2])?,
            }
        }
        "DVDV" => {
            want(5)?;
            Instruction::Dvdv {
                dst: operand(args[0])?,
                src0: operand(args[1])?,
                src1: operand(args[2])?,
                op: binop(args[3])?,
                precision: precision(args[4])?,
            }
        }
        "SPVDV" => {
            want(6)?;
            Instruction::SpVdv {
                dst: operand(args[0])?,
                src0: operand(args[1])?,
                src1: operand(args[2])?,
                op: binop(args[3])?,
                set: setmode(args[4])?,
                precision: precision(args[5])?,
            }
        }
        "SPVSPV" => {
            want(6)?;
            Instruction::SpVSpv {
                dst: operand(args[0])?,
                src0: operand(args[1])?,
                src1: operand(args[2])?,
                op: binop(args[3])?,
                set: setmode(args[4])?,
                precision: precision(args[5])?,
            }
        }
        other => return Err(err(format!("unknown mnemonic '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPMV_ASM: &str = r"
; Algorithm 2 (SpMV inner loop)
SPMOV  SPVQ0, BANK, ROW, FP64
SPMOV  SPVQ0, BANK, COL, FP64
SPMOV  SPVQ0, BANK, VAL, FP64
INDMOV SRF, SPVQ0, FP64
SSPV   SPVQ1, SPVQ0, MUL, FP64
SPVDV  BANK, SPVQ1, BANK, ADD, UNION, FP64
CEXIT  SPVQ0
JUMP   0, 0, 0
";

    #[test]
    fn assembles_algorithm_2() {
        let p = assemble(SPMV_ASM).unwrap();
        assert_eq!(p.len(), 8);
        assert!(p.is_conditional_loop());
        // 3 queue loads + 1 gather + 1 scatter-accumulate per iteration.
        assert_eq!(p.command_schedule().unwrap().len(), 5);
    }

    #[test]
    fn disassemble_assemble_roundtrip() {
        let p = assemble(SPMV_ASM).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn reports_line_numbers() {
        let err = assemble("NOP\nBOGUS X\n").unwrap_err();
        match err {
            CoreError::Asm { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_wrong_arity_and_operands() {
        assert!(assemble("DMOV DRF0, BANK").is_err());
        assert!(assemble("CEXIT DRF0").is_err());
        assert!(assemble("SDV DRF0, DRF1, BOGUS, FP64").is_err());
        assert!(assemble("DMOV DRF0, BANK, FP128").is_err());
    }

    #[test]
    fn jump_fields_reject_overflow_instead_of_truncating() {
        // Regression: target/order were parsed at u16 then cast `as u8`,
        // so `JUMP 256, 0, 1` silently became `JUMP 0, 0, 1` and
        // `JUMP 0, 300, 1` became order 44 — a wrong-but-valid loop.
        for bad in ["JUMP 256, 0, 1\nEXIT\n", "JUMP 0, 300, 1\nEXIT\n"] {
            match assemble(bad) {
                Err(CoreError::Asm { line, msg }) => {
                    assert_eq!(line, 1);
                    assert!(msg.contains("8-bit"), "{msg}");
                }
                other => panic!("expected asm error, got {other:?}"),
            }
        }
        // In-range values still parse exactly.
        let p = assemble("NOP\nJUMP 0, 31, 2\nEXIT\n").unwrap();
        assert_eq!(
            p.instructions()[1],
            Instruction::Jump {
                target: 0,
                order: 31,
                count: 2
            }
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = assemble("# header\n\nNOP ; trailing\nEXIT\n").unwrap();
        assert_eq!(p.len(), 2);
    }
}
