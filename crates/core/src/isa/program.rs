//! Program container and static analysis.
//!
//! A program is at most 32 instructions (the control-register size of
//! Table VIII). The host derives its per-iteration *command schedule* from
//! the program: the dynamic order of memory-instruction slots in one pass
//! of the outermost loop, with inner loops unrolled by their ORDER'd jump
//! counts. In AB-PIM mode the host replays that schedule every round until
//! all processing units report exit (paper §IV-D "Conditional Exit").

use super::Instruction;
use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// Maximum instructions in the control register (Table VIII: 4 B × 32).
pub const MAX_PROGRAM_LEN: usize = 32;

/// A validated PIM kernel program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instruction>,
}

impl Program {
    /// Validate and wrap an instruction list.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ProgramTooLong`] beyond 32 instructions,
    /// * [`CoreError::Encode`] for jump targets outside the program or
    ///   programs with no terminator (no `EXIT`, `CEXIT`, or backward jump).
    pub fn new(instrs: Vec<Instruction>) -> Result<Self, CoreError> {
        if instrs.len() > MAX_PROGRAM_LEN {
            return Err(CoreError::ProgramTooLong { len: instrs.len() });
        }
        if instrs.is_empty() {
            return Err(CoreError::Encode("empty program".to_string()));
        }
        let mut has_terminator = false;
        for (i, ins) in instrs.iter().enumerate() {
            match *ins {
                Instruction::Jump { target, .. } => {
                    if target as usize >= instrs.len() {
                        return Err(CoreError::Encode(format!(
                            "jump at {i} targets {target} beyond program end"
                        )));
                    }
                    if (target as usize) <= i {
                        has_terminator = true; // backward jump = loop
                    }
                }
                Instruction::Exit | Instruction::CExit { .. } => has_terminator = true,
                _ => {}
            }
        }
        if !has_terminator && instrs.len() == MAX_PROGRAM_LEN {
            return Err(CoreError::Encode(
                "program has no EXIT/CEXIT/loop and fills the control register".to_string(),
            ));
        }
        Ok(Program { instrs })
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Borrow the instructions.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Instruction at a slot.
    #[must_use]
    pub fn get(&self, slot: usize) -> Option<&Instruction> {
        self.instrs.get(slot)
    }

    /// Encode the whole program to machine words (what the host writes into
    /// the control registers).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Encode`] from any instruction.
    pub fn encode(&self) -> Result<Vec<u32>, CoreError> {
        self.instrs.iter().map(Instruction::encode).collect()
    }

    /// Decode a program from machine words.
    ///
    /// # Errors
    ///
    /// Propagates decode/validation failures.
    pub fn decode(words: &[u32]) -> Result<Program, CoreError> {
        let instrs = words
            .iter()
            .map(|&w| Instruction::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Program::new(instrs)
    }

    /// Whether the program ends in an unbounded loop terminated only by
    /// CEXIT (the sparse-kernel shape of Algorithm 2).
    #[must_use]
    pub fn is_conditional_loop(&self) -> bool {
        self.instrs.iter().any(|i| matches!(i, Instruction::CExit { .. }))
            && self.instrs.iter().enumerate().any(|(i, ins)| {
                matches!(ins, Instruction::Jump { target, count: 0, .. } if (*target as usize) <= i)
            })
    }

    /// The host command schedule for one outer-loop iteration: memory
    /// instruction slots in dynamic execution order, inner loops unrolled.
    ///
    /// The walk follows jumps with their counters; it stops at `EXIT`, at
    /// the end of the program, or when a zero-count (unconditional) backward
    /// jump closes the outermost loop.
    ///
    /// # Errors
    ///
    /// [`CoreError::Execution`] if the walk exceeds a safety bound
    /// (malformed loop nest).
    pub fn command_schedule(&self) -> Result<Vec<usize>, CoreError> {
        const MAX_STEPS: usize = 1_000_000;
        let mut schedule = Vec::new();
        let mut counters = [0u32; MAX_PROGRAM_LEN];
        let mut pc = 0usize;
        let mut steps = 0usize;
        while pc < self.instrs.len() {
            steps += 1;
            if steps > MAX_STEPS {
                return Err(CoreError::Execution(
                    "command-schedule walk exceeded bound; malformed loop nest?".to_string(),
                ));
            }
            let ins = &self.instrs[pc];
            if ins.is_memory() {
                schedule.push(pc);
            }
            match *ins {
                Instruction::Exit => break,
                Instruction::Jump {
                    target,
                    order,
                    count,
                } => {
                    if count == 0 {
                        if (target as usize) <= pc {
                            // Outermost unconditional loop: one iteration done.
                            break;
                        }
                        pc = target as usize; // unconditional forward jump
                    } else {
                        // Mirror the PU's counter semantics exactly: the
                        // jump is taken `count` times, then falls through.
                        let ctr = &mut counters[order as usize];
                        *ctr += 1;
                        if *ctr <= u32::from(count) {
                            pc = target as usize;
                        } else {
                            *ctr = 0;
                            pc += 1;
                        }
                    }
                    continue;
                }
                _ => {}
            }
            pc += 1;
        }
        Ok(schedule)
    }
}

impl std::ops::Index<usize> for Program {
    type Output = Instruction;
    fn index(&self, slot: usize) -> &Instruction {
        &self.instrs[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Operand, SubQueue};
    use psim_sparse::Precision;

    fn load(q: u8) -> Instruction {
        Instruction::SpMov {
            dst: Operand::SpVq(q),
            src: Operand::Bank,
            sub: SubQueue::Val,
            precision: Precision::Fp64,
        }
    }

    fn store() -> Instruction {
        Instruction::Dmov {
            dst: Operand::Bank,
            src: Operand::Drf(0),
            precision: Precision::Fp64,
        }
    }

    #[test]
    fn straight_line_schedule() {
        let p = Program::new(vec![load(0), store(), Instruction::Exit]).unwrap();
        assert_eq!(p.command_schedule().unwrap(), vec![0, 1]);
        assert!(!p.is_conditional_loop());
    }

    #[test]
    fn infinite_loop_schedule_is_one_iteration() {
        // Algorithm 2 shape: loop { load; store; cexit } forever.
        let p = Program::new(vec![
            load(0),
            store(),
            Instruction::CExit { queue: 0 },
            Instruction::Jump {
                target: 0,
                order: 0,
                count: 0,
            },
        ])
        .unwrap();
        assert!(p.is_conditional_loop());
        assert_eq!(p.command_schedule().unwrap(), vec![0, 1]);
    }

    #[test]
    fn inner_loop_unrolls() {
        // load; (store ×3 via jump count 2); exit
        let p = Program::new(vec![
            load(0),
            store(),
            Instruction::Jump {
                target: 1,
                order: 1,
                count: 2,
            },
            Instruction::Exit,
        ])
        .unwrap();
        // store executes 3 times (2 jumps back).
        assert_eq!(p.command_schedule().unwrap(), vec![0, 1, 1, 1]);
    }

    #[test]
    fn nested_loops_use_separate_orders() {
        // outer ×2 { load; inner ×2 { store } }
        let p = Program::new(vec![
            load(0), // 0
            store(), // 1
            Instruction::Jump {
                target: 1,
                order: 1,
                count: 1,
            }, // 2: inner
            Instruction::Jump {
                target: 0,
                order: 2,
                count: 1,
            }, // 3: outer
            Instruction::Exit, // 4
        ])
        .unwrap();
        assert_eq!(p.command_schedule().unwrap(), vec![0, 1, 1, 0, 1, 1]);
    }

    #[test]
    fn validation_rejects_bad_programs() {
        assert!(Program::new(vec![]).is_err());
        assert!(Program::new(vec![Instruction::Nop; 33]).is_err());
        assert!(Program::new(vec![Instruction::Jump {
            target: 9,
            order: 0,
            count: 0
        }])
        .is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Program::new(vec![
            load(1),
            Instruction::CExit { queue: 1 },
            Instruction::Jump {
                target: 0,
                order: 0,
                count: 0,
            },
        ])
        .unwrap();
        let words = p.encode().unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(Program::decode(&words).unwrap(), p);
    }

    #[test]
    fn index_access() {
        let p = Program::new(vec![load(0), Instruction::Exit]).unwrap();
        assert_eq!(p[1], Instruction::Exit);
        assert_eq!(p.get(5), None);
        assert_eq!(p.len(), 2);
    }
}
