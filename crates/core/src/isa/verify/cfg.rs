//! Control-flow graph over the instruction slots.
//!
//! The pSyncPIM control model is small: execution advances slot by slot;
//! `JUMP` with count 0 branches unconditionally, `JUMP` with count > 0
//! either branches (counter not yet exhausted) or falls through, `EXIT`
//! terminates, and `CEXIT` either falls through or (once its watched
//! queue drains) terminates the bank. A PU that walks past the last slot
//! also exits. The graph that captures all of this has at most 32 nodes
//! and 2 successors per node, so dense bitset-free `Vec` reachability is
//! plenty.

use super::super::Instruction;
use super::{Diagnostic, LintCode};

/// Per-slot successor sets plus exit capability.
pub(super) struct Cfg {
    /// `succs[s]` — slots control can move to after slot `s`.
    pub succs: Vec<Vec<usize>>,
    /// `preds[s]` — inverse edges.
    pub preds: Vec<Vec<usize>>,
    /// `can_exit[s]` — slot `s` itself may terminate the program
    /// (`EXIT`, `CEXIT`, or falling off the program end).
    pub can_exit: Vec<bool>,
    /// `reachable[s]` — some path from slot 0 reaches `s`.
    pub reachable: Vec<bool>,
}

impl Cfg {
    pub(super) fn build(instrs: &[Instruction]) -> Cfg {
        let n = instrs.len();
        let mut succs = vec![Vec::new(); n];
        let mut can_exit = vec![false; n];
        for (slot, ins) in instrs.iter().enumerate() {
            let fallthrough = slot + 1 < n;
            match *ins {
                Instruction::Exit => can_exit[slot] = true,
                Instruction::Jump { target, count, .. } => {
                    let t = target as usize;
                    if t < n {
                        succs[slot].push(t);
                    }
                    // A counted jump exhausts its counter and falls
                    // through; count 0 never does.
                    if count > 0 {
                        if fallthrough {
                            succs[slot].push(slot + 1);
                        } else {
                            can_exit[slot] = true;
                        }
                    }
                }
                Instruction::CExit { .. } => {
                    // Either the queue is live (fall through) or the
                    // region drained (exit).
                    can_exit[slot] = true;
                    if fallthrough {
                        succs[slot].push(slot + 1);
                    }
                }
                _ => {
                    if fallthrough {
                        succs[slot].push(slot + 1);
                    } else {
                        can_exit[slot] = true;
                    }
                }
            }
        }

        let mut preds = vec![Vec::new(); n];
        for (s, outs) in succs.iter().enumerate() {
            for &t in outs {
                preds[t].push(s);
            }
        }

        // Forward reachability from slot 0.
        let mut reachable = vec![false; n];
        let mut stack = Vec::new();
        if n > 0 {
            reachable[0] = true;
            stack.push(0usize);
        }
        while let Some(s) = stack.pop() {
            for &t in &succs[s] {
                if !reachable[t] {
                    reachable[t] = true;
                    stack.push(t);
                }
            }
        }

        Cfg {
            succs,
            preds,
            can_exit,
            reachable,
        }
    }

    /// Control-flow diagnostics: unreachable slots, slots with no path to
    /// any exit, and the implicit exit off the program end.
    pub(super) fn check(&self, instrs: &[Instruction], diags: &mut Vec<Diagnostic>) {
        let n = instrs.len();

        for (slot, &r) in self.reachable.iter().enumerate() {
            if !r {
                diags.push(Diagnostic::new(
                    slot,
                    LintCode::Unreachable,
                    "no execution path reaches this instruction",
                ));
            }
        }

        // Backward reachability from exit-capable slots.
        let mut exits_reach = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (s, &e) in self.can_exit.iter().enumerate() {
            if e {
                exits_reach[s] = true;
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &p in &self.preds[s] {
                if !exits_reach[p] {
                    exits_reach[p] = true;
                    stack.push(p);
                }
            }
        }

        // One aggregated diagnostic at the lowest trapped slot — a
        // trapped loop traps every slot in its body, and 30 copies of
        // the same finding help nobody.
        if let Some(slot) = (0..n).find(|&s| self.reachable[s] && !exits_reach[s]) {
            diags.push(Diagnostic::new(
                slot,
                LintCode::NoExitPath,
                "no EXIT, CEXIT or program end is reachable from here: the kernel cannot \
                 terminate",
            ));
        }

        // A reachable exit via falling off the end, with an explicit
        // terminator nowhere on that path, is almost always a missing
        // EXIT rather than a design choice.
        for (slot, ins) in instrs.iter().enumerate() {
            let falls_off = slot + 1 == n
                && self.reachable[slot]
                && self.can_exit[slot]
                && !matches!(*ins, Instruction::Exit | Instruction::CExit { .. });
            if falls_off {
                diags.push(Diagnostic::new(
                    slot,
                    LintCode::ImplicitExit,
                    "control falls off the program end; add an explicit EXIT",
                ));
            }
        }
    }
}
