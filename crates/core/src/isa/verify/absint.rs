//! Worklist abstract interpretation over the PIM dataflow.
//!
//! The abstract state per program point tracks, for each PU:
//!
//! * **DRF initialization** — `No` / `Maybe` / `Yes` written, so a read of
//!   a definitely-unwritten dense register warns ([`LintCode::ReadBeforeWrite`]).
//!   The SRF is host-seeded (`set_srf_all` before launch, 0.0 default), so
//!   SRF reads never warn.
//! * **Sub-queue depth intervals** — bytes in `[0, 64]` per sub-queue of
//!   each of the 3 sparse queues. Every burst moves `lanes × bytes` =
//!   exactly 32 B regardless of precision, which keeps the domain exact
//!   for the shipped kernels. Pops are modeled endpoint-wise through the
//!   monotone `a ↦ a − min(a, 32)` runtime function (predication makes an
//!   empty pop legal, so only *impossibilities* are errors): a consumer
//!   whose queue is empty in every reachable state is a guaranteed no-op
//!   ([`LintCode::QueueUnderflow`]); a push whose minimum requirement
//!   exceeds the space left in every reachable state stalls the PU forever
//!   ([`LintCode::QueueOverflow`]) — a stalled PU cannot run the very
//!   consumers that would drain the queue.
//! * **Precisions** — last-known precision of each DRF, the SRF, and the
//!   elements of each queue; a consumer at a different precision warns
//!   ([`LintCode::PrecisionMismatch`]).
//!
//! All three domains are finite lattices (intervals over 0..=64, 3-point
//! init states, precision flats), joins are pointwise, transfers are
//! monotone — the worklist reaches a fixpoint without widening. The
//! diagnostics pass then replays each reachable slot once against its
//! converged in-state.

use super::cfg::Cfg;
use super::{Diagnostic, LintCode};
use crate::isa::{Instruction, Operand, SubQueue};
use psim_sparse::Precision;

/// Bytes per sub-queue (`pu::queue::SUB_QUEUE_BYTES`; re-stated here to
/// keep `isa` free of a `pu` dependency).
const CAP: u16 = 64;
/// Bytes per burst: `lanes × elem_bytes` is 32 for every precision.
const BURST: u16 = 32;

// ---- domains -----------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Written {
    No,
    Maybe,
    Yes,
}

impl Written {
    fn join(self, other: Written) -> Written {
        if self == other {
            self
        } else {
            Written::Maybe
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prec {
    /// Nothing known (never produced on this path, or host-seeded data).
    Unknown,
    Known(Precision),
    /// Produced at conflicting precisions.
    Mixed,
}

impl Prec {
    fn join(self, other: Prec) -> Prec {
        match (self, other) {
            (Prec::Unknown, p) | (p, Prec::Unknown) => p,
            (Prec::Known(a), Prec::Known(b)) if a == b => self,
            _ => Prec::Mixed,
        }
    }
}

/// Byte occupancy of one sub-queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: u16,
    hi: u16,
}

impl Interval {
    const EMPTY: Interval = Interval { lo: 0, hi: 0 };

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Add `[n_lo, n_hi]` bytes, clamped at capacity.
    fn push(self, n_lo: u16, n_hi: u16) -> Interval {
        Interval {
            lo: (self.lo + n_lo).min(CAP),
            hi: (self.hi + n_hi).min(CAP),
        }
    }

    /// Remove `[n_lo, n_hi]` bytes (endpoint-wise, saturating).
    fn pop(self, n_lo: u16, n_hi: u16) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(n_hi),
            hi: self.hi.saturating_sub(n_lo),
        }
    }
}

/// Abstract PU state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    drf: [Written; 3],
    drf_prec: [Prec; 3],
    srf_prec: Prec,
    q_prec: [Prec; 3],
    /// `[queue][row, col, val]` byte occupancy.
    sub: [[Interval; 3]; 3],
}

impl State {
    /// Launch state: DRFs unwritten, SRF host-seeded, queues empty.
    fn entry() -> State {
        State {
            drf: [Written::No; 3],
            drf_prec: [Prec::Unknown; 3],
            srf_prec: Prec::Unknown,
            q_prec: [Prec::Unknown; 3],
            sub: [[Interval::EMPTY; 3]; 3],
        }
    }

    fn join(&self, other: &State) -> State {
        let mut out = self.clone();
        for i in 0..3 {
            out.drf[i] = out.drf[i].join(other.drf[i]);
            out.drf_prec[i] = out.drf_prec[i].join(other.drf_prec[i]);
            out.q_prec[i] = out.q_prec[i].join(other.q_prec[i]);
            for s in 0..3 {
                out.sub[i][s] = out.sub[i][s].join(other.sub[i][s]);
            }
        }
        out.srf_prec = out.srf_prec.join(other.srf_prec);
        out
    }

    /// Complete `(row, col, val)` triples available in queue `q`, in
    /// bytes: the minimum over the three sub-queues.
    fn triples(&self, q: usize) -> Interval {
        let s = &self.sub[q];
        Interval {
            lo: s[0].lo.min(s[1].lo).min(s[2].lo),
            hi: s[0].hi.min(s[1].hi).min(s[2].hi),
        }
    }

    /// Pop up to one burst of complete triples from queue `q` (the
    /// `k = min(len, lanes)` runtime rule); returns the popped bytes.
    fn pop_triples(&mut self, q: usize) -> (u16, u16) {
        let c = self.triples(q);
        let (k_lo, k_hi) = (c.lo.min(BURST), c.hi.min(BURST));
        for s in 0..3 {
            self.sub[q][s] = self.sub[q][s].pop(k_lo, k_hi);
        }
        (k_lo, k_hi)
    }

    /// Push `[n_lo, n_hi]` bytes into every sub-queue of `q` (a complete
    /// triple enters all three together).
    fn push_triples(&mut self, q: usize, n_lo: u16, n_hi: u16) {
        for s in 0..3 {
            self.sub[q][s] = self.sub[q][s].push(n_lo, n_hi);
        }
    }
}

fn sub_index(sub: SubQueue) -> Option<usize> {
    match sub {
        SubQueue::Row => Some(0),
        SubQueue::Col => Some(1),
        SubQueue::Val => Some(2),
        SubQueue::All => None,
    }
}

fn q_ok(i: u8) -> Option<usize> {
    (i < 3).then_some(i as usize)
}

fn drf_ok(op: Operand) -> Option<usize> {
    match op {
        Operand::Drf(i) if i < 3 => Some(i as usize),
        _ => None,
    }
}

// ---- transfer ----------------------------------------------------------

/// Apply one instruction to the state. Out-of-range indices (already
/// reported by the range pass) are skipped, not panicked on.
#[allow(clippy::too_many_lines)]
fn transfer(st: &mut State, ins: &Instruction) {
    match *ins {
        Instruction::Nop
        | Instruction::Jump { .. }
        | Instruction::Exit
        | Instruction::CExit { .. } => {}

        Instruction::Dmov {
            dst,
            src,
            precision,
        } => match (dst, src) {
            (Operand::Drf(_), _) => {
                if let Some(d) = drf_ok(dst) {
                    st.drf[d] = Written::Yes;
                    st.drf_prec[d] = Prec::Known(precision);
                }
            }
            (Operand::Srf, _) => st.srf_prec = Prec::Known(precision),
            _ => {}
        },

        Instruction::IndMov { dst, precision, .. } => match dst {
            Operand::Drf(_) => {
                if let Some(d) = drf_ok(dst) {
                    st.drf[d] = Written::Yes;
                    st.drf_prec[d] = Prec::Known(precision);
                }
            }
            Operand::Srf => st.srf_prec = Prec::Known(precision),
            _ => {}
        },

        Instruction::SpMov {
            dst,
            src,
            sub,
            precision,
        } => match (dst, src) {
            (Operand::SpVq(q), Operand::Bank) => {
                if let Some(q) = q_ok(q) {
                    // Region-drained is an exit no-op; the data path
                    // always moves a whole burst.
                    match sub_index(sub) {
                        Some(s) => st.sub[q][s] = st.sub[q][s].push(BURST, BURST),
                        None => st.push_triples(q, BURST, BURST),
                    }
                    st.q_prec[q] = st.q_prec[q].join(Prec::Known(precision));
                }
            }
            (Operand::Bank, Operand::SpVq(q)) => {
                if let Some(q) = q_ok(q) {
                    match sub_index(sub) {
                        // a − min(a, 32) endpoint-wise.
                        Some(s) => st.sub[q][s] = st.sub[q][s].pop(BURST, BURST),
                        None => {
                            st.pop_triples(q);
                        }
                    }
                }
            }
            _ => {}
        },

        Instruction::SpFw { src, .. } => {
            if let Some(q) = q_ok(src) {
                // Drains every complete triple: each sub-queue keeps only
                // its excess over the complete count.
                let c = st.triples(q);
                for s in 0..3 {
                    st.sub[q][s] = st.sub[q][s].pop(c.lo, c.hi);
                }
            }
        }

        Instruction::GthSct {
            dst,
            src,
            precision,
            ..
        } => match (dst, src) {
            (Operand::SpVq(q), Operand::Bank) => {
                if let Some(q) = q_ok(q) {
                    // Only non-identity elements enter the queue.
                    st.push_triples(q, 0, BURST);
                    st.q_prec[q] = st.q_prec[q].join(Prec::Known(precision));
                }
            }
            (Operand::Bank, Operand::SpVq(q)) => {
                if let Some(q) = q_ok(q) {
                    st.pop_triples(q);
                }
            }
            _ => {}
        },

        Instruction::Sdv { dst, precision, .. } => {
            if let Some(d) = drf_ok(dst) {
                st.drf[d] = Written::Yes;
                st.drf_prec[d] = Prec::Known(precision);
            }
        }

        Instruction::SSpv {
            dst,
            src,
            precision,
            ..
        } => {
            if let (Operand::SpVq(d), Operand::SpVq(s)) = (dst, src) {
                if let (Some(d), Some(s)) = (q_ok(d), q_ok(s)) {
                    // Re-pushes every popped element (no sentinel drop).
                    let (k_lo, k_hi) = st.pop_triples(s);
                    st.push_triples(d, k_lo, k_hi);
                    st.q_prec[d] = st.q_prec[d].join(Prec::Known(precision));
                }
            }
        }

        Instruction::Reduce { precision, .. } => st.srf_prec = Prec::Known(precision),

        Instruction::Dvdv { dst, precision, .. } => {
            if let Some(d) = drf_ok(dst) {
                st.drf[d] = Written::Yes;
                st.drf_prec[d] = Prec::Known(precision);
            }
        }

        Instruction::SpVdv {
            dst,
            src0,
            precision,
            ..
        } => {
            if let Some(s_ix) = src0_queue(src0) {
                let (_, k_hi) = st.pop_triples(s_ix);
                if let Operand::SpVq(d) = dst {
                    if let Some(d) = q_ok(d) {
                        // Sentinel-padded elements are dropped: the push
                        // can be anywhere from nothing to the whole pop.
                        st.push_triples(d, 0, k_hi);
                        st.q_prec[d] = st.q_prec[d].join(Prec::Known(precision));
                    }
                }
            }
        }

        Instruction::SpVSpv {
            dst,
            src0,
            src1,
            precision,
            ..
        } => {
            let mut pushed_hi = 0u16;
            for src in [src0, src1] {
                if let Some(q) = src0_queue(src) {
                    let (_, k_hi) = st.pop_triples(q);
                    pushed_hi = (pushed_hi + k_hi).min(CAP);
                }
            }
            if let Operand::SpVq(d) = dst {
                if let Some(d) = q_ok(d) {
                    // Union keeps up to everything, intersection may keep
                    // nothing.
                    st.push_triples(d, 0, pushed_hi);
                    st.q_prec[d] = st.q_prec[d].join(Prec::Known(precision));
                }
            }
        }
    }
}

fn src0_queue(op: Operand) -> Option<usize> {
    match op {
        Operand::SpVq(i) => q_ok(i),
        _ => None,
    }
}

// ---- diagnostics against the converged in-states -----------------------

/// Reads performed by an instruction, for the read-before-write and
/// precision passes: `(operand, precision)` pairs.
fn reg_reads(ins: &Instruction) -> Vec<(Operand, Precision)> {
    match *ins {
        Instruction::Dmov {
            dst,
            src,
            precision,
        } => match (dst, src) {
            // Bank loads read no register; stores and moves read `src`.
            (_, Operand::Drf(_) | Operand::Srf) => vec![(src, precision)],
            _ => Vec::new(),
        },
        Instruction::Sdv { src, precision, .. } => {
            vec![(src, precision), (Operand::Srf, precision)]
        }
        Instruction::SSpv { precision, .. } => vec![(Operand::Srf, precision)],
        Instruction::Reduce { src, precision, .. } => vec![(src, precision)],
        Instruction::Dvdv {
            src0,
            src1,
            precision,
            ..
        } => vec![(src0, precision), (src1, precision)],
        Instruction::SpVdv {
            src1: src1 @ (Operand::Drf(_) | Operand::Srf),
            precision,
            ..
        } => vec![(src1, precision)],
        _ => Vec::new(),
    }
}

/// Queues an instruction consumes from (pop or peek), with the consuming
/// precision. A consumer whose every-state depth is zero is a guaranteed
/// no-op.
fn queue_reads(ins: &Instruction) -> Vec<(u8, Precision)> {
    match *ins {
        Instruction::IndMov {
            idx_queue,
            precision,
            ..
        } => vec![(idx_queue, precision)],
        Instruction::SpFw { src, precision } => vec![(src, precision)],
        Instruction::SpMov {
            dst: Operand::Bank,
            src: Operand::SpVq(q),
            precision,
            ..
        } => vec![(q, precision)],
        Instruction::GthSct {
            dst: Operand::Bank,
            src: Operand::SpVq(q),
            precision,
            ..
        } => vec![(q, precision)],
        Instruction::SSpv {
            src: Operand::SpVq(q),
            precision,
            ..
        } => vec![(q, precision)],
        Instruction::SpVdv {
            src0: Operand::SpVq(q),
            precision,
            ..
        } => vec![(q, precision)],
        Instruction::SpVSpv {
            src0,
            src1,
            precision,
            ..
        } => [src0, src1]
            .iter()
            .filter_map(|op| match op {
                Operand::SpVq(q) => Some((*q, precision)),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Minimum bytes of queue space an instruction demands before executing
/// (its stall predicate), as `(queue, min_required)` against the in-state.
fn push_demands(st: &State, ins: &Instruction) -> Vec<(usize, SubQueue, u16)> {
    match *ins {
        Instruction::SpMov {
            dst: Operand::SpVq(q),
            src: Operand::Bank,
            sub,
            ..
        } => q_ok(q).map(|q| (q, sub, BURST)).into_iter().collect(),
        Instruction::GthSct {
            dst: Operand::SpVq(q),
            src: Operand::Bank,
            ..
        } => q_ok(q)
            .map(|q| (q, SubQueue::All, BURST))
            .into_iter()
            .collect(),
        Instruction::SSpv {
            dst: Operand::SpVq(d),
            src: Operand::SpVq(s),
            ..
        } => match (q_ok(d), q_ok(s)) {
            (Some(d), Some(s)) => {
                let k_lo = st.triples(s).lo.min(BURST);
                vec![(d, SubQueue::All, k_lo)]
            }
            _ => Vec::new(),
        },
        Instruction::SpVdv {
            dst: Operand::SpVq(d),
            src0: Operand::SpVq(s),
            ..
        } => match (q_ok(d), q_ok(s)) {
            (Some(d), Some(s)) => {
                let k_lo = st.triples(s).lo.min(BURST);
                vec![(d, SubQueue::All, k_lo)]
            }
            _ => Vec::new(),
        },
        Instruction::SpVSpv {
            dst: Operand::SpVq(d),
            src0,
            src1,
            ..
        } => q_ok(d)
            .map(|d| {
                let mut need = 0u16;
                for src in [src0, src1] {
                    if let Some(s) = src0_queue(src) {
                        need += st.triples(s).lo.min(BURST);
                    }
                }
                (d, SubQueue::All, need)
            })
            .into_iter()
            .collect(),
        _ => Vec::new(),
    }
}

fn prec_name(p: Prec) -> String {
    match p {
        Prec::Unknown => "unknown".to_string(),
        Prec::Known(p) => p.to_string(),
        Prec::Mixed => "mixed".to_string(),
    }
}

fn check_slot(st: &State, slot: usize, ins: &Instruction, diags: &mut Vec<Diagnostic>) {
    // Read-before-write and precision over registers.
    for (op, p) in reg_reads(ins) {
        match op {
            Operand::Drf(_) => {
                if let Some(i) = drf_ok(op) {
                    if st.drf[i] == Written::No {
                        diags.push(Diagnostic::new(
                            slot,
                            LintCode::ReadBeforeWrite,
                            format!(
                                "DRF{i} is read here but never written on any path to this \
                                     instruction"
                            ),
                        ));
                    }
                    if let Prec::Known(q) = st.drf_prec[i] {
                        if q != p {
                            diags.push(Diagnostic::new(
                                slot,
                                LintCode::PrecisionMismatch,
                                format!("DRF{i} holds {q} data but is consumed at {p}"),
                            ));
                        }
                    } else if st.drf_prec[i] == Prec::Mixed {
                        diags.push(Diagnostic::new(
                            slot,
                            LintCode::PrecisionMismatch,
                            format!(
                                "DRF{i} holds {} data but is consumed at {p}",
                                prec_name(st.drf_prec[i])
                            ),
                        ));
                    }
                }
            }
            Operand::Srf => {
                // The SRF is host-seeded, so no read-before-write; only a
                // known conflicting producer precision warns.
                match st.srf_prec {
                    Prec::Known(q) if q != p => diags.push(Diagnostic::new(
                        slot,
                        LintCode::PrecisionMismatch,
                        format!("SRF holds {q} data but is consumed at {p}"),
                    )),
                    Prec::Mixed => diags.push(Diagnostic::new(
                        slot,
                        LintCode::PrecisionMismatch,
                        format!("SRF holds mixed-precision data but is consumed at {p}"),
                    )),
                    _ => {}
                }
            }
            _ => {}
        }
    }

    // Queue underflow + element precision.
    for (q, p) in queue_reads(ins) {
        let Some(q) = q_ok(q) else { continue };
        if st.triples(q).hi == 0 {
            diags.push(Diagnostic::new(
                slot,
                LintCode::QueueUnderflow,
                format!(
                    "SPVQ{q} holds no complete element in any execution reaching this \
                     instruction: the consumer is a guaranteed no-op"
                ),
            ));
        }
        match st.q_prec[q] {
            Prec::Known(elem) if elem != p => diags.push(Diagnostic::new(
                slot,
                LintCode::PrecisionMismatch,
                format!("SPVQ{q} holds {elem} elements but is consumed at {p}"),
            )),
            Prec::Mixed => diags.push(Diagnostic::new(
                slot,
                LintCode::PrecisionMismatch,
                format!("SPVQ{q} holds mixed-precision elements but is consumed at {p}"),
            )),
            _ => {}
        }
    }

    // Queue overflow: minimum occupancy + minimum demand beyond capacity
    // in every reachable state ⇒ the stall predicate can never pass, and
    // a stalled PU cannot reach the consumers that would drain the queue.
    for (q, sub, need) in push_demands(st, ins) {
        if need == 0 {
            continue;
        }
        let occupancy_lo = match sub_index(sub) {
            Some(s) => st.sub[q][s].lo,
            None => st.sub[q][0].lo.max(st.sub[q][1].lo).max(st.sub[q][2].lo),
        };
        if occupancy_lo + need > CAP {
            diags.push(Diagnostic::new(
                slot,
                LintCode::QueueOverflow,
                format!(
                    "push of at least {need} B into SPVQ{q} cannot fit: the queue already \
                     holds at least {occupancy_lo} B of its {CAP} B in every execution — the \
                     PU stalls forever"
                ),
            ));
        }
    }
}

// ---- fixpoint ----------------------------------------------------------

/// Run the abstract interpretation and append dataflow diagnostics.
pub(super) fn check(instrs: &[Instruction], cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let n = instrs.len();
    if n == 0 {
        return;
    }
    let mut in_states: Vec<Option<State>> = vec![None; n];
    in_states[0] = Some(State::entry());
    let mut worklist: Vec<usize> = vec![0];
    let mut on_list = vec![false; n];
    on_list[0] = true;

    while let Some(slot) = worklist.pop() {
        on_list[slot] = false;
        let mut out = in_states[slot].clone().expect("on worklist ⇒ has in-state");
        transfer(&mut out, &instrs[slot]);
        for &succ in &cfg.succs[slot] {
            let merged = match &in_states[succ] {
                Some(prev) => prev.join(&out),
                None => out.clone(),
            };
            if in_states[succ].as_ref() != Some(&merged) {
                in_states[succ] = Some(merged);
                if !on_list[succ] {
                    on_list[succ] = true;
                    worklist.push(succ);
                }
            }
        }
    }

    for (slot, st) in in_states.iter().enumerate() {
        if let Some(st) = st {
            check_slot(st, slot, &instrs[slot], diags);
        }
    }
}
