//! Partial-synchrony lints (`PSL014`–`PSL016`).
//!
//! The first thirteen lint codes check a program against the *ISA*; these
//! three check it against the *execution model*. Under partially
//! synchronous execution, per-bank PUs run the same program text but
//! advance independently between memory operations — the memory
//! controller is the only point where their phases re-align, and `CEXIT`
//! termination is a per-bank decision driven by queue occupancy. Three
//! loop-level shapes are therefore hazards that none of the structural or
//! dataflow passes see:
//!
//! * **`PSL014` — phase divergence.** An *unbounded* loop (`JUMP` count
//!   0, Algorithm 2's stream loop) whose cycle contains no
//!   memory-touching instruction never passes through the controller:
//!   nothing bounds how far one bank's phase drifts from another's, and
//!   the host's completion poll observes an arbitrarily skewed machine.
//!   Counted loops are exempt — the trip count itself bounds the drift.
//! * **`PSL015` — fusion safety / gather freshness.** `INDMOV` gathers
//!   dense-vector elements into a DRF *through* the index stream at the
//!   head of a sparse queue; a later `SPVDV` combining that queue against
//!   the DRF is only aligned while the queue has not been popped since
//!   the gather. Fused (block-diagonal) SpMM relies on this: a follower
//!   vector's gather must be consumed against the *same* queue segment it
//!   was indexed through, never cross-read against another queue or
//!   reused after the segment advanced. The pass runs a per-DRF
//!   freshness fixpoint and rejects gather clobbers, cross-queue
//!   combines, and stale (post-pop) combines. Joins are optimistic —
//!   a shape is flagged only when *every* path into the slot exhibits
//!   it, so the pass adds no false positives on predicated streams.
//! * **`PSL016` — `CEXIT` non-termination.** `CEXIT` terminates the bank
//!   when its watched queue is empty. A cycle that *pushes* the watched
//!   queue but never *drains* it keeps the queue non-empty from the
//!   first iteration on: the exit condition is unsatisfiable and the
//!   bank spins forever (the dynamic twin of `PSL007`, visible only
//!   through queue-occupancy reasoning). `INDMOV` peeks without
//!   popping, so it is not a drain.
//!
//! All three are [`Severity::Error`](super::Severity::Error): each marks
//! a program that hangs or silently computes against misaligned data.

use super::super::{Instruction, Operand};
use super::cfg::Cfg;
use super::{Diagnostic, LintCode};

/// Run the partial-synchrony passes, appending findings to `diags`.
pub(super) fn check(instrs: &[Instruction], cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let reach = reach1(cfg);
    phase_divergence(instrs, cfg, &reach, diags);
    gather_freshness(instrs, cfg, diags);
    cexit_termination(instrs, cfg, &reach, diags);
}

/// `reach[i][j]` — a path of **at least one edge** leads from `i` to `j`
/// (so `reach[i][i]` means `i` sits on a cycle). Programs cap at a few
/// dozen slots; per-node DFS is plenty.
fn reach1(cfg: &Cfg) -> Vec<Vec<bool>> {
    let n = cfg.succs.len();
    let mut reach = vec![vec![false; n]; n];
    for (s, row) in reach.iter_mut().enumerate() {
        let mut stack: Vec<usize> = cfg.succs[s].clone();
        while let Some(t) = stack.pop() {
            if !row[t] {
                row[t] = true;
                stack.extend(cfg.succs[t].iter().copied());
            }
        }
    }
    reach
}

/// The strongly connected component of `slot`, as a slot list.
fn scc_of(slot: usize, reach: &[Vec<bool>]) -> Vec<usize> {
    (0..reach.len())
        .filter(|&j| j == slot || (reach[slot][j] && reach[j][slot]))
        .collect()
}

// ---- PSL014: unbounded loop with no memory lockstep point --------------

fn phase_divergence(
    instrs: &[Instruction],
    cfg: &Cfg,
    reach: &[Vec<bool>],
    diags: &mut Vec<Diagnostic>,
) {
    for (slot, ins) in instrs.iter().enumerate() {
        if !cfg.reachable[slot] || !matches!(*ins, Instruction::Jump { count: 0, .. }) {
            continue;
        }
        if !reach[slot][slot] {
            continue; // backward jump whose body exits before returning
        }
        let scc = scc_of(slot, reach);
        if scc.iter().any(|&j| instrs[j].is_memory()) {
            continue;
        }
        diags.push(Diagnostic::new(
            slot,
            LintCode::PhaseDivergence,
            "unbounded loop (JUMP count 0) contains no memory instruction: banks never \
             re-align at the controller and partial-synchrony phase drift is unbounded",
        ));
    }
}

// ---- PSL016: CEXIT whose watched queue can never drain -----------------

/// The instruction *pushes* a burst into `SPVQ{q}` (queue as destination).
fn pushes_queue(ins: &Instruction, q: u8) -> bool {
    let qop = Operand::SpVq(q);
    match *ins {
        Instruction::Dmov { dst, .. }
        | Instruction::SpMov { dst, .. }
        | Instruction::GthSct { dst, .. }
        | Instruction::SSpv { dst, .. }
        | Instruction::SpVdv { dst, .. }
        | Instruction::SpVSpv { dst, .. } => dst == qop,
        _ => false,
    }
}

/// The instruction *pops* `SPVQ{q}` (queue as a consumed source). `INDMOV`
/// peeks the index stream without advancing the queue, so it is excluded.
fn drains_queue(ins: &Instruction, q: u8) -> bool {
    let qop = Operand::SpVq(q);
    match *ins {
        Instruction::SpFw { src, .. } => src == q,
        Instruction::Dmov { src, .. }
        | Instruction::SpMov { src, .. }
        | Instruction::GthSct { src, .. }
        | Instruction::SSpv { src, .. } => src == qop,
        Instruction::SpVdv { src0, .. } => src0 == qop,
        Instruction::SpVSpv { src0, src1, .. } => src0 == qop || src1 == qop,
        _ => false,
    }
}

fn cexit_termination(
    instrs: &[Instruction],
    cfg: &Cfg,
    reach: &[Vec<bool>],
    diags: &mut Vec<Diagnostic>,
) {
    for (slot, ins) in instrs.iter().enumerate() {
        let Instruction::CExit { queue } = *ins else {
            continue;
        };
        if queue >= 3 || !cfg.reachable[slot] || !reach[slot][slot] {
            continue; // out-of-range is PSL004; acyclic CEXIT always exits
        }
        let scc = scc_of(slot, reach);
        let pushes = scc.iter().any(|&j| pushes_queue(&instrs[j], queue));
        let drains = scc.iter().any(|&j| drains_queue(&instrs[j], queue));
        if pushes && !drains {
            diags.push(Diagnostic::new(
                slot,
                LintCode::CExitTermination,
                format!(
                    "CEXIT watches SPVQ{queue}, but the loop pushes that queue and never \
                     drains it: the exit condition is unsatisfiable and the bank spins forever"
                ),
            ));
        }
    }
}

// ---- PSL015: gather freshness / fusion safety --------------------------

/// Per-DRF gather state. Ordered as a lattice chain per queue:
/// `Stale(q) < Fresh(q) < Unknown`, with `Unknown` the optimistic top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gather {
    /// No gather tracked (top — suppresses all PSL015 findings).
    Unknown,
    /// The DRF holds an `INDMOV` gather indexed through `SPVQ{q}` and the
    /// queue has not been popped since: combining against `q` is aligned.
    Fresh(u8),
    /// The queue was popped after the gather: the DRF's elements no
    /// longer correspond to the queue's head segment.
    Stale(u8),
}

/// Optimistic join: agreement is kept, fresh wins over stale on the same
/// queue (some path is still aligned), anything else loses all claims.
fn join(a: Gather, b: Gather) -> Gather {
    match (a, b) {
        _ if a == b => a,
        (Gather::Fresh(q), Gather::Stale(p)) | (Gather::Stale(q), Gather::Fresh(p)) if q == p => {
            Gather::Fresh(q)
        }
        _ => Gather::Unknown,
    }
}

/// The dense-register destination of `ins`, if any (excluding `INDMOV`,
/// whose write is the tracked gather itself).
fn drf_dst(ins: &Instruction) -> Option<u8> {
    let (Instruction::Dmov { dst, .. }
    | Instruction::SpMov { dst, .. }
    | Instruction::GthSct { dst, .. }
    | Instruction::Sdv { dst, .. }
    | Instruction::SSpv { dst, .. }
    | Instruction::Dvdv { dst, .. }
    | Instruction::SpVdv { dst, .. }
    | Instruction::SpVSpv { dst, .. }) = *ins
    else {
        return None;
    };
    match dst {
        Operand::Drf(d) if d < 3 => Some(d),
        _ => None,
    }
}

/// Apply one instruction's effect to the per-DRF gather states.
fn transfer(ins: &Instruction, st: &mut [Gather; 3]) {
    if let Instruction::IndMov {
        dst: Operand::Drf(d),
        idx_queue,
        ..
    } = *ins
    {
        if d < 3 && idx_queue < 3 {
            st[d as usize] = Gather::Fresh(idx_queue);
        }
        return;
    }
    // A pop advances the queue head: every fresh gather through that
    // queue is now misaligned.
    for q in 0..3u8 {
        if drains_queue(ins, q) {
            for g in &mut *st {
                if *g == Gather::Fresh(q) {
                    *g = Gather::Stale(q);
                }
            }
        }
    }
    if let Some(d) = drf_dst(ins) {
        st[d as usize] = Gather::Unknown;
    }
}

fn gather_freshness(instrs: &[Instruction], cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let n = instrs.len();
    if n == 0 {
        return;
    }

    // Worklist fixpoint over per-slot entry states. The lattice chain has
    // height 3 per DRF and the join is monotone, so this terminates.
    let mut states: Vec<[Gather; 3]> = vec![[Gather::Unknown; 3]; n];
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut work = vec![0usize];
    while let Some(s) = work.pop() {
        let mut out = states[s];
        transfer(&instrs[s], &mut out);
        for &t in &cfg.succs[s] {
            if !visited[t] {
                visited[t] = true;
                states[t] = out;
                work.push(t);
            } else {
                let mut merged = states[t];
                for d in 0..3 {
                    merged[d] = join(merged[d], out[d]);
                }
                if merged != states[t] {
                    states[t] = merged;
                    work.push(t);
                }
            }
        }
    }

    // Reporting pass over the converged entry states.
    for (slot, ins) in instrs.iter().enumerate() {
        if !visited[slot] {
            continue;
        }
        let st = &states[slot];
        match *ins {
            Instruction::IndMov {
                dst: Operand::Drf(d),
                idx_queue,
                ..
            } if d < 3 && idx_queue < 3 => {
                if let Gather::Fresh(q0) = st[d as usize] {
                    diags.push(Diagnostic::new(
                        slot,
                        LintCode::FusionSafety,
                        format!(
                            "INDMOV overwrites DRF{d}, which still holds an unconsumed \
                             gather from SPVQ{q0}: the gathered operand is lost"
                        ),
                    ));
                }
            }
            Instruction::SpVdv {
                src0: Operand::SpVq(qs),
                src1: Operand::Drf(d),
                ..
            } if qs < 3 && d < 3 => match st[d as usize] {
                Gather::Fresh(qg) if qg != qs => diags.push(Diagnostic::new(
                    slot,
                    LintCode::FusionSafety,
                    format!(
                        "SPVDV combines SPVQ{qs} against DRF{d}, which was gathered \
                             through SPVQ{qg}: fused streams must never cross-read another \
                             lane's vector segment"
                    ),
                )),
                Gather::Stale(qg) if qg == qs => diags.push(Diagnostic::new(
                    slot,
                    LintCode::FusionSafety,
                    format!(
                        "DRF{d}'s gather from SPVQ{qs} is stale (the queue was popped \
                             since the INDMOV): re-gather before combining"
                    ),
                )),
                Gather::Stale(qg) => diags.push(Diagnostic::new(
                    slot,
                    LintCode::FusionSafety,
                    format!(
                        "SPVDV combines SPVQ{qs} against DRF{d}, which holds a stale \
                             gather through SPVQ{qg}: wrong queue and wrong segment"
                    ),
                )),
                _ => {}
            },
            _ => {}
        }
    }
}
