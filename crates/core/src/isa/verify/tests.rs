//! psim-lint unit tests: a deliberately-broken-program corpus in which
//! each lint code fires exactly once, plus fixpoint behavior on the loop
//! shapes the shipped kernels use.

use super::super::{assemble, BinaryOp, Identity, Instruction, Operand, SetMode, SubQueue};
use super::{lint, Diagnostic, LintCode, Severity, VerifiedProgram, ALL_LINT_CODES};
use crate::error::CoreError;
use psim_sparse::Precision;

const P: Precision = Precision::Fp64;

fn spmov_in(q: u8, sub: SubQueue) -> Instruction {
    Instruction::SpMov {
        dst: Operand::SpVq(q),
        src: Operand::Bank,
        sub,
        precision: P,
    }
}

fn indmov(drf: u8, q: u8) -> Instruction {
    Instruction::IndMov {
        dst: Operand::Drf(drf),
        idx_queue: q,
        precision: P,
    }
}

fn spvdv(dst: Operand, src0: Operand, src1: Operand) -> Instruction {
    Instruction::SpVdv {
        dst,
        src0,
        src1,
        op: BinaryOp::Mul,
        set: SetMode::Intersection,
        precision: P,
    }
}

/// For every lint code, a minimal program on which it fires exactly once.
fn corpus() -> Vec<(LintCode, Vec<Instruction>)> {
    vec![
        (
            // Target past the end (Program::new refuses to build this, so
            // the corpus lints the raw slice — exactly what tooling over
            // decoded-but-unvalidated words needs).
            LintCode::JumpTargetRange,
            vec![
                Instruction::Jump {
                    target: 9,
                    order: 0,
                    count: 1,
                },
                Instruction::Exit,
            ],
        ),
        (
            // ORDER 40 indexes past the 32-entry loop-counter file: the
            // PU panics on the first back-edge.
            LintCode::OrderRange,
            vec![
                Instruction::Nop,
                Instruction::Jump {
                    target: 0,
                    order: 40,
                    count: 3,
                },
                Instruction::Exit,
            ],
        ),
        (
            LintCode::CountRange,
            vec![
                Instruction::Nop,
                Instruction::Jump {
                    target: 0,
                    order: 0,
                    count: 1024,
                },
                Instruction::Exit,
            ],
        ),
        (
            // Only SPVQ0-2 exist; queue 3 decodes (2-bit field wraps) but
            // panics the PU's queue array.
            LintCode::QueueIdRange,
            vec![Instruction::CExit { queue: 3 }, Instruction::Exit],
        ),
        (
            LintCode::RegIndexRange,
            vec![
                Instruction::Dmov {
                    dst: Operand::Drf(5),
                    src: Operand::Bank,
                    precision: P,
                },
                Instruction::Exit,
            ],
        ),
        (
            // Two counted loops over overlapping bodies sharing ORDER 1:
            // the inner back-edge clobbers the outer counter.
            LintCode::OrderReuse,
            vec![
                Instruction::Nop,
                Instruction::Jump {
                    target: 0,
                    order: 1,
                    count: 3,
                },
                Instruction::Jump {
                    target: 0,
                    order: 1,
                    count: 3,
                },
                Instruction::Exit,
            ],
        ),
        (
            // An unconditional loop with no CEXIT anywhere: the kernel
            // can never terminate.
            LintCode::NoExitPath,
            vec![
                Instruction::Nop,
                Instruction::Jump {
                    target: 0,
                    order: 0,
                    count: 0,
                },
            ],
        ),
        (
            LintCode::Unreachable,
            vec![Instruction::Exit, Instruction::Nop],
        ),
        (LintCode::ImplicitExit, vec![Instruction::Nop]),
        (
            // DRF0 is stored to the bank without ever being loaded.
            LintCode::ReadBeforeWrite,
            vec![
                Instruction::Dmov {
                    dst: Operand::Bank,
                    src: Operand::Drf(0),
                    precision: P,
                },
                Instruction::Exit,
            ],
        ),
        (
            // SpFW drains a queue nothing ever fills: a guaranteed no-op.
            LintCode::QueueUnderflow,
            vec![
                Instruction::SpFw {
                    src: 0,
                    precision: P,
                },
                Instruction::Exit,
            ],
        ),
        (
            // Three straight-line 32 B bursts into one 64 B sub-queue: the
            // third can never fit and the PU stalls forever.
            LintCode::QueueOverflow,
            vec![
                spmov_in(0, SubQueue::Row),
                spmov_in(0, SubQueue::Row),
                spmov_in(0, SubQueue::Row),
                Instruction::Exit,
            ],
        ),
        (
            // FP64 loaded, consumed as FP32.
            LintCode::PrecisionMismatch,
            vec![
                Instruction::Dmov {
                    dst: Operand::Drf(0),
                    src: Operand::Bank,
                    precision: Precision::Fp64,
                },
                Instruction::Sdv {
                    dst: Operand::Drf(1),
                    src: Operand::Drf(0),
                    op: BinaryOp::Mul,
                    precision: Precision::Fp32,
                },
                Instruction::Exit,
            ],
        ),
        (
            // Compute-only unbounded loop: nothing ever passes through
            // the memory controller, so bank phases drift without bound.
            LintCode::PhaseDivergence,
            vec![
                Instruction::Sdv {
                    dst: Operand::Drf(0),
                    src: Operand::Drf(0),
                    op: BinaryOp::Mul,
                    precision: P,
                },
                Instruction::CExit { queue: 0 },
                Instruction::Jump {
                    target: 0,
                    order: 0,
                    count: 0,
                },
            ],
        ),
        (
            // The first SPVDV pops SPVQ0, staleifying DRF2's gather; the
            // second combines against the advanced queue anyway.
            LintCode::FusionSafety,
            vec![
                spmov_in(0, SubQueue::Row),
                spmov_in(0, SubQueue::Col),
                spmov_in(0, SubQueue::Val),
                spmov_in(0, SubQueue::Row),
                spmov_in(0, SubQueue::Col),
                spmov_in(0, SubQueue::Val),
                indmov(2, 0),
                spvdv(Operand::SpVq(1), Operand::SpVq(0), Operand::Drf(2)),
                spvdv(Operand::SpVq(1), Operand::SpVq(0), Operand::Drf(2)),
                Instruction::Exit,
            ],
        ),
        (
            // The loop pushes the CEXIT-watched queue and never drains
            // it: the exit condition can never become true.
            LintCode::CExitTermination,
            vec![
                spmov_in(0, SubQueue::Row),
                Instruction::CExit { queue: 0 },
                Instruction::Jump {
                    target: 0,
                    order: 0,
                    count: 0,
                },
            ],
        ),
    ]
}

#[test]
fn corpus_covers_every_lint_code() {
    let covered: Vec<LintCode> = corpus().into_iter().map(|(c, _)| c).collect();
    for code in ALL_LINT_CODES {
        assert!(covered.contains(&code), "corpus misses {code}");
    }
}

#[test]
fn each_lint_code_fires_exactly_once_on_its_corpus_program() {
    for (code, instrs) in corpus() {
        let hits: Vec<Diagnostic> = lint(&instrs)
            .into_iter()
            .filter(|d| d.code == code)
            .collect();
        assert_eq!(
            hits.len(),
            1,
            "{code} fired {} times on its corpus program: {hits:?}",
            hits.len()
        );
    }
}

#[test]
fn diagnostics_carry_slot_code_and_severity() {
    let d = &lint(&[
        Instruction::SpFw {
            src: 0,
            precision: P,
        },
        Instruction::Exit,
    ])[0];
    assert_eq!(d.slot, 0);
    assert_eq!(d.code, LintCode::QueueUnderflow);
    assert_eq!(d.severity(), Severity::Error);
    assert_eq!(d.code.code(), "PSL011");
    let shown = d.to_string();
    assert!(
        shown.contains("PSL011") && shown.contains("slot 0"),
        "{shown}"
    );
}

#[test]
fn lint_codes_are_unique_and_stable() {
    let codes: Vec<&str> = ALL_LINT_CODES.iter().map(|c| c.code()).collect();
    let mut dedup = codes.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ALL_LINT_CODES.len());
    assert!(codes.contains(&"PSL001") && codes.contains(&"PSL016"));
}

// ---- control flow ------------------------------------------------------

#[test]
fn conditional_loop_is_not_a_missing_exit() {
    // The Algorithm-2 shape: unbounded JUMP 0 loop closed by CEXIT.
    let prog = assemble(
        "SPMOV SPVQ0, BANK, ROW, FP64\n\
         SPMOV SPVQ0, BANK, COL, FP64\n\
         SPMOV SPVQ0, BANK, VAL, FP64\n\
         SPFW  SPVQ0, FP64\n\
         CEXIT SPVQ0\n\
         JUMP 0, 0, 0\n",
    )
    .unwrap();
    assert!(prog.is_conditional_loop());
    assert_eq!(prog.verify(), Vec::new());
}

#[test]
fn counted_loop_falls_through_cleanly() {
    let prog = assemble("NOP\nJUMP 0, 1, 7\nEXIT\n").unwrap();
    assert_eq!(prog.verify(), Vec::new());
}

#[test]
fn nested_loops_with_distinct_orders_are_clean() {
    let prog = assemble("NOP\nJUMP 0, 1, 3\nJUMP 0, 2, 5\nEXIT\n").unwrap();
    assert_eq!(prog.verify(), Vec::new());
}

#[test]
fn disjoint_loops_may_share_an_order() {
    // Sequential (non-overlapping) loops reuse the counter legally: each
    // back-edge resets it to zero on exhaustion.
    let prog = assemble("NOP\nJUMP 0, 1, 3\nNOP\nJUMP 2, 1, 3\nEXIT\n").unwrap();
    assert_eq!(prog.verify(), Vec::new());
}

#[test]
fn no_exit_path_reported_once_at_lowest_slot() {
    let diags = lint(&[
        Instruction::Nop,
        Instruction::Nop,
        Instruction::Jump {
            target: 0,
            order: 0,
            count: 0,
        },
    ]);
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.code == LintCode::NoExitPath)
        .collect();
    assert_eq!(hits.len(), 1, "one aggregated diagnostic: {diags:?}");
    assert_eq!(hits[0].slot, 0);
}

// ---- abstract interpretation -------------------------------------------

#[test]
fn loop_carried_queue_state_reaches_fixpoint_without_false_positives() {
    // The batched stream fills each SPVQ0 sub-queue to exactly 64 B per
    // iteration and drains it; the interval analysis must prove this
    // exact (no overflow/underflow) for every precision.
    for p in Precision::ALL {
        let asm = psim_kernels_like_batched(p);
        let prog = assemble(&asm).unwrap();
        assert_eq!(prog.verify(), Vec::new(), "precision {p}");
    }
}

/// The sparse_stream_batched shape, inlined so core does not depend on
/// the kernels crate.
fn psim_kernels_like_batched(p: Precision) -> String {
    format!(
        "\
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
INDMOV DRF2, SPVQ0, {p}
SPVDV  SPVQ1, SPVQ0, DRF2, MUL, INTER, {p}
INDMOV DRF2, SPVQ0, {p}
SPVDV  SPVQ1, SPVQ0, DRF2, MUL, INTER, {p}
SPVDV  BANK, SPVQ1, BANK, ADD, UNION, {p}
SPVDV  BANK, SPVQ1, BANK, ADD, UNION, {p}
CEXIT  SPVQ0
JUMP   0, 0, 0
"
    )
}

#[test]
fn consumer_fed_only_on_a_later_path_does_not_underflow() {
    // First iteration reaches the SpFW with an empty queue, but the
    // loop-carried join makes data possible: predication handles the
    // empty case at runtime, so no diagnostic.
    let prog = assemble(
        "SPFW  SPVQ0, FP64\n\
         SPMOV SPVQ0, BANK, ROW, FP64\n\
         SPMOV SPVQ0, BANK, COL, FP64\n\
         SPMOV SPVQ0, BANK, VAL, FP64\n\
         CEXIT SPVQ0\n\
         JUMP 0, 0, 0\n",
    )
    .unwrap();
    assert_eq!(prog.verify(), Vec::new());
}

#[test]
fn incomplete_triples_never_satisfy_a_triple_consumer() {
    // Only the row sub-queue is ever filled: no complete element can
    // exist, so the scatter is a guaranteed no-op even in the loop.
    let diags = lint(&[
        spmov_in(0, SubQueue::Row),
        Instruction::GthSct {
            dst: Operand::Bank,
            src: Operand::SpVq(0),
            identity: Identity::Zero,
            precision: P,
        },
        Instruction::CExit { queue: 0 },
        Instruction::Jump {
            target: 0,
            order: 0,
            count: 0,
        },
    ]);
    assert!(
        diags.iter().any(|d| d.code == LintCode::QueueUnderflow),
        "{diags:?}"
    );
}

#[test]
fn maybe_written_register_does_not_warn() {
    // The counted forward jump either skips the write (first path) or
    // falls through it: at the read the register is *maybe* written, and
    // only definitely-unwritten reads warn.
    let prog = assemble(
        "JUMP 2, 1, 1\n\
         DMOV DRF0, BANK, FP64\n\
         DMOV BANK, DRF0, FP64\n\
         EXIT\n",
    )
    .unwrap();
    assert_eq!(prog.verify(), Vec::new());
}

#[test]
fn queue_precision_mismatch_across_def_use() {
    let diags = lint(&[
        spmov_in(0, SubQueue::Row),
        spmov_in(0, SubQueue::Col),
        spmov_in(0, SubQueue::Val),
        Instruction::SpFw {
            src: 0,
            precision: Precision::Int8,
        },
        Instruction::Exit,
    ]);
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.code == LintCode::PrecisionMismatch)
        .collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].slot, 3);
}

#[test]
fn srf_is_host_seeded_and_never_read_before_write() {
    // DSCAL's shape: SDV consumes the SRF that set_srf_all seeds.
    let prog = assemble(
        "DMOV DRF0, BANK, FP64\n\
         SDV  DRF0, DRF0, MUL, FP64\n\
         DMOV BANK, DRF0, FP64\n\
         EXIT\n",
    )
    .unwrap();
    assert_eq!(prog.verify(), Vec::new());
}

// ---- partial synchrony -------------------------------------------------

#[test]
fn counted_compute_loop_is_not_phase_divergent() {
    // A trip count bounds the drift; only JUMP count 0 loops qualify.
    let diags = lint(&[
        Instruction::Sdv {
            dst: Operand::Drf(0),
            src: Operand::Drf(0),
            op: BinaryOp::Mul,
            precision: P,
        },
        Instruction::Jump {
            target: 0,
            order: 1,
            count: 7,
        },
        Instruction::Exit,
    ]);
    assert!(
        !diags.iter().any(|d| d.code == LintCode::PhaseDivergence),
        "{diags:?}"
    );
}

#[test]
fn gather_clobber_is_flagged_at_the_second_indmov() {
    let diags = lint(&[
        spmov_in(0, SubQueue::Row),
        spmov_in(0, SubQueue::Col),
        spmov_in(0, SubQueue::Val),
        indmov(2, 0),
        indmov(2, 0),
        spvdv(Operand::SpVq(1), Operand::SpVq(0), Operand::Drf(2)),
        Instruction::Exit,
    ]);
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.code == LintCode::FusionSafety)
        .collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].slot, 4);
    assert!(
        hits[0].message.contains("unconsumed"),
        "{}",
        hits[0].message
    );
}

#[test]
fn cross_queue_gather_combine_is_flagged() {
    // DRF2 is gathered through SPVQ0 but combined against SPVQ1 — the
    // fused-SpMM cross-read PSL015 exists to forbid.
    let diags = lint(&[
        spmov_in(0, SubQueue::Row),
        spmov_in(0, SubQueue::Col),
        spmov_in(0, SubQueue::Val),
        spmov_in(1, SubQueue::Row),
        spmov_in(1, SubQueue::Col),
        spmov_in(1, SubQueue::Val),
        indmov(2, 0),
        spvdv(Operand::SpVq(2), Operand::SpVq(1), Operand::Drf(2)),
        Instruction::Exit,
    ]);
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.code == LintCode::FusionSafety)
        .collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].slot, 7);
    assert!(
        hits[0].message.contains("cross-read"),
        "{}",
        hits[0].message
    );
}

#[test]
fn draining_cexit_loop_is_not_flagged_as_nonterminating() {
    // Push + drain in the same loop (the Algorithm-2 shape): the queue
    // can empty, so CEXIT can fire. Covered end-to-end by the clean
    // batched-stream fixpoint test too; this pins PSL016 specifically.
    let diags = lint(&[
        spmov_in(0, SubQueue::Row),
        spmov_in(0, SubQueue::Col),
        spmov_in(0, SubQueue::Val),
        Instruction::SpFw {
            src: 0,
            precision: P,
        },
        Instruction::CExit { queue: 0 },
        Instruction::Jump {
            target: 0,
            order: 0,
            count: 0,
        },
    ]);
    assert!(
        !diags.iter().any(|d| d.code == LintCode::CExitTermination),
        "{diags:?}"
    );
}

// ---- VerifiedProgram / CoreError ---------------------------------------

#[test]
fn verified_program_accepts_clean_and_keeps_warnings() {
    let prog = assemble("DMOV DRF0, BANK, FP64\nEXIT\n").unwrap();
    let v = VerifiedProgram::new(prog.clone()).unwrap();
    assert!(v.warnings().is_empty());
    assert_eq!(v.program(), &prog);
    assert_eq!(v.len(), prog.len()); // Deref

    // Warning-only programs pass but retain the findings.
    let warn = assemble("NOP\nNOP\n").unwrap(); // implicit exit
    let v = VerifiedProgram::new(warn).unwrap();
    assert_eq!(v.warnings().len(), 1);
    assert_eq!(v.warnings()[0].code, LintCode::ImplicitExit);
}

#[test]
fn verified_program_rejects_errors_with_core_error() {
    let bad = assemble("SPFW SPVQ0, FP64\nEXIT\n").unwrap();
    let err = VerifiedProgram::new(bad).unwrap_err();
    let CoreError::Verify { diagnostics } = err else {
        panic!("expected CoreError::Verify, got {err}");
    };
    assert_eq!(diagnostics.len(), 1);
    assert_eq!(diagnostics[0].code, LintCode::QueueUnderflow);
    assert_eq!(diagnostics[0].severity(), Severity::Error);
    // Display carries the lint code for host-side logs.
    assert!(CoreError::Verify { diagnostics }
        .to_string()
        .contains("PSL011"));
}

#[test]
fn diagnostics_serialize_to_json() {
    use serde::Serialize as _;
    let diags = lint(&[
        Instruction::SpFw {
            src: 0,
            precision: P,
        },
        Instruction::Exit,
    ]);
    let mut json = String::new();
    serde::json::write_seq(&mut json, &diags);
    assert!(json.contains("QueueUnderflow"), "{json}");
    assert!(
        diags[0].to_json().contains("slot"),
        "{}",
        diags[0].to_json()
    );
}
