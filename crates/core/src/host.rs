//! Host-side orchestration: mode switching, external-bus traffic and
//! end-to-end kernel-time accounting.
//!
//! pSyncPIM keeps the host DRAM controller in charge (paper §I): the host
//! replicates input-vector slices to banks and accumulates partial outputs
//! over the *external* interface (256 GB/s — an 8× gap to the 2 TB/s
//! internal bandwidth, which is why the §V compression matters), switches
//! modes around every kernel, and programs control registers. The paper's
//! reported kernel times include these overheads (§VII-A); so do ours.

use psim_dram::{Mode, ModeController};
use serde::{Deserialize, Serialize};

/// The external (host↔DRAM) interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExternalBus {
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-transfer latency floor in seconds (command/flit overhead).
    pub latency_s: f64,
    bytes_moved: u64,
    busy_s: f64,
}

impl ExternalBus {
    /// A bus with the given bandwidth (Table VII external: 256 GB/s).
    #[must_use]
    pub fn new(bandwidth: f64) -> Self {
        ExternalBus {
            // Per-transfer latency: a host round trip through the memory
            // controller stack, including the SB-mode excursion that
            // bank-resident reads (e.g. SpTRSV level scales) require.
            latency_s: 400e-9,
            bandwidth,
            bytes_moved: 0,
            busy_s: 0.0,
        }
    }

    /// Account a transfer; returns its duration in seconds.
    pub fn transfer(&mut self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let t = self.latency_s + bytes as f64 / self.bandwidth;
        self.bytes_moved += bytes as u64;
        self.busy_s += t;
        t
    }

    /// Total bytes moved.
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total bus-busy seconds.
    #[must_use]
    pub fn busy_seconds(&self) -> f64 {
        self.busy_s
    }
}

/// Accumulated host-side accounting for one kernel invocation (or a whole
/// application phase).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HostReport {
    /// Seconds spent on external transfers (vector broadcast, partial
    /// output accumulation, result collection).
    pub external_s: f64,
    /// Seconds spent in PIM kernel execution (engine-reported).
    pub kernel_s: f64,
    /// Seconds spent switching modes and programming kernels.
    pub control_s: f64,
    /// Bytes moved over the external interface.
    pub external_bytes: u64,
    /// Mode switches performed.
    pub mode_switches: u64,
}

impl HostReport {
    /// Total wall-clock seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.external_s + self.kernel_s + self.control_s
    }

    /// Merge another phase.
    pub fn merge(&mut self, other: &HostReport) {
        self.external_s += other.external_s;
        self.kernel_s += other.kernel_s;
        self.control_s += other.control_s;
        self.external_bytes += other.external_bytes;
        self.mode_switches += other.mode_switches;
    }
}

/// The host controller: owns the mode state machine and the external bus.
#[derive(Debug, Clone)]
pub struct HostController {
    modes: ModeController,
    bus: ExternalBus,
    report: HostReport,
    /// Seconds one mode-switch command sequence takes (8 MRS at 1 GHz).
    switch_s: f64,
}

impl HostController {
    /// A host attached over a bus of the given external bandwidth.
    #[must_use]
    pub fn new(external_bw: f64) -> Self {
        HostController {
            modes: ModeController::new(),
            bus: ExternalBus::new(external_bw),
            report: HostReport::default(),
            switch_s: psim_dram::mode::SWITCH_SEQUENCE_LEN as f64 * 1e-9,
        }
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.modes.mode()
    }

    /// Route to a mode, accounting switch time.
    pub fn switch_to(&mut self, to: Mode) {
        let before = self.modes.switches();
        let _cmds = self.modes.route_to(to);
        let switches = self.modes.switches() - before;
        self.report.mode_switches += switches;
        self.report.control_s += switches as f64 * self.switch_s;
    }

    /// Broadcast (host → banks) over the external bus, e.g. replicated
    /// input-vector slices.
    pub fn broadcast(&mut self, bytes: usize) {
        let t = self.bus.transfer(bytes);
        self.report.external_s += t;
        self.report.external_bytes += bytes as u64;
    }

    /// Collect (banks → host), e.g. partial outputs for accumulation.
    pub fn collect(&mut self, bytes: usize) {
        let t = self.bus.transfer(bytes);
        self.report.external_s += t;
        self.report.external_bytes += bytes as u64;
    }

    /// Account kernel-programming time (`n` MRS commands at 1 GHz).
    pub fn program_kernel(&mut self, instructions: usize) {
        self.report.control_s += instructions as f64 * 1e-9;
    }

    /// Add engine-reported kernel execution time.
    pub fn add_kernel_time(&mut self, seconds: f64) {
        self.report.kernel_s += seconds;
    }

    /// Snapshot the accumulated report.
    #[must_use]
    pub fn report(&self) -> HostReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_accounts_bytes_and_time() {
        let mut bus = ExternalBus::new(256e9);
        let t = bus.transfer(256_000_000);
        assert!((t - (1e-3 + 400e-9)).abs() < 1e-9);
        assert_eq!(bus.bytes_moved(), 256_000_000);
        assert_eq!(bus.transfer(0), 0.0);
    }

    #[test]
    fn host_accumulates_phases() {
        let mut host = HostController::new(256e9);
        host.switch_to(Mode::AbPim); // two transitions
        host.broadcast(1_000_000);
        host.collect(500_000);
        host.program_kernel(8);
        host.add_kernel_time(1e-6);
        host.switch_to(Mode::Sb); // two more
        let r = host.report();
        assert_eq!(r.mode_switches, 4);
        assert_eq!(r.external_bytes, 1_500_000);
        assert!(r.kernel_s > 0.0 && r.control_s > 0.0 && r.external_s > 0.0);
        assert!(r.total_s() > r.kernel_s);
    }

    #[test]
    fn report_merge() {
        let mut a = HostReport {
            kernel_s: 1.0,
            ..Default::default()
        };
        let b = HostReport {
            external_s: 2.0,
            external_bytes: 10,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_s(), 3.0);
        assert_eq!(a.external_bytes, 10);
    }
}
