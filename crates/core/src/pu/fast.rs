//! Alloc-free PU stepping for the event-driven engine tier.
//!
//! [`ProcessingUnit::on_command`] allocates on most accepted offers (gather
//! buffers, dense-operand clones, merge windows) — cheap individually,
//! dominant in aggregate: an all-bank command steps 16 PUs, so one IndMOV
//! broadcast costs ~32 malloc/free pairs on the tick path. This module is
//! the same interpreter with every per-step heap allocation replaced by a
//! stack buffer or an in-place register update.
//!
//! Equivalence contract: every arm either **delegates** to the tick
//! interpreter (instructions that never allocated) or reproduces its exact
//! floating-point operation order, quantization points, stats increments
//! and queue effects. Inputs wider than the stack buffers fall back to the
//! tick arm rather than truncating. The contract is enforced three ways:
//! the differential tests below, the engine-level tick-vs-event report
//! equality tests, and the `psim_fastpath` golden-trace gate in CI.

use super::{ExecOutcome, ProcessingUnit, StepOutcome, StepReport};
use crate::isa::{Instruction, Operand};
use crate::memory::{BankMemory, SENTINEL};

/// Stack-buffer width in elements. The widest precision runs 16 lanes
/// (32 B / 2 B), so 32 covers every real program; anything wider falls
/// back to the tick interpreter.
const BUF: usize = 32;

fn drf_idx(op: Operand) -> usize {
    // Mirrors `drf_of`/`drf_of_mut`: non-DRF operands alias register 0.
    match op {
        Operand::Drf(i) => i as usize,
        _ => 0,
    }
}

impl ProcessingUnit {
    /// Account post-exit offers the event tier synthesizes instead of
    /// stepping the interpreter: the tick path increments
    /// `predicated_off` once per command offered to an exited unit.
    pub(crate) fn note_predicated_off(&mut self, n: u64) {
        self.stats.predicated_off += n;
    }

    /// The memory slot this unit is parked at, if any.
    ///
    /// After [`ProcessingUnit::run_free`] or any `on_command` return, a
    /// live unit's `pc` always rests on a memory instruction (free
    /// instructions run to quiescence inside those calls). Offering any
    /// *other* slot to a parked unit is a pure predication: the tick
    /// interpreter bumps `predicated_off` and returns
    /// `{executed: false, pu_cycles: 0, OutOfPhase}` without touching
    /// state — so the event tier synthesizes that report directly and
    /// only steps the interpreter when the schedule reaches this slot.
    /// Returns `None` for an exited unit or (defensively) a `pc` not on a
    /// memory instruction, forcing the caller back to the interpreter.
    pub(crate) fn parked_memory_slot(&self) -> Option<usize> {
        if self.exited {
            return None;
        }
        let prog = self.program.as_ref()?;
        let ins = prog.get(self.pc)?;
        ins.is_memory().then_some(self.pc)
    }

    /// [`ProcessingUnit::on_command`] with the alloc-free instruction
    /// arms. Same skeleton, same reports, same stats.
    pub(crate) fn on_command_fast(&mut self, slot: usize, mem: &mut BankMemory) -> StepReport {
        assert!(self.program.is_some(), "no kernel loaded");
        if self.exited {
            self.stats.predicated_off += 1;
            return StepReport {
                executed: false,
                pu_cycles: 0,
                outcome: StepOutcome::Exited,
            };
        }
        let mut cycles = 0u64;
        for _ in 0..4 * crate::isa::Program::len_limit() {
            let prog = self.program.as_ref().expect("checked above");
            if self.pc >= prog.len() {
                self.exited = true;
                break;
            }
            let ins = *prog.get(self.pc).expect("bounds checked");
            if ins.is_memory() {
                if self.pc != slot {
                    self.stats.predicated_off += 1;
                    return StepReport {
                        executed: false,
                        pu_cycles: cycles,
                        outcome: StepOutcome::OutOfPhase,
                    };
                }
                return match self.exec_memory_fast(&ins, slot, mem) {
                    outcome @ (ExecOutcome::Done(_) | ExecOutcome::DoneEmpty(_)) => {
                        let (c, step) = match outcome {
                            ExecOutcome::Done(c) => (c, StepOutcome::Executed),
                            ExecOutcome::DoneEmpty(c) => (c, StepOutcome::ExecutedEmpty),
                            ExecOutcome::Stall => unreachable!("matched above"),
                        };
                        self.pc += 1;
                        self.stats.instructions += 1;
                        self.stats.mem_ops += 1;
                        let total = cycles + c;
                        self.stats.busy_cycles += total;
                        StepReport {
                            executed: true,
                            pu_cycles: total,
                            outcome: step,
                        }
                    }
                    ExecOutcome::Stall => {
                        self.stats.predicated_off += 1;
                        self.stats.busy_cycles += cycles;
                        StepReport {
                            executed: false,
                            pu_cycles: cycles,
                            outcome: StepOutcome::QueueFull,
                        }
                    }
                };
            }
            match self.exec_free_fast(&ins) {
                ExecOutcome::Done(c) | ExecOutcome::DoneEmpty(c) => {
                    cycles += c;
                    self.stats.instructions += 1;
                    if self.exited {
                        break;
                    }
                }
                ExecOutcome::Stall => {
                    self.stats.predicated_off += 1;
                    self.stats.busy_cycles += cycles;
                    return StepReport {
                        executed: false,
                        pu_cycles: cycles,
                        outcome: StepOutcome::QueueFull,
                    };
                }
            }
        }
        self.stats.busy_cycles += cycles;
        StepReport {
            executed: false,
            pu_cycles: cycles,
            outcome: if self.exited {
                StepOutcome::Exited
            } else {
                StepOutcome::OutOfPhase
            },
        }
    }

    fn exec_free_fast(&mut self, ins: &Instruction) -> ExecOutcome {
        match *ins {
            Instruction::Dmov {
                dst,
                src,
                precision,
            } => {
                let lanes = precision.lanes();
                match (dst, src) {
                    (Operand::Drf(d), Operand::Drf(s)) => {
                        let (d, s) = (d as usize, s as usize);
                        if d != s {
                            let (lo, hi) = self.drf.split_at_mut(d.max(s));
                            let (dv, sv) = if d < s {
                                (&mut lo[d], &hi[0])
                            } else {
                                (&mut hi[0], &lo[s])
                            };
                            dv.clone_from(sv);
                        }
                    }
                    (Operand::Drf(d), Operand::Srf) => {
                        let v = self.srf;
                        let dv = &mut self.drf[d as usize];
                        dv.clear();
                        dv.resize(lanes, v);
                    }
                    (Operand::Srf, Operand::Drf(s)) => {
                        self.srf = self.drf[s as usize].first().copied().unwrap_or(0.0);
                    }
                    _ => {}
                }
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::Sdv {
                dst,
                src,
                op,
                precision,
            } => {
                let (d, s) = (drf_idx(dst), drf_idx(src));
                let srf = self.srf;
                let k = self.drf[s].len();
                if d == s {
                    for i in 0..k {
                        let v = self.drf[s][i];
                        self.drf[s][i] = precision.quantize(op.apply(v, srf));
                    }
                } else {
                    self.drf[d].truncate(k);
                    self.drf[d].resize(k, 0.0);
                    for i in 0..k {
                        let v = precision.quantize(op.apply(self.drf[s][i], srf));
                        self.drf[d][i] = v;
                    }
                }
                self.stats.lane_ops += k as u64;
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::Dvdv {
                dst,
                src0,
                src1,
                op,
                precision,
            } => {
                let (d, s0, s1) = (drf_idx(dst), drf_idx(src0), drf_idx(src1));
                let k = self.drf[s0].len().max(self.drf[s1].len());
                if k > BUF {
                    return self.exec_free(ins);
                }
                let mut buf = [0.0f64; BUF];
                for (i, out) in buf.iter_mut().enumerate().take(k) {
                    let a = self.drf[s0].get(i).copied().unwrap_or(0.0);
                    let b = self.drf[s1].get(i).copied().unwrap_or(0.0);
                    *out = precision.quantize(op.apply(a, b));
                }
                let dv = &mut self.drf[d];
                dv.clear();
                dv.extend_from_slice(&buf[..k]);
                self.stats.lane_ops += k as u64;
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::SpVdv {
                dst,
                src0,
                src1,
                op,
                precision,
                ..
            } => {
                let (Operand::SpVq(d), Operand::SpVq(s)) = (dst, src0) else {
                    self.pc += 1;
                    return ExecOutcome::Done(1);
                };
                let lanes = precision.lanes();
                if lanes > BUF {
                    return self.exec_free(ins);
                }
                let elem_bytes = precision.bytes();
                let k = self.queues[s as usize].len().min(lanes);
                if k > 0 && !self.queues[d as usize].can_push(k, elem_bytes) {
                    return ExecOutcome::Stall;
                }
                // The dense operand, with the tick arm's out-of-range
                // default of 0.0 preserved via `dlen`.
                let mut dense = [0.0f64; BUF];
                let dlen = match src1 {
                    Operand::Drf(i) => {
                        let dv = &self.drf[i as usize];
                        if dv.len() > BUF {
                            return self.exec_free(ins);
                        }
                        dense[..dv.len()].copy_from_slice(dv);
                        dv.len()
                    }
                    Operand::Srf => {
                        dense[..lanes].fill(self.srf);
                        lanes
                    }
                    _ => lanes,
                };
                for (i, &dval) in dense.iter().enumerate().take(k) {
                    let (r, c, v) = self.queues[s as usize].pop().expect("len checked");
                    if r == SENTINEL || c == SENTINEL {
                        continue;
                    }
                    let b = if i < dlen { dval } else { 0.0 };
                    let nv = precision.quantize(op.apply(v, b));
                    self.queues[d as usize].push(r, c, nv);
                }
                self.stats.lane_ops += k as u64;
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::SpVSpv {
                dst,
                src0,
                src1,
                op,
                set,
                precision,
            } => {
                use crate::isa::SetMode;
                let (Operand::SpVq(d), Operand::SpVq(a), Operand::SpVq(b)) = (dst, src0, src1)
                else {
                    self.pc += 1;
                    return ExecOutcome::Done(1);
                };
                let lanes = precision.lanes();
                if lanes > BUF {
                    return self.exec_free(ins);
                }
                let elem_bytes = precision.bytes();
                let ka = self.queues[a as usize].len().min(lanes);
                let kb = self.queues[b as usize].len().min(lanes);
                if (ka + kb > 0) && !self.queues[d as usize].can_push(ka + kb, elem_bytes) {
                    return ExecOutcome::Stall;
                }
                // Pop the windows, dropping sentinel padding as we go (the
                // tick arm pops into Vecs then retains — same order).
                let mut wa = [(0.0f64, 0.0f64, 0.0f64); BUF];
                let mut na = 0usize;
                for _ in 0..ka {
                    let (r, c, v) = self.queues[a as usize].pop().expect("len checked");
                    if r != SENTINEL && c != SENTINEL {
                        wa[na] = (r, c, v);
                        na += 1;
                    }
                }
                let mut wb = [(0.0f64, 0.0f64, 0.0f64); BUF];
                let mut nb = 0usize;
                for _ in 0..kb {
                    let (r, c, v) = self.queues[b as usize].pop().expect("len checked");
                    if r != SENTINEL && c != SENTINEL {
                        wb[nb] = (r, c, v);
                        nb += 1;
                    }
                }
                let (mut i, mut j) = (0usize, 0usize);
                while i < na || j < nb {
                    match (wa[..na].get(i), wb[..nb].get(j)) {
                        (Some(&(ra, ca, va)), Some(&(rb, cb, vb))) => {
                            use std::cmp::Ordering;
                            let key_a = (ra, ca);
                            let key_b = (rb, cb);
                            match key_a.partial_cmp(&key_b).unwrap_or(Ordering::Equal) {
                                Ordering::Equal => {
                                    self.queues[d as usize].push(
                                        ra,
                                        ca,
                                        precision.quantize(op.apply(va, vb)),
                                    );
                                    i += 1;
                                    j += 1;
                                }
                                Ordering::Less => {
                                    if set == SetMode::Union {
                                        self.queues[d as usize].push(
                                            ra,
                                            ca,
                                            precision.quantize(op.apply(va, op.identity())),
                                        );
                                    }
                                    i += 1;
                                }
                                Ordering::Greater => {
                                    if set == SetMode::Union {
                                        self.queues[d as usize].push(
                                            rb,
                                            cb,
                                            precision.quantize(op.apply(op.identity(), vb)),
                                        );
                                    }
                                    j += 1;
                                }
                            }
                        }
                        (Some(&(ra, ca, va)), None) => {
                            if set == SetMode::Union {
                                self.queues[d as usize].push(ra, ca, precision.quantize(va));
                            }
                            i += 1;
                        }
                        (None, Some(&(rb, cb, vb))) => {
                            if set == SetMode::Union {
                                self.queues[d as usize].push(rb, cb, precision.quantize(vb));
                            }
                            j += 1;
                        }
                        (None, None) => break,
                    }
                }
                self.stats.lane_ops += (ka + kb) as u64;
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            // Nop/Exit/CExit/Jump/SSpv/Reduce never allocate — run the
            // tick arm directly.
            _ => self.exec_free(ins),
        }
    }

    fn exec_memory_fast(
        &mut self,
        ins: &Instruction,
        slot: usize,
        mem: &mut BankMemory,
    ) -> ExecOutcome {
        let binding = self.bindings[slot].expect("validated at load_kernel");
        let region = binding.region;
        match *ins {
            Instruction::Dmov {
                dst,
                src,
                precision,
            } => {
                let lanes = precision.lanes();
                let cur = self.cursors[slot];
                match (dst, src) {
                    (Operand::Drf(d), Operand::Bank) => {
                        let r = mem.region(region);
                        let dv = &mut self.drf[d as usize];
                        dv.clear();
                        for i in 0..lanes {
                            dv.push(r.get(cur + i));
                        }
                        self.cursors[slot] += binding.stride.unwrap_or(lanes);
                    }
                    (Operand::Srf, Operand::Bank) => {
                        self.srf = mem.region(region).get(cur);
                        self.cursors[slot] += binding.stride.unwrap_or(1);
                    }
                    (Operand::Bank, Operand::Drf(d)) => {
                        let r = mem.region_mut(region);
                        for (i, v) in self.drf[d as usize].iter().enumerate().take(lanes) {
                            r.set(cur + i, precision.quantize(*v));
                        }
                        self.cursors[slot] += binding.stride.unwrap_or(lanes);
                    }
                    (Operand::Bank, Operand::Srf) => {
                        mem.region_mut(region)
                            .set(cur, precision.quantize(self.srf));
                        self.cursors[slot] += binding.stride.unwrap_or(1);
                    }
                    _ => unreachable!("non-bank DMOV routed to exec_free"),
                }
                ExecOutcome::Done(1)
            }
            Instruction::IndMov {
                dst,
                idx_queue,
                precision,
            } => {
                let lanes = precision.lanes();
                if lanes > BUF {
                    return self.exec_memory(ins, slot, mem);
                }
                let q = &self.queues[idx_queue as usize];
                let mut cols = [0.0f64; BUF];
                let k = q.peek_cols_into(lanes, &mut cols);
                let r = mem.region(region);
                match dst {
                    Operand::Drf(d) => {
                        let dv = &mut self.drf[d as usize];
                        dv.clear();
                        for &c in &cols[..k] {
                            dv.push(if c == SENTINEL {
                                0.0
                            } else {
                                r.get(c as usize)
                            });
                        }
                    }
                    Operand::Srf => {
                        self.srf = if k == 0 || cols[0] == SENTINEL {
                            0.0
                        } else {
                            r.get(cols[0] as usize)
                        };
                    }
                    _ => {}
                }
                let k = k as u64;
                self.stats.lane_ops += k;
                if k == 0 {
                    ExecOutcome::DoneEmpty(1)
                } else {
                    ExecOutcome::Done(k)
                }
            }
            Instruction::SpVdv {
                dst: Operand::SpVq(d),
                src0: Operand::SpVq(s),
                src1: Operand::Bank,
                op,
                precision,
                ..
            } => {
                let lanes = precision.lanes();
                if lanes > BUF {
                    return self.exec_memory(ins, slot, mem);
                }
                let elem_bytes = precision.bytes();
                let k = self.queues[s as usize].len().min(lanes);
                if k > 0 && !self.queues[d as usize].can_push(k, elem_bytes) {
                    return ExecOutcome::Stall;
                }
                let cur = self.cursors[slot];
                let mut dense = [0.0f64; BUF];
                {
                    let r = mem.region(region);
                    for (i, dv) in dense.iter_mut().enumerate().take(k) {
                        *dv = r.get(cur + i);
                    }
                }
                self.cursors[slot] += binding.stride.unwrap_or(lanes);
                for &b in &dense[..k] {
                    let (r, c, v) = self.queues[s as usize].pop().expect("len checked");
                    if r == SENTINEL || c == SENTINEL {
                        continue;
                    }
                    self.queues[d as usize].push(r, c, precision.quantize(op.apply(v, b)));
                }
                self.stats.lane_ops += k as u64;
                if k == 0 {
                    ExecOutcome::DoneEmpty(2)
                } else {
                    ExecOutcome::Done(2)
                }
            }
            // SpMOV, SpFW, GthSct and the scatter-accumulate SpVDV never
            // allocate per step — run the tick arms directly.
            _ => self.exec_memory(ins, slot, mem),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BinaryOp, Identity, Program, SetMode, SubQueue};
    use crate::memory::Binding;
    use psim_sparse::Precision;

    /// Drive the same offer stream through a tick PU and a fast PU over
    /// identical memories; every report and the complete final state
    /// (registers, queues, cursors, stats — `ProcessingUnit` derives
    /// `PartialEq`) must agree.
    fn differential(
        program: Program,
        bindings: Vec<Option<Binding>>,
        setup: impl Fn(&mut BankMemory),
        srf: Option<f64>,
        offers: usize,
    ) {
        let schedule = program.command_schedule().expect("schedulable");
        let row_bytes = 1024;
        let mut mem_a = BankMemory::new(row_bytes);
        setup(&mut mem_a);
        let mut mem_b = BankMemory::new(row_bytes);
        setup(&mut mem_b);
        let mut tick = ProcessingUnit::new();
        tick.load_kernel(program.clone(), bindings.clone())
            .expect("load");
        let mut fast = ProcessingUnit::new();
        fast.load_kernel(program, bindings).expect("load");
        if let Some(v) = srf {
            tick.set_srf(v);
            fast.set_srf(v);
        }
        tick.run_free(&mut mem_a);
        fast.run_free(&mut mem_b);
        assert_eq!(tick, fast, "after free prelude");
        let mut idx = 0usize;
        for n in 0..offers {
            let slot = schedule[idx];
            idx = (idx + 1) % schedule.len();
            let ra = tick.on_command(slot, &mut mem_a);
            let rb = fast.on_command_fast(slot, &mut mem_b);
            assert_eq!(ra, rb, "offer {n} slot {slot}");
            assert_eq!(tick, fast, "state after offer {n} slot {slot}");
            if tick.exited() {
                break;
            }
        }
        assert_eq!(mem_a, mem_b, "final memories");
    }

    fn region_with(mem: &mut BankMemory, name: &str, data: &[f64]) -> crate::memory::RegionId {
        mem.alloc(name, 8, data.to_vec())
    }

    #[test]
    fn sparse_stream_matches_tick() {
        // The SpMV inner loop: SPMOV row/col/val, INDMOV gather, SpVDV
        // against a dense register, SpVDV accumulate into the bank,
        // CEXIT + JUMP — every alloc-heavy memory arm in one program.
        use Instruction as I;
        let program = Program::new(vec![
            I::SpMov {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                sub: SubQueue::Row,
                precision: Precision::Fp64,
            },
            I::SpMov {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                sub: SubQueue::Col,
                precision: Precision::Fp64,
            },
            I::SpMov {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                sub: SubQueue::Val,
                precision: Precision::Fp64,
            },
            I::IndMov {
                dst: Operand::Drf(2),
                idx_queue: 0,
                precision: Precision::Fp64,
            },
            I::SpVdv {
                dst: Operand::SpVq(1),
                src0: Operand::SpVq(0),
                src1: Operand::Drf(2),
                op: BinaryOp::Mul,
                set: SetMode::Intersection,
                precision: Precision::Fp64,
            },
            I::SpVdv {
                dst: Operand::Bank,
                src0: Operand::SpVq(1),
                src1: Operand::Bank,
                op: BinaryOp::Add,
                set: SetMode::Union,
                precision: Precision::Fp64,
            },
            I::CExit { queue: 0 },
            I::Jump {
                target: 0,
                order: 0,
                count: 0,
            },
        ])
        .expect("valid");
        let s = crate::memory::SENTINEL;
        let rows = [0.0, 1.0, 2.0, 3.0, s, s, s, s];
        let cols = [0.0, 1.0, 2.0, 0.0, s, s, s, s];
        let vals = [2.0, 3.0, 4.0, 5.0, 0.0, 0.0, 0.0, 0.0];
        let differential_setup = move |mem: &mut BankMemory| {
            let mut triples = Vec::new();
            triples.extend_from_slice(&rows[..4]);
            triples.extend_from_slice(&cols[..4]);
            triples.extend_from_slice(&vals[..4]);
            triples.extend_from_slice(&rows[4..]);
            triples.extend_from_slice(&cols[4..]);
            triples.extend_from_slice(&vals[4..]);
            let t = region_with(mem, "triples", &triples);
            let x = region_with(mem, "x", &[1.0, 10.0, 100.0, 1000.0]);
            let y = region_with(mem, "y", &[0.0; 8]);
            assert_eq!((t.0, x.0, y.0), (0, 1, 2));
        };
        let t = crate::memory::RegionId(0);
        let x = crate::memory::RegionId(1);
        let y = crate::memory::RegionId(2);
        let bindings = vec![
            Some(Binding::strided(t, 0, 12)),
            Some(Binding::strided(t, 4, 12)),
            Some(Binding::strided(t, 8, 12)),
            Some(Binding::new(x)),
            None,
            Some(Binding::new(y)),
            None,
            None,
        ];
        differential(program, bindings, differential_setup, None, 64);
    }

    #[test]
    fn blas1_register_ops_match_tick() {
        // DMOV bank<->DRF, SDV, DVDV, REDUCE and a counted JUMP: the
        // dense BLAS-1 shapes (AXPY/DOT) plus the register-move arms.
        use Instruction as I;
        let program = Program::new(vec![
            I::Dmov {
                dst: Operand::Drf(0),
                src: Operand::Bank,
                precision: Precision::Fp64,
            },
            I::Dmov {
                dst: Operand::Drf(1),
                src: Operand::Bank,
                precision: Precision::Fp64,
            },
            I::Sdv {
                dst: Operand::Drf(0),
                src: Operand::Drf(0),
                op: BinaryOp::Mul,
                precision: Precision::Fp64,
            },
            I::Dvdv {
                dst: Operand::Drf(1),
                src0: Operand::Drf(0),
                src1: Operand::Drf(1),
                op: BinaryOp::Add,
                precision: Precision::Fp64,
            },
            I::Dmov {
                dst: Operand::Bank,
                src: Operand::Drf(1),
                precision: Precision::Fp64,
            },
            I::Dmov {
                dst: Operand::Drf(2),
                src: Operand::Srf,
                precision: Precision::Fp64,
            },
            I::Reduce {
                src: Operand::Drf(1),
                op: BinaryOp::Add,
                precision: Precision::Fp64,
            },
            I::Jump {
                target: 0,
                order: 1,
                count: 3,
            },
            I::Exit,
        ])
        .expect("valid");
        let setup = |mem: &mut BankMemory| {
            let x = region_with(
                mem,
                "x",
                &[
                    1.5, -2.0, 3.25, 4.0, 0.5, 6.0, -7.5, 8.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
                    8.0,
                ],
            );
            let y = region_with(
                mem,
                "y",
                &[
                    0.5, 1.0, -1.0, 2.0, 3.0, -3.0, 4.0, 0.25, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0,
                    2.0,
                ],
            );
            assert_eq!((x.0, y.0), (0, 1));
        };
        let x = crate::memory::RegionId(0);
        let y = crate::memory::RegionId(1);
        let bindings = vec![
            Some(Binding::new(x)),
            Some(Binding::new(y)),
            None,
            None,
            Some(Binding::new(y)),
            None,
            None,
            None,
            None,
        ];
        differential(program, bindings, setup, Some(1.25), 64);
    }

    #[test]
    fn gather_scatter_and_spvspv_match_tick() {
        use Instruction as I;
        let program = Program::new(vec![
            I::GthSct {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                identity: Identity::Zero,
                precision: Precision::Fp64,
            },
            I::GthSct {
                dst: Operand::SpVq(1),
                src: Operand::Bank,
                identity: Identity::Zero,
                precision: Precision::Fp64,
            },
            I::SpVSpv {
                dst: Operand::SpVq(2),
                src0: Operand::SpVq(0),
                src1: Operand::SpVq(1),
                op: BinaryOp::Add,
                set: SetMode::Union,
                precision: Precision::Fp64,
            },
            I::SpFw {
                src: 2,
                precision: Precision::Fp64,
            },
            I::CExit { queue: 0 },
            I::Jump {
                target: 0,
                order: 0,
                count: 0,
            },
        ])
        .expect("valid");
        let setup = |mem: &mut BankMemory| {
            let a = region_with(mem, "a", &[0.0, 2.0, 0.0, 4.0, 5.0, 0.0, 0.0, 8.0]);
            let b = region_with(mem, "b", &[1.0, 0.0, 3.0, 4.0, 0.0, 6.0, 0.0, 0.0]);
            let out = region_with(mem, "out", &[0.0; 48]);
            assert_eq!((a.0, b.0, out.0), (0, 1, 2));
        };
        let a = crate::memory::RegionId(0);
        let b = crate::memory::RegionId(1);
        let out = crate::memory::RegionId(2);
        let bindings = vec![
            Some(Binding::new(a)),
            Some(Binding::new(b)),
            None,
            Some(Binding::new(out)),
            None,
            None,
        ];
        differential(program, bindings, setup, None, 64);
    }
}

#[cfg(test)]
mod bench {
    // `cargo test -p psyncpim-core --release perf_probe -- --ignored --nocapture`
    use super::super::*;
    use crate::isa::{BinaryOp, Program, SetMode, SubQueue};
    use crate::memory::{BankMemory, Binding};
    use psim_sparse::Precision;

    #[test]
    #[ignore]
    fn perf_probe() {
        use crate::isa::{Instruction as I, Operand};
        let program = Program::new(vec![
            I::SpMov {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                sub: SubQueue::Row,
                precision: Precision::Fp64,
            },
            I::SpMov {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                sub: SubQueue::Col,
                precision: Precision::Fp64,
            },
            I::SpMov {
                dst: Operand::SpVq(0),
                src: Operand::Bank,
                sub: SubQueue::Val,
                precision: Precision::Fp64,
            },
            I::IndMov {
                dst: Operand::Drf(2),
                idx_queue: 0,
                precision: Precision::Fp64,
            },
            I::SpVdv {
                dst: Operand::SpVq(1),
                src0: Operand::SpVq(0),
                src1: Operand::Drf(2),
                op: BinaryOp::Mul,
                set: SetMode::Intersection,
                precision: Precision::Fp64,
            },
            I::SpVdv {
                dst: Operand::Bank,
                src0: Operand::SpVq(1),
                src1: Operand::Bank,
                op: BinaryOp::Add,
                set: SetMode::Union,
                precision: Precision::Fp64,
            },
            I::CExit { queue: 0 },
            I::Jump {
                target: 0,
                order: 0,
                count: 0,
            },
        ])
        .unwrap();
        let schedule = program.command_schedule().unwrap();
        let n = 200_000usize;
        let mut mem = BankMemory::new(1024);
        let mut triples = Vec::new();
        for i in 0..n {
            triples.push((i / 4) as f64);
            triples.push((i % 977) as f64);
            triples.push(1.0 + (i % 13) as f64);
        }
        // layout rows/cols/vals interleaved in groups of 4 per burst
        let mut flat = Vec::new();
        for c in triples.chunks(12) {
            let k = c.len() / 3;
            for j in 0..k {
                flat.push(c[3 * j]);
            }
            flat.extend(std::iter::repeat_n(crate::memory::SENTINEL, 4 - k));
            for j in 0..k {
                flat.push(c[3 * j + 1]);
            }
            flat.extend(std::iter::repeat_n(crate::memory::SENTINEL, 4 - k));
            for j in 0..k {
                flat.push(c[3 * j + 2]);
            }
            flat.extend(std::iter::repeat_n(0.0, 4 - k));
        }
        let t = mem.alloc("triples", 8, flat);
        let x = mem.alloc("x", 8, (0..1024).map(|i| i as f64).collect());
        let y = mem.alloc("y", 8, vec![0.0; 4096]);
        let bindings = vec![
            Some(Binding::strided(t, 0, 12)),
            Some(Binding::strided(t, 4, 12)),
            Some(Binding::strided(t, 8, 12)),
            Some(Binding::new(x)),
            None,
            Some(Binding::new(y)),
            None,
            None,
        ];
        for fast in [false, true] {
            let mut pu = ProcessingUnit::new();
            pu.load_kernel(program.clone(), bindings.clone()).unwrap();
            let mut m = mem.clone();
            pu.run_free(&mut m);
            let t0 = std::time::Instant::now();
            let mut offers = 0u64;
            let mut idx = 0usize;
            while !pu.exited() {
                let slot = schedule[idx];
                idx = (idx + 1) % schedule.len();
                let _ = if fast {
                    pu.on_command_fast(slot, &mut m)
                } else {
                    pu.on_command(slot, &mut m)
                };
                offers += 1;
            }
            let w = t0.elapsed().as_secs_f64();
            println!(
                "fast={fast}: {offers} offers in {w:.3}s = {:.1} ns/offer, instructions={}",
                w * 1e9 / offers as f64,
                pu.stats().instructions
            );
        }
    }
}
