//! Sparse vector queue: 3 × 64 B sub-queues for row index, column index
//! and value (paper §IV-B, Figure 4).

use crate::isa::SubQueue;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Capacity of each sub-queue in bytes (Table VIII: 192 B / 3).
pub const SUB_QUEUE_BYTES: usize = 64;

/// One sparse vector queue.
///
/// Elements are `(row, col, value)` triples; the sub-queues advance
/// together when a whole element is pushed/popped but can also be filled
/// independently by 32 B `SpMOV` bursts (one sub-queue at a time).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpQueue {
    row: VecDeque<f64>,
    col: VecDeque<f64>,
    val: VecDeque<f64>,
}

impl SpQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        SpQueue::default()
    }

    /// Number of complete `(row, col, value)` elements available.
    #[must_use]
    pub fn len(&self) -> usize {
        self.row.len().min(self.col.len()).min(self.val.len())
    }

    /// Whether no complete element is available and all sub-queues are
    /// drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.row.is_empty() && self.col.is_empty() && self.val.is_empty()
    }

    /// Whether `n` more elements of width `elem_bytes` fit in *every*
    /// sub-queue.
    #[must_use]
    pub fn can_push(&self, n: usize, elem_bytes: usize) -> bool {
        let cap = SUB_QUEUE_BYTES / elem_bytes;
        self.row.len() + n <= cap && self.col.len() + n <= cap && self.val.len() + n <= cap
    }

    /// Whether `n` more elements fit in one sub-queue.
    #[must_use]
    pub fn sub_can_push(&self, sub: SubQueue, n: usize, elem_bytes: usize) -> bool {
        let cap = SUB_QUEUE_BYTES / elem_bytes;
        match sub {
            SubQueue::Row => self.row.len() + n <= cap,
            SubQueue::Col => self.col.len() + n <= cap,
            SubQueue::Val => self.val.len() + n <= cap,
            SubQueue::All => self.can_push(n, elem_bytes),
        }
    }

    /// Push a complete element.
    pub fn push(&mut self, row: f64, col: f64, val: f64) {
        self.row.push_back(row);
        self.col.push_back(col);
        self.val.push_back(val);
    }

    /// Pop a complete element. A queue whose sub-queues are unevenly
    /// filled (mid-burst) has no complete element yet.
    // `len() == 0` is NOT `is_empty()` here: `len` counts complete
    // triples, `is_empty` requires all sub-queues drained.
    #[allow(clippy::len_zero)]
    pub fn pop(&mut self) -> Option<(f64, f64, f64)> {
        if self.len() == 0 {
            return None;
        }
        Some((
            self.row.pop_front().expect("len checked"),
            self.col.pop_front().expect("len checked"),
            self.val.pop_front().expect("len checked"),
        ))
    }

    /// Push into one sub-queue (a 32 B `SpMOV` burst element).
    pub fn push_sub(&mut self, sub: SubQueue, v: f64) {
        match sub {
            SubQueue::Row => self.row.push_back(v),
            SubQueue::Col => self.col.push_back(v),
            SubQueue::Val => self.val.push_back(v),
            SubQueue::All => self.push(v, v, v),
        }
    }

    /// Pop from one sub-queue.
    pub fn pop_sub(&mut self, sub: SubQueue) -> Option<f64> {
        match sub {
            SubQueue::Row => self.row.pop_front(),
            SubQueue::Col => self.col.pop_front(),
            SubQueue::Val => self.val.pop_front(),
            SubQueue::All => self.pop().map(|(_, _, v)| v),
        }
    }

    /// The frontmost `k` column indices without consuming them (the
    /// IndMOV gather addresses).
    #[must_use]
    pub fn peek_cols(&self, k: usize) -> Vec<f64> {
        self.col.iter().take(k.min(self.len())).copied().collect()
    }

    /// [`SpQueue::peek_cols`] into a caller-provided buffer: same
    /// complete-triple bound, no allocation. Returns the number of
    /// addresses written.
    pub fn peek_cols_into(&self, k: usize, out: &mut [f64]) -> usize {
        let n = k.min(self.len()).min(out.len());
        for (slot, &c) in out.iter_mut().zip(self.col.iter().take(n)) {
            *slot = c;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let mut q = SpQueue::new();
        q.push(1.0, 2.0, 3.0);
        q.push(4.0, 5.0, 6.0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1.0, 2.0, 3.0)));
        assert_eq!(q.pop(), Some((4.0, 5.0, 6.0)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_depends_on_precision() {
        let q = SpQueue::new();
        assert!(q.can_push(8, 8)); // 8 FP64 = 64 B exactly
        assert!(!q.can_push(9, 8));
        assert!(q.can_push(64, 1)); // 64 INT8
    }

    #[test]
    fn sub_queues_fill_independently() {
        let mut q = SpQueue::new();
        q.push_sub(SubQueue::Row, 1.0);
        q.push_sub(SubQueue::Row, 2.0);
        assert_eq!(q.len(), 0); // no complete element yet
        q.push_sub(SubQueue::Col, 7.0);
        q.push_sub(SubQueue::Val, 9.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((1.0, 7.0, 9.0)));
        assert!(!q.is_empty()); // a stray row remains
    }

    #[test]
    fn sub_capacity_checked_per_queue() {
        let mut q = SpQueue::new();
        for i in 0..8 {
            q.push_sub(SubQueue::Row, i as f64);
        }
        assert!(!q.sub_can_push(SubQueue::Row, 1, 8));
        assert!(q.sub_can_push(SubQueue::Col, 8, 8));
        assert!(!q.sub_can_push(SubQueue::All, 1, 8));
    }

    #[test]
    fn pop_on_partially_filled_queue_returns_none() {
        // Regression: a mid-burst queue (rows loaded, values pending) has
        // no complete element; pop must not panic or return garbage.
        let mut q = SpQueue::new();
        q.push_sub(SubQueue::Row, 1.0);
        q.push_sub(SubQueue::Col, 2.0);
        assert_eq!(q.pop(), None);
        assert!(!q.is_empty());
        assert_eq!(q.pop_sub(SubQueue::All), None);
    }

    #[test]
    fn peek_cols_mid_burst_is_bounded_by_complete_triples() {
        // Mid-burst, the col sub-queue can run ahead of row/val. The
        // gather addresses must only cover complete triples — peeking the
        // raw col queue would hand IndMOV addresses for elements whose
        // values have not arrived yet.
        let mut q = SpQueue::new();
        q.push_sub(SubQueue::Col, 10.0);
        q.push_sub(SubQueue::Col, 20.0);
        q.push_sub(SubQueue::Col, 30.0);
        assert_eq!(q.peek_cols(4), Vec::<f64>::new());
        q.push_sub(SubQueue::Row, 0.0);
        q.push_sub(SubQueue::Val, 1.0);
        assert_eq!(q.peek_cols(4), vec![10.0]);
        // The peek never consumes, even repeated mid-burst.
        assert_eq!(q.peek_cols(4), vec![10.0]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_sub_all_consumes_evenly_across_partial_fill() {
        // pop_sub(All) must drain one element from every sub-queue (a
        // whole triple), never skewing an unevenly filled queue further.
        let mut q = SpQueue::new();
        q.push(0.0, 10.0, 1.0);
        q.push_sub(SubQueue::Row, 5.0); // stray row, no col/val yet
        assert_eq!(q.pop_sub(SubQueue::All), Some(1.0));
        // The complete triple is gone; only the stray row remains.
        assert_eq!(q.len(), 0);
        assert!(!q.is_empty());
        assert_eq!(q.pop_sub(SubQueue::All), None);
        assert_eq!(q.pop_sub(SubQueue::Row), Some(5.0));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_cols_does_not_consume() {
        let mut q = SpQueue::new();
        q.push(0.0, 10.0, 1.0);
        q.push(0.0, 20.0, 2.0);
        assert_eq!(q.peek_cols(4), vec![10.0, 20.0]);
        assert_eq!(q.len(), 2);
    }
}
