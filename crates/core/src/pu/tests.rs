//! Processing-unit tests: the Algorithm-2 SpMV dataflow, predication,
//! conditional exit and divergence.

use super::*;
use crate::isa::assemble;
use crate::memory::{BankMemory, RegionId, SENTINEL};

const P: Precision = Precision::Fp64;

/// The paper's Algorithm 2 as assembly (see `isa::asm`).
const SPMV_ASM: &str = r"
SPMOV  SPVQ0, BANK, ROW, FP64   ; slot 0: row indices
SPMOV  SPVQ0, BANK, COL, FP64   ; slot 1: col indices
SPMOV  SPVQ0, BANK, VAL, FP64   ; slot 2: values
INDMOV DRF2, SPVQ0, FP64        ; slot 3: gather x[col]
SPVDV  SPVQ1, SPVQ0, DRF2, MUL, INTER, FP64
SPVDV  BANK, SPVQ1, BANK, ADD, UNION, FP64  ; slot 5: y[row] += v
CEXIT  SPVQ0
JUMP   0, 0, 0
";

/// Build a bank holding `entries` of an n×n submatrix plus x and zeroed y,
/// returning (memory, bindings).
fn setup_bank(
    entries: &[(u32, u32, f64)],
    x: &[f64],
    n: usize,
) -> (BankMemory, Vec<Option<RegionId>>) {
    let lanes = P.lanes();
    let padded = entries.len().div_ceil(lanes).max(1) * lanes;
    let mut rows = vec![SENTINEL; padded];
    let mut cols = vec![SENTINEL; padded];
    let mut vals = vec![0.0; padded];
    for (i, &(r, c, v)) in entries.iter().enumerate() {
        rows[i] = f64::from(r);
        cols[i] = f64::from(c);
        vals[i] = v;
    }
    let mut mem = BankMemory::new(1024);
    let r_rows = mem.alloc("rows", 8, rows);
    let r_cols = mem.alloc("cols", 8, cols);
    let r_vals = mem.alloc("vals", 8, vals);
    let r_x = mem.alloc("x", 8, x.to_vec());
    let r_y = mem.alloc_zeroed("y", 8, n);
    let bindings = vec![
        Some(r_rows),
        Some(r_cols),
        Some(r_vals),
        Some(r_x),
        None,
        Some(r_y),
        None,
        None,
    ];
    (mem, bindings)
}

fn drive_to_completion(pu: &mut ProcessingUnit, mem: &mut BankMemory, schedule: &[usize]) -> u64 {
    let mut rounds = 0u64;
    while !pu.exited() {
        rounds += 1;
        assert!(rounds < 10_000, "kernel failed to exit");
        for &slot in schedule {
            pu.on_command(slot, mem);
            if pu.exited() {
                break;
            }
        }
        // End-of-round: give control instructions a chance (CEXIT/JUMP).
        pu.run_free(mem);
    }
    rounds
}

#[test]
fn spmv_kernel_computes_reference_result() {
    let n = 8;
    let entries = [
        (0u32, 1u32, 2.0),
        (1, 3, -1.0),
        (3, 0, 4.0),
        (3, 7, 0.5),
        (5, 5, 1.0),
        (7, 2, -3.0),
    ];
    let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    let (mut mem, bindings) = setup_bank(&entries, &x, n);
    let program = assemble(SPMV_ASM).unwrap();
    let schedule = program.command_schedule().unwrap();
    assert_eq!(schedule, vec![0, 1, 2, 3, 5]);

    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, bindings.clone()).unwrap();
    drive_to_completion(&mut pu, &mut mem, &schedule);

    let mut want = vec![0.0; n];
    for &(r, c, v) in &entries {
        want[r as usize] += v * x[c as usize];
    }
    let y_region = bindings[5].unwrap();
    assert_eq!(mem.region(y_region).data(), want.as_slice());
}

#[test]
fn spmv_kernel_handles_many_chunks() {
    // More entries than one queue fill: 20 entries, lanes = 4.
    let n = 16;
    let entries: Vec<(u32, u32, f64)> = (0..20)
        .map(|i| ((i % 16) as u32, ((i * 3) % 16) as u32, 1.0 + i as f64))
        .collect();
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
    let (mut mem, bindings) = setup_bank(&entries, &x, n);
    let program = assemble(SPMV_ASM).unwrap();
    let schedule = program.command_schedule().unwrap();
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, bindings.clone()).unwrap();
    let rounds = drive_to_completion(&mut pu, &mut mem, &schedule);
    assert!(
        rounds >= 5,
        "20 entries at 4 lanes need >= 5 rounds, got {rounds}"
    );

    let mut want = vec![0.0; n];
    for &(r, c, v) in &entries {
        want[r as usize] += v * x[c as usize];
    }
    let y = mem.region(bindings[5].unwrap()).data().to_vec();
    for (got, want) in y.iter().zip(&want) {
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
}

#[test]
fn empty_bank_exits_immediately() {
    let (mut mem, bindings) = setup_bank(&[], &[0.0; 4], 4);
    let program = assemble(SPMV_ASM).unwrap();
    let schedule = program.command_schedule().unwrap();
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, bindings).unwrap();
    let rounds = drive_to_completion(&mut pu, &mut mem, &schedule);
    // The all-sentinel first block arms CEXIT in round 1; exit by round 2.
    assert!(rounds <= 2, "empty bank took {rounds} rounds");
}

#[test]
fn divergent_banks_exit_in_different_rounds() {
    let n = 8;
    let x = vec![1.0; n];
    let light: Vec<(u32, u32, f64)> = vec![(0, 0, 1.0)];
    let heavy: Vec<(u32, u32, f64)> = (0..24)
        .map(|i| ((i % 8) as u32, (i % 8) as u32, 1.0))
        .collect();

    let program = assemble(SPMV_ASM).unwrap();
    let schedule = program.command_schedule().unwrap();

    let (mut mem_l, bind_l) = setup_bank(&light, &x, n);
    let mut pu_l = ProcessingUnit::new();
    pu_l.load_kernel(program.clone(), bind_l).unwrap();
    let r_light = drive_to_completion(&mut pu_l, &mut mem_l, &schedule);

    let (mut mem_h, bind_h) = setup_bank(&heavy, &x, n);
    let mut pu_h = ProcessingUnit::new();
    pu_h.load_kernel(program, bind_h).unwrap();
    let r_heavy = drive_to_completion(&mut pu_h, &mut mem_h, &schedule);

    assert!(
        r_heavy > r_light,
        "heavy bank ({r_heavy}) should outlast light bank ({r_light})"
    );
}

#[test]
fn exited_pu_ignores_commands() {
    let (mut mem, bindings) = setup_bank(&[], &[0.0; 4], 4);
    let program = assemble(SPMV_ASM).unwrap();
    let schedule = program.command_schedule().unwrap();
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, bindings).unwrap();
    drive_to_completion(&mut pu, &mut mem, &schedule);
    let off_before = pu.stats().predicated_off;
    let rep = pu.on_command(0, &mut mem);
    assert!(!rep.executed);
    assert_eq!(rep.pu_cycles, 0);
    assert_eq!(pu.stats().predicated_off, off_before + 1);
}

#[test]
fn out_of_phase_command_passes_over() {
    let entries = [(0u32, 0u32, 1.0); 1];
    let (mut mem, bindings) = setup_bank(&entries, &[1.0; 4], 4);
    let program = assemble(SPMV_ASM).unwrap();
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, bindings).unwrap();
    // PU waits at slot 0; offering slot 2 must not execute anything.
    let rep = pu.on_command(2, &mut mem);
    assert!(!rep.executed);
    assert_eq!(pu.pending_slot(), Some(0));
}

#[test]
fn dense_copy_kernel_via_jump_counts() {
    // DCOPY: load 32B from src, store to dst, ×4 chunks, EXIT.
    let asm = r"
DMOV DRF0, BANK, FP64
DMOV BANK, DRF0, FP64
JUMP 0, 1, 3
EXIT
";
    let program = assemble(asm).unwrap();
    let schedule = program.command_schedule().unwrap();
    assert_eq!(schedule.len(), 8); // 4 iterations × 2 memory ops

    let mut mem = BankMemory::new(1024);
    let src: Vec<f64> = (0..16).map(f64::from).collect();
    let r_src = mem.alloc("src", 8, src.clone());
    let r_dst = mem.alloc_zeroed("dst", 8, 16);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, vec![Some(r_src), Some(r_dst), None, None])
        .unwrap();
    for &slot in &schedule {
        let rep = pu.on_command(slot, &mut mem);
        assert!(rep.executed);
    }
    pu.run_free(&mut mem);
    assert!(pu.exited());
    assert_eq!(mem.region(r_dst).data(), src.as_slice());
}

#[test]
fn reduce_accumulates_into_srf() {
    // DDOT-style: load x, load y, multiply, reduce-add; 2 chunks.
    let asm = r"
DMOV DRF0, BANK, FP64
DMOV DRF1, BANK, FP64
DVDV DRF2, DRF0, DRF1, MUL, FP64
REDUCE DRF2, ADD, FP64
JUMP 0, 1, 1
EXIT
";
    let program = assemble(asm).unwrap();
    let schedule = program.command_schedule().unwrap();
    let x: Vec<f64> = (0..8).map(|i| f64::from(i) + 1.0).collect();
    let y: Vec<f64> = (0..8).map(|i| 2.0 * f64::from(i) - 3.0).collect();
    let mut mem = BankMemory::new(1024);
    let rx = mem.alloc("x", 8, x.clone());
    let ry = mem.alloc("y", 8, y.clone());
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, vec![Some(rx), Some(ry), None, None, None, None])
        .unwrap();
    for &slot in &schedule {
        assert!(pu.on_command(slot, &mut mem).executed);
    }
    pu.run_free(&mut mem);
    let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    assert!((pu.srf() - want).abs() < 1e-12);
    assert!(pu.exited());
}

#[test]
fn int8_precision_quantizes_and_widens_lanes() {
    let asm = r"
DMOV DRF0, BANK, INT8
SDV  DRF0, DRF0, MUL, INT8
DMOV BANK, DRF0, INT8
EXIT
";
    let program = assemble(asm).unwrap();
    let schedule = program.command_schedule().unwrap();
    let src: Vec<f64> = (0..32).map(|i| f64::from(i) - 8.0).collect();
    let mut mem = BankMemory::new(1024);
    let rs = mem.alloc("src", 1, src.clone());
    let rd = mem.alloc_zeroed("dst", 1, 32);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, vec![Some(rs), None, Some(rd), None])
        .unwrap();
    pu.set_srf(10.0);
    for &slot in &schedule {
        assert!(pu.on_command(slot, &mut mem).executed);
    }
    // 32 lanes moved in one burst; values = clamp(v * 10, i8 range).
    let got = mem.region(rd).data().to_vec();
    for (i, g) in got.iter().enumerate() {
        let want = ((f64::from(i as i32) - 8.0) * 10.0).clamp(-128.0, 127.0);
        assert_eq!(*g, want, "lane {i}");
    }
}

#[test]
fn gather_scatter_roundtrip_via_gthsct() {
    let asm = r"
GTHSCT SPVQ0, BANK, ZERO, FP64
GTHSCT BANK, SPVQ0, ZERO, FP64
JUMP 0, 1, 1
EXIT
";
    let program = assemble(asm).unwrap();
    let schedule = program.command_schedule().unwrap();
    let dense = vec![0.0, 5.0, 0.0, -2.0, 1.0, 0.0, 0.0, 9.0];
    let mut mem = BankMemory::new(1024);
    let rs = mem.alloc("dense", 8, dense.clone());
    let rd = mem.alloc_zeroed("out", 8, 8);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, vec![Some(rs), Some(rd), None, None])
        .unwrap();
    for &slot in &schedule {
        pu.on_command(slot, &mut mem);
    }
    pu.run_free(&mut mem);
    assert_eq!(mem.region(rd).data(), dense.as_slice());
}

#[test]
fn load_kernel_requires_bindings() {
    let program = assemble("DMOV DRF0, BANK, FP64\nEXIT\n").unwrap();
    let mut pu = ProcessingUnit::new();
    assert!(matches!(
        pu.load_kernel::<RegionId>(program, vec![None, None]),
        Err(CoreError::Binding(_))
    ));
}

#[test]
fn nested_loops_use_distinct_order_counters() {
    // outer ×3 { load; inner ×2 { compute } ; store }
    let asm = r"
DMOV DRF0, BANK, FP64
SDV  DRF0, DRF0, MUL, FP64
JUMP 1, 1, 1
DMOV BANK, DRF0, FP64
JUMP 0, 2, 2
EXIT
";
    let program = assemble(asm).unwrap();
    let schedule = program.command_schedule().unwrap();
    // 3 outer iterations x (1 load + 1 store).
    assert_eq!(schedule, vec![0, 3, 0, 3, 0, 3]);

    let mut mem = BankMemory::new(1024);
    let src: Vec<f64> = (0..12).map(|i| f64::from(i) + 1.0).collect();
    let rs = mem.alloc("src", 8, src.clone());
    let rd = mem.alloc_zeroed("dst", 8, 12);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, vec![Some(rs), None, None, Some(rd), None, None])
        .unwrap();
    pu.set_srf(2.0);
    for &slot in &schedule {
        assert!(pu.on_command(slot, &mut mem).executed);
    }
    pu.run_free(&mut mem);
    assert!(pu.exited());
    // Each chunk multiplied by 2 twice (inner loop ran the SDV twice).
    let want: Vec<f64> = src.iter().map(|v| v * 4.0).collect();
    assert_eq!(mem.region(rd).data(), want.as_slice());
}

#[test]
fn queue_full_load_stalls_and_counts_predication() {
    // Loads without a drain: the third 32B block must stall (64B cap).
    let asm = r"
SPMOV SPVQ0, BANK, VAL, FP64
SPMOV SPVQ0, BANK, VAL, FP64
SPMOV SPVQ0, BANK, VAL, FP64
EXIT
";
    let program = assemble(asm).unwrap();
    let mut mem = BankMemory::new(1024);
    let rs = mem.alloc("vals", 8, (0..16).map(f64::from).collect());
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, vec![Some(rs), Some(rs), Some(rs), None])
        .unwrap();
    assert!(pu.on_command(0, &mut mem).executed);
    assert!(pu.on_command(1, &mut mem).executed); // queue now 8/8 FP64
    let off_before = pu.stats().predicated_off;
    let rep = pu.on_command(2, &mut mem);
    assert!(!rep.executed, "full sub-queue must predicate the load off");
    assert_eq!(pu.stats().predicated_off, off_before + 1);
    assert_eq!(pu.pending_slot(), Some(2));
}

#[test]
fn spvspv_union_and_intersection() {
    // Load two sparse vectors, combine, and force-write the result.
    let asm = r"
SPMOV  SPVQ0, BANK, ROW, FP64
SPMOV  SPVQ0, BANK, COL, FP64
SPMOV  SPVQ0, BANK, VAL, FP64
SPMOV  SPVQ1, BANK, ROW, FP64
SPMOV  SPVQ1, BANK, COL, FP64
SPMOV  SPVQ1, BANK, VAL, FP64
SPVSPV SPVQ2, SPVQ0, SPVQ1, ADD, UNION, FP64
SPFW   SPVQ2, FP64
EXIT
";
    let program = assemble(asm).unwrap();
    let mut mem = BankMemory::new(1024);
    // Vector A: indices {0, 2}; vector B: indices {2, 3}; values chosen so
    // sums are recognizable.
    let a_rows = vec![0.0, 0.0, SENTINEL, SENTINEL];
    let a_cols = vec![0.0, 2.0, SENTINEL, SENTINEL];
    let a_vals = vec![1.0, 2.0, 0.0, 0.0];
    let b_rows = vec![0.0, 0.0, SENTINEL, SENTINEL];
    let b_cols = vec![2.0, 3.0, SENTINEL, SENTINEL];
    let b_vals = vec![10.0, 20.0, 0.0, 0.0];
    let r0 = mem.alloc("ar", 8, a_rows);
    let r1 = mem.alloc("ac", 8, a_cols);
    let r2 = mem.alloc("av", 8, a_vals);
    let r3 = mem.alloc("br", 8, b_rows);
    let r4 = mem.alloc("bc", 8, b_cols);
    let r5 = mem.alloc("bv", 8, b_vals);
    let out = mem.alloc_zeroed("out", 8, 24);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(
        program.clone(),
        vec![
            Some(r0),
            Some(r1),
            Some(r2),
            Some(r3),
            Some(r4),
            Some(r5),
            None,
            Some(out),
            None,
        ],
    )
    .unwrap();
    for &slot in &program.command_schedule().unwrap() {
        assert!(pu.on_command(slot, &mut mem).executed, "slot {slot}");
    }
    // Union of {0:1, 2:2} + {2:10, 3:20} = {0:1, 2:12, 3:20}.
    let data = mem.region(out).data();
    let triples: Vec<(f64, f64)> = data
        .chunks(3)
        .take_while(|t| !(t[0] == 0.0 && t[1] == 0.0 && t[2] == 0.0))
        .map(|t| (t[1], t[2]))
        .collect();
    assert_eq!(triples, vec![(0.0, 1.0), (2.0, 12.0), (3.0, 20.0)]);
}

#[test]
fn indmov_into_srf_takes_first_gather() {
    let asm = r"
SPMOV  SPVQ0, BANK, ROW, FP64
SPMOV  SPVQ0, BANK, COL, FP64
SPMOV  SPVQ0, BANK, VAL, FP64
INDMOV SRF, SPVQ0, FP64
EXIT
";
    let program = assemble(asm).unwrap();
    let mut mem = BankMemory::new(1024);
    let rows = mem.alloc("r", 8, vec![0.0, 1.0, SENTINEL, SENTINEL]);
    let cols = mem.alloc("c", 8, vec![3.0, 1.0, SENTINEL, SENTINEL]);
    let vals = mem.alloc("v", 8, vec![1.0, 1.0, 0.0, 0.0]);
    let vecr = mem.alloc("x", 8, vec![10.0, 20.0, 30.0, 40.0]);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(
        program.clone(),
        vec![Some(rows), Some(cols), Some(vals), Some(vecr), None],
    )
    .unwrap();
    for &slot in &program.command_schedule().unwrap() {
        pu.on_command(slot, &mut mem);
    }
    // First queued column index is 3 -> x[3] = 40.
    assert_eq!(pu.srf(), 40.0);
}

#[test]
fn fp32_stores_quantize() {
    let asm = r"
DMOV DRF0, BANK, FP32
DMOV BANK, DRF0, FP32
EXIT
";
    let program = assemble(asm).unwrap();
    let mut mem = BankMemory::new(1024);
    let v = 1.0 + 1e-12; // not representable in f32
    let rs = mem.alloc("src", 4, vec![v; 8]);
    let rd = mem.alloc_zeroed("dst", 4, 8);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(program, vec![Some(rs), Some(rd), None])
        .unwrap();
    pu.on_command(0, &mut mem);
    pu.on_command(1, &mut mem);
    assert_eq!(mem.region(rd).data()[0], 1.0, "FP32 store rounds");
}

#[test]
fn strided_binding_walks_interleaved_layout() {
    use crate::memory::Binding;
    // One region holding [a-block | b-block] pairs; two load slots with
    // offsets 0 and 4 and stride 8 must see disjoint streams.
    let asm = r"
DMOV DRF0, BANK, FP64
DMOV DRF1, BANK, FP64
DVDV DRF2, DRF0, DRF1, ADD, FP64
DMOV BANK, DRF2, FP64
JUMP 0, 1, 1
EXIT
";
    let program = assemble(asm).unwrap();
    let mut mem = BankMemory::new(1024);
    // Pairs: a = [1,2,3,4], b = [10,20,30,40]; then a=[5..], b=[50..].
    let data = vec![
        1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0, 5.0, 6.0, 7.0, 8.0, 50.0, 60.0, 70.0, 80.0,
    ];
    let r = mem.alloc("pairs", 8, data);
    let out = mem.alloc_zeroed("out", 8, 8);
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(
        program.clone(),
        vec![
            Some(Binding::strided(r, 0, 8)),
            Some(Binding::strided(r, 4, 8)),
            None,
            Some(Binding::new(out)),
            None,
            None,
        ],
    )
    .unwrap();
    for &slot in &program.command_schedule().unwrap() {
        assert!(pu.on_command(slot, &mut mem).executed);
    }
    assert_eq!(
        mem.region(out).data(),
        &[11.0, 22.0, 33.0, 44.0, 55.0, 66.0, 77.0, 88.0]
    );
}
