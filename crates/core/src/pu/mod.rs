//! The per-bank processing unit (paper §IV-B, Figure 4, Table VIII).
//!
//! Each unit has a 128 B control register (32 instructions), a 16 B scalar
//! register, three 32 B dense vector registers, three 192 B sparse vector
//! queues (row/col/val sub-queues of 64 B each), a 256-bit multi-precision
//! VALU with an index calculator, and 32 loop counters for ORDER'd jumps.
//!
//! Execution is *partially synchronous*: the host's all-bank column
//! commands arrive tagged with the program slot they serve; a unit executes
//! its pending control/compute instructions for free, then consumes the
//! command if (a) its program counter has reached that slot and (b) the
//! instruction's predicate holds (queue room/data available). Otherwise the
//! command passes over the unit without effect — the predicated execution
//! of §IV-E. A unit that has taken `CEXIT` ignores all further commands
//! while the host keeps driving the remaining units (§IV-D).

mod fast;
mod queue;

pub use queue::SpQueue;

use crate::error::CoreError;
use crate::isa::{BinaryOp, Identity, Instruction, Operand, Program, SetMode, SubQueue};
use crate::memory::{BankMemory, Binding, SENTINEL};
use crate::stats::PuStats;
use psim_sparse::Precision;
use serde::{Deserialize, Serialize};

/// DRAM command-clock cycles per PU cycle (1 GHz DRAM / 250 MHz PU).
pub const DRAM_CYCLES_PER_PU_CYCLE: u64 = 4;

/// How a unit disposed of one column command — the discriminator the
/// attribution layer (psim-trace) classifies stall cycles with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// Consumed the command and moved real data.
    Executed,
    /// Consumed the command but the source stream/queue was empty (drained
    /// region, sentinel padding): a no-op burst.
    ExecutedEmpty,
    /// Passed: the unit's program counter was at a different memory slot.
    OutOfPhase,
    /// Passed: the destination queue had no room (predicate failed).
    QueueFull,
    /// The unit had exited (or exited while handling this command without
    /// consuming it).
    Exited,
}

/// Outcome of offering one column command to a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepReport {
    /// Whether the unit consumed the command (performed its bank access).
    pub executed: bool,
    /// PU cycles of work performed while handling this command (compute
    /// instructions retired plus the access itself).
    pub pu_cycles: u64,
    /// Disposition of the command.
    pub outcome: StepOutcome,
}

/// One pSyncPIM processing unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingUnit {
    program: Option<Program>,
    /// Region binding (region, offset, stride) of each memory slot.
    bindings: Vec<Option<Binding>>,
    /// Per-slot element cursor into the bound region.
    cursors: Vec<usize>,
    pc: usize,
    loop_counters: Vec<u32>,
    srf: f64,
    drf: [Vec<f64>; 3],
    queues: [SpQueue; 3],
    exited: bool,
    exit_armed: bool,
    stats: PuStats,
}

impl Default for ProcessingUnit {
    fn default() -> Self {
        ProcessingUnit::new()
    }
}

impl ProcessingUnit {
    /// A fresh, unprogrammed unit.
    #[must_use]
    pub fn new() -> Self {
        ProcessingUnit {
            program: None,
            bindings: Vec::new(),
            cursors: Vec::new(),
            pc: 0,
            loop_counters: vec![0; 32],
            srf: 0.0,
            drf: [Vec::new(), Vec::new(), Vec::new()],
            queues: [SpQueue::new(), SpQueue::new(), SpQueue::new()],
            exited: false,
            exit_armed: false,
            stats: PuStats::new(),
        }
    }

    /// Load a kernel: program plus per-slot region bindings (every memory
    /// instruction slot must have a binding).
    ///
    /// # Errors
    ///
    /// [`CoreError::Binding`] if a memory slot is unbound.
    pub fn load_kernel<B: Into<Binding>>(
        &mut self,
        program: Program,
        bindings: Vec<Option<B>>,
    ) -> Result<(), CoreError> {
        let mut bindings: Vec<Option<Binding>> =
            bindings.into_iter().map(|o| o.map(Into::into)).collect();
        bindings.resize(program.len(), None);
        for (slot, ins) in program.instructions().iter().enumerate() {
            if ins.is_memory() && bindings.get(slot).copied().flatten().is_none() {
                return Err(CoreError::Binding(format!(
                    "memory instruction at slot {slot} has no bound region"
                )));
            }
        }
        self.cursors = (0..program.len())
            .map(|slot| bindings[slot].map_or(0, |b| b.offset))
            .collect();
        self.bindings = bindings;
        self.program = Some(program);
        self.pc = 0;
        self.loop_counters.iter_mut().for_each(|c| *c = 0);
        self.exited = false;
        self.exit_armed = false;
        self.stats = PuStats::new();
        Ok(())
    }

    /// Set the scalar register (the host may seed α for AXPY-style kernels).
    pub fn set_srf(&mut self, v: f64) {
        self.srf = v;
    }

    /// Current scalar register value (reductions land here).
    #[must_use]
    pub fn srf(&self) -> f64 {
        self.srf
    }

    /// Whether the unit has terminated (EXIT or satisfied CEXIT).
    #[must_use]
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &PuStats {
        &self.stats
    }

    /// Record the round in which the unit exited (called by the engine).
    /// Also freezes the instruction count so the validation layer can
    /// verify nothing retires after exit.
    pub fn mark_exit_round(&mut self, round: u64) {
        if self.stats.exit_round == u64::MAX {
            self.stats.exit_round = round;
            self.stats.instructions_at_exit = self.stats.instructions;
        }
    }

    /// Offer one column command serving program `slot` (direction implied
    /// by the instruction). Runs pending free instructions first.
    ///
    /// # Panics
    ///
    /// Panics if no kernel is loaded.
    pub fn on_command(&mut self, slot: usize, mem: &mut BankMemory) -> StepReport {
        assert!(self.program.is_some(), "no kernel loaded");
        if self.exited {
            self.stats.predicated_off += 1;
            return StepReport {
                executed: false,
                pu_cycles: 0,
                outcome: StepOutcome::Exited,
            };
        }
        let mut cycles = 0u64;
        // Safety bound: a unit can't retire more than the control register
        // size of free instructions per command.
        for _ in 0..4 * crate::isa::Program::len_limit() {
            let prog = self.program.as_ref().expect("checked above");
            if self.pc >= prog.len() {
                self.exited = true;
                break;
            }
            let ins = *prog.get(self.pc).expect("bounds checked");
            if ins.is_memory() {
                if self.pc != slot {
                    // Out of phase: let the command pass.
                    self.stats.predicated_off += 1;
                    return StepReport {
                        executed: false,
                        pu_cycles: cycles,
                        outcome: StepOutcome::OutOfPhase,
                    };
                }
                return match self.exec_memory(&ins, slot, mem) {
                    outcome @ (ExecOutcome::Done(_) | ExecOutcome::DoneEmpty(_)) => {
                        let (c, step) = match outcome {
                            ExecOutcome::Done(c) => (c, StepOutcome::Executed),
                            ExecOutcome::DoneEmpty(c) => (c, StepOutcome::ExecutedEmpty),
                            ExecOutcome::Stall => unreachable!("matched above"),
                        };
                        self.pc += 1;
                        self.stats.instructions += 1;
                        self.stats.mem_ops += 1;
                        let total = cycles + c;
                        self.stats.busy_cycles += total;
                        StepReport {
                            executed: true,
                            pu_cycles: total,
                            outcome: step,
                        }
                    }
                    ExecOutcome::Stall => {
                        self.stats.predicated_off += 1;
                        self.stats.busy_cycles += cycles;
                        StepReport {
                            executed: false,
                            pu_cycles: cycles,
                            outcome: StepOutcome::QueueFull,
                        }
                    }
                };
            }
            // Control / compute — free of commands.
            match self.exec_free(&ins) {
                ExecOutcome::Done(c) | ExecOutcome::DoneEmpty(c) => {
                    cycles += c;
                    self.stats.instructions += 1;
                    if self.exited {
                        break;
                    }
                }
                ExecOutcome::Stall => {
                    self.stats.predicated_off += 1;
                    self.stats.busy_cycles += cycles;
                    return StepReport {
                        executed: false,
                        pu_cycles: cycles,
                        outcome: StepOutcome::QueueFull,
                    };
                }
            }
        }
        self.stats.busy_cycles += cycles;
        StepReport {
            executed: false,
            pu_cycles: cycles,
            outcome: if self.exited {
                StepOutcome::Exited
            } else {
                StepOutcome::OutOfPhase
            },
        }
    }

    /// Run control/compute instructions until the unit reaches a memory
    /// instruction, stalls, or exits. Used by the engine before the first
    /// command and for programs with no memory instructions.
    pub fn run_free(&mut self, _mem: &mut BankMemory) -> u64 {
        let mut cycles = 0u64;
        for _ in 0..4 * crate::isa::Program::len_limit() {
            let Some(prog) = self.program.as_ref() else {
                break;
            };
            if self.exited || self.pc >= prog.len() {
                self.exited = true;
                break;
            }
            let ins = *prog.get(self.pc).expect("bounds checked");
            if ins.is_memory() {
                break;
            }
            match self.exec_free(&ins) {
                ExecOutcome::Done(c) | ExecOutcome::DoneEmpty(c) => {
                    cycles += c;
                    self.stats.instructions += 1;
                }
                ExecOutcome::Stall => break,
            }
        }
        self.stats.busy_cycles += cycles;
        cycles
    }

    /// The slot of the memory instruction the unit is currently waiting at,
    /// if any (diagnostic).
    #[must_use]
    pub fn pending_slot(&self) -> Option<usize> {
        let prog = self.program.as_ref()?;
        let ins = prog.get(self.pc)?;
        ins.is_memory().then_some(self.pc)
    }

    // ---- internals -----------------------------------------------------

    fn exec_free(&mut self, ins: &Instruction) -> ExecOutcome {
        match *ins {
            Instruction::Nop => {
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::Exit => {
                self.exited = true;
                ExecOutcome::Done(1)
            }
            Instruction::CExit { queue } => {
                if self.exit_armed && self.queues[queue as usize].is_empty() {
                    self.exited = true;
                } else {
                    self.pc += 1;
                }
                ExecOutcome::Done(1)
            }
            Instruction::Jump {
                target,
                order,
                count,
            } => {
                if count == 0 {
                    self.pc = target as usize;
                } else {
                    let ctr = &mut self.loop_counters[order as usize];
                    *ctr += 1;
                    if *ctr <= u32::from(count) {
                        self.pc = target as usize;
                    } else {
                        *ctr = 0;
                        self.pc += 1;
                    }
                }
                ExecOutcome::Done(1)
            }
            Instruction::Dmov {
                dst,
                src,
                precision,
            } => self.exec_dmov_regs(dst, src, precision),
            Instruction::Sdv {
                dst,
                src,
                op,
                precision,
            } => {
                let k = self.drf_of(src).len();
                let srf = self.srf;
                let out: Vec<f64> = self
                    .drf_of(src)
                    .iter()
                    .map(|&v| precision.quantize(op.apply(v, srf)))
                    .collect();
                *self.drf_of_mut(dst) = out;
                self.stats.lane_ops += k as u64;
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::SSpv {
                dst,
                src,
                op,
                precision,
            } => self.exec_sspv(dst, src, op, precision),
            Instruction::Reduce { src, op, precision } => {
                let folded = self
                    .drf_of(src)
                    .iter()
                    .fold(op.identity(), |acc, &v| op.apply(acc, v));
                self.srf = precision.quantize(op.apply(self.srf, folded));
                self.stats.lane_ops += self.drf_of(src).len() as u64;
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::Dvdv {
                dst,
                src0,
                src1,
                op,
                precision,
            } => {
                let a = self.drf_of(src0).clone();
                let b = self.drf_of(src1).clone();
                let k = a.len().max(b.len());
                let out: Vec<f64> = (0..k)
                    .map(|i| {
                        precision.quantize(op.apply(
                            a.get(i).copied().unwrap_or(0.0),
                            b.get(i).copied().unwrap_or(0.0),
                        ))
                    })
                    .collect();
                *self.drf_of_mut(dst) = out;
                self.stats.lane_ops += k as u64;
                self.pc += 1;
                ExecOutcome::Done(1)
            }
            Instruction::SpVdv {
                dst,
                src0,
                src1,
                op,
                set,
                precision,
            } if !ins.is_memory() => self.exec_spvdv_regs(dst, src0, src1, op, set, precision),
            Instruction::SpVSpv {
                dst,
                src0,
                src1,
                op,
                set,
                precision,
            } => self.exec_spvspv(dst, src0, src1, op, set, precision),
            _ => unreachable!("memory instruction routed to exec_free"),
        }
    }

    /// DMOV among registers (non-bank): DRF↔DRF copy, SRF broadcast to a
    /// DRF, or DRF lane 0 into SRF.
    fn exec_dmov_regs(&mut self, dst: Operand, src: Operand, precision: Precision) -> ExecOutcome {
        let lanes = precision.lanes();
        match (dst, src) {
            (Operand::Drf(d), Operand::Drf(s)) => {
                let v = self.drf[s as usize].clone();
                self.drf[d as usize] = v;
            }
            (Operand::Drf(d), Operand::Srf) => {
                self.drf[d as usize] = vec![self.srf; lanes];
            }
            (Operand::Srf, Operand::Drf(s)) => {
                self.srf = self.drf[s as usize].first().copied().unwrap_or(0.0);
            }
            _ => {}
        }
        self.pc += 1;
        ExecOutcome::Done(1)
    }

    fn exec_sspv(
        &mut self,
        dst: Operand,
        src: Operand,
        op: BinaryOp,
        precision: Precision,
    ) -> ExecOutcome {
        let (Operand::SpVq(d), Operand::SpVq(s)) = (dst, src) else {
            self.pc += 1;
            return ExecOutcome::Done(1);
        };
        let lanes = precision.lanes();
        let elem_bytes = precision.bytes();
        let avail = self.queues[s as usize].len();
        let k = avail.min(lanes);
        if k > 0 && !self.queues[d as usize].can_push(k, elem_bytes) {
            return ExecOutcome::Stall;
        }
        let srf = self.srf;
        for _ in 0..k {
            let (r, c, v) = self.queues[s as usize].pop().expect("len checked");
            let nv = precision.quantize(op.apply(v, srf));
            self.queues[d as usize].push(r, c, nv);
        }
        self.stats.lane_ops += k as u64;
        self.pc += 1;
        ExecOutcome::Done(1)
    }

    /// SpVDV between registers: pop up to `lanes` elements of `src0`, pair
    /// them positionally with the dense register `src1` (the gather buffer
    /// IndMOV filled), push results into the destination queue. The index
    /// calculator drops sentinel-padded elements (§V).
    fn exec_spvdv_regs(
        &mut self,
        dst: Operand,
        src0: Operand,
        src1: Operand,
        op: BinaryOp,
        _set: SetMode,
        precision: Precision,
    ) -> ExecOutcome {
        let (Operand::SpVq(d), Operand::SpVq(s)) = (dst, src0) else {
            self.pc += 1;
            return ExecOutcome::Done(1);
        };
        let lanes = precision.lanes();
        let elem_bytes = precision.bytes();
        let k = self.queues[s as usize].len().min(lanes);
        if k > 0 && !self.queues[d as usize].can_push(k, elem_bytes) {
            return ExecOutcome::Stall;
        }
        let dense: Vec<f64> = match src1 {
            Operand::Drf(i) => self.drf[i as usize].clone(),
            Operand::Srf => vec![self.srf; lanes],
            _ => vec![0.0; lanes],
        };
        for i in 0..k {
            let (r, c, v) = self.queues[s as usize].pop().expect("len checked");
            if r == SENTINEL || c == SENTINEL {
                continue; // index calculator skips padding
            }
            let b = dense.get(i).copied().unwrap_or(0.0);
            let nv = precision.quantize(op.apply(v, b));
            self.queues[d as usize].push(r, c, nv);
        }
        self.stats.lane_ops += k as u64;
        self.pc += 1;
        ExecOutcome::Done(1)
    }

    /// Element-wise sparse-sparse with union/intersection index matching
    /// over the frontmost `lanes` window of each queue.
    fn exec_spvspv(
        &mut self,
        dst: Operand,
        src0: Operand,
        src1: Operand,
        op: BinaryOp,
        set: SetMode,
        precision: Precision,
    ) -> ExecOutcome {
        let (Operand::SpVq(d), Operand::SpVq(a), Operand::SpVq(b)) = (dst, src0, src1) else {
            self.pc += 1;
            return ExecOutcome::Done(1);
        };
        let lanes = precision.lanes();
        let elem_bytes = precision.bytes();
        let ka = self.queues[a as usize].len().min(lanes);
        let kb = self.queues[b as usize].len().min(lanes);
        if (ka + kb > 0) && !self.queues[d as usize].can_push(ka + kb, elem_bytes) {
            return ExecOutcome::Stall;
        }
        let mut wa: Vec<(f64, f64, f64)> = (0..ka)
            .map(|_| self.queues[a as usize].pop().expect("len checked"))
            .collect();
        let mut wb: Vec<(f64, f64, f64)> = (0..kb)
            .map(|_| self.queues[b as usize].pop().expect("len checked"))
            .collect();
        wa.retain(|&(r, c, _)| r != SENTINEL && c != SENTINEL);
        wb.retain(|&(r, c, _)| r != SENTINEL && c != SENTINEL);
        let (mut i, mut j) = (0usize, 0usize);
        let push = |q: &mut SpQueue, r: f64, c: f64, v: f64| {
            q.push(r, c, precision.quantize(v));
        };
        while i < wa.len() || j < wb.len() {
            match (wa.get(i), wb.get(j)) {
                (Some(&(ra, ca, va)), Some(&(rb, cb, vb))) => {
                    use std::cmp::Ordering;
                    let ka = (ra, ca);
                    let kb2 = (rb, cb);
                    match ka.partial_cmp(&kb2).unwrap_or(Ordering::Equal) {
                        Ordering::Equal => {
                            push(&mut self.queues[d as usize], ra, ca, op.apply(va, vb));
                            i += 1;
                            j += 1;
                        }
                        Ordering::Less => {
                            if set == SetMode::Union {
                                push(
                                    &mut self.queues[d as usize],
                                    ra,
                                    ca,
                                    op.apply(va, op.identity()),
                                );
                            }
                            i += 1;
                        }
                        Ordering::Greater => {
                            if set == SetMode::Union {
                                push(
                                    &mut self.queues[d as usize],
                                    rb,
                                    cb,
                                    op.apply(op.identity(), vb),
                                );
                            }
                            j += 1;
                        }
                    }
                }
                (Some(&(ra, ca, va)), None) => {
                    if set == SetMode::Union {
                        push(&mut self.queues[d as usize], ra, ca, va);
                    }
                    i += 1;
                }
                (None, Some(&(rb, cb, vb))) => {
                    if set == SetMode::Union {
                        push(&mut self.queues[d as usize], rb, cb, vb);
                    }
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.stats.lane_ops += (ka + kb) as u64;
        self.pc += 1;
        ExecOutcome::Done(1)
    }

    fn exec_memory(&mut self, ins: &Instruction, slot: usize, mem: &mut BankMemory) -> ExecOutcome {
        let binding = self.bindings[slot].expect("validated at load_kernel");
        let region = binding.region;
        match *ins {
            Instruction::Dmov {
                dst,
                src,
                precision,
            } => {
                let lanes = precision.lanes();
                let cur = self.cursors[slot];
                match (dst, src) {
                    (Operand::Drf(d), Operand::Bank) => {
                        let r = mem.region(region);
                        self.drf[d as usize] = (0..lanes).map(|i| r.get(cur + i)).collect();
                        self.cursors[slot] += binding.stride.unwrap_or(lanes);
                    }
                    (Operand::Srf, Operand::Bank) => {
                        self.srf = mem.region(region).get(cur);
                        self.cursors[slot] += binding.stride.unwrap_or(1);
                    }
                    (Operand::Bank, Operand::Drf(d)) => {
                        let vals = self.drf[d as usize].clone();
                        let r = mem.region_mut(region);
                        for (i, v) in vals.iter().enumerate().take(lanes) {
                            r.set(cur + i, precision.quantize(*v));
                        }
                        self.cursors[slot] += binding.stride.unwrap_or(lanes);
                    }
                    (Operand::Bank, Operand::Srf) => {
                        mem.region_mut(region)
                            .set(cur, precision.quantize(self.srf));
                        self.cursors[slot] += binding.stride.unwrap_or(1);
                    }
                    _ => unreachable!("non-bank DMOV routed to exec_free"),
                }
                ExecOutcome::Done(1)
            }
            Instruction::SpMov {
                dst,
                src,
                sub,
                precision,
            } => self.exec_spmov(dst, src, sub, precision, slot, mem),
            Instruction::IndMov {
                dst,
                idx_queue,
                precision,
            } => {
                let lanes = precision.lanes();
                let q = &self.queues[idx_queue as usize];
                let cols = q.peek_cols(lanes);
                let r = mem.region(region);
                let gathered: Vec<f64> = cols
                    .iter()
                    .map(|&c| {
                        if c == SENTINEL {
                            0.0
                        } else {
                            r.get(c as usize)
                        }
                    })
                    .collect();
                let k = gathered.len() as u64;
                match dst {
                    Operand::Drf(d) => self.drf[d as usize] = gathered,
                    Operand::Srf => self.srf = gathered.first().copied().unwrap_or(0.0),
                    _ => {}
                }
                self.stats.lane_ops += k;
                if k == 0 {
                    ExecOutcome::DoneEmpty(1)
                } else {
                    ExecOutcome::Done(k)
                }
            }
            Instruction::SpFw { src, precision } => {
                let mut cur = self.cursors[slot];
                let start = cur;
                while let Some((r, c, v)) = self.queues[src as usize].pop() {
                    let reg = mem.region_mut(region);
                    reg.set(cur, r);
                    reg.set(cur + 1, c);
                    reg.set(cur + 2, precision.quantize(v));
                    cur += 3;
                }
                self.cursors[slot] = cur;
                if cur == start {
                    ExecOutcome::DoneEmpty(1)
                } else {
                    ExecOutcome::Done(1)
                }
            }
            Instruction::GthSct {
                dst,
                src,
                identity,
                precision,
            } => self.exec_gthsct(dst, src, identity, precision, slot, mem),
            Instruction::SpVdv {
                dst: Operand::Bank,
                src0: Operand::SpVq(s),
                op,
                precision,
                ..
            } => {
                // Scatter-accumulate into the open output row at each
                // element's row index (the SpMV/SpTRSV write-back).
                let lanes = precision.lanes();
                let k = self.queues[s as usize].len().min(lanes);
                let reg = mem.region_mut(region);
                let mut touched = 0u64;
                for _ in 0..k {
                    let (r, _c, v) = self.queues[s as usize].pop().expect("len checked");
                    if r == SENTINEL {
                        continue;
                    }
                    let idx = r as usize;
                    let old = reg.get(idx);
                    reg.set(idx, precision.quantize(op.apply(v, old)));
                    touched += 1;
                }
                self.stats.lane_ops += touched;
                if k == 0 {
                    ExecOutcome::DoneEmpty(2)
                } else {
                    ExecOutcome::Done(2)
                }
            }
            Instruction::SpVdv {
                dst: Operand::SpVq(d),
                src0: Operand::SpVq(s),
                src1: Operand::Bank,
                op,
                precision,
                ..
            } => {
                // Queue ⊙ dense bank stream -> queue (the literal
                // "SpVQ0 ⊕ Bank" form of Algorithm 2).
                let lanes = precision.lanes();
                let elem_bytes = precision.bytes();
                let k = self.queues[s as usize].len().min(lanes);
                if k > 0 && !self.queues[d as usize].can_push(k, elem_bytes) {
                    return ExecOutcome::Stall;
                }
                let cur = self.cursors[slot];
                let dense: Vec<f64> = {
                    let r = mem.region(region);
                    (0..k).map(|i| r.get(cur + i)).collect()
                };
                self.cursors[slot] += binding.stride.unwrap_or(lanes);
                for (i, b) in dense.into_iter().enumerate() {
                    let _ = i;
                    let (r, c, v) = self.queues[s as usize].pop().expect("len checked");
                    if r == SENTINEL || c == SENTINEL {
                        continue;
                    }
                    self.queues[d as usize].push(r, c, precision.quantize(op.apply(v, b)));
                }
                self.stats.lane_ops += k as u64;
                if k == 0 {
                    ExecOutcome::DoneEmpty(2)
                } else {
                    ExecOutcome::Done(2)
                }
            }
            _ => {
                debug_assert!(false, "unexpected memory instruction {ins:?}");
                ExecOutcome::Done(1)
            }
        }
    }

    fn exec_spmov(
        &mut self,
        dst: Operand,
        src: Operand,
        sub: SubQueue,
        precision: Precision,
        slot: usize,
        mem: &mut BankMemory,
    ) -> ExecOutcome {
        let binding = self.bindings[slot].expect("validated");
        let region = binding.region;
        let lanes = precision.lanes();
        let elem_bytes = precision.bytes();
        match (dst, src) {
            (Operand::SpVq(q), Operand::Bank) => {
                let cur = self.cursors[slot];
                let r = mem.region(region);
                if cur >= r.len() {
                    // Region drained: arm the conditional exit, consume the
                    // command as a no-op.
                    self.exit_armed = true;
                    return ExecOutcome::DoneEmpty(1);
                }
                if !self.queues[q as usize].sub_can_push(sub, lanes, elem_bytes) {
                    return ExecOutcome::Stall;
                }
                let mut saw_sentinel = false;
                for i in 0..lanes {
                    let v = r.get(cur + i);
                    if (sub == SubQueue::Row || sub == SubQueue::Col) && v == SENTINEL {
                        saw_sentinel = true;
                    }
                    self.queues[q as usize].push_sub(sub, v);
                }
                self.cursors[slot] += binding.stride.unwrap_or(lanes);
                if saw_sentinel {
                    self.exit_armed = true;
                }
                ExecOutcome::Done(1)
            }
            (Operand::Bank, Operand::SpVq(q)) => {
                let mut cur = self.cursors[slot];
                let start = cur;
                for _ in 0..lanes {
                    let Some(v) = self.queues[q as usize].pop_sub(sub) else {
                        break;
                    };
                    mem.region_mut(region).set(cur, precision.quantize(v));
                    cur += 1;
                }
                self.cursors[slot] = cur;
                if cur == start {
                    ExecOutcome::DoneEmpty(1)
                } else {
                    ExecOutcome::Done(1)
                }
            }
            _ => ExecOutcome::Done(1),
        }
    }

    fn exec_gthsct(
        &mut self,
        dst: Operand,
        src: Operand,
        identity: Identity,
        precision: Precision,
        slot: usize,
        mem: &mut BankMemory,
    ) -> ExecOutcome {
        let binding = self.bindings[slot].expect("validated");
        let region = binding.region;
        let lanes = precision.lanes();
        let elem_bytes = precision.bytes();
        match (dst, src) {
            // Gather: dense region -> sparse queue.
            (Operand::SpVq(q), Operand::Bank) => {
                let cur = self.cursors[slot];
                let r = mem.region(region);
                if cur >= r.len() {
                    self.exit_armed = true;
                    return ExecOutcome::DoneEmpty(1);
                }
                if !self.queues[q as usize].can_push(lanes, elem_bytes) {
                    return ExecOutcome::Stall;
                }
                for i in 0..lanes {
                    if cur + i >= r.len() {
                        break;
                    }
                    let v = r.get(cur + i);
                    if v != identity.value() {
                        self.queues[q as usize].push(0.0, (cur + i) as f64, v);
                        self.stats.lane_ops += 1;
                    }
                }
                self.cursors[slot] += binding.stride.unwrap_or(lanes);
                ExecOutcome::Done(1)
            }
            // Scatter: sparse queue -> dense region at the col index.
            (Operand::Bank, Operand::SpVq(q)) => {
                let mut popped = 0usize;
                for _ in 0..lanes {
                    let Some((_r, c, v)) = self.queues[q as usize].pop() else {
                        break;
                    };
                    popped += 1;
                    if c == SENTINEL {
                        continue;
                    }
                    mem.region_mut(region)
                        .set(c as usize, precision.quantize(v));
                    self.stats.lane_ops += 1;
                }
                if popped == 0 {
                    ExecOutcome::DoneEmpty(1)
                } else {
                    ExecOutcome::Done(1)
                }
            }
            _ => ExecOutcome::Done(1),
        }
    }

    fn drf_of(&self, op: Operand) -> &Vec<f64> {
        match op {
            Operand::Drf(i) => &self.drf[i as usize],
            _ => &self.drf[0],
        }
    }

    fn drf_of_mut(&mut self, op: Operand) -> &mut Vec<f64> {
        match op {
            Operand::Drf(i) => &mut self.drf[i as usize],
            _ => &mut self.drf[0],
        }
    }
}

enum ExecOutcome {
    /// Executed; PU-cycle cost.
    Done(u64),
    /// Executed, but the source stream/queue was empty — the command was
    /// consumed as a no-op burst (queue-empty stall for attribution).
    DoneEmpty(u64),
    /// Predicate failed; retry on a later command.
    Stall,
}

impl Program {
    /// The control-register capacity (helper for the step bound).
    #[must_use]
    pub fn len_limit() -> usize {
        crate::isa::program::MAX_PROGRAM_LEN
    }
}

#[cfg(test)]
mod tests;
