//! Per-bank memory model.
//!
//! Each bank's contents are organized as named *regions* — contiguous,
//! row-aligned element arrays (a submatrix's row/col/val stream, the input
//! vector slice, the output slice, ...). The engine uses a region's row
//! span to know which DRAM row must be open for an access; the processing
//! unit reads and writes region elements functionally.
//!
//! Values are carried as `f64` (index streams store their indices as exact
//! small integers, with `-1.0` as the paper's end-of-data sentinel);
//! `elem_bytes` controls how many elements one 32 B burst moves and how
//! many DRAM rows the region occupies.

use serde::{Deserialize, Serialize};

/// Handle to a region within one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub usize);

/// A memory-instruction slot's view of a region: where its stream starts
/// and how far each access advances.
///
/// The default (`offset = 0`, `stride = None`) is a contiguous stream that
/// advances by the instruction's natural width (one burst). Strided
/// bindings express the paper's *interleaved* layouts — e.g. the SpMV
/// triples region stores `[rows | cols | vals]` blocks consecutively in one
/// DRAM row ("32 B consecutive arrays", SIV-B), so the three load slots
/// share one region at offsets 0/1/2 blocks with a 3-block stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// Target region.
    pub region: RegionId,
    /// First element the slot's cursor points at.
    pub offset: usize,
    /// Elements the cursor advances per access; `None` = the instruction's
    /// natural advance (burst lanes, 1 for scalars, 0 for random access).
    pub stride: Option<usize>,
}

impl Binding {
    /// Contiguous stream over a whole region.
    #[must_use]
    pub fn new(region: RegionId) -> Self {
        Binding {
            region,
            offset: 0,
            stride: None,
        }
    }

    /// Strided stream starting at `offset`.
    #[must_use]
    pub fn strided(region: RegionId, offset: usize, stride: usize) -> Self {
        Binding {
            region,
            offset,
            stride: Some(stride),
        }
    }
}

impl From<RegionId> for Binding {
    fn from(region: RegionId) -> Self {
        Binding::new(region)
    }
}

/// The end-of-data sentinel the distribution step pads index arrays with
/// (paper §V, "Conditional Exit Detection").
pub const SENTINEL: f64 = -1.0;

/// A named, row-aligned element array in a bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    name: String,
    start_row: u32,
    elem_bytes: usize,
    data: Vec<f64>,
}

impl Region {
    /// Region name (diagnostic).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First DRAM row of the region.
    #[must_use]
    pub fn start_row(&self) -> u32 {
        self.start_row
    }

    /// Element width in bytes.
    #[must_use]
    pub fn elem_bytes(&self) -> usize {
        self.elem_bytes
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the contents.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the contents.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `idx`, or 0 past the end (reads beyond a region return
    /// the quiet zero pattern).
    #[must_use]
    pub fn get(&self, idx: usize) -> f64 {
        self.data.get(idx).copied().unwrap_or(0.0)
    }

    /// Store at `idx`; silently dropped past the end.
    pub fn set(&mut self, idx: usize, v: f64) {
        if let Some(slot) = self.data.get_mut(idx) {
            *slot = v;
        }
    }

    /// DRAM rows this region spans for a given row size.
    #[must_use]
    pub fn rows_spanned(&self, row_bytes: usize) -> u32 {
        let bytes = self.data.len() * self.elem_bytes;
        (bytes.div_ceil(row_bytes)).max(1) as u32
    }

    /// The DRAM row containing element `idx`.
    #[must_use]
    pub fn row_of(&self, idx: usize, row_bytes: usize) -> u32 {
        self.start_row + (idx * self.elem_bytes / row_bytes) as u32
    }
}

/// One bank's memory: a row-aligned arena of regions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BankMemory {
    row_bytes: usize,
    next_row: u32,
    regions: Vec<Region>,
}

impl BankMemory {
    /// Empty memory with the given DRAM row size.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes == 0`.
    #[must_use]
    pub fn new(row_bytes: usize) -> Self {
        assert!(row_bytes > 0, "row_bytes must be positive");
        BankMemory {
            row_bytes,
            next_row: 0,
            regions: Vec::new(),
        }
    }

    /// DRAM row size.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Allocate a region holding `data`, rounded up to whole rows.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        elem_bytes: usize,
        data: Vec<f64>,
    ) -> RegionId {
        let region = Region {
            name: name.into(),
            start_row: self.next_row,
            elem_bytes,
            data,
        };
        self.next_row += region.rows_spanned(self.row_bytes);
        let id = RegionId(self.regions.len());
        self.regions.push(region);
        id
    }

    /// Allocate a zero-filled region of `len` elements.
    pub fn alloc_zeroed(
        &mut self,
        name: impl Into<String>,
        elem_bytes: usize,
        len: usize,
    ) -> RegionId {
        self.alloc(name, elem_bytes, vec![0.0; len])
    }

    /// Borrow a region.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0]
    }

    /// Mutably borrow a region.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id.0]
    }

    /// Number of regions.
    #[must_use]
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total DRAM rows allocated.
    #[must_use]
    pub fn rows_used(&self) -> u32 {
        self.next_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_row_aligned() {
        let mut m = BankMemory::new(1024);
        let a = m.alloc("a", 8, vec![1.0; 10]); // 80 B -> 1 row
        let b = m.alloc("b", 8, vec![2.0; 200]); // 1600 B -> 2 rows
        let c = m.alloc_zeroed("c", 1, 3000); // 3000 B -> 3 rows
        assert_eq!(m.region(a).start_row(), 0);
        assert_eq!(m.region(b).start_row(), 1);
        assert_eq!(m.region(c).start_row(), 3);
        assert_eq!(m.rows_used(), 6);
        assert_eq!(m.num_regions(), 3);
    }

    #[test]
    fn row_of_tracks_offsets() {
        let mut m = BankMemory::new(1024);
        let id = m.alloc("mat", 8, vec![0.0; 300]);
        let r = m.region(id);
        assert_eq!(r.row_of(0, 1024), 0);
        assert_eq!(r.row_of(127, 1024), 0);
        assert_eq!(r.row_of(128, 1024), 1);
        assert_eq!(r.row_of(299, 1024), 2);
        assert_eq!(r.rows_spanned(1024), 3);
    }

    #[test]
    fn get_set_bounds_behaviour() {
        let mut m = BankMemory::new(64);
        let id = m.alloc("v", 8, vec![1.0, 2.0]);
        assert_eq!(m.region(id).get(1), 2.0);
        assert_eq!(m.region(id).get(99), 0.0);
        m.region_mut(id).set(0, 7.0);
        m.region_mut(id).set(99, 9.0); // dropped
        assert_eq!(m.region(id).get(0), 7.0);
        assert_eq!(m.region(id).len(), 2);
    }

    #[test]
    fn empty_region_spans_one_row() {
        let mut m = BankMemory::new(1024);
        let id = m.alloc("e", 8, vec![]);
        assert!(m.region(id).is_empty());
        assert_eq!(m.region(id).rows_spanned(1024), 1);
    }
}
