//! Execution statistics.

use serde::{Deserialize, Serialize};

/// Per-processing-unit counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PuStats {
    /// Instructions retired (including control).
    pub instructions: u64,
    /// Memory instructions executed (commands consumed productively).
    pub mem_ops: u64,
    /// Commands received while predicated off / out of phase / exited.
    pub predicated_off: u64,
    /// VALU lane-operations performed (one per element touched).
    pub lane_ops: u64,
    /// PU cycles spent busy.
    pub busy_cycles: u64,
    /// The round (loop iteration) in which this PU exited; `u64::MAX`
    /// while still running.
    pub exit_round: u64,
    /// `instructions` as sampled at the moment the PU exited — the
    /// validation layer checks that no instruction retires afterwards.
    pub instructions_at_exit: u64,
}

impl PuStats {
    /// Fresh counters.
    #[must_use]
    pub fn new() -> Self {
        PuStats {
            exit_round: u64::MAX,
            ..Default::default()
        }
    }

    /// Merge another PU's counters (for aggregate reporting; `exit_round`
    /// keeps the maximum, i.e. the last PU to finish). A still-running PU
    /// (`exit_round == u64::MAX`) dominates: the aggregate must not report
    /// a partially drained set of PUs as finished. Use
    /// [`PuStats::default`] (exit_round 0) as the merge identity, not
    /// [`PuStats::new`].
    pub fn merge(&mut self, other: &PuStats) {
        self.instructions += other.instructions;
        self.mem_ops += other.mem_ops;
        self.predicated_off += other.predicated_off;
        self.lane_ops += other.lane_ops;
        self.busy_cycles += other.busy_cycles;
        self.exit_round = self.exit_round.max(other.exit_round);
        self.instructions_at_exit += other.instructions_at_exit;
    }
}

/// Number of logarithmic buckets in a [`Histogram`] (one per power of
/// two of a `u64` value, plus the zero bucket folded into bucket 0).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Fixed-footprint log2-bucketed latency histogram.
///
/// Bucket `i` holds values `v` with `floor(log2(v)) == i` (zero lands in
/// bucket 0), so the whole `u64` range fits in 64 counters with ≤2×
/// relative quantile error — plenty for p50/p95/p99 service reporting,
/// and merging two histograms is exact (bucket-wise add). Used by the
/// `psim-sched` service-stats layer and the bench report binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Counts per log2 bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values (for exact means).
    pub sum: u64,
    /// Smallest value recorded (`u64::MAX` when empty).
    pub min: u64,
    /// Largest value recorded.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value.
    #[must_use]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration in seconds at nanosecond resolution.
    pub fn record_seconds(&mut self, seconds: f64) {
        let ns = if seconds <= 0.0 {
            0.0
        } else {
            (seconds * 1e9).round()
        };
        self.record(if ns >= u64::MAX as f64 {
            u64::MAX
        } else {
            ns as u64
        });
    }

    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) with linear interpolation
    /// inside the winning bucket, clamped to the observed min/max.
    ///
    /// Contract at the edges: an **empty** histogram returns 0 for every
    /// `q` (there is no observation to report, and 0 keeps downstream
    /// arithmetic total); `q = 0.0` returns the recorded minimum and
    /// `q = 1.0` the recorded maximum exactly, never an interpolated
    /// value from inside their log2 buckets. `q` outside `0.0..=1.0`
    /// (including NaN) is clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // `f64::clamp` propagates NaN, which would otherwise fall through
        // both edge checks below and interpolate with a garbage rank.
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q <= 0.0 {
            // The 0-quantile is the smallest observation by definition;
            // interpolating inside the min's bucket would overshoot it.
            return self.min;
        }
        if q >= 1.0 {
            // Symmetric edge: the 1-quantile is the largest observation.
            // Interpolating inside the max's bucket lands on the bucket's
            // upper bound, which only coincides with the max by clamping;
            // return it directly so the contract holds by construction.
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let into = (rank - seen) as f64 / c as f64;
                let v = lo as f64 + into * (hi - lo) as f64;
                return (v as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the soak-bench tail. Below 1000 observations
    /// the rank rounds up to the maximum, which is the honest answer for
    /// a tail that hasn't been sampled yet.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another histogram (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_unset_exit() {
        assert_eq!(PuStats::new().exit_round, u64::MAX);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = PuStats {
            instructions: 5,
            exit_round: 3,
            ..Default::default()
        };
        let b = PuStats {
            instructions: 7,
            exit_round: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 12);
        assert_eq!(a.exit_round, 9);
        // Default (exit_round 0) is the merge identity.
        let mut c = PuStats::default();
        c.merge(&a);
        assert_eq!(c.exit_round, 9);
    }

    #[test]
    fn merge_running_pu_dominates_finished() {
        // Regression: merging a still-running PU (exit_round == u64::MAX)
        // with a finished one used to report the aggregate as finished, so
        // a partially drained channel looked complete in reports.
        let finished = PuStats {
            exit_round: 9,
            ..Default::default()
        };
        let mut agg = PuStats::new(); // still running
        agg.merge(&finished);
        assert_eq!(agg.exit_round, u64::MAX, "running must dominate");
        let mut agg = finished;
        agg.merge(&PuStats::new());
        assert_eq!(agg.exit_round, u64::MAX, "order must not matter");
    }

    #[test]
    fn quantile_zero_returns_min() {
        // Regression: interpolation inside the minimum's log2 bucket used
        // to return a value above the observed minimum at q = 0.
        let mut h = Histogram::new();
        h.record(512);
        h.record(600);
        assert_eq!(h.quantile(0.0), 512);
        assert_eq!(h.quantile(1.0), 600);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn histogram_records_and_bounds_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Log buckets bound quantiles within a factor of two.
        let p50 = h.p50();
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((495..=1000).contains(&p99), "p99 = {p99}");
        // Quantiles are monotone in q and clamped to observed extremes.
        assert!(h.quantile(0.0) >= h.min);
        assert!(h.quantile(1.0) <= h.max);
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
    }

    #[test]
    fn tail_quantiles_stay_accurate_at_p999() {
        // Heavy-tailed service shape: 100k fast observations, 100 slow,
        // 10 very slow. p999 (rank 99_911 of 100_110) must land in the
        // slow band — within the factor-of-two log2-bucket bound — and
        // never collapse to the fast mode or overshoot the max.
        let mut h = Histogram::new();
        for _ in 0..100_000 {
            h.record(100);
        }
        for _ in 0..100 {
            h.record(10_000);
        }
        for _ in 0..10 {
            h.record(500_000);
        }
        let (p99, p999) = (h.p99(), h.p999());
        assert!((100..=200).contains(&p99), "p99 = {p99} should be fast");
        assert!(
            (8_192..=16_383).contains(&p999),
            "p999 = {p999} must land in the slow band's bucket"
        );
        assert!(p999 <= h.quantile(0.9999));
        assert_eq!(h.quantile(1.0), 500_000);

        // Under 1000 samples the p999 rank rounds up to the max.
        let mut small = Histogram::new();
        for v in 1..=100u64 {
            small.record(v);
        }
        assert_eq!(small.p999(), 100);
    }

    #[test]
    fn quantile_edges_on_empty_single_and_saturated() {
        // Empty: every quantile is 0 by contract.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty at q={q}");
        }

        // Single sample: every quantile is that sample, even though its
        // log2 bucket (4..=7 for 5) spans other values.
        let mut single = Histogram::new();
        single.record(5);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(single.quantile(q), 5, "single at q={q}");
        }

        // Saturated bucket: many values in one bucket plus one outlier
        // above it. q=1.0 must report the true recorded max, not the
        // saturated bucket's upper bound.
        let mut sat = Histogram::new();
        for _ in 0..10_000 {
            sat.record(1000); // bucket 9 (512..=1023)
        }
        sat.record(1_000_000);
        assert_eq!(sat.quantile(0.0), 1000);
        assert_eq!(sat.quantile(0.5), 1000);
        assert_eq!(sat.quantile(1.0), 1_000_000);
        // NaN and out-of-range q are treated as clamped, not propagated.
        assert_eq!(sat.quantile(f64::NAN), sat.min);
        assert_eq!(sat.quantile(-3.0), sat.min);
        assert_eq!(sat.quantile(7.0), sat.max);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 17, 900, 0, 65_536] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 4096, 12] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn histogram_record_seconds_uses_nanos() {
        let mut h = Histogram::new();
        h.record_seconds(1.5e-6);
        assert_eq!(h.min, 1500);
        h.record_seconds(-4.0);
        assert_eq!(h.min, 0);
    }
}
