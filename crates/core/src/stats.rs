//! Execution statistics.

use serde::{Deserialize, Serialize};

/// Per-processing-unit counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PuStats {
    /// Instructions retired (including control).
    pub instructions: u64,
    /// Memory instructions executed (commands consumed productively).
    pub mem_ops: u64,
    /// Commands received while predicated off / out of phase / exited.
    pub predicated_off: u64,
    /// VALU lane-operations performed (one per element touched).
    pub lane_ops: u64,
    /// PU cycles spent busy.
    pub busy_cycles: u64,
    /// The round (loop iteration) in which this PU exited; `u64::MAX`
    /// while still running.
    pub exit_round: u64,
}

impl PuStats {
    /// Fresh counters.
    #[must_use]
    pub fn new() -> Self {
        PuStats {
            exit_round: u64::MAX,
            ..Default::default()
        }
    }

    /// Merge another PU's counters (for aggregate reporting; `exit_round`
    /// keeps the maximum, i.e. the last PU to finish).
    pub fn merge(&mut self, other: &PuStats) {
        self.instructions += other.instructions;
        self.mem_ops += other.mem_ops;
        self.predicated_off += other.predicated_off;
        self.lane_ops += other.lane_ops;
        self.busy_cycles += other.busy_cycles;
        self.exit_round = match (self.exit_round, other.exit_round) {
            (u64::MAX, r) | (r, u64::MAX) => r,
            (a, b) => a.max(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_unset_exit() {
        assert_eq!(PuStats::new().exit_round, u64::MAX);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = PuStats {
            instructions: 5,
            exit_round: 3,
            ..Default::default()
        };
        let b = PuStats {
            instructions: 7,
            exit_round: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 12);
        assert_eq!(a.exit_round, 9);
        let mut c = PuStats::new();
        c.merge(&a);
        assert_eq!(c.exit_round, 9);
    }
}
