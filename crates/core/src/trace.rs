//! psim-trace: per-PU cycle attribution and bounded stall-event streams.
//!
//! The paper's argument is a cycle-accounting one — predicated-off slots,
//! queue stalls, CEXIT rounds and row switching are what separate pSyncPIM
//! from fully synchronous PIM — so the engine can attribute **every** DRAM
//! command cycle of a channel's wall-clock to exactly one [`Category`],
//! per processing unit and for the shared command bus. Attribution is
//! conservative *by construction*: the channel replay advances a monotone
//! cursor per PU (and one for the bus) and classifies each advance as it
//! happens, so the categories of any PU sum to its channel's total cycles
//! with no residual. [`MetricsRegistry::conservation_failures`] audits the
//! invariant; the engine folds it into `RunReport::pu_audit` when both
//! `validate` and `attribute` are set.
//!
//! Alongside the counters, interesting stalls (queue-full, queue-empty)
//! are recorded as [`StallEvent`]s into a bounded buffer per channel —
//! the `trace_limit` idiom: up to `event_limit` events are kept and the
//! overflow is *counted* in `events_dropped`, never silently truncated.

use serde::{Deserialize, Serialize};

/// Number of attribution categories (length of a [`CycleBreakdown`]).
pub const NUM_CATEGORIES: usize = 10;

/// Where a DRAM command cycle went, from one PU's point of view (or the
/// shared command bus's — see each variant's note).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// The PU was retiring instructions / consuming a burst (bus: issuing
    /// column commands back-to-back).
    Busy,
    /// Waiting for the lockstep broadcast / shared command bus: the cycle
    /// was spent by a *slower* peer the bus had to wait for.
    LockstepWait,
    /// A command passed over the PU because its program counter was out of
    /// phase (the predicated execution of §IV-E).
    PredicatedOff,
    /// The PU's destination queue had no room, so the command's predicate
    /// failed and the burst was wasted on it.
    QueueFullStall,
    /// The PU consumed the command but its source stream/queue was empty
    /// (drained region, sentinel padding) — a no-op burst.
    QueueEmptyStall,
    /// The PU had taken CEXIT/EXIT and idled while the host kept driving
    /// the remaining units (§IV-D).
    PostExitIdle,
    /// Precharge/activate latency while switching rows.
    RowSwitchWait,
    /// All-bank refresh shadow (tRFC every tREFI).
    RefreshShadow,
    /// Mode switching and CRF programming (MRS streams at kernel entry and
    /// exit).
    Setup,
    /// Host completion-detection polls (one status read per iteration).
    HostSync,
}

impl Category {
    /// Every category, in [`CycleBreakdown`] index order.
    pub const ALL: [Category; NUM_CATEGORIES] = [
        Category::Busy,
        Category::LockstepWait,
        Category::PredicatedOff,
        Category::QueueFullStall,
        Category::QueueEmptyStall,
        Category::PostExitIdle,
        Category::RowSwitchWait,
        Category::RefreshShadow,
        Category::Setup,
        Category::HostSync,
    ];

    /// Short column label for reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Category::Busy => "busy",
            Category::LockstepWait => "lockstep",
            Category::PredicatedOff => "pred_off",
            Category::QueueFullStall => "q_full",
            Category::QueueEmptyStall => "q_empty",
            Category::PostExitIdle => "post_exit",
            Category::RowSwitchWait => "row_sw",
            Category::RefreshShadow => "refresh",
            Category::Setup => "setup",
            Category::HostSync => "host_sync",
        }
    }
}

/// A per-PU (or per-bus) cycle-attribution vector: DRAM command cycles by
/// [`Category`], indexed in [`Category::ALL`] order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycle count per category.
    pub cycles: [u64; NUM_CATEGORIES],
}

impl CycleBreakdown {
    /// Add `delta` cycles to a category.
    pub fn add(&mut self, cat: Category, delta: u64) {
        self.cycles[cat as usize] += delta;
    }

    /// Cycles attributed to a category.
    #[must_use]
    pub fn get(&self, cat: Category) -> u64 {
        self.cycles[cat as usize]
    }

    /// Total attributed cycles — equals the channel wall-clock when the
    /// conservation invariant holds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Element-wise accumulate another breakdown.
    pub fn add_all(&mut self, other: &CycleBreakdown) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += *b;
        }
    }

    /// Fraction of the total spent in a category (0 when empty).
    #[must_use]
    pub fn fraction(&self, cat: Category) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.get(cat) as f64 / t as f64
    }
}

/// One recorded stall: a command a PU could not make productive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallEvent {
    /// Pseudo-channel of the stalling PU.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Kernel loop iteration when the stall happened.
    pub round: u64,
    /// Program slot the command served.
    pub slot: usize,
    /// Issue cycle of the stalled command (channel-local clock).
    pub cycle: u64,
    /// What kind of stall ([`Category::QueueFullStall`] or
    /// [`Category::QueueEmptyStall`]).
    pub kind: Category,
}

/// One channel's attribution: the shared bus view plus one vector per PU.
/// Conservation invariant: `bus.total() == cycles` and every
/// `pu[i].total() == cycles`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMetrics {
    /// Channel wall-clock in DRAM command cycles (summed over phases when
    /// registries are absorbed).
    pub cycles: u64,
    /// Bus-timeline attribution (what the shared command bus was doing).
    pub bus: CycleBreakdown,
    /// Per-PU attribution, bank order within the channel.
    pub pu: Vec<CycleBreakdown>,
}

impl ChannelMetrics {
    /// Element-wise accumulate another channel's metrics (sequential
    /// phases over the same hardware). Panics if the PU counts differ —
    /// callers check topology first via [`MetricsRegistry::absorb`].
    fn add_all(&mut self, other: &ChannelMetrics) {
        assert_eq!(self.pu.len(), other.pu.len(), "channel topology mismatch");
        self.cycles += other.cycles;
        self.bus.add_all(&other.bus);
        for (a, b) in self.pu.iter_mut().zip(other.pu.iter()) {
            a.add_all(b);
        }
    }
}

/// The run-level attribution registry: per-channel metrics plus the
/// bounded stall-event stream, serialized into `RunReport` (and from
/// there into `results/BENCH_trace.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Per-channel attribution, channel order.
    pub channels: Vec<ChannelMetrics>,
    /// Recorded stall events (bounded by `event_limit`).
    pub events: Vec<StallEvent>,
    /// Stalls not recorded because the buffer was full — counted, never
    /// silently truncated.
    pub events_dropped: u64,
    /// Capacity of the event buffer.
    pub event_limit: usize,
}

impl MetricsRegistry {
    /// An empty registry with the given event capacity.
    #[must_use]
    pub fn new(event_limit: usize) -> Self {
        MetricsRegistry {
            channels: Vec::new(),
            events: Vec::new(),
            events_dropped: 0,
            event_limit,
        }
    }

    /// Append one channel's outcome (engine merge path, channel order).
    pub fn push_channel(&mut self, metrics: ChannelMetrics, events: Vec<StallEvent>, dropped: u64) {
        self.channels.push(metrics);
        self.extend_events(events, dropped);
    }

    /// The run's wall-clock attribution: the bus breakdown of the slowest
    /// channel (first one on ties) — its total equals the run's
    /// `dram_cycles`. Meaningful on a single-run registry; kernels
    /// accumulate it phase by phase.
    #[must_use]
    pub fn wall(&self) -> CycleBreakdown {
        self.channels
            .iter()
            .max_by_key(|c| c.cycles)
            .map(|c| c.bus)
            .unwrap_or_default()
    }

    /// Sum of every PU's attribution across all channels.
    #[must_use]
    pub fn aggregate_pu(&self) -> CycleBreakdown {
        let mut out = CycleBreakdown::default();
        for ch in &self.channels {
            for pu in &ch.pu {
                out.add_all(pu);
            }
        }
        out
    }

    /// Audit the conservation invariant: for every channel, the bus
    /// breakdown and each PU's breakdown must sum exactly to that
    /// channel's cycles. Returns one message per failure (empty = clean).
    #[must_use]
    pub fn conservation_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for (ch, m) in self.channels.iter().enumerate() {
            if m.bus.total() != m.cycles {
                failures.push(format!(
                    "channel {ch}: bus attribution {} != cycles {}",
                    m.bus.total(),
                    m.cycles
                ));
            }
            for (b, pu) in m.pu.iter().enumerate() {
                if pu.total() != m.cycles {
                    failures.push(format!(
                        "channel {ch} PU {b}: attribution {} != cycles {}",
                        pu.total(),
                        m.cycles
                    ));
                }
            }
        }
        failures
    }

    /// Merge another registry. Same topology (channel and PU counts match)
    /// accumulates element-wise — sequential phases over the same device,
    /// preserving per-channel conservation. Different topology appends the
    /// other registry's channels (different hardware, e.g. another cube).
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        let same_shape = self.channels.len() == other.channels.len()
            && self
                .channels
                .iter()
                .zip(other.channels.iter())
                .all(|(a, b)| a.pu.len() == b.pu.len());
        if same_shape && !self.channels.is_empty() {
            for (a, b) in self.channels.iter_mut().zip(other.channels.iter()) {
                a.add_all(b);
            }
        } else {
            self.channels.extend(other.channels.iter().cloned());
        }
        self.extend_events(other.events.clone(), other.events_dropped);
    }

    fn extend_events(&mut self, events: Vec<StallEvent>, dropped: u64) {
        self.events_dropped += dropped;
        for ev in events {
            if self.events.len() < self.event_limit {
                self.events.push(ev);
            } else {
                self.events_dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = CycleBreakdown::default();
        b.add(Category::Busy, 10);
        b.add(Category::RefreshShadow, 5);
        b.add(Category::Busy, 2);
        assert_eq!(b.get(Category::Busy), 12);
        assert_eq!(b.total(), 17);
        let mut c = b;
        c.add_all(&b);
        assert_eq!(c.total(), 34);
        assert!((b.fraction(Category::RefreshShadow) - 5.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_audit_flags_residuals() {
        let mut reg = MetricsRegistry::new(16);
        let mut bus = CycleBreakdown::default();
        bus.add(Category::Busy, 100);
        let mut pu = CycleBreakdown::default();
        pu.add(Category::Busy, 60);
        pu.add(Category::PostExitIdle, 40);
        reg.push_channel(
            ChannelMetrics {
                cycles: 100,
                bus,
                pu: vec![pu, pu],
            },
            Vec::new(),
            0,
        );
        assert!(reg.conservation_failures().is_empty());
        reg.channels[0].pu[1].add(Category::Busy, 1);
        let fails = reg.conservation_failures();
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("PU 1"));
    }

    #[test]
    fn absorb_same_shape_adds_and_preserves_conservation() {
        let mk = |cycles: u64| {
            let mut bus = CycleBreakdown::default();
            bus.add(Category::Busy, cycles);
            let mut pu = CycleBreakdown::default();
            pu.add(Category::LockstepWait, cycles);
            let mut reg = MetricsRegistry::new(4);
            reg.push_channel(
                ChannelMetrics {
                    cycles,
                    bus,
                    pu: vec![pu],
                },
                Vec::new(),
                0,
            );
            reg
        };
        let mut a = mk(10);
        a.absorb(&mk(7));
        assert_eq!(a.channels.len(), 1);
        assert_eq!(a.channels[0].cycles, 17);
        assert!(a.conservation_failures().is_empty());
        // Different shape appends instead.
        let mut b = mk(3);
        b.channels[0].pu.push(CycleBreakdown::default());
        a.absorb(&b);
        assert_eq!(a.channels.len(), 2);
    }

    #[test]
    fn event_buffer_counts_overflow() {
        let ev = |i: u64| StallEvent {
            channel: 0,
            bank: 0,
            round: i,
            slot: 0,
            cycle: i,
            kind: Category::QueueFullStall,
        };
        let mut reg = MetricsRegistry::new(2);
        reg.push_channel(ChannelMetrics::default(), vec![ev(0), ev(1), ev(2)], 5);
        assert_eq!(reg.events.len(), 2);
        assert_eq!(reg.events_dropped, 6);
    }

    #[test]
    fn wall_is_the_slowest_channels_bus_view() {
        let mut reg = MetricsRegistry::new(4);
        for cycles in [5u64, 9, 7] {
            let mut bus = CycleBreakdown::default();
            bus.add(Category::Busy, cycles);
            reg.push_channel(
                ChannelMetrics {
                    cycles,
                    bus,
                    pu: Vec::new(),
                },
                Vec::new(),
                0,
            );
        }
        assert_eq!(reg.wall().total(), 9);
    }
}
