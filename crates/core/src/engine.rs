//! The partially synchronous execution engine.
//!
//! The engine couples the DRAM channel timing model with the processing
//! units. In **all-bank** mode (the pSyncPIM contribution) the host derives
//! a per-iteration command schedule from the kernel program and replays it:
//! every column command is broadcast to all banks of a pseudo-channel and
//! offered to every PU; row activations are shared ("reads and writes on
//! rows of all banks are synchronized", §I); the next command may not issue
//! until the slowest busy PU has drained (lockstep back-pressure); the loop
//! repeats until every PU has exited (CEXIT). In **per-bank** mode each
//! bank receives its own command stream through the shared, 2-command-per-
//! cycle channel bus — the baseline of Figures 3 and 8.
//!
//! Channels execute independently; the cube's wall-clock is the slowest
//! channel. Modeling notes (see DESIGN.md §8): the engine tracks open rows
//! with its own non-stalling cursor per program slot (banks that predicate
//! off catch up within later iterations of the same rows), and host
//! completion detection is modeled as one MRS status poll per iteration.

use crate::error::CoreError;
use crate::isa::Program;
use crate::memory::{BankMemory, Binding};
use crate::pu::{ProcessingUnit, DRAM_CYCLES_PER_PU_CYCLE};
use crate::stats::PuStats;
use psim_dram::{Channel, ChannelStats, CmdKind, EnergyModel, EnergyStats, HbmConfig, IssueError, Scope};
use serde::{Deserialize, Serialize};

/// All-bank (pSyncPIM) vs per-bank (PB baseline) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// One command drives every bank in a channel (AB-PIM).
    AllBank,
    /// Each bank is driven individually over the shared command bus.
    PerBank,
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Memory organization and timing.
    pub hbm: HbmConfig,
    /// Execution mode.
    pub mode: ExecMode,
    /// Energy model for the report.
    pub energy: EnergyModel,
    /// Safety bound on kernel loop iterations per channel.
    pub max_rounds: u64,
    /// Record every issued DRAM command into [`RunReport::trace`]
    /// (debug/visualization; memory-hungry on long kernels).
    pub record_trace: bool,
    /// Model periodic refresh (all-bank mode): every tREFI the engine
    /// precharges, issues an all-bank REF and reopens lazily — the
    /// bandwidth tax real DRAM pays. Off by default (kernel windows
    /// between refreshes, as DRAMsim3-based studies commonly evaluate).
    pub refresh: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            hbm: HbmConfig::default(),
            mode: ExecMode::AllBank,
            energy: EnergyModel::default(),
            max_rounds: 50_000_000,
            record_trace: false,
            refresh: false,
        }
    }
}

/// One issued DRAM command, as recorded when
/// [`EngineConfig::record_trace`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Pseudo-channel the command went to.
    pub channel: usize,
    /// Issue cycle (channel-local DRAM command clock).
    pub cycle: u64,
    /// Command scope.
    pub scope: Scope,
    /// The command.
    pub cmd: CmdKind,
}

/// Issue a command, optionally recording it.
fn issue_traced(
    channel: &mut Channel,
    trace: &mut Option<Vec<TraceEvent>>,
    ch: usize,
    scope: Scope,
    cmd: CmdKind,
    from: u64,
) -> Result<psim_dram::Issued, IssueError> {
    let issued = channel.issue_earliest(scope, cmd, from)?;
    if let Some(events) = trace {
        events.push(TraceEvent {
            channel: ch,
            cycle: issued.issue_cycle,
            scope,
            cmd,
        });
    }
    Ok(issued)
}

/// Result of one kernel execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall-clock in DRAM command cycles (max over channels).
    pub dram_cycles: u64,
    /// Wall-clock in seconds.
    pub seconds: f64,
    /// Command counters summed over channels.
    pub commands: ChannelStats,
    /// Kernel loop iterations of the slowest channel.
    pub rounds: u64,
    /// Merged PU counters (exit_round keeps the last PU to finish).
    pub pu: PuStats,
    /// Energy accounting.
    pub energy: EnergyStats,
    /// Per-channel cycle counts.
    pub per_channel_cycles: Vec<u64>,
    /// Number of PUs that performed at least one productive memory op.
    pub active_pus: usize,
    /// Issued-command trace (empty unless [`EngineConfig::record_trace`]).
    pub trace: Vec<TraceEvent>,
}

impl RunReport {
    /// Data actually moved through the banks, in bytes (bursts × burst
    /// size).
    #[must_use]
    pub fn data_bytes(&self, cfg: &HbmConfig) -> u64 {
        self.commands.bank_bursts * cfg.burst_bytes as u64
    }

    /// Achieved internal bandwidth in bytes/second.
    #[must_use]
    pub fn achieved_bandwidth(&self, cfg: &HbmConfig) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.data_bytes(cfg) as f64 / self.seconds
    }

    /// Fraction of the cube's internal bandwidth actually used — the
    /// lockstep/row-thrash efficiency the paper's design trades for JEDEC
    /// compatibility.
    #[must_use]
    pub fn internal_utilization(&self, cfg: &HbmConfig) -> f64 {
        self.achieved_bandwidth(cfg) / cfg.internal_bw
    }
}

/// The pSyncPIM cube: processing units + bank memories + channel models.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: EngineConfig,
    mems: Vec<BankMemory>,
    pus: Vec<ProcessingUnit>,
    program: Option<Program>,
    bindings: Vec<Option<Binding>>,
}

impl Engine {
    /// Build a cube for the configuration.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let banks = cfg.hbm.total_banks();
        let row_bytes = cfg.hbm.row_bytes();
        Engine {
            mems: (0..banks).map(|_| BankMemory::new(row_bytes)).collect(),
            pus: (0..banks).map(|_| ProcessingUnit::new()).collect(),
            program: None,
            bindings: Vec::new(),
            cfg,
        }
    }

    /// Total banks (= PUs).
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.mems.len()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// A bank's memory.
    #[must_use]
    pub fn mem(&self, bank: usize) -> &BankMemory {
        &self.mems[bank]
    }

    /// A bank's memory, mutably (host-side data placement).
    pub fn mem_mut(&mut self, bank: usize) -> &mut BankMemory {
        &mut self.mems[bank]
    }

    /// A bank's processing unit.
    #[must_use]
    pub fn pu(&self, bank: usize) -> &ProcessingUnit {
        &self.pus[bank]
    }

    /// A bank's processing unit, mutably.
    pub fn pu_mut(&mut self, bank: usize) -> &mut ProcessingUnit {
        &mut self.pus[bank]
    }

    /// Program the same kernel into every PU. Region ids are per-bank, so
    /// every bank must have allocated its regions in the same order (the
    /// paper's equal-rows-per-bank layout).
    ///
    /// # Errors
    ///
    /// Propagates binding validation failures.
    pub fn load_kernel<B: Into<Binding>>(
        &mut self,
        program: Program,
        bindings: Vec<Option<B>>,
    ) -> Result<(), CoreError> {
        let bindings: Vec<Option<Binding>> =
            bindings.into_iter().map(|o| o.map(Into::into)).collect();
        for pu in &mut self.pus {
            pu.load_kernel(program.clone(), bindings.clone())?;
        }
        self.program = Some(program);
        self.bindings = bindings;
        Ok(())
    }

    /// Seed every PU's scalar register (e.g. α for AXPY).
    pub fn set_srf_all(&mut self, v: f64) {
        for pu in &mut self.pus {
            pu.set_srf(v);
        }
    }

    /// Execute the loaded kernel to completion.
    ///
    /// # Errors
    ///
    /// [`CoreError::Execution`] if no kernel is loaded or the round bound
    /// is exceeded (kernel never exits).
    pub fn run(&mut self) -> Result<RunReport, CoreError> {
        let program = self
            .program
            .clone()
            .ok_or_else(|| CoreError::Execution("no kernel loaded".to_string()))?;
        let schedule = program.command_schedule()?;
        let banks_per_channel = self.cfg.hbm.banks_per_channel();
        let channels = self.cfg.hbm.num_pseudo_channels;

        let mut per_channel_cycles = Vec::with_capacity(channels);
        let mut commands = ChannelStats::default();
        let mut max_rounds_seen = 0u64;
        let mut trace: Vec<TraceEvent> = Vec::new();

        for ch in 0..channels {
            let lo = ch * banks_per_channel;
            let hi = lo + banks_per_channel;
            let (cycles, stats, rounds, ch_trace) = match self.cfg.mode {
                ExecMode::AllBank => self.run_channel_allbank(&program, &schedule, ch, lo, hi)?,
                ExecMode::PerBank => self.run_channel_perbank(&program, &schedule, ch, lo, hi)?,
            };
            per_channel_cycles.push(cycles);
            commands.merge(&stats);
            max_rounds_seen = max_rounds_seen.max(rounds);
            if let Some(mut t) = ch_trace {
                trace.append(&mut t);
            }
        }

        let dram_cycles = per_channel_cycles.iter().copied().max().unwrap_or(0);
        let seconds = dram_cycles as f64 * self.cfg.hbm.cycle_seconds();

        let mut pu_stats = PuStats::new();
        let mut active_pus = 0usize;
        let mut lane_op_energy = 0.0;
        for pu in &self.pus {
            let s = pu.stats();
            if s.mem_ops > 0 {
                active_pus += 1;
            }
            lane_op_energy += self.cfg.energy.pu_op_energy_pj(8, s.lane_ops);
            pu_stats.merge(s);
        }

        let mut energy = EnergyStats::default();
        energy.dram_pj = self.cfg.energy.dram_energy_pj(&commands, 0);
        energy.pu_pj = lane_op_energy;
        energy.background_pj = self.cfg.energy.background_pj(seconds, active_pus);

        Ok(RunReport {
            dram_cycles,
            seconds,
            commands,
            rounds: max_rounds_seen,
            pu: pu_stats,
            energy,
            per_channel_cycles,
            active_pus,
            trace,
        })
    }

    /// Element width/advance for the engine's open-row cursor at a slot.
    fn slot_advance(ins: &crate::isa::Instruction) -> (usize, usize) {
        use crate::isa::{Instruction as I, Operand};
        match *ins {
            I::Dmov {
                dst: Operand::Srf, ..
            }
            | I::Dmov {
                src: Operand::Srf, ..
            } => (8, 1),
            I::Dmov { precision, .. } | I::SpMov { precision, .. } => {
                (precision.bytes(), precision.lanes())
            }
            I::GthSct {
                dst: Operand::Bank,
                ..
            } => (8, 0), // scatter is random within the open row
            I::GthSct { precision, .. } => (precision.bytes(), precision.lanes()),
            I::SpFw { precision, .. } => (precision.bytes(), 3 * precision.lanes()),
            // Gathers/accumulates address randomly within their (single-row)
            // region; the cursor stays at the region head.
            I::IndMov { .. } | I::SpVdv { .. } => (8, 0),
            _ => (8, 0),
        }
    }

    #[allow(clippy::type_complexity)]
    fn run_channel_allbank(
        &mut self,
        program: &Program,
        schedule: &[usize],
        ch: usize,
        lo: usize,
        hi: usize,
    ) -> Result<(u64, ChannelStats, u64, Option<Vec<TraceEvent>>), CoreError> {
        let mut channel = Channel::new(&self.cfg.hbm);
        let mut trace: Option<Vec<TraceEvent>> = self.cfg.record_trace.then(Vec::new);
        let row_bytes = self.cfg.hbm.row_bytes();
        let col_bytes = self.cfg.hbm.col_bytes;
        let mut now: u64 = 0;

        // Mode switching (SB→AB→AB-PIM) + CRF programming as MRS commands.
        let setup_cmds = 2 * psim_dram::mode::SWITCH_SEQUENCE_LEN + program.len();
        for _ in 0..setup_cmds {
            now = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, CmdKind::Mrs, now)
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
        }

        for b in lo..hi {
            self.pus[b].run_free(&mut self.mems[b]);
        }

        let t_refi = self.cfg.hbm.timing.t_refi;
        let mut next_refresh = now + t_refi;
        let mut cursors: Vec<usize> = (0..program.len())
            .map(|slot| self.bindings.get(slot).copied().flatten().map_or(0, |b| b.offset))
            .collect();
        let mut open_row: Option<u32> = None;
        let mut rounds = 0u64;
        // Read-latency depth the command pipeline hides: PU consumption of
        // burst k overlaps issue of burst k+1.
        let pipeline = self.cfg.hbm.timing.rl + 1;
        let mut pu_free: u64 = 0;

        'outer: loop {
            if (lo..hi).all(|b| self.pus[b].exited()) {
                break;
            }
            rounds += 1;
            if rounds > self.cfg.max_rounds {
                return Err(CoreError::Execution(format!(
                    "kernel exceeded {} rounds without exiting",
                    self.cfg.max_rounds
                )));
            }
            for &slot in schedule {
                if self.cfg.refresh && now >= next_refresh {
                    if open_row.is_some() {
                        now = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, CmdKind::Pre, now)
                            .map_err(|e| CoreError::Execution(e.to_string()))?
                            .issue_cycle;
                        open_row = None;
                    }
                    now = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, CmdKind::Ref, now)
                        .map_err(|e| CoreError::Execution(e.to_string()))?
                        .issue_cycle;
                    next_refresh = now + t_refi;
                }
                let ins = &program[slot];
                let binding = self.bindings[slot].expect("validated at load");
                let region_id = binding.region;
                let (elem_bytes, natural) = Self::slot_advance(ins);
                let advance = binding.stride.unwrap_or(natural);
                // Engine-side open-row bookkeeping uses bank `lo`'s layout;
                // all banks allocate regions identically (equal rows/bank).
                let region = self.mems[lo].region(region_id);
                let byte_off = cursors[slot] * elem_bytes;
                let want_row = region.start_row() + (byte_off / row_bytes) as u32;
                if open_row != Some(want_row) {
                    if open_row.is_some() {
                        now = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, CmdKind::Pre, now)
                            .map_err(|e| CoreError::Execution(e.to_string()))?
                            .issue_cycle;
                    }
                    now = issue_traced(
                        &mut channel,
                        &mut trace,
                        ch,
                        Scope::AllBanks,
                        CmdKind::Act { row: want_row },
                        now,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                    open_row = Some(want_row);
                }
                let col = ((byte_off % row_bytes) / col_bytes) as u32;
                let kind = if ins.writes_bank() {
                    CmdKind::Wr { col }
                } else {
                    CmdKind::Rd { col }
                };
                let issued = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, kind, now)
                    .map_err(|e| CoreError::Execution(e.to_string()))?;
                now = issued.issue_cycle;

                let mut max_busy = 0u64;
                for b in lo..hi {
                    let was_exited = self.pus[b].exited();
                    let rep = self.pus[b].on_command(slot, &mut self.mems[b]);
                    max_busy = max_busy.max(rep.pu_cycles);
                    if !was_exited && self.pus[b].exited() {
                        self.pus[b].mark_exit_round(rounds);
                    }
                }
                // Lockstep back-pressure with pipelining: the slowest PU
                // consumes burst k while burst k+1 is in flight; only a PU
                // that falls behind the read latency stalls the bus.
                pu_free = pu_free.max(issued.data_cycle) + max_busy * DRAM_CYCLES_PER_PU_CYCLE;
                now = now.max(pu_free.saturating_sub(pipeline));
                cursors[slot] += advance;

                if (lo..hi).all(|b| self.pus[b].exited()) {
                    break 'outer;
                }
            }
            // Host completion poll (one MRS status read per iteration).
            now = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, CmdKind::Mrs, now)
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
        }
        if open_row.is_some() {
            now = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, CmdKind::Pre, now)
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
        }
        // Switch back to SB mode.
        for _ in 0..2 * psim_dram::mode::SWITCH_SEQUENCE_LEN {
            now = issue_traced(&mut channel, &mut trace, ch, Scope::AllBanks, CmdKind::Mrs, now)
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
        }
        Ok((now, *channel.stats(), rounds, trace))
    }

    #[allow(clippy::type_complexity)]
    fn run_channel_perbank(
        &mut self,
        program: &Program,
        schedule: &[usize],
        ch: usize,
        lo: usize,
        hi: usize,
    ) -> Result<(u64, ChannelStats, u64, Option<Vec<TraceEvent>>), CoreError> {
        let mut channel = Channel::new(&self.cfg.hbm);
        let mut trace: Option<Vec<TraceEvent>> = self.cfg.record_trace.then(Vec::new);
        let row_bytes = self.cfg.hbm.row_bytes();
        let col_bytes = self.cfg.hbm.col_bytes;
        let nbanks = hi - lo;
        let banks_per_group = self.cfg.hbm.banks_per_group;

        // Per-bank setup: each bank's CRF is programmed individually.
        let mut now: u64 = 0;
        let setup_cmds = (2 * psim_dram::mode::SWITCH_SEQUENCE_LEN + program.len()) * nbanks;
        for i in 0..setup_cmds {
            let b = i % nbanks;
            let scope = Scope::OneBank {
                bg: b / banks_per_group,
                ba: b % banks_per_group,
            };
            now = issue_traced(&mut channel, &mut trace, ch, scope, CmdKind::Mrs, now)
                .map_err(|e| CoreError::Execution(e.to_string()))?
                .issue_cycle;
        }

        struct BankCtl {
            sched_idx: usize,
            rounds: u64,
            cursors: Vec<usize>,
            open_row: Option<u32>,
            ready: u64,
            pu_free: u64,
        }
        let init_cursors: Vec<usize> = (0..program.len())
            .map(|slot| self.bindings.get(slot).copied().flatten().map_or(0, |b| b.offset))
            .collect();
        let pipeline = self.cfg.hbm.timing.rl + 1;
        let mut ctls: Vec<BankCtl> = (0..nbanks)
            .map(|_| BankCtl {
                sched_idx: 0,
                rounds: 0,
                cursors: init_cursors.clone(),
                open_row: None,
                ready: now,
                pu_free: 0,
            })
            .collect();
        for b in lo..hi {
            self.pus[b].run_free(&mut self.mems[b]);
        }

        let mut floor = now;
        let mut max_rounds = 0u64;
        loop {
            let mut any_active = false;
            for i in 0..nbanks {
                let bank = lo + i;
                if self.pus[bank].exited() {
                    continue;
                }
                any_active = true;
                let ctl = &mut ctls[i];
                if ctl.rounds > self.cfg.max_rounds {
                    return Err(CoreError::Execution(format!(
                        "per-bank kernel exceeded {} rounds",
                        self.cfg.max_rounds
                    )));
                }
                let slot = schedule[ctl.sched_idx];
                let ins = &program[slot];
                let binding = self.bindings[slot].expect("validated at load");
                let region_id = binding.region;
                let (elem_bytes, natural) = Self::slot_advance(ins);
                let advance = binding.stride.unwrap_or(natural);
                let region = self.mems[bank].region(region_id);
                let byte_off = ctl.cursors[slot] * elem_bytes;
                let want_row = region.start_row() + (byte_off / row_bytes) as u32;
                let scope = Scope::OneBank {
                    bg: i / banks_per_group,
                    ba: i % banks_per_group,
                };
                let mut t = ctl.ready.max(floor);
                if ctl.open_row != Some(want_row) {
                    if ctl.open_row.is_some() {
                        t = issue_traced(&mut channel, &mut trace, ch, scope, CmdKind::Pre, t)
                            .map_err(|e| CoreError::Execution(e.to_string()))?
                            .issue_cycle;
                    }
                    t = issue_traced(
                        &mut channel,
                        &mut trace,
                        ch,
                        scope,
                        CmdKind::Act { row: want_row },
                        t,
                    )
                    .map_err(|e| CoreError::Execution(e.to_string()))?
                    .issue_cycle;
                    ctl.open_row = Some(want_row);
                }
                let col = ((byte_off % row_bytes) / col_bytes) as u32;
                let kind = if ins.writes_bank() {
                    CmdKind::Wr { col }
                } else {
                    CmdKind::Rd { col }
                };
                let issued = issue_traced(&mut channel, &mut trace, ch, scope, kind, t)
                    .map_err(|e| CoreError::Execution(e.to_string()))?;
                floor = floor.max(issued.issue_cycle);

                let rep = self.pus[bank].on_command(slot, &mut self.mems[bank]);
                ctl.pu_free =
                    ctl.pu_free.max(issued.data_cycle) + rep.pu_cycles * DRAM_CYCLES_PER_PU_CYCLE;
                ctl.ready = issued
                    .issue_cycle
                    .max(ctl.pu_free.saturating_sub(pipeline));
                ctl.cursors[slot] += advance;
                ctl.sched_idx += 1;
                if ctl.sched_idx == schedule.len() {
                    ctl.sched_idx = 0;
                    ctl.rounds += 1;
                    max_rounds = max_rounds.max(ctl.rounds);
                }
                if self.pus[bank].exited() {
                    self.pus[bank].mark_exit_round(ctl.rounds);
                }
            }
            if !any_active {
                break;
            }
        }
        let end = ctls.iter().map(|c| c.ready).max().unwrap_or(floor).max(floor);
        Ok((end, *channel.stats(), max_rounds, trace))
    }
}

#[cfg(test)]
mod tests;
