//! The partially synchronous execution engine.
//!
//! The engine couples the DRAM channel timing model with the processing
//! units. In **all-bank** mode (the pSyncPIM contribution) the host derives
//! a per-iteration command schedule from the kernel program and replays it:
//! every column command is broadcast to all banks of a pseudo-channel and
//! offered to every PU; row activations are shared ("reads and writes on
//! rows of all banks are synchronized", §I); the next command may not issue
//! until the slowest busy PU has drained (lockstep back-pressure); the loop
//! repeats until every PU has exited (CEXIT). In **per-bank** mode each
//! bank receives its own command stream through the shared, 2-command-per-
//! cycle channel bus — the baseline of Figures 3 and 8.
//!
//! Channels execute independently; the cube's wall-clock is the slowest
//! channel. Per-channel replay lives in [`channel`] as a pure function over
//! the loaded program and the channel's own bank slice, which lets
//! [`Engine::run_parallel`] fan channels out across host threads while
//! staying bit-identical to the serial [`Engine::run`] (outcomes are merged
//! in channel order). Modeling notes (see DESIGN.md §8): the engine tracks
//! open rows with its own non-stalling cursor per program slot (banks that
//! predicate off catch up within later iterations of the same rows), and
//! host completion detection is modeled as one status poll per iteration —
//! a column read of the status location while a row is open, an MRS
//! register read otherwise (MRS is only legal with every bank idle).

use crate::error::CoreError;
use crate::isa::Program;
use crate::memory::{BankMemory, Binding};
use crate::pu::ProcessingUnit;
use crate::stats::PuStats;
use crate::trace::MetricsRegistry;
use psim_dram::{ChannelStats, CmdKind, EnergyModel, EnergyStats, HbmConfig, Scope, Violation};
use serde::{Deserialize, Serialize};

mod channel;

use channel::{run_channel, ChannelCtx, ChannelOutcome};

/// All-bank (pSyncPIM) vs per-bank (PB baseline) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// One command drives every bank in a channel (AB-PIM).
    AllBank,
    /// Each bank is driven individually over the shared command bus.
    PerBank,
}

/// Which channel-replay implementation the engine uses. Both produce
/// bit-identical [`RunReport`]s (the `psim_fastpath` gate and the
/// tick-vs-event tests enforce this); they differ only in host-side
/// simulation speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineTier {
    /// The original command-by-command replay: every offer steps the PU
    /// interpreter inline and every channel command re-walks all banks.
    #[default]
    Tick,
    /// Event-driven fast path: PU step streams are precomputed per bank in
    /// cache-hot batches (their evolution is independent of command
    /// timing — see DESIGN.md), and all-bank channels collapse to a single
    /// representative bank.
    Event,
}

impl EngineTier {
    /// Tier selection from the environment: `PSIM_ENGINE=event` picks the
    /// fast path, anything else (or unset) the tick engine. This is how
    /// the CI equivalence gate re-runs the golden suites under the event
    /// tier without touching call sites.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("PSIM_ENGINE").as_deref() {
            Ok("event") => EngineTier::Event,
            _ => EngineTier::Tick,
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Memory organization and timing.
    pub hbm: HbmConfig,
    /// Execution mode.
    pub mode: ExecMode,
    /// Energy model for the report.
    pub energy: EnergyModel,
    /// Safety bound on kernel loop iterations per channel.
    pub max_rounds: u64,
    /// Record every issued DRAM command into [`RunReport::trace`]
    /// (debug/visualization; memory-hungry on long kernels).
    pub record_trace: bool,
    /// Cap on recorded trace events *per channel*; commands beyond the cap
    /// are counted in [`RunReport::trace_dropped`] instead of growing the
    /// trace without bound on long kernels.
    pub trace_limit: usize,
    /// Model periodic refresh: every tREFI the engine precharges, issues
    /// an all-bank REF and reopens lazily — the bandwidth tax real DRAM
    /// pays. On by default; a kernel that runs refresh-free silently
    /// violates the JEDEC refresh contract the checker audits.
    pub refresh: bool,
    /// Self-audit: replay every issued command through an independent
    /// [`psim_dram::ProtocolChecker`] per channel and cross-check PU
    /// invariants, surfacing findings in [`RunReport::violations`] and
    /// [`RunReport::pu_audit`]. Costs one extra state machine per channel.
    pub validate: bool,
    /// psim-trace: attribute every DRAM cycle of every PU (and the shared
    /// command bus) to a [`crate::trace::Category`] and record stall
    /// events, surfacing a [`MetricsRegistry`] in [`RunReport::metrics`].
    /// Off by default; a disabled run pays only one branch per command.
    pub attribute: bool,
    /// Cap on recorded [`crate::trace::StallEvent`]s *per channel* (the
    /// `trace_limit` idiom — overflow is counted in the registry's
    /// `events_dropped`, never silently truncated).
    pub event_limit: usize,
    /// Channel-replay implementation (tick vs event-driven fast path).
    pub tier: EngineTier,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            hbm: HbmConfig::default(),
            mode: ExecMode::AllBank,
            energy: EnergyModel::default(),
            max_rounds: 50_000_000,
            record_trace: false,
            trace_limit: 1 << 22,
            refresh: true,
            validate: false,
            attribute: false,
            event_limit: 4096,
            tier: EngineTier::default(),
        }
    }
}

/// One issued DRAM command, as recorded when
/// [`EngineConfig::record_trace`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Pseudo-channel the command went to.
    pub channel: usize,
    /// Issue cycle (channel-local DRAM command clock).
    pub cycle: u64,
    /// Command scope.
    pub scope: Scope,
    /// The command.
    pub cmd: CmdKind,
}

/// Result of one kernel execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall-clock in DRAM command cycles (max over channels).
    pub dram_cycles: u64,
    /// Wall-clock in seconds.
    pub seconds: f64,
    /// Command counters summed over channels.
    pub commands: ChannelStats,
    /// Kernel loop iterations of the slowest channel.
    pub rounds: u64,
    /// Merged PU counters (exit_round keeps the last PU to finish).
    pub pu: PuStats,
    /// Energy accounting.
    pub energy: EnergyStats,
    /// Per-channel cycle counts.
    pub per_channel_cycles: Vec<u64>,
    /// Number of PUs that performed at least one productive memory op.
    pub active_pus: usize,
    /// Issued-command trace (empty unless [`EngineConfig::record_trace`]).
    pub trace: Vec<TraceEvent>,
    /// Commands not recorded because a channel hit
    /// [`EngineConfig::trace_limit`].
    pub trace_dropped: u64,
    /// Protocol violations found by the independent checker (empty unless
    /// [`EngineConfig::validate`]; a non-empty list means the timing model
    /// issued an illegal stream and the run's numbers are suspect).
    pub violations: Vec<Violation>,
    /// Violations beyond the per-report cap, counted but not stored.
    pub violations_suppressed: u64,
    /// PU-invariant audit failures (empty unless [`EngineConfig::validate`]).
    pub pu_audit: Vec<String>,
    /// psim-trace cycle attribution (`Some` only when
    /// [`EngineConfig::attribute`] is set): per-channel, per-PU breakdowns
    /// plus the bounded stall-event stream, assembled in channel order so
    /// parallel runs stay bit-identical to serial ones.
    pub metrics: Option<MetricsRegistry>,
}

impl RunReport {
    /// Data actually moved through the banks, in bytes (bursts × burst
    /// size).
    #[must_use]
    pub fn data_bytes(&self, cfg: &HbmConfig) -> u64 {
        self.commands.bank_bursts * cfg.burst_bytes as u64
    }

    /// Achieved internal bandwidth in bytes/second.
    #[must_use]
    pub fn achieved_bandwidth(&self, cfg: &HbmConfig) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.data_bytes(cfg) as f64 / self.seconds
    }

    /// Fraction of the cube's internal bandwidth actually used — the
    /// lockstep/row-thrash efficiency the paper's design trades for JEDEC
    /// compatibility.
    #[must_use]
    pub fn internal_utilization(&self, cfg: &HbmConfig) -> f64 {
        self.achieved_bandwidth(cfg) / cfg.internal_bw
    }

    /// Total validation findings: protocol violations (stored plus
    /// suppressed) and PU audit failures. Zero for a clean validated run —
    /// and trivially zero when validation was off.
    #[must_use]
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64 + self.violations_suppressed + self.pu_audit.len() as u64
    }
}

/// Host wall-clock nanoseconds spent inside engine phases, process-wide.
/// Benchmarks read this through [`take_engine_wall_s`] to time the
/// simulation kernel itself, excluding host-side data preparation, without
/// perturbing any serialized report (the accumulator lives outside
/// [`RunReport`], so deterministic artifacts stay deterministic).
static ENGINE_WALL_NANOS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Drain the process-wide engine wall-clock accumulator: returns the
/// seconds spent inside [`Engine::run`]/[`Engine::run_parallel`] since the
/// last call, and resets it to zero.
#[must_use]
pub fn take_engine_wall_s() -> f64 {
    ENGINE_WALL_NANOS.swap(0, std::sync::atomic::Ordering::Relaxed) as f64 * 1e-9
}

/// The pSyncPIM cube: processing units + bank memories + channel models.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: EngineConfig,
    mems: Vec<BankMemory>,
    pus: Vec<ProcessingUnit>,
    program: Option<Program>,
    bindings: Vec<Option<Binding>>,
}

impl Engine {
    /// Build a cube for the configuration.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let banks = cfg.hbm.total_banks();
        let row_bytes = cfg.hbm.row_bytes();
        Engine {
            mems: (0..banks).map(|_| BankMemory::new(row_bytes)).collect(),
            pus: (0..banks).map(|_| ProcessingUnit::new()).collect(),
            program: None,
            bindings: Vec::new(),
            cfg,
        }
    }

    /// Total banks (= PUs).
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.mems.len()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// A bank's memory.
    #[must_use]
    pub fn mem(&self, bank: usize) -> &BankMemory {
        &self.mems[bank]
    }

    /// A bank's memory, mutably (host-side data placement).
    pub fn mem_mut(&mut self, bank: usize) -> &mut BankMemory {
        &mut self.mems[bank]
    }

    /// A bank's processing unit.
    #[must_use]
    pub fn pu(&self, bank: usize) -> &ProcessingUnit {
        &self.pus[bank]
    }

    /// A bank's processing unit, mutably.
    pub fn pu_mut(&mut self, bank: usize) -> &mut ProcessingUnit {
        &mut self.pus[bank]
    }

    /// Program the same kernel into every PU. Region ids are per-bank, so
    /// every bank must have allocated its regions in the same order (the
    /// paper's equal-rows-per-bank layout).
    ///
    /// In validate mode the program must first pass psim-lint: an
    /// Error-level diagnostic (guaranteed hang, counter clobber, dead
    /// queue path, …) refuses the load before cycle 0 — on-PIM failures
    /// are undebuggable from the host, so they must not start.
    ///
    /// # Errors
    ///
    /// [`CoreError::Verify`] for an unverifiable program under
    /// [`EngineConfig::validate`]; otherwise propagates binding
    /// validation failures.
    pub fn load_kernel<B: Into<Binding>>(
        &mut self,
        program: Program,
        bindings: Vec<Option<B>>,
    ) -> Result<(), CoreError> {
        if self.cfg.validate {
            crate::isa::VerifiedProgram::new(program.clone())?;
        }
        let bindings: Vec<Option<Binding>> =
            bindings.into_iter().map(|o| o.map(Into::into)).collect();
        for pu in &mut self.pus {
            pu.load_kernel(program.clone(), bindings.clone())?;
        }
        self.program = Some(program);
        self.bindings = bindings;
        Ok(())
    }

    /// Seed every PU's scalar register (e.g. α for AXPY).
    pub fn set_srf_all(&mut self, v: f64) {
        for pu in &mut self.pus {
            pu.set_srf(v);
        }
    }

    /// Execute the loaded kernel to completion, replaying channels
    /// serially.
    ///
    /// # Errors
    ///
    /// [`CoreError::Execution`] if no kernel is loaded or the round bound
    /// is exceeded (kernel never exits).
    pub fn run(&mut self) -> Result<RunReport, CoreError> {
        self.run_with_workers(1)
    }

    /// Execute the loaded kernel with up to `workers` host threads, one
    /// channel per thread at a time. Channels are simulated-independent, so
    /// the report is **bit-identical** to [`Engine::run`] for any worker
    /// count — outcomes are merged in channel order regardless of host
    /// completion order.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run`].
    pub fn run_parallel(&mut self, workers: usize) -> Result<RunReport, CoreError> {
        self.run_with_workers(workers)
    }

    fn run_with_workers(&mut self, workers: usize) -> Result<RunReport, CoreError> {
        let wall_start = std::time::Instant::now();
        let result = self.run_with_workers_inner(workers);
        ENGINE_WALL_NANOS.fetch_add(
            wall_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        result
    }

    fn run_with_workers_inner(&mut self, workers: usize) -> Result<RunReport, CoreError> {
        let program = self
            .program
            .clone()
            .ok_or_else(|| CoreError::Execution("no kernel loaded".to_string()))?;
        let schedule = program.command_schedule()?;
        let banks_per_channel = self.cfg.hbm.banks_per_channel();
        let channels = self.cfg.hbm.num_pseudo_channels;
        let ctx = ChannelCtx {
            cfg: &self.cfg,
            program: &program,
            schedule: &schedule,
            bindings: &self.bindings,
        };

        // One outcome slot per channel, written by whichever worker runs
        // that channel and always merged below in channel order.
        let mut results: Vec<Option<Result<ChannelOutcome, CoreError>>> =
            (0..channels).map(|_| None).collect();
        let nworkers = workers.max(1).min(channels.max(1));
        let work = self
            .pus
            .chunks_mut(banks_per_channel)
            .zip(self.mems.chunks_mut(banks_per_channel))
            .zip(results.iter_mut())
            .enumerate();
        if nworkers <= 1 {
            for (ch, ((pus, mems), slot)) in work {
                *slot = Some(run_channel(&ctx, ch, pus, mems));
            }
        } else {
            let mut buckets: Vec<Vec<_>> = (0..nworkers).map(|_| Vec::new()).collect();
            for (ch, ((pus, mems), slot)) in work {
                buckets[ch % nworkers].push((ch, pus, mems, slot));
            }
            std::thread::scope(|s| {
                for bucket in buckets {
                    let ctx = &ctx;
                    s.spawn(move || {
                        for (ch, pus, mems, slot) in bucket {
                            *slot = Some(run_channel(ctx, ch, pus, mems));
                        }
                    });
                }
            });
        }

        let mut per_channel_cycles = Vec::with_capacity(channels);
        let mut commands = ChannelStats::default();
        let mut max_rounds_seen = 0u64;
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut trace_dropped = 0u64;
        let mut check = psim_dram::CheckReport::default();
        let mut metrics = self
            .cfg
            .attribute
            .then(|| MetricsRegistry::new(self.cfg.event_limit));
        for slot in results {
            let outcome = slot.expect("every channel executed")?;
            per_channel_cycles.push(outcome.cycles);
            commands.merge(&outcome.stats);
            max_rounds_seen = max_rounds_seen.max(outcome.rounds);
            trace.extend(outcome.trace);
            trace_dropped += outcome.trace_dropped;
            if let Some(c) = outcome.check {
                check.merge(&c);
            }
            if let (Some(reg), Some(m)) = (metrics.as_mut(), outcome.metrics) {
                reg.push_channel(m, outcome.stall_events, outcome.stall_events_dropped);
            }
        }

        let dram_cycles = per_channel_cycles.iter().copied().max().unwrap_or(0);
        let seconds = dram_cycles as f64 * self.cfg.hbm.cycle_seconds();

        // exit_round: max-merge with u64::MAX (still running) dominating,
        // so the identity is the all-zero default, not PuStats::new().
        let mut pu_stats = PuStats::default();
        let mut active_pus = 0usize;
        let mut lane_op_energy = 0.0;
        for pu in &self.pus {
            let s = pu.stats();
            if s.mem_ops > 0 {
                active_pus += 1;
            }
            lane_op_energy += self.cfg.energy.pu_op_energy_pj(8, s.lane_ops);
            pu_stats.merge(s);
        }

        let mut energy = EnergyStats::default();
        energy.dram_pj = self.cfg.energy.dram_energy_pj(&commands, 0);
        energy.pu_pj = lane_op_energy;
        energy.background_pj = self.cfg.energy.background_pj(seconds, active_pus);

        let mut pu_audit = if self.cfg.validate {
            self.audit_pus(max_rounds_seen, &commands)
        } else {
            Vec::new()
        };
        if self.cfg.validate {
            if let Some(reg) = &metrics {
                pu_audit.extend(reg.conservation_failures());
            }
        }

        Ok(RunReport {
            dram_cycles,
            seconds,
            commands,
            rounds: max_rounds_seen,
            pu: pu_stats,
            energy,
            per_channel_cycles,
            active_pus,
            trace,
            trace_dropped,
            violations: check.violations,
            violations_suppressed: check.suppressed,
            pu_audit,
            metrics,
        })
    }

    /// Cross-check the PU-level invariants of a completed run: every PU
    /// exited with a recorded `exit_round` no later than the executed
    /// round count, retired nothing after exiting, and collectively
    /// consumed no more memory ops than the channels delivered bursts.
    #[must_use]
    pub fn audit_pus(&self, rounds: u64, commands: &ChannelStats) -> Vec<String> {
        let mut failures = Vec::new();
        let mut total_mem_ops = 0u64;
        for (b, pu) in self.pus.iter().enumerate() {
            let s = pu.stats();
            total_mem_ops += s.mem_ops;
            if !pu.exited() {
                failures.push(format!("PU {b} never exited"));
                continue;
            }
            if s.exit_round == u64::MAX {
                failures.push(format!("PU {b} exited but no exit_round was recorded"));
            } else if s.exit_round > rounds {
                failures.push(format!(
                    "PU {b} exit_round {} exceeds executed rounds {rounds}",
                    s.exit_round
                ));
            }
            if s.instructions != s.instructions_at_exit {
                failures.push(format!(
                    "PU {b} retired instructions after exit: {} at exit, {} now",
                    s.instructions_at_exit, s.instructions
                ));
            }
        }
        if total_mem_ops > commands.bank_bursts {
            failures.push(format!(
                "PUs consumed {total_mem_ops} memory ops from only {} bank bursts",
                commands.bank_bursts
            ));
        }
        failures
    }
}

#[cfg(test)]
mod tests;
