//! Error type for the core crate.

use std::fmt;

/// Errors from program construction, assembly, or engine execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A program exceeds the 32-entry control register (Table VIII).
    ProgramTooLong {
        /// Number of instructions supplied.
        len: usize,
    },
    /// An instruction field is out of its encodable range.
    Encode(String),
    /// A 32-bit word does not decode to a valid instruction.
    Decode(u32, String),
    /// Assembly-text parse failure.
    Asm {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A memory instruction slot has no bound region, or a region id is
    /// unknown.
    Binding(String),
    /// The engine detected an inconsistency (e.g. kernel never exits).
    Execution(String),
    /// psim-lint found Error-level diagnostics (see `isa::verify`).
    Verify {
        /// The Error-level findings, ordered by slot.
        diagnostics: Vec<crate::isa::Diagnostic>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ProgramTooLong { len } => {
                write!(
                    f,
                    "program has {len} instructions but the control register holds 32"
                )
            }
            CoreError::Encode(msg) => write!(f, "encode error: {msg}"),
            CoreError::Decode(word, msg) => write!(f, "cannot decode {word:#010x}: {msg}"),
            CoreError::Asm { line, msg } => write!(f, "asm error at line {line}: {msg}"),
            CoreError::Binding(msg) => write!(f, "binding error: {msg}"),
            CoreError::Execution(msg) => write!(f, "execution error: {msg}"),
            CoreError::Verify { diagnostics } => {
                write!(f, "program failed verification: ")?;
                for (i, d) in diagnostics.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::ProgramTooLong { len: 40 }
            .to_string()
            .contains("40"));
        assert!(CoreError::Decode(7, "bad opcode".into())
            .to_string()
            .contains("0x00000007"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<CoreError>();
    }
}
