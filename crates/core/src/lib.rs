//! pSyncPIM core: the partially synchronous all-bank PIM architecture.
//!
//! This crate implements the paper's primary contribution:
//!
//! * the 15-instruction PIM [`isa`] with its two 32-bit encodings (B/C
//!   formats, paper Figure 5 and Table IV) plus a text assembler,
//! * the per-bank processing unit ([`pu`]): 32-entry control register,
//!   scalar register, 3 × 32 B dense vector registers, 3 × 192 B sparse
//!   vector queues, a multi-precision 256-bit VALU with an index calculator
//!   (union/intersection skip logic), per-JUMP loop counters, predicated
//!   execution and conditional exit (paper §IV),
//! * the bank [`memory`] model (named data regions spanning DRAM rows),
//! * the partially synchronous [`engine`]: an all-bank command loop where
//!   every column command steps every PU in lockstep while each PU may
//!   predicate off or exit early; a per-bank variant reproduces the PB
//!   baseline (paper §III-B),
//! * the [`host`] controller: SB/AB/AB-PIM mode switching, kernel
//!   programming, external-bus traffic for vector broadcast/accumulation
//!   and completion detection,
//! * the Table X [`area`] model.
//!
//! # Example
//!
//! ```
//! use psyncpim_core::isa::{Instruction, Program};
//!
//! let prog = Program::new(vec![
//!     Instruction::Nop,
//!     Instruction::Exit,
//! ]).unwrap();
//! assert_eq!(prog.len(), 2);
//! ```

pub mod area;
pub mod engine;
pub mod error;
pub mod host;
pub mod isa;
pub mod memory;
pub mod pu;
pub mod stats;
pub mod trace;

pub use engine::{
    take_engine_wall_s, Engine, EngineConfig, EngineTier, ExecMode, RunReport, TraceEvent,
};
pub use error::CoreError;
pub use host::{ExternalBus, HostController};
pub use memory::{BankMemory, Region, RegionId};
pub use pu::{ProcessingUnit, StepOutcome};
pub use stats::{Histogram, PuStats};
pub use trace::{Category, ChannelMetrics, CycleBreakdown, MetricsRegistry, StallEvent};
