//! Area model (paper §VII-F, Table X).
//!
//! The paper derives the processing-unit area from the Samsung HBM-PIM
//! silicon report: 0.967 mm² per unit, 32 units per die (30.94 mm²), plus
//! 38.05 mm² of banks and TSVs, for a 68.99 mm² total across 8 PIM stacks.

use serde::{Deserialize, Serialize};

/// Area breakdown of a PIM die/stack configuration in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One processing unit.
    pub pu_mm2: f64,
    /// Processing units per die.
    pub pus_per_die: usize,
    /// Banks + TSV + periphery per die-stack.
    pub rest_mm2: f64,
}

impl Default for AreaModel {
    /// The pSyncPIM numbers of Table X.
    fn default() -> Self {
        AreaModel {
            pu_mm2: 0.967,
            pus_per_die: 32,
            rest_mm2: 38.05,
        }
    }
}

impl AreaModel {
    /// Total processing-element area.
    #[must_use]
    pub fn pe_area_mm2(&self) -> f64 {
        self.pu_mm2 * self.pus_per_die as f64
    }

    /// Total area.
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.pe_area_mm2() + self.rest_mm2
    }
}

/// One row of Table X for printing comparisons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaRow {
    /// Design name.
    pub name: &'static str,
    /// Baseline memory technology.
    pub tech: &'static str,
    /// Total area in mm².
    pub total_mm2: f64,
    /// Stack configuration description.
    pub stacks: &'static str,
    /// Processing-element area in mm².
    pub pe_mm2: f64,
    /// Capacity in GB.
    pub capacity_gb: f64,
}

/// The comparison rows of Table X.
#[must_use]
pub fn table_x() -> Vec<AreaRow> {
    let psync = AreaModel::default();
    vec![
        AreaRow {
            name: "Samsung HBM-PIM",
            tech: "HBM",
            total_mm2: 84.4,
            stacks: "4 PIM + 4 HBM",
            pe_mm2: 22.8,
            capacity_gb: 6.0,
        },
        AreaRow {
            name: "SpaceA",
            tech: "HMC",
            total_mm2: 48.0,
            stacks: "8 PIM",
            pe_mm2: 2.333,
            capacity_gb: 8.0,
        },
        AreaRow {
            name: "pSyncPIM",
            tech: "HBM",
            total_mm2: psync.total_mm2(),
            stacks: "8 PIM",
            pe_mm2: psync.pe_area_mm2(),
            capacity_gb: 4.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_totals() {
        let m = AreaModel::default();
        assert!((m.pe_area_mm2() - 30.944).abs() < 1e-3);
        assert!((m.total_mm2() - 68.99).abs() < 0.01);
    }

    #[test]
    fn table_has_three_designs() {
        let t = table_x();
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].name, "pSyncPIM");
        assert!((t[2].total_mm2 - 68.99).abs() < 0.01);
    }
}
