//! Property test: the four ISA representations agree.
//!
//! For random valid instruction sequences, the in-memory form, the 4-byte
//! machine encoding, and the canonical assembly text must roundtrip
//! losslessly: `Program -> encode -> decode` is the identity, and
//! `disassemble -> assemble` reproduces the same program and the same
//! machine words. A deterministic coverage check asserts the generator
//! actually exercises all 15 opcodes and all 7 precisions, so a silently
//! narrowed strategy cannot hollow out the property.

use proptest::prelude::*;
use psim_sparse::Precision;
use psyncpim_core::isa::{
    assemble, disassemble, BinaryOp, Identity, Instruction, Operand, Program, SetMode, SubQueue,
};
use std::collections::HashSet;

fn precision() -> impl Strategy<Value = Precision> {
    prop::sample::select(Precision::ALL.to_vec())
}

fn operand() -> BoxedStrategy<Operand> {
    prop_oneof![
        Just(Operand::Bank),
        Just(Operand::Srf),
        (0u8..3).prop_map(Operand::Drf),
        (0u8..3).prop_map(Operand::SpVq),
    ]
    .boxed()
}

fn binop() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(vec![
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Min,
        BinaryOp::Max,
        BinaryOp::First,
        BinaryOp::Second,
        BinaryOp::RSub,
    ])
}

fn subqueue() -> impl Strategy<Value = SubQueue> {
    prop::sample::select(vec![
        SubQueue::Row,
        SubQueue::Col,
        SubQueue::Val,
        SubQueue::All,
    ])
}

fn identity() -> impl Strategy<Value = Identity> {
    prop::sample::select(vec![
        Identity::Zero,
        Identity::One,
        Identity::NegInf,
        Identity::PosInf,
    ])
}

fn setmode() -> impl Strategy<Value = SetMode> {
    prop::sample::select(vec![SetMode::Intersection, SetMode::Union])
}

/// One random instruction with every field inside its encodable range.
/// Jump targets are generated over the full slot space and wrapped to the
/// final program length by [`program_instrs`].
fn instruction() -> BoxedStrategy<Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        (0u8..32, 0u8..32, 0u16..1024).prop_map(|(target, order, count)| Instruction::Jump {
            target,
            order,
            count
        }),
        Just(Instruction::Exit),
        (0u8..3).prop_map(|queue| Instruction::CExit { queue }),
        (operand(), operand(), precision()).prop_map(|(dst, src, precision)| {
            Instruction::Dmov {
                dst,
                src,
                precision,
            }
        }),
        (operand(), 0u8..3, precision()).prop_map(|(dst, idx_queue, precision)| {
            Instruction::IndMov {
                dst,
                idx_queue,
                precision,
            }
        }),
        (operand(), operand(), subqueue(), precision()).prop_map(|(dst, src, sub, precision)| {
            Instruction::SpMov {
                dst,
                src,
                sub,
                precision,
            }
        }),
        (0u8..3, precision()).prop_map(|(src, precision)| Instruction::SpFw { src, precision }),
        (operand(), operand(), identity(), precision()).prop_map(
            |(dst, src, identity, precision)| Instruction::GthSct {
                dst,
                src,
                identity,
                precision,
            }
        ),
        (operand(), operand(), binop(), precision()).prop_map(|(dst, src, op, precision)| {
            Instruction::Sdv {
                dst,
                src,
                op,
                precision,
            }
        }),
        (operand(), operand(), binop(), precision()).prop_map(|(dst, src, op, precision)| {
            Instruction::SSpv {
                dst,
                src,
                op,
                precision,
            }
        }),
        (operand(), binop(), precision()).prop_map(|(src, op, precision)| Instruction::Reduce {
            src,
            op,
            precision
        }),
        (operand(), operand(), operand(), binop(), precision()).prop_map(
            |(dst, src0, src1, op, precision)| Instruction::Dvdv {
                dst,
                src0,
                src1,
                op,
                precision,
            }
        ),
        (
            operand(),
            operand(),
            operand(),
            binop(),
            setmode(),
            precision()
        )
            .prop_map(|(dst, src0, src1, op, set, precision)| {
                Instruction::SpVdv {
                    dst,
                    src0,
                    src1,
                    op,
                    set,
                    precision,
                }
            }),
        (
            operand(),
            operand(),
            operand(),
            binop(),
            setmode(),
            precision()
        )
            .prop_map(|(dst, src0, src1, op, set, precision)| {
                Instruction::SpVSpv {
                    dst,
                    src0,
                    src1,
                    op,
                    set,
                    precision,
                }
            }),
    ]
    .boxed()
}

/// A random *valid* program body: jump targets wrapped into range and a
/// trailing EXIT so `Program::new` always accepts.
fn program_instrs() -> impl Strategy<Value = Vec<Instruction>> {
    prop::collection::vec(instruction(), 1..31).prop_map(|mut v| {
        let len = (v.len() + 1) as u8;
        for ins in &mut v {
            if let Instruction::Jump { target, .. } = ins {
                *target %= len;
            }
        }
        v.push(Instruction::Exit);
        v
    })
}

fn opcode_name(ins: &Instruction) -> &'static str {
    match ins {
        Instruction::Nop => "NOP",
        Instruction::Jump { .. } => "JUMP",
        Instruction::Exit => "EXIT",
        Instruction::CExit { .. } => "CEXIT",
        Instruction::Dmov { .. } => "DMOV",
        Instruction::IndMov { .. } => "INDMOV",
        Instruction::SpMov { .. } => "SPMOV",
        Instruction::SpFw { .. } => "SPFW",
        Instruction::GthSct { .. } => "GTHSCT",
        Instruction::Sdv { .. } => "SDV",
        Instruction::SSpv { .. } => "SSPV",
        Instruction::Reduce { .. } => "REDUCE",
        Instruction::Dvdv { .. } => "DVDV",
        Instruction::SpVdv { .. } => "SPVDV",
        Instruction::SpVSpv { .. } => "SPVSPV",
    }
}

fn precision_of(ins: &Instruction) -> Option<Precision> {
    match ins {
        Instruction::Dmov { precision, .. }
        | Instruction::IndMov { precision, .. }
        | Instruction::SpMov { precision, .. }
        | Instruction::SpFw { precision, .. }
        | Instruction::GthSct { precision, .. }
        | Instruction::Sdv { precision, .. }
        | Instruction::SSpv { precision, .. }
        | Instruction::Reduce { precision, .. }
        | Instruction::Dvdv { precision, .. }
        | Instruction::SpVdv { precision, .. }
        | Instruction::SpVSpv { precision, .. } => Some(*precision),
        Instruction::Nop
        | Instruction::Jump { .. }
        | Instruction::Exit
        | Instruction::CExit { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn machine_words_and_assembly_text_roundtrip(instrs in program_instrs()) {
        let program = Program::new(instrs).expect("generated program is valid");

        // Program -> machine words -> Program.
        let words = program.encode().expect("in-range fields encode");
        let decoded = Program::decode(&words).expect("encoded words decode");
        prop_assert_eq!(&decoded, &program);

        // Program -> canonical text -> Program.
        let text = disassemble(&decoded);
        let reassembled = assemble(&text).expect("canonical text reassembles");
        prop_assert_eq!(&reassembled, &program);

        // And the text-derived program encodes to the same words.
        prop_assert_eq!(reassembled.encode().expect("reassembled encodes"), words);
    }
}

#[test]
fn generator_covers_all_opcodes_and_precisions() {
    let strat = instruction();
    let mut rng = TestRng::deterministic("isa_roundtrip::coverage");
    let mut ops: HashSet<&'static str> = HashSet::new();
    let mut precs: HashSet<String> = HashSet::new();
    for _ in 0..4096 {
        let ins = strat.sample(&mut rng);
        ops.insert(opcode_name(&ins));
        if let Some(p) = precision_of(&ins) {
            precs.insert(p.to_string());
        }
    }
    assert_eq!(ops.len(), 15, "missing opcodes: {ops:?}");
    assert_eq!(precs.len(), 7, "missing precisions: {precs:?}");
}
