//! Triangle counting (SpGEMM-dominated: >98 % of GPU time, Figure 2).
//!
//! The paper runs TC on an InnerSP-style SpGEMM accelerator attached to
//! pSyncPIM (§VII-E, Figure 13): the `mxm` stays on the accelerator; the
//! masked-reduction SpMV either abuses the accelerator's non-square-SpGEMM
//! mode (accelerator-only) or offloads to pSyncPIM (the 2.0× win).

use crate::runtime::{AppRun, Breakdown};
use psim_baselines::spgemm_accel::{spgemm_multiplies, SpgemmAccel};
use psim_baselines::GpuModel;
use psim_kernels::{PimDevice, SpmvPim};
use psim_sparse::{Coo, Csr, Precision};

/// Which hardware runs the TC kernels.
#[derive(Debug, Clone)]
pub enum TcBackend {
    /// GraphBLAST mxm + mxv on the GPU model.
    Gpu(GpuModel),
    /// SpGEMM accelerator only — SpMV runs as a non-square SpGEMM.
    AccelOnly(SpgemmAccel),
    /// SpGEMM accelerator + pSyncPIM for the SpMV kernels (the paper's
    /// integrated configuration).
    AccelPlusPim(SpgemmAccel, PimDevice),
}

/// Count triangles in the undirected graph under `g` and report kernel
/// times for the chosen backend.
///
/// # Panics
///
/// Panics if `g` is not square.
pub fn triangle_count(g: &Coo, backend: &TcBackend) -> (u64, AppRun) {
    assert_eq!(g.nrows(), g.ncols(), "adjacency must be square");
    let sym = g.symmetrized();
    let csr = Csr::from(&sym);

    // Functional count: node-iterator with sorted adjacency intersection.
    let triangles = count_reference(&csr);

    // Kernel timing: C = A·A masked by A (SpGEMM), then the masked row
    // reduction (an SpMV with the all-ones vector) and a final scalar
    // reduce.
    let multiplies = spgemm_multiplies(&csr);
    let ones = vec![1.0; sym.ncols()];
    let mut breakdown = Breakdown::default();
    match backend {
        TcBackend::Gpu(gpu) => {
            breakdown.spgemm_s = gpu.spgemm_seconds(multiplies);
            breakdown.spmv_s =
                gpu.graphblast_spmv_seconds(sym.nnz(), sym.nrows(), sym.ncols(), Precision::Fp64);
            breakdown.vector_s = gpu.graphblast_op_seconds(sym.nrows(), 1, Precision::Fp64);
        }
        TcBackend::AccelOnly(acc) => {
            breakdown.spgemm_s = acc.spgemm_seconds(multiplies);
            breakdown.spmv_s = acc.spmv_seconds(sym.nnz());
        }
        TcBackend::AccelPlusPim(acc, device) => {
            breakdown.spgemm_s = acc.spgemm_seconds(multiplies);
            let res = SpmvPim::new(device.clone(), Precision::Fp64)
                .run(&sym, &ones)
                .expect("pim spmv");
            breakdown.spmv_s = res.run.total_s();
        }
    }

    (
        triangles,
        AppRun {
            breakdown,
            iterations: 1,
        },
    )
}

/// Reference triangle count (each triangle counted once).
#[must_use]
pub fn count_reference(csr: &Csr) -> u64 {
    let n = csr.nrows();
    let mut count = 0u64;
    for u in 0..n {
        let nu: Vec<usize> = csr.row(u).map(|(v, _)| v).filter(|&v| v > u).collect();
        for &v in &nu {
            // Intersect neighbours of u (> v) with neighbours of v (> v).
            let nv: Vec<usize> = csr.row(v).map(|(w, _)| w).filter(|&w| w > v).collect();
            let mut i = 0;
            let mut j = 0;
            let nu2: Vec<usize> = nu.iter().copied().filter(|&w| w > v).collect();
            while i < nu2.len() && j < nv.len() {
                use std::cmp::Ordering;
                match nu2[i].cmp(&nv[j]) {
                    Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                    Ordering::Less => i += 1,
                    Ordering::Greater => j += 1,
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> Coo {
        // Two triangles sharing edge (0,1): {0,1,2} and {0,1,3}.
        let mut g = Coo::new(4, 4);
        for &(a, b) in &[(0u32, 1u32), (1, 2), (0, 2), (1, 3), (0, 3)] {
            g.push(a, b, 1.0);
        }
        g
    }

    #[test]
    fn counts_known_triangles() {
        let g = triangle_graph();
        let (t, run) = triangle_count(&g, &TcBackend::Gpu(GpuModel::rtx3080()));
        assert_eq!(t, 2);
        assert!(run.breakdown.spgemm_s > 0.0);
    }

    #[test]
    fn accel_plus_pim_counts_match_and_report_times() {
        // The Figure 13 speedup claim is checked at paper scale by the
        // fig13 harness (the PIM win needs the full 256-bank device); the
        // unit test checks functional equality and accounting only.
        let g = psim_sparse::gen::rmat(256, 8, 3).symmetrized();
        let acc = SpgemmAccel::innersp();
        let (t1, only) = triangle_count(&g, &TcBackend::AccelOnly(acc));
        let (t2, plus) = triangle_count(&g, &TcBackend::AccelPlusPim(acc, PimDevice::tiny(2)));
        assert_eq!(t1, t2);
        assert!(only.breakdown.spmv_s > 0.0 && plus.breakdown.spmv_s > 0.0);
        assert_eq!(only.breakdown.spgemm_s, plus.breakdown.spgemm_s);
    }

    #[test]
    fn empty_graph_has_no_triangles() {
        let g = Coo::new(10, 10);
        let (t, _) = triangle_count(&g, &TcBackend::Gpu(GpuModel::rtx3080()));
        assert_eq!(t, 0);
    }
}
