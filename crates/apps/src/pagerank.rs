//! PageRank via power iteration (SpMV-dominated on GPU, Figure 2).

use crate::runtime::{AppRun, Runtime};
use psim_sparse::{Coo, Entry};

/// Damping factor used by the benchmark.
pub const DAMPING: f64 = 0.85;

/// PageRank over the adjacency matrix `g`; iterates
/// `r' = d · Pᵀ r + (1 − d)/n` until the L2 delta drops below `tol` or
/// `max_iters` is hit. Returns the rank vector and the run report.
///
/// The column-stochastic transition matrix is prepared host-side (the
/// paper excludes preprocessing from kernel time).
///
/// # Panics
///
/// Panics if `g` is not square.
pub fn pagerank<R: Runtime>(rt: &mut R, g: &Coo, tol: f64, max_iters: usize) -> (Vec<f64>, AppRun) {
    assert_eq!(g.nrows(), g.ncols(), "adjacency must be square");
    let n = g.nrows();
    let before = rt.breakdown();

    // P[v][u] = 1/outdeg(u) for each edge (u, v): host-side preprocessing.
    let out_deg = g.row_counts();
    let p: Coo = Coo::from_entries(
        n,
        n,
        g.iter()
            .map(|e| Entry::new(e.col, e.row, 1.0 / out_deg[e.row as usize].max(1) as f64))
            .collect(),
    )
    .expect("indices valid by construction");

    let teleport = vec![(1.0 - DAMPING) / n as f64; n];
    let ones = vec![1.0; n];
    let mut r = vec![1.0 / n as f64; n];
    let mut iterations = 0usize;
    for _ in 0..max_iters {
        iterations += 1;
        let mut next = rt.spmv(&p, &r);
        rt.scal(DAMPING, &mut next);
        next = rt.vv(&next, &teleport, psyncpim_core::isa::BinaryOp::Add);
        // Redistribute dangling-node mass: renormalize to sum 1.
        let mass = rt.dot(&next, &ones);
        rt.scal(1.0 / mass, &mut next);
        let diff = rt.vv(&next, &r, psyncpim_core::isa::BinaryOp::Sub);
        let delta = rt.norm2(&diff);
        r = next;
        if delta < tol {
            break;
        }
    }

    let breakdown = before.delta(&rt.breakdown());
    (
        r,
        AppRun {
            breakdown,
            iterations,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuRuntime, GpuStack};
    use psim_baselines::GpuModel;
    use psim_sparse::gen;

    #[test]
    fn ranks_sum_to_one_and_converge() {
        let g = gen::rmat(200, 5, 9).symmetrized();
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (r, run) = pagerank(&mut rt, &g, 1e-10, 100);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to {sum}");
        assert!(
            run.iterations < 100,
            "should converge, ran {}",
            run.iterations
        );
        // PR is SpMV-major on GraphBLAST per the paper's Figure 2.
        assert!(run.breakdown.spmv_s > 0.0);
    }

    #[test]
    fn hub_gets_higher_rank() {
        // Star graph: all point to 0.
        let mut g = Coo::new(10, 10);
        for i in 1..10 {
            g.push(i, 0, 1.0);
        }
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (r, _) = pagerank(&mut rt, &g, 1e-12, 200);
        assert!(r[0] > r[1] * 3.0, "hub {} vs leaf {}", r[0], r[1]);
    }
}
