//! Breadth-first search via frontier SpMV (the GraphBLAST formulation the
//! paper benchmarks: BFS is >70 % SpMV on the GPU, Figure 2).

use crate::runtime::{AppRun, Runtime};
use psim_sparse::Coo;
use psyncpim_core::isa::BinaryOp;

/// BFS from `source` over the (directed) adjacency matrix `g`.
/// Returns per-vertex levels (−1 for unreachable) and the run report.
///
/// Each iteration: `reached = Gᵀ · frontier` over the (×, max) semiring,
/// masked by the unvisited set with vector ops, until the frontier drains.
///
/// # Panics
///
/// Panics if `g` is not square or `source` is out of range.
pub fn bfs<R: Runtime>(rt: &mut R, g: &Coo, source: usize) -> (Vec<i64>, AppRun) {
    bfs_bounded(rt, g, source, g.nrows())
}

/// [`bfs`] with a depth cap (benchmark harnesses cap the level count on
/// huge-diameter graphs; unvisited vertices stay at −1).
pub fn bfs_bounded<R: Runtime>(
    rt: &mut R,
    g: &Coo,
    source: usize,
    max_depth: usize,
) -> (Vec<i64>, AppRun) {
    assert_eq!(g.nrows(), g.ncols(), "adjacency must be square");
    assert!(source < g.nrows());
    let n = g.nrows();
    let gt = g.transpose();
    let before = rt.breakdown();

    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    let mut frontier = vec![0.0; n];
    frontier[source] = 1.0;
    let mut visited = vec![0.0; n];
    visited[source] = 1.0;
    let ones = vec![1.0; n];
    let zeros = vec![0.0; n];

    let mut iterations = 0usize;
    for depth in 1..=max_depth.max(1) {
        iterations += 1;
        // reached[v] = max over frontier u with edge (u, v) — the
        // (second, max) semiring keeps the frontier 0/1-valued.
        let reached = rt.spmv_semiring(&gt, &frontier, BinaryOp::Second, BinaryOp::Max);
        // Clamp the max-identity (-inf) of untouched rows back to zero.
        let reached = rt.vv(&reached, &zeros, BinaryOp::Max);
        // not_visited = 1 - visited; next = reached * not_visited (>0 new).
        let not_visited = rt.vv(&ones, &visited, BinaryOp::Sub);
        let next = rt.vv(&reached, &not_visited, BinaryOp::Mul);
        // Check for termination: any new vertex?
        let active = rt.dot(&next, &ones);
        if active <= 0.0 {
            break;
        }
        for (v, &f) in next.iter().enumerate() {
            if f > 0.0 {
                levels[v] = depth as i64;
            }
        }
        visited = rt.vv(&visited, &next, BinaryOp::Max);
        frontier = next;
    }

    let breakdown = before.delta(&rt.breakdown());
    (
        levels,
        AppRun {
            breakdown,
            iterations,
        },
    )
}

/// Reference BFS for verification.
#[must_use]
pub fn bfs_reference(g: &Coo, source: usize) -> Vec<i64> {
    let csr = psim_sparse::Csr::from(g);
    let mut levels = vec![-1i64; g.nrows()];
    levels[source] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for (v, _) in csr.row(u) {
            if levels[v] < 0 {
                levels[v] = levels[u] + 1;
                queue.push_back(v);
            }
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuRuntime, GpuStack};
    use psim_baselines::GpuModel;
    use psim_sparse::gen;

    #[test]
    fn bfs_matches_reference_on_gpu_runtime() {
        let g = gen::rmat(128, 4, 5);
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (levels, run) = bfs(&mut rt, &g, 0);
        assert_eq!(levels, bfs_reference(&g, 0));
        assert!(run.total_s() > 0.0);
        assert!(run.breakdown.spmv_s > 0.0);
        assert!(run.iterations >= 1);
    }

    #[test]
    fn bfs_on_pim_runtime_matches() {
        use crate::runtime::PimRuntime;
        use psim_kernels::PimDevice;
        let g = gen::rmat(48, 3, 2);
        let mut rt = PimRuntime::new(PimDevice::tiny(1), psim_sparse::Precision::Fp64);
        let (levels, _) = bfs(&mut rt, &g, 0);
        assert_eq!(levels, bfs_reference(&g, 0));
    }

    #[test]
    fn isolated_source_terminates_immediately() {
        let g = Coo::new(8, 8);
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (levels, run) = bfs(&mut rt, &g, 3);
        assert_eq!(levels[3], 0);
        assert!(levels.iter().filter(|&&l| l >= 0).count() == 1);
        assert_eq!(run.iterations, 1);
    }
}
