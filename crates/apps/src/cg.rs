//! Preconditioned conjugate gradient (P-CG, paper Table II).
//!
//! The ILDU preconditioner (paper §VI-D) is factored host-side; each
//! application is two SpTRSVs plus a diagonal scale — the SpTRSV-major
//! workload of Figures 2 and 12.

use crate::runtime::{AppRun, Runtime};
use psim_sparse::ildu::Ildu;
use psim_sparse::Coo;
use psyncpim_core::isa::BinaryOp;

/// Result of a solver run.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The approximate solution.
    pub x: Vec<f64>,
    /// Final residual norm.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Kernel times and iteration count.
    pub run: AppRun,
}

/// Apply the ILDU preconditioner `z = (LDU)⁻¹ r` with runtime kernels.
pub(crate) fn apply_precond<R: Runtime>(
    rt: &mut R,
    f: &Ildu,
    inv_d: &[f64],
    r: &[f64],
) -> Vec<f64> {
    let y = rt.sptrsv(&f.l, r);
    let scaled = rt.vv(&y, inv_d, BinaryOp::Mul);
    rt.sptrsv(&f.u, &scaled)
}

/// P-CG on the SPD matrix `a`: solve `A x = b` to relative tolerance `tol`
/// within `max_iters` iterations.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.nrows()`.
pub fn pcg<R: Runtime>(rt: &mut R, a: &Coo, b: &[f64], tol: f64, max_iters: usize) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "matrix must be square");
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = a.nrows();
    let before = rt.breakdown();

    // Host-side preprocessing (excluded from kernel time by the paper).
    let f = Ildu::factor(a).expect("square matrix");
    let inv_d = f.inv_d.clone();

    let mut x = vec![0.0; n];
    // r = b - A x0 = b.
    let mut r = b.to_vec();
    let b_norm = rt.norm2(b).max(f64::MIN_POSITIVE);
    let mut z = apply_precond(rt, &f, &inv_d, &r);
    let mut p = z.clone();
    let mut rz = rt.dot(&r, &z);
    let mut iterations = 0usize;
    let mut converged = false;
    let mut res_norm = rt.norm2(&r);

    for _ in 0..max_iters {
        iterations += 1;
        let q = rt.spmv(a, &p);
        let pq = rt.dot(&p, &q);
        if pq.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rz / pq;
        rt.axpy(alpha, &p, &mut x);
        rt.axpy(-alpha, &q, &mut r);
        res_norm = rt.norm2(&r);
        if res_norm / b_norm < tol {
            converged = true;
            break;
        }
        z = apply_precond(rt, &f, &inv_d, &r);
        let rz_new = rt.dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta p
        rt.scal(beta, &mut p);
        let znew = rt.vv(&p, &z, BinaryOp::Add);
        p = znew;
    }

    let breakdown = before.delta(&rt.breakdown());
    SolveResult {
        x,
        residual: res_norm / b_norm,
        converged,
        run: AppRun {
            breakdown,
            iterations,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuRuntime, GpuStack};
    use psim_baselines::GpuModel;
    use psim_sparse::{gen, ildu};

    #[test]
    fn converges_on_spd_system() {
        let base = gen::rmat_seeded(120, 4, 8, 55);
        let a = ildu::make_spd(&base);
        let x_true = gen::dense_vector(120, 3);
        let b = a.spmv(&x_true);
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::Cuda);
        let res = pcg(&mut rt, &a, &b, 1e-10, 200);
        assert!(res.converged, "residual {}", res.residual);
        for (g, w) in res.x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
        // SpTRSV features in the breakdown (P-CG is SpTRSV-major).
        assert!(res.run.breakdown.sptrsv_s > 0.0);
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        // Compare with unpreconditioned CG = PCG on the identity precond?
        // Simplest proxy: PCG must converge in far fewer than n iterations.
        let base = gen::rmat_seeded(200, 5, 2, 99);
        let a = ildu::make_spd(&base);
        let b = vec![1.0; 200];
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::Cuda);
        let res = pcg(&mut rt, &a, &b, 1e-9, 200);
        assert!(res.converged);
        assert!(
            res.run.iterations < 60,
            "PCG took {} iterations",
            res.run.iterations
        );
    }
}
